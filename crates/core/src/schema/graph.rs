//! The schema graph: "a database schema is represented in OSAM* as a network
//! of associated (inter-related) object classes" (paper §2).

use crate::error::SchemaError;
use crate::fxhash::FxHashMap;
use crate::ids::{AssocId, ClassId};
use crate::schema::assoc::{AssocDef, AssocKind};
use crate::schema::class::ClassDef;
use crate::value::DType;

/// An immutable, validated schema: the intensional network of classes and
/// associations (the S-diagram).
#[derive(Debug, Clone)]
pub struct Schema {
    pub(crate) classes: Vec<ClassDef>,
    pub(crate) assocs: Vec<AssocDef>,
    pub(crate) class_by_name: FxHashMap<String, ClassId>,
    /// Associations emanating from each class, in declaration order.
    pub(crate) outgoing: Vec<Vec<AssocId>>,
    /// Associations connecting to each class, in declaration order.
    pub(crate) incoming: Vec<Vec<AssocId>>,
    /// Direct superclasses of each class (G links where class is `to`).
    pub(crate) supers: Vec<Vec<ClassId>>,
    /// Direct subclasses of each class (G links where class is `from`).
    pub(crate) subs: Vec<Vec<ClassId>>,
}

impl Schema {
    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of associations.
    pub fn assoc_count(&self) -> usize {
        self.assocs.len()
    }

    /// All class definitions.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// All association definitions.
    pub fn assocs(&self) -> &[AssocDef] {
        &self.assocs
    }

    /// Look up a class definition.
    #[inline]
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.index()]
    }

    /// Look up an association definition.
    #[inline]
    pub fn assoc(&self, id: AssocId) -> &AssocDef {
        &self.assocs[id.index()]
    }

    /// Find a class by name.
    pub fn class_by_name(&self, name: &str) -> Result<ClassId, SchemaError> {
        self.class_by_name
            .get(name)
            .copied()
            .ok_or_else(|| SchemaError::UnknownClass(name.to_string()))
    }

    /// Find a class by name, returning `None` if absent.
    pub fn try_class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Associations emanating from `class`.
    pub fn outgoing(&self, class: ClassId) -> &[AssocId] {
        &self.outgoing[class.index()]
    }

    /// Associations connecting to `class`.
    pub fn incoming(&self, class: ClassId) -> &[AssocId] {
        &self.incoming[class.index()]
    }

    /// Direct superclasses of `class`.
    pub fn direct_supers(&self, class: ClassId) -> &[ClassId] {
        &self.supers[class.index()]
    }

    /// Direct subclasses of `class`.
    pub fn direct_subs(&self, class: ClassId) -> &[ClassId] {
        &self.subs[class.index()]
    }

    /// The generalization link from `superclass` to `subclass`, if any.
    pub fn g_link(&self, superclass: ClassId, subclass: ClassId) -> Option<AssocId> {
        self.outgoing(superclass)
            .iter()
            .copied()
            .find(|&a| {
                let d = self.assoc(a);
                d.kind == AssocKind::Generalization && d.to == subclass
            })
    }

    /// Whether `a` is a *descriptive attribute*: an aggregation emanating
    /// from an E-class and connecting to a D-class (paper §2).
    pub fn is_attribute(&self, a: AssocId) -> bool {
        let d = self.assoc(a);
        d.kind == AssocKind::Aggregation
            && self.class(d.from).is_entity()
            && self.class(d.to).is_domain()
    }

    /// The descriptive attributes declared *directly* on `class`, in
    /// declaration order.
    pub fn own_attrs(&self, class: ClassId) -> Vec<AssocId> {
        self.outgoing(class)
            .iter()
            .copied()
            .filter(|&a| self.is_attribute(a))
            .collect()
    }

    /// Find a directly-declared attribute of `class` by link name.
    pub fn own_attr_by_name(&self, class: ClassId, name: &str) -> Option<AssocId> {
        self.outgoing(class)
            .iter()
            .copied()
            .find(|&a| self.is_attribute(a) && self.assoc(a).name == name)
    }

    /// The value type of a descriptive attribute.
    pub fn attr_dtype(&self, a: AssocId) -> Option<DType> {
        if self.is_attribute(a) {
            self.class(self.assoc(a).to).kind.dtype()
        } else {
            None
        }
    }

    /// All associations between the two classes (either direction), in
    /// declaration order. Does not consider inheritance — see
    /// [`crate::schema::inheritance`] for resolved traversal.
    pub fn direct_assocs_between(&self, a: ClassId, b: ClassId) -> Vec<AssocId> {
        let mut out: Vec<AssocId> = self
            .outgoing(a)
            .iter()
            .copied()
            .filter(|&x| self.assoc(x).to == b)
            .chain(
                self.incoming(a)
                    .iter()
                    .copied()
                    .filter(|&x| self.assoc(x).from == b),
            )
            .collect();
        // A self-loop association (a == b) is found from both sides; count it
        // once.
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All E-classes.
    pub fn e_classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.iter().filter(|c| c.is_entity())
    }

    /// All D-classes.
    pub fn d_classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.iter().filter(|c| c.is_domain())
    }

    /// Resolve an E→E (entity) aggregation/interaction link of `class` by
    /// name, directly declared, in either direction. The reverse direction
    /// matters because the paper treats associations as symmetric in
    /// context expressions.
    pub fn own_link_by_name(&self, class: ClassId, name: &str) -> Option<AssocId> {
        self.outgoing(class)
            .iter()
            .chain(self.incoming(class).iter())
            .copied()
            .find(|&a| self.assoc(a).name == name)
    }
}

/// Internal: used by the builder to assemble a schema, then validated.
pub(crate) fn assemble(
    classes: Vec<ClassDef>,
    assocs: Vec<AssocDef>,
) -> Result<Schema, SchemaError> {
    let mut class_by_name = FxHashMap::default();
    for c in &classes {
        if class_by_name.insert(c.name.clone(), c.id).is_some() {
            return Err(SchemaError::DuplicateClass(c.name.clone()));
        }
    }
    let n = classes.len();
    let mut outgoing = vec![Vec::new(); n];
    let mut incoming = vec![Vec::new(); n];
    let mut supers = vec![Vec::new(); n];
    let mut subs = vec![Vec::new(); n];
    for a in &assocs {
        if a.from.index() >= n || a.to.index() >= n {
            return Err(SchemaError::DanglingAssoc { assoc: a.name.clone() });
        }
        outgoing[a.from.index()].push(a.id);
        incoming[a.to.index()].push(a.id);
        if a.kind == AssocKind::Generalization {
            supers[a.to.index()].push(a.from);
            subs[a.from.index()].push(a.to);
        }
    }
    let schema = Schema {
        classes,
        assocs,
        class_by_name,
        outgoing,
        incoming,
        supers,
        subs,
    };
    validate(&schema)?;
    Ok(schema)
}

/// Structural validation (paper §2 constraints).
fn validate(s: &Schema) -> Result<(), SchemaError> {
    // Link-name uniqueness per emanating class.
    for c in &s.classes {
        let mut seen = crate::fxhash::FxHashSet::default();
        for &a in s.outgoing(c.id) {
            if !seen.insert(s.assoc(a).name.as_str()) {
                return Err(SchemaError::DuplicateAssocName {
                    class: c.name.clone(),
                    assoc: s.assoc(a).name.clone(),
                });
            }
        }
    }
    for a in &s.assocs {
        let from = s.class(a.from);
        let to = s.class(a.to);
        // D-classes are pure value domains: no outgoing links.
        if from.is_domain() {
            return Err(SchemaError::DClassWithOutgoingAssoc { class: from.name.clone() });
        }
        // Generalization connects E-classes only.
        if a.kind == AssocKind::Generalization && (from.is_domain() || to.is_domain()) {
            let offender = if from.is_domain() { from } else { to };
            return Err(SchemaError::GeneralizationOnDClass { class: offender.name.clone() });
        }
        let _ = matches!(a.kind, AssocKind::Crossproduct); // all kinds structurally legal
    }
    // Generalization acyclicity (DFS, three-colour).
    let n = s.classes.len();
    let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
    fn dfs(s: &Schema, c: ClassId, colour: &mut [u8]) -> Result<(), SchemaError> {
        colour[c.index()] = 1;
        for &sup in s.direct_supers(c) {
            match colour[sup.index()] {
                0 => dfs(s, sup, colour)?,
                1 => {
                    return Err(SchemaError::GeneralizationCycle {
                        class: s.class(sup).name.clone(),
                    })
                }
                _ => {}
            }
        }
        colour[c.index()] = 2;
        Ok(())
    }
    for c in &s.classes {
        if colour[c.id.index()] == 0 {
            dfs(s, c.id, &mut colour)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::schema::builder::SchemaBuilder;
    use crate::schema::class::ClassKind;
    use crate::value::DType;

    #[test]
    fn basic_lookup_and_attrs() {
        let mut b = SchemaBuilder::new();
        b.e_class("Person");
        b.d_class("Name", DType::Str);
        b.attr("Person", "Name");
        b.e_class("Student");
        b.generalize("Person", "Student");
        let s = b.build().unwrap();

        let person = s.class_by_name("Person").unwrap();
        let student = s.class_by_name("Student").unwrap();
        assert!(s.class(person).is_entity());
        assert_eq!(s.own_attrs(person).len(), 1);
        assert_eq!(s.own_attrs(student).len(), 0);
        assert_eq!(s.direct_supers(student), &[person]);
        assert_eq!(s.direct_subs(person), &[student]);
        assert!(s.g_link(person, student).is_some());
        assert!(s.g_link(student, person).is_none());
        assert_eq!(s.attr_dtype(s.own_attr_by_name(person, "Name").unwrap()), Some(DType::Str));
    }

    #[test]
    fn rejects_duplicate_class() {
        let mut b = SchemaBuilder::new();
        b.e_class("X");
        b.e_class("X");
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_generalization_cycle() {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.generalize("A", "B");
        b.generalize("B", "A");
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_duplicate_link_name() {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.aggregate_named("A", "B", "lnk");
        b.aggregate_named("A", "B", "lnk");
        assert!(b.build().is_err());
    }

    #[test]
    fn d_class_kind_checks() {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.d_class("V", DType::Int);
        b.attr("A", "V");
        let s = b.build().unwrap();
        let v = s.class_by_name("V").unwrap();
        assert_eq!(s.class(v).kind, ClassKind::DClass(DType::Int));
        assert_eq!(s.d_classes().count(), 1);
        assert_eq!(s.e_classes().count(), 1);
    }

    #[test]
    fn direct_assocs_between_both_directions() {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.aggregate("A", "B");
        b.aggregate_named("B", "A", "back");
        let s = b.build().unwrap();
        let a = s.class_by_name("A").unwrap();
        let bb = s.class_by_name("B").unwrap();
        assert_eq!(s.direct_assocs_between(a, bb).len(), 2);
        assert_eq!(s.direct_assocs_between(bb, a).len(), 2);
    }
}
