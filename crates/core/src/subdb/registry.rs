//! The registry of derived subdatabases.
//!
//! Classes of derived subdatabases are referenced as `Subdb:Class` — "by
//! qualifying the class name with the subdatabase name using a colon"
//! (paper §4.1). The registry resolves such qualified references and tracks
//! a validity epoch per entry so the rule engine can invalidate
//! post-evaluated results when base data changes.

use crate::fxhash::FxHashMap;
use crate::subdb::subdatabase::Subdatabase;

/// A registry entry: the materialized subdatabase plus the engine epoch at
/// which it was derived.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The derived subdatabase.
    pub subdb: Subdatabase,
    /// Epoch (update watermark) at derivation time.
    pub derived_at: u64,
}

/// Registry of derived subdatabases, keyed by name.
#[derive(Debug, Default, Clone)]
pub struct SubdbRegistry {
    entries: FxHashMap<String, RegistryEntry>,
}

impl SubdbRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a derived subdatabase.
    pub fn put(&mut self, subdb: Subdatabase, derived_at: u64) {
        self.entries
            .insert(subdb.name.clone(), RegistryEntry { subdb, derived_at });
    }

    /// Get an entry by subdatabase name.
    pub fn get(&self, name: &str) -> Option<&RegistryEntry> {
        self.entries.get(name)
    }

    /// Get the subdatabase by name.
    pub fn subdb(&self, name: &str) -> Option<&Subdatabase> {
        self.entries.get(name).map(|e| &e.subdb)
    }

    /// Remove an entry (invalidate).
    pub fn remove(&mut self, name: &str) -> Option<Subdatabase> {
        self.entries.remove(name).map(|e| e.subdb)
    }

    /// Remove an entry, returning the subdatabase together with its
    /// derivation epoch (so the caller can re-register it unchanged).
    pub fn take(&mut self, name: &str) -> Option<(Subdatabase, u64)> {
        self.entries.remove(name).map(|e| (e.subdb, e.derived_at))
    }

    /// Whether an entry exists and was derived at or after `epoch`.
    pub fn is_fresh(&self, name: &str, epoch: u64) -> bool {
        self.entries
            .get(name)
            .is_some_and(|e| e.derived_at >= epoch)
    }

    /// Names of registered subdatabases, sorted (deterministic).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.entries.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// Resolve a `Subdb:Class` qualified reference to (subdatabase, slot
    /// index).
    pub fn resolve_qualified(&self, subdb: &str, class: &str) -> Option<(&Subdatabase, usize)> {
        let s = self.subdb(subdb)?;
        let slot = s.intension.slot_by_name(class)?;
        Some((s, slot))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clear all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClassId;
    use crate::subdb::intension::{Intension, SlotDef};

    fn sd(name: &str) -> Subdatabase {
        Subdatabase::new(
            name,
            Intension::new(vec![
                SlotDef::base("Teacher", ClassId(0)),
                SlotDef::base("Course", ClassId(1)),
            ]),
        )
    }

    #[test]
    fn put_get_remove() {
        let mut r = SubdbRegistry::new();
        r.put(sd("Teacher_course"), 3);
        assert!(r.get("Teacher_course").is_some());
        assert_eq!(r.get("Teacher_course").unwrap().derived_at, 3);
        assert!(r.subdb("Nope").is_none());
        assert!(r.remove("Teacher_course").is_some());
        assert!(r.is_empty());
    }

    #[test]
    fn freshness() {
        let mut r = SubdbRegistry::new();
        r.put(sd("S"), 5);
        assert!(r.is_fresh("S", 5));
        assert!(r.is_fresh("S", 4));
        assert!(!r.is_fresh("S", 6));
        assert!(!r.is_fresh("T", 0));
    }

    #[test]
    fn qualified_resolution() {
        let mut r = SubdbRegistry::new();
        r.put(sd("Teacher_course"), 0);
        let (s, slot) = r.resolve_qualified("Teacher_course", "Course").unwrap();
        assert_eq!(s.name, "Teacher_course");
        assert_eq!(slot, 1);
        assert!(r.resolve_qualified("Teacher_course", "Section").is_none());
        assert!(r.resolve_qualified("Nope", "Course").is_none());
    }

    #[test]
    fn names_sorted() {
        let mut r = SubdbRegistry::new();
        r.put(sd("b"), 0);
        r.put(sd("a"), 0);
        assert_eq!(r.names(), vec!["a", "b"]);
    }
}
