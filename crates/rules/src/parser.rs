//! Parser for deductive rules.
//!
//! ```text
//! rule   := 'if' 'context' expr [where] 'then' IDENT '(' target (',' target)* ')' [where]
//! target := classref [ '[' IDENT (',' IDENT)* ']' ]  |  IDENT_ '*'
//! ```
//!
//! The WHERE subclause may appear either between the context expression and
//! `then` (rules R2, R3 in the paper) or after the THEN clause (rule R1's
//! schematic form) — both bind to the IF clause. The family target `C_*`
//! (the paper's `Grad*`) selects every closure level of `C`.

use crate::ast::{Rule, TargetItem};
use dood_core::diag::Span;
use dood_oql::error::ParseError;
use dood_oql::parser::Parser as OqlParser;
use dood_oql::token::Token;

/// Source spans of a parsed rule's parts, for analyzer diagnostics. All
/// offsets are relative to the rule source passed to [`parse_rule_spanned`];
/// embedders (the `.dood` program loader) shift them to absolute positions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSpans {
    /// Context class occurrences, in textual (flatten) order.
    pub occurrences: Vec<Span>,
    /// WHERE conditions, in textual order.
    pub wheres: Vec<Span>,
    /// THEN-clause targets, in order.
    pub targets: Vec<Span>,
    /// The THEN-clause subdatabase name.
    pub target_subdb: Span,
}

impl RuleSpans {
    /// All spans shifted right by `by` bytes.
    pub fn shifted(&self, by: usize) -> RuleSpans {
        RuleSpans {
            occurrences: self.occurrences.iter().map(|s| s.shifted(by)).collect(),
            wheres: self.wheres.iter().map(|s| s.shifted(by)).collect(),
            targets: self.targets.iter().map(|s| s.shifted(by)).collect(),
            target_subdb: self.target_subdb.shifted(by),
        }
    }
}

/// Parse one rule. `name` is the rule's identifier in the rule set.
pub fn parse_rule(name: &str, src: &str) -> Result<Rule, ParseError> {
    parse_rule_spanned(name, src).map(|(r, _)| r)
}

/// Parse one rule, also returning the source spans of its parts.
pub fn parse_rule_spanned(name: &str, src: &str) -> Result<(Rule, RuleSpans), ParseError> {
    let mut p = OqlParser::new(src)?;
    let mut spans = RuleSpans::default();
    let inner = |p: &mut OqlParser, spans: &mut RuleSpans| -> Result<Rule, ParseError> {
        p.expect(&Token::If)?;
        p.expect(&Token::Context)?;
        let context = p.context_expr()?;
        let mut where_ = Vec::new();
        if matches!(p.peek(), Token::Where) {
            p.bump();
            where_ = p.where_conds()?;
        }
        p.expect(&Token::Then)?;
        let subdb_start = p.at();
        let target_subdb = p.ident()?;
        spans.target_subdb = p.span_since(subdb_start);
        p.expect(&Token::LParen)?;
        let mut targets = vec![target_item(p, spans)?];
        while matches!(p.peek(), Token::Comma) {
            p.bump();
            targets.push(target_item(p, spans)?);
        }
        p.expect(&Token::RParen)?;
        if matches!(p.peek(), Token::Where) {
            p.bump();
            let mut more = p.where_conds()?;
            where_.append(&mut more);
        }
        if !p.at_eof() {
            return Err(ParseError::new(p.at(), format!("unexpected `{}`", p.peek())));
        }
        Ok(Rule { name: name.to_string(), context, where_, target_subdb, targets })
    };
    let rule = inner(&mut p, &mut spans).map_err(|e| p.locate(e))?;
    spans.occurrences = p.occurrence_spans().to_vec();
    spans.wheres = p.where_spans().to_vec();
    Ok((rule, spans))
}

fn target_item(p: &mut OqlParser, spans: &mut RuleSpans) -> Result<TargetItem, ParseError> {
    let start = p.at();
    let item = target_item_inner(p)?;
    spans.targets.push(p.span_since(start));
    Ok(item)
}

fn target_item_inner(p: &mut OqlParser) -> Result<TargetItem, ParseError> {
    let class = p.classref()?;
    // `Grad_*` lexes as Ident("Grad_") Star.
    if class.subdb.is_none() && class.name.ends_with('_') && matches!(p.peek(), Token::Star) {
        p.bump();
        let base = class.name.trim_end_matches('_').to_string();
        return Ok(TargetItem::Family { base });
    }
    let attrs = if matches!(p.peek(), Token::LBracket) {
        p.bump();
        let mut out = vec![p.ident()?];
        while matches!(p.peek(), Token::Comma) {
            p.bump();
            out.push(p.ident()?);
        }
        p.expect(&Token::RBracket)?;
        Some(out)
    } else {
        None
    };
    Ok(TargetItem::Class { class, attrs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dood_oql::ast::WhereCond;

    #[test]
    fn rule_r1() {
        // Paper R1: derive Teacher_course through Section.
        let r = parse_rule(
            "R1",
            "if context Teacher * Section * Course then Teacher_course (Teacher, Course)",
        )
        .unwrap();
        assert_eq!(r.target_subdb, "Teacher_course");
        assert_eq!(r.targets.len(), 2);
        assert!(r.where_.is_empty());
        assert_eq!(r.context.seq.class_count(), 3);
    }

    #[test]
    fn rule_r1_attr_restriction() {
        // "then Teacher_course (Teacher [SS, Degree], Course)".
        let r = parse_rule(
            "R1b",
            "if context Teacher * Section * Course \
             then Teacher_course (Teacher [SS, Degree], Course)",
        )
        .unwrap();
        match &r.targets[0] {
            TargetItem::Class { attrs: Some(a), .. } => {
                assert_eq!(a, &vec!["SS".to_string(), "Degree".to_string()]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rule_r2_where_before_then() {
        let r = parse_rule(
            "R2",
            "if context Department [name = 'CIS'] * Course * Section * Student \
             where count(Student by Course) > 39 \
             then Suggest_offer (Course)",
        )
        .unwrap();
        assert_eq!(r.where_.len(), 1);
        assert!(matches!(r.where_[0], WhereCond::Agg { .. }));
        assert_eq!(r.target_subdb, "Suggest_offer");
    }

    #[test]
    fn rule_where_after_then() {
        // Paper R3 places the WHERE after the THEN clause.
        let r = parse_rule(
            "R3",
            "if context Department * Suggest_offer:Course \
             then Deps_need_res (Department) \
             where count(Suggest_offer:Course by Department) > 20",
        )
        .unwrap();
        assert_eq!(r.where_.len(), 1);
        assert_eq!(r.reads(), vec!["Suggest_offer".to_string()]);
    }

    #[test]
    fn family_target() {
        // Paper R6: then Grad_teaching_grad (Grad, Grad_*).
        let r = parse_rule(
            "R6",
            "if context Grad * TA * Teacher * Section * Student ^* \
             then Grad_teaching_grad (Grad, Grad_*)",
        )
        .unwrap();
        assert_eq!(r.targets.len(), 2);
        assert!(matches!(&r.targets[1], TargetItem::Family { base } if base == "Grad"));
        assert!(r.context.closure.is_some());
    }

    #[test]
    fn level_target() {
        // Paper R7: first and third levels.
        let r = parse_rule(
            "R7",
            "if context Grad * TA * Teacher * Section * Student ^* \
             then First_and_third (Grad, Grad_2)",
        )
        .unwrap();
        match &r.targets[1] {
            TargetItem::Class { class, .. } => assert_eq!(class.name, "Grad_2"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_rule("x", "context A * B then T (A)").is_err()); // missing if
        assert!(parse_rule("x", "if context A * B then T").is_err()); // missing (
        assert!(parse_rule("x", "if context A * B then T (A) extra").is_err());
        assert!(parse_rule("x", "if context A * B then T ()").is_err());
    }
}
