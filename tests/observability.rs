//! Observability-layer integration tests (DESIGN.md §8): parallel and
//! sequential evaluation agree on every semantic metric, disabled gates
//! keep the instrumented paths inert, captured profiles expose the
//! per-operator cardinalities, and exported traces always validate.
//!
//! Metric-touching tests serialize on a shared lock: the registry is
//! process-global and `reset_all` would race between tests otherwise.

use dood::core::obs::{self, metrics, trace};
use dood::core::obs::metrics::MetricSnapshot;
use dood::core::pool::ChunkPool;
use dood::core::propcheck::check;
use dood::core::subdb::SubdbRegistry;
use dood::oql::eval::Evaluator;
use dood::oql::resolve::resolve_context;
use dood::oql::Parser;
use dood::rules::RuleEngine;
use dood::workload::university;
use std::sync::{Mutex, MutexGuard};

/// Serializes every test that enables or reads the global metrics registry.
fn metrics_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn eval_rows(db: &dood::store::Database, src: &str, pool: ChunkPool) -> usize {
    let reg = SubdbRegistry::new();
    let e = Parser::parse_context_expr(src).unwrap();
    let r = resolve_context(&e, db.schema(), &reg).unwrap();
    Evaluator::new(&r, db, &reg).unwrap().with_pool(pool).eval("t").len()
}

/// The semantic (non-timing, non-pool) metrics of a snapshot, as
/// comparable `(name, value)` pairs. Pool metrics (chunk counts, worker
/// timings) legitimately differ across thread counts; everything else —
/// join evaluations, predicate selectivity, subsumption eliminations,
/// index probes, rule deltas — must not.
fn semantic_metrics(snaps: &[MetricSnapshot]) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for s in snaps {
        if s.name().starts_with("pool.") {
            continue;
        }
        match s {
            MetricSnapshot::Counter { name, value } => out.push((name.clone(), *value)),
            MetricSnapshot::Gauge { .. } => {}
            MetricSnapshot::Histogram { name, count, sum, .. } => {
                out.push((format!("{name}.count"), *count));
                out.push((format!("{name}.sum"), *sum));
            }
        }
    }
    out
}

/// Parallel evaluation must report the same semantic metric totals as the
/// sequential path: the instrumentation counts work done, not how it was
/// scheduled (ISSUE 5 acceptance).
#[test]
fn parallel_metric_totals_equal_sequential() {
    let _g = metrics_lock();
    obs::set_metrics_enabled(true);
    let db = university::populate(university::Size::small(), 42);
    let exprs = [
        "Teacher * Section * Course",
        "Department * Course * Section * Student",
        "Course ^*",
        "{Teacher * Section} * Course",
    ];
    for src in exprs {
        metrics::reset_all();
        let seq_rows = eval_rows(&db, src, ChunkPool::with_threads(1));
        let seq = semantic_metrics(&metrics::snapshot());

        metrics::reset_all();
        // cutoff 0 forces the chunked path even on small candidate sets.
        let par_rows = eval_rows(&db, src, ChunkPool::with_threads(4).cutoff(0));
        let par = semantic_metrics(&metrics::snapshot());

        assert_eq!(seq_rows, par_rows, "rows differ for `{src}`");
        assert_eq!(seq, par, "metric totals differ for `{src}`");
        assert!(
            seq.iter().any(|(n, v)| n == "oql.join.evals" && *v > 0)
                || src.contains('^'),
            "no join evaluations recorded for `{src}`: {seq:?}"
        );
    }
    metrics::reset_all();
    obs::set_metrics_enabled(false);
}

/// With both gates off, spans are inert guards and no counter moves:
/// the disabled path must stay observable-free (the <2% overhead bench
/// E15 measures the residual cost of these checks).
#[test]
fn disabled_gates_keep_instrumentation_inert() {
    let _g = metrics_lock();
    obs::set_metrics_enabled(false);
    metrics::reset_all();
    let before = semantic_metrics(&metrics::snapshot());

    let sp = trace::span("observability.test");
    assert!(!sp.on(), "span must be inert outside capture/stream");
    assert!(sp.id().is_none());
    drop(sp);

    let db = university::populate(university::Size::small(), 7);
    let rows = eval_rows(&db, "Teacher * Section * Course", ChunkPool::with_threads(2).cutoff(0));
    assert!(rows > 0);

    let after = semantic_metrics(&metrics::snapshot());
    assert_eq!(before, after, "metrics moved while disabled");
}

/// `run_query_profiled` returns a profile tree whose operator nodes carry
/// the deterministic cardinalities the paper's §4 query produces: the
/// rule-derivation span, the if-context join with its input/output rows,
/// and the query row count.
#[test]
fn profile_tree_exposes_operator_cardinalities() {
    let db = university::populate(university::Size::small(), 42);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("R1", "if context Teacher * Section * Course then TC (Teacher, Course)")
        .unwrap();
    let q = Parser::parse_query("context TC:Teacher * TC:Course display").unwrap();
    let (out, profile) = engine.run_query_profiled(&q).unwrap();
    assert!(!out.table.is_empty());

    let query = profile.find("rules.query").expect("rules.query span");
    assert_eq!(query.attr("rows"), Some(out.table.len() as i64));
    let derive = profile.find("rules.derive").expect("rules.derive span");
    assert_eq!(derive.attr("rules"), Some(1));
    let rule = profile.find("rules.rule").expect("rules.rule span");
    assert!(rule.attr("ctx_rows").unwrap_or(0) > 0);
    let join = profile.find("oql.join").expect("oql.join span");
    assert!(join.attr("rows_in").is_some());
    assert!(join.attr("rows_out").is_some());
    let ctx = profile.find("oql.context").expect("oql.context span");
    assert!(ctx.attr("rows_out").unwrap_or(-1) >= 0);

    // Determinism: same seed, same tree shape and cardinalities.
    let db2 = university::populate(university::Size::small(), 42);
    let mut engine2 = RuleEngine::new(db2);
    engine2
        .add_rule("R1", "if context Teacher * Section * Course then TC (Teacher, Course)")
        .unwrap();
    let (out2, profile2) = engine2.run_query_profiled(&q).unwrap();
    assert_eq!(out.table.len(), out2.table.len());
    assert_eq!(profile.node_count(), profile2.node_count());
    assert_eq!(
        profile.find("oql.join").unwrap().attr("rows_out"),
        profile2.find("oql.join").unwrap().attr("rows_out")
    );
}

/// Property: any capture over a random university workload exports to a
/// JSON-lines trace that [`trace::validate_trace`] accepts — children
/// close before parents, ids are unique, intervals nest (ISSUE 5
/// satellite). Replay failures with `DOOD_PROP_SEED=<seed>`.
#[test]
fn exported_traces_always_validate() {
    check("exported_traces_always_validate", 12, |g| {
        let seed = g.range(0u64..1000);
        let threads = [1usize, 2, 4][g.range(0..3) as usize];
        let db = university::populate(university::Size::small(), seed);
        let pool = ChunkPool::with_threads(threads).cutoff(0);
        let (rows, spans) = trace::capture(|| {
            eval_rows(&db, "Department * Course * Section * Student", pool)
                + eval_rows(&db, "Course ^*", ChunkPool::with_threads(1))
        });
        assert!(!spans.is_empty(), "capture produced no spans");

        // Stream order is close order: children before parents. Ties on
        // end_ns break toward the later-opened (inner) span.
        let mut by_close = spans.clone();
        by_close.sort_by_key(|r| (r.end_ns(), std::cmp::Reverse(r.id)));
        let text: String =
            by_close.iter().map(|r| r.to_json_line() + "\n").collect();
        let stats = trace::validate_trace(&text).expect("exported trace must validate");
        assert_eq!(stats.spans, spans.len());
        assert!(stats.roots >= 1);
        assert!(stats.max_depth >= 2, "expected nested spans, got {stats:?}");
        assert!(rows < usize::MAX);

        // Round-trip: parse-back equals the original records.
        for r in &by_close {
            let back = trace::SpanRecord::from_json_line(&r.to_json_line()).unwrap();
            assert_eq!(&back, r);
        }
    });
}

/// The `doodprof` CLI end-to-end: profile the builtin university program,
/// check the deterministic §4 cardinalities, then validate its own trace
/// export (ISSUE 5 acceptance).
#[test]
fn doodprof_cli_university_roundtrip() {
    let exe = env!("CARGO_BIN_EXE_doodprof");
    let dir = std::env::temp_dir().join(format!("doodprof-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");

    let out = std::process::Command::new(exe)
        .args(["--builtin", "university", "--trace-out"])
        .arg(&trace_path)
        .output()
        .expect("run doodprof");
    assert!(out.status.success(), "doodprof failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== export Teacher_course ==  rows=11"), "{text}");
    assert!(text.contains("== query Q41 ==  rows=1"), "{text}");
    assert!(text.contains("oql.join"), "{text}");
    assert!(text.contains("rows_in="), "{text}");

    let validate = std::process::Command::new(exe)
        .arg("--validate")
        .arg(&trace_path)
        .output()
        .expect("run doodprof --validate");
    assert!(
        validate.status.success(),
        "trace export did not validate: {}",
        String::from_utf8_lossy(&validate.stderr)
    );
    let vtext = String::from_utf8_lossy(&validate.stdout);
    assert!(vtext.contains(": ok —"), "{vtext}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `doodlint --json` emits one parseable JSON object per diagnostic on
/// stdout and moves the summary to stderr (ISSUE 5 satellite).
#[test]
fn doodlint_json_output() {
    let exe = env!("CARGO_BIN_EXE_doodlint");
    let dir = std::env::temp_dir().join(format!("doodlint-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.dood");
    std::fs::write(
        &bad,
        "schema builtin university\n\nrule R1:\n  if context Teachr * Section\n  then X (Teachr)\n",
    )
    .unwrap();

    let out = std::process::Command::new(exe)
        .arg("--json")
        .arg(&bad)
        .output()
        .expect("run doodlint");
    assert_eq!(out.status.code(), Some(1), "lint errors must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "expected JSON diagnostics, got: {stdout}");
    for line in &lines {
        assert!(line.starts_with("{\"file\":"), "not a JSON diagnostic: {line}");
        assert!(line.ends_with('}'), "not a JSON diagnostic: {line}");
        assert!(line.contains("\"severity\":"), "{line}");
        assert!(line.contains("\"code\":"), "{line}");
    }
    assert!(stderr.contains("program(s) checked"), "summary must be on stderr: {stderr}");
    assert!(!stdout.contains("program(s) checked"), "summary leaked to stdout: {stdout}");

    // A clean builtin program emits no JSON objects and exits 0.
    let ok = std::process::Command::new(exe)
        .args(["--json", "--builtin"])
        .output()
        .expect("run doodlint --builtin");
    assert!(ok.status.success(), "{}", String::from_utf8_lossy(&ok.stderr));
    assert!(String::from_utf8_lossy(&ok.stdout).trim().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
