//! Soundness tests for the abstract interpreter (`dood::rules::absint`):
//! static bounds must **dominate** every observed cardinality — a derived
//! subdatabase may never hold more patterns than `rows_hi`, a slot extent
//! may never exceed `slot_hi`, and closure reach may never exceed the
//! schema-derived `reach_hi`. A propcheck property stresses the same
//! contract over random instances and random (sometimes unsatisfiable)
//! predicates forced through the engine's *unchecked* `add_rule` path:
//! anything flagged `E017` statically must derive an empty extent.
//!
//! Driven by the in-repo seeded harness (`dood::core::propcheck`); replay
//! a reported failure with `DOOD_PROP_SEED=<seed> cargo test <name>`.

use dood::core::fxhash::FxHashSet;
use dood::core::ids::Oid;
use dood::core::obs::stats;
use dood::core::propcheck::check;
use dood::rules::absint::{analyze_bounds, CardEnv};
use dood::rules::program::Program;
use dood::rules::RuleEngine;
use dood::workload::programs;

const CASES: usize = 24;

/// Parse a builtin program and build its seeded database.
fn setup(name: &str, seed: u64) -> (Program, dood::store::Database) {
    let text = programs::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, t)| t)
        .unwrap_or_else(|| panic!("no builtin program `{name}`"));
    let (prog, diags) = Program::parse(text);
    assert!(diags.is_empty(), "{diags:?}");
    let db = programs::builtin_database(name, seed)
        .unwrap_or_else(|| panic!("no builtin population for `{name}`"));
    (prog, db)
}

/// Every builtin program's derived subdatabases stay within the abstract
/// interpreter's worst-case row bounds, computed over a snapshot of the
/// loaded base extents (`CardEnv::from_db`).
#[test]
fn static_bounds_dominate_builtin_corpus() {
    for name in ["university", "company", "cad", "social"] {
        for seed in [1u64, 7, 42] {
            let (prog, db) = setup(name, seed);
            let analysis =
                analyze_bounds(&prog, db.schema(), &FxHashSet::default(), &CardEnv::from_db(&db));
            assert!(analysis.diags.is_empty(), "{name}: {:?}", analysis.diags);
            let mut engine = RuleEngine::new(db);
            engine.register(&prog).unwrap_or_else(|e| panic!("{name}: {e}"));
            for (subdb, &hi) in &analysis.subdb_hi {
                let observed = engine
                    .subdb(subdb)
                    .unwrap_or_else(|e| panic!("{name}/{subdb}: {e}"))
                    .len() as f64;
                assert!(
                    observed <= hi,
                    "{name}/{subdb} (seed {seed}): observed {observed} rows > static bound {hi}"
                );
            }
        }
    }
}

/// Closure reach bounds: the distinct objects a `^*` closure touches can
/// never exceed the traversed class's extent (`reach_hi`), and a `^N`
/// chain over identity edges is bound by depth 1.
#[test]
fn closure_reach_bounds_cover_observed() {
    for (name, rule, subdb) in [("cad", "RX", "Explosion"), ("social", "RS", "Reach")] {
        let (prog, db) = setup(name, 7);
        let analysis =
            analyze_bounds(&prog, db.schema(), &FxHashSet::default(), &CardEnv::from_db(&db));
        let b = analysis.bounds_for(rule).unwrap_or_else(|| panic!("{name}: no bounds for {rule}"));
        let closure = b.closure.as_ref().unwrap_or_else(|| panic!("{rule}: no closure bounds"));
        assert!(closure.levels.is_none(), "{rule} is `^*`, not `^N`");
        let mut engine = RuleEngine::new(db);
        engine.register(&prog).unwrap();
        let sd = engine.subdb(subdb).unwrap();
        let mut reached: std::collections::BTreeSet<Oid> = Default::default();
        let width = sd.intension.width();
        for slot in 0..width {
            reached.extend(sd.slot_extent(slot));
        }
        assert!(
            reached.len() as f64 <= closure.reach_hi,
            "{name}/{subdb}: {} distinct objects > reach bound {}",
            reached.len(),
            closure.reach_hi
        );
    }
}

/// Registering a program installs static selectivity priors for its
/// predicates, so the planner has a cost signal before any observation.
#[test]
fn register_installs_static_priors() {
    stats::clear();
    let (prog, db) = setup("university", 7);
    let schema = db.schema().clone();
    let mut engine = RuleEngine::new(db);
    engine.register(&prog).unwrap();
    // R5's `Course [c# < 5000]` condition must have a prior at the exact
    // key the planner reads.
    use dood::oql::ast::{Item, Pred, Seq};
    fn find_cond<'a>(seq: &'a Seq, class: &str) -> Option<&'a Pred> {
        let probe = |i: &'a Item| match i {
            Item::Class { class: c, cond: Some(p) } if c.name == class => Some(p),
            Item::Group(inner) => find_cond(inner, class),
            _ => None,
        };
        probe(&seq.first).or_else(|| seq.rest.iter().find_map(|(_, i)| probe(i)))
    }
    let course = schema.class_by_name("Course").unwrap();
    let pr = prog.rules.iter().find(|r| r.rule.name == "R5").unwrap();
    let pred =
        find_cond(&pr.rule.context.seq, "Course").expect("R5 has a predicated Course occurrence");
    let key =
        dood::oql::static_sel_key(&schema, course, None, pred).expect("compilable predicate");
    let prior = stats::prior(&key)
        .unwrap_or_else(|| panic!("no static prior installed at `{key}`"));
    assert!(
        (0.0..=1.0).contains(&prior) && prior < 0.5,
        "one-sided comparison prior should be selective, got {prior}"
    );
    stats::clear();
}

/// The chain catalogue for the propcheck: valid university join chains
/// with the occurrence (by index) that carries a random predicate, and
/// that occurrence's integer attribute.
const CHAINS: &[(&[&str], usize, &str)] = &[
    (&["Teacher", "Section", "Course"], 2, "c#"),
    (&["Teacher", "Section", "Student"], 1, "section#"),
    (&["Section", "Course"], 1, "c#"),
];

/// Random single-rule programs over random university instances: the
/// static bounds computed *before* derivation dominate what derivation
/// actually produces, and anything flagged statically unsatisfiable
/// (`E017`) derives an empty extent even through the unchecked
/// `add_rule` path (no analyzer gate).
#[test]
fn static_bounds_are_sound_on_random_programs() {
    check("static_bounds_are_sound_on_random_programs", CASES, |g| {
        let seed = g.range(0u64..500);
        let (names, pred_at, attr) = CHAINS[g.range(0..CHAINS.len() as u64) as usize];
        let k1 = g.range(0u64..9000) as i64;
        let k2 = g.range(0u64..9000) as i64;
        let pred = match g.range(0u64..5) {
            0 => String::new(),
            1 => format!(" [{attr} < {k1}]"),
            // Random two-sided range: unsatisfiable whenever k2 <= k1+1.
            2 => format!(" [{attr} > {k1} and {attr} < {k2}]"),
            // Double point constraint: unsatisfiable unless k1 == k2.
            3 => format!(" [{attr} = {k1} and {attr} = {k2}]"),
            _ => format!(" [{attr} >= {k1} and {attr} <= {k1}]"),
        };
        let ctx: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                if i == pred_at {
                    format!("{n}{pred}")
                } else {
                    (*n).to_string()
                }
            })
            .collect();
        let ctx = ctx.join(" * ");
        let target = names.join(", ");
        let text = format!(
            "schema builtin university\n\nrule R:\n  if context {ctx}\n  then T ({target})\n"
        );
        let (prog, diags) = Program::parse(&text);
        assert!(diags.is_empty(), "parse of generated program failed: {diags:?}\n{text}");

        let db = dood::workload::university::populate(
            dood::workload::university::Size::small(),
            seed,
        );
        let analysis =
            analyze_bounds(&prog, db.schema(), &FxHashSet::default(), &CardEnv::from_db(&db));
        let b = analysis.bounds_for("R").expect("bounds for R").clone();
        let flagged = analysis.diags.iter().any(|d| d.code == "E017");
        assert_eq!(flagged, b.empty, "E017 flag and `empty` bound disagree on:\n{text}");

        // The unchecked path: no analyzer gate between parse and derive.
        let mut engine = RuleEngine::new(db);
        engine
            .add_rule("R", &format!("if context {ctx} then T ({target})"))
            .unwrap();
        let sd = engine.subdb("T").unwrap();
        let rows = sd.len() as f64;
        assert!(rows <= b.rows_hi, "observed {rows} rows > static bound {}\n{text}", b.rows_hi);
        for (i, &hi) in b.slot_hi.iter().enumerate() {
            let ext = sd.slot_extent(i).len() as f64;
            assert!(ext <= hi, "slot {i}: extent {ext} > static bound {hi}\n{text}");
        }
        if flagged {
            assert_eq!(
                sd.len(),
                0,
                "statically-unsatisfiable rule derived {} patterns:\n{text}",
                sd.len()
            );
        }
    });
}
