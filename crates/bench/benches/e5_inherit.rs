//! E5 — inheritance-path resolution and perspective climbing across
//! generalization depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dood_bench::{inherit_fixture, inherit_query};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_inherit");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for depth in [2usize, 8, 16, 32] {
        let db = inherit_fixture(depth, 500);
        g.bench_with_input(BenchmarkId::from_parameter(depth), &db, |b, db| {
            b.iter(|| black_box(inherit_query(db, depth)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
