//! # dood-core
//!
//! The structural layer of **dood**, a reproduction of *"A Rule-based
//! Language for Deductive Object-Oriented Databases"* (Alashqur, Su & Lam,
//! ICDE 1990): the OSAM* object-oriented semantic association model and the
//! subdatabase algebra the deductive language is closed under.
//!
//! * [`schema`] — classes (E/D), the five association types, generalization
//!   hierarchies with inheritance and ambiguity resolution, S-diagrams.
//! * [`subdb`] — subdatabases: intensional patterns, extensional patterns
//!   with Null components, pattern types, subsumption, the induced
//!   generalization bookkeeping, and the derived-subdatabase registry.
//! * [`value`] / [`ids`] — D-class values and identifier newtypes.
//! * [`fxhash`] — in-tree Fx hashing for integer-keyed hot maps.
//! * [`rng`] / [`propcheck`] — in-tree seedable PRNG and property-test
//!   driver, keeping the workspace free of external dependencies.
//! * [`pool`] — std-only work-chunking thread pool backing the parallel
//!   evaluation paths (`DOOD_THREADS` override, deterministic merge order).
//! * [`diag`] — source spans, severities, and the plain-text diagnostic
//!   renderer shared by the parsers, the static analyzer, and `doodlint`.
//! * [`obs`] — the hermetic observability layer: span tracing, metrics,
//!   and the EXPLAIN ANALYZE profile trees rendered by `doodprof`.

#![warn(missing_docs)]

pub mod diag;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod obs;
pub mod pool;
pub mod propcheck;
pub mod rng;
pub mod schema;
pub mod subdb;
pub mod value;

pub use error::{ResolveError, SchemaError, StoreError};
pub use ids::{AssocId, ClassId, Oid, OidGen};
pub use value::{DType, Value};
