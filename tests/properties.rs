//! Property-based tests for the invariants DESIGN.md calls out:
//! closure of the subdatabase world under rules, pattern-algebra laws,
//! naive ≡ semi-naive fixpoints, OQL-closure ≡ Datalog reachability, and
//! forward-maintenance ≡ from-scratch derivation under random updates.
//!
//! Driven by the in-repo seeded harness (`dood::core::propcheck`); replay
//! a reported failure with `DOOD_PROP_SEED=<seed> cargo test <name>`.

use dood::core::ids::Oid;
use dood::core::propcheck::{check, Gen};
use dood::core::subdb::{ExtPattern, Intension, PatternType, SlotDef, Subdatabase, SubdbRegistry};
use dood::core::value::Value;
use dood::datalog::{self, Atom};
use dood::oql::Oql;
use dood::rules::{EvalPolicy, RuleEngine};
use dood::workload::{cad, company, university};

const CASES: usize = 24;

/// A raw extension: `rows` patterns of `width` components in 1..bound.
fn raw_patterns(g: &mut Gen, rows: std::ops::Range<usize>, width: usize, bound: u64) -> Vec<Vec<Option<u64>>> {
    g.vec(rows, |g| {
        (0..width).map(|_| g.option(|g| g.range(1..bound))).collect::<Vec<_>>()
    })
}

fn subdb_from_raw(width: usize, raw: Vec<Vec<Option<u64>>>) -> Subdatabase {
    let slots = (0..width)
        .map(|i| SlotDef::base(format!("C{i}"), dood::core::ids::ClassId(i as u32)))
        .collect();
    let mut sd = Subdatabase::new("t", Intension::new(slots));
    for comps in raw {
        let pat = ExtPattern::new(comps.into_iter().map(|o| o.map(Oid)).collect::<Vec<_>>());
        if pat.pattern_type() != PatternType::EMPTY {
            sd.insert(pat);
        }
    }
    sd
}

/// Closure property: a rule's output is a well-formed subdatabase whose
/// slot extents are subsets of the base extents, and it can be queried
/// uniformly like base data (paper §1/§4).
#[test]
fn rule_outputs_are_closed() {
    check("rule_outputs_are_closed", CASES, |g| {
        let seed = g.range(0u64..500);
        let db = university::populate(university::Size::small(), seed);
        let teacher_cls = db.schema().class_by_name("Teacher").unwrap();
        let course_cls = db.schema().class_by_name("Course").unwrap();
        let base_teachers: Vec<Oid> = db.extent(teacher_cls).collect();
        let base_courses: Vec<Oid> = db.extent(course_cls).collect();
        let mut engine = RuleEngine::new(db);
        engine
            .add_rule("R1", "if context Teacher * Section * Course then TC (Teacher, Course)")
            .unwrap();
        let sd = engine.subdb("TC").unwrap().clone();
        assert_eq!(sd.intension.width(), 2);
        for p in sd.patterns() {
            assert_eq!(p.width(), 2);
            assert!(base_teachers.contains(&p.get(0).unwrap()));
            assert!(base_courses.contains(&p.get(1).unwrap()));
        }
        // Uniform operability: the derived subdatabase supports further
        // derivation (a second-level rule), i.e. the world is closed.
        engine
            .add_rule("R2", "if context TC:Teacher * TC:Course then TC2 (Course)")
            .unwrap();
        let sd2 = engine.subdb("TC2").unwrap();
        let tc_courses = sd.slot_extent(1);
        assert_eq!(sd2.slot_extent(0), tc_courses);
    });
}

/// Subsumption: after `retain_maximal`, no retained pattern is a strict
/// part of another (paper §5.1).
#[test]
fn retain_maximal_leaves_only_maximal() {
    check("retain_maximal_leaves_only_maximal", CASES, |g| {
        let raw = raw_patterns(g, 0..40, 4, 6);
        let mut sd = subdb_from_raw(4, raw);
        let before: Vec<ExtPattern> = sd.to_vec();
        sd.retain_maximal();
        let after: Vec<ExtPattern> = sd.to_vec();
        // No retained pattern is part of another retained pattern.
        for a in &after {
            for b in &after {
                assert!(!a.is_part_of(b), "{a} is part of {b}");
            }
        }
        // Every dropped pattern is part of some retained pattern.
        for p in &before {
            if !after.contains(p) {
                assert!(after.iter().any(|q| p.is_part_of(q)), "{p} dropped without cover");
            }
        }
    });
}

/// Pattern-type census partitions the extension.
#[test]
fn pattern_type_census_partitions() {
    check("pattern_type_census_partitions", CASES, |g| {
        let raw = raw_patterns(g, 0..30, 3, 8);
        let slots = (0..3)
            .map(|i| SlotDef::base(format!("C{i}"), dood::core::ids::ClassId(i)))
            .collect();
        let mut sd = Subdatabase::new("t", Intension::new(slots));
        for comps in raw {
            sd.insert(ExtPattern::new(comps.into_iter().map(|o| o.map(Oid)).collect::<Vec<_>>()));
        }
        let census = sd.pattern_types();
        assert_eq!(census.values().sum::<usize>(), sd.len());
    });
}

/// Semi-naive and naive Datalog evaluation reach the same fixpoint on
/// random edge relations.
#[test]
fn seminaive_equals_naive() {
    check("seminaive_equals_naive", CASES, |g| {
        let edges: std::collections::BTreeSet<(u64, u64)> = g
            .vec(0..40, |g| (g.range(1u64..12), g.range(1u64..12)))
            .into_iter()
            .collect();
        let mut p = datalog::Program::new();
        let edge = p.pred("edge");
        let path = p.pred("path");
        p.rule(
            Atom::new(path, vec![datalog::v(0), datalog::v(1)]),
            vec![Atom::new(edge, vec![datalog::v(0), datalog::v(1)])],
        );
        p.rule(
            Atom::new(path, vec![datalog::v(0), datalog::v(2)]),
            vec![
                Atom::new(path, vec![datalog::v(0), datalog::v(1)]),
                Atom::new(edge, vec![datalog::v(1), datalog::v(2)]),
            ],
        );
        let mut edb = datalog::FactDb::new();
        for (a, b) in edges {
            edb.insert(edge, vec![a, b]);
        }
        let (na, _) = datalog::naive(&p, &edb);
        let (sn, _) = datalog::seminaive(&p, &edb);
        assert_eq!(na.relation(path), sn.relation(path));
    });
}

/// The OQL closure over a BOM yields exactly the reachability pairs the
/// Datalog baseline computes on the translated data.
#[test]
fn oql_closure_equals_datalog_reachability() {
    check("oql_closure_equals_datalog_reachability", CASES, |g| {
        let depth = g.range(1usize..4);
        let fanout = g.range(1usize..3);
        let seed = g.range(0u64..100);
        let (db, _) = cad::build_bom(
            cad::BomShape { depth, fanout, roots: 2, share_per_mille: 200 },
            seed,
        );
        // dood side: maximal chains; extract (root-ancestor, descendant)
        // pairs from every chain prefix.
        let reg = SubdbRegistry::new();
        let out = Oql::new().query(&db, &reg, "context Part ^*").unwrap();
        let mut dood_pairs: std::collections::BTreeSet<(u64, u64)> = Default::default();
        for p in out.subdb.patterns() {
            let chain: Vec<Oid> = p.components().iter().flatten().copied().collect();
            for i in 0..chain.len() {
                for j in i + 1..chain.len() {
                    dood_pairs.insert((chain[i].raw(), chain[j].raw()));
                }
            }
        }
        // Datalog side: path over the translated Component relation.
        let mut t = datalog::translate(&db);
        let part = db.schema().class_by_name("Part").unwrap();
        let comp = db.schema().own_link_by_name(part, "Component").unwrap();
        let comp_pred = datalog::translate::assoc_pred(&mut t, &db, comp);
        let reach = t.program.pred("reach");
        t.program.rule(
            Atom::new(reach, vec![datalog::v(0), datalog::v(1)]),
            vec![Atom::new(comp_pred, vec![datalog::v(0), datalog::v(1)])],
        );
        t.program.rule(
            Atom::new(reach, vec![datalog::v(0), datalog::v(2)]),
            vec![
                Atom::new(reach, vec![datalog::v(0), datalog::v(1)]),
                Atom::new(comp_pred, vec![datalog::v(1), datalog::v(2)]),
            ],
        );
        let (fixpoint, _) = datalog::seminaive(&t.program, &t.edb);
        let dl_pairs: std::collections::BTreeSet<(u64, u64)> =
            fixpoint.tuples(reach).map(|t| (t[0], t[1])).collect();
        assert_eq!(dood_pairs, dl_pairs);
    });
}

/// Forward maintenance equals from-scratch derivation under random
/// update sequences (pre-evaluated results stay consistent).
#[test]
fn forward_maintenance_matches_scratch() {
    check("forward_maintenance_matches_scratch", CASES, |g| {
        let seed = g.range(0u64..100);
        let ops = g.vec(1..12, |g| g.range(0u8..4));
        let (db, com) = company::populate(company::CompanySize::small(), seed);
        let mut engine = RuleEngine::new(db);
        engine
            .add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
            .unwrap();
        engine
            .add_rule("Rb", "if context REa:Employee * Project then REb (Employee, Project)")
            .unwrap();
        engine.set_policy("REa", EvalPolicy::PreEvaluated);
        engine.set_policy("REb", EvalPolicy::PreEvaluated);
        engine.query("context REb:Employee").unwrap();

        let employee = engine.db().schema().class_by_name("Employee").unwrap();
        let works_in = engine.db().schema().own_link_by_name(employee, "WorksIn").unwrap();
        let assigned = engine.db().schema().own_link_by_name(employee, "AssignedTo").unwrap();
        for (i, op) in ops.into_iter().enumerate() {
            let db = engine.db_mut();
            let e = com.employees[i % com.employees.len()];
            match op {
                0 => {
                    let d = com.departments[i % com.departments.len()];
                    let _ = db.associate(works_in, e, d);
                }
                1 => {
                    let d = com.departments[i % com.departments.len()];
                    let _ = db.dissociate(works_in, e, d);
                }
                2 => {
                    let p = com.projects[i % com.projects.len()];
                    let _ = db.associate(assigned, e, p);
                }
                _ => {
                    let _ = db.set_attr(e, "salary", Value::Int(i as i64 * 1000));
                }
            }
            engine.propagate().unwrap();
            assert!(engine.is_consistent("REa").unwrap());
            assert!(engine.is_consistent("REb").unwrap());
        }
    });
}

/// Projection laws: projecting a subdatabase narrows the width, keeps
/// pattern counts bounded, and slot extents survive.
#[test]
fn projection_laws() {
    check("projection_laws", CASES, |g| {
        let raw = raw_patterns(g, 1..25, 3, 9);
        let slots = (0..3)
            .map(|i| SlotDef::base(format!("C{i}"), dood::core::ids::ClassId(i)))
            .collect();
        let mut sd = Subdatabase::new("t", Intension::new(slots));
        for comps in raw {
            sd.insert(ExtPattern::new(comps.into_iter().map(|o| o.map(Oid)).collect::<Vec<_>>()));
        }
        let proj = sd.project("p", &[2, 0]);
        assert_eq!(proj.intension.width(), 2);
        assert!(proj.len() <= sd.len());
        assert_eq!(proj.slot_extent(0), sd.slot_extent(2));
        assert_eq!(proj.slot_extent(1), sd.slot_extent(0));
    });
}

/// E11 soundness: incremental (delta) forward maintenance produces the
/// same pre-evaluated results as full re-derivation, under random
/// update sequences.
#[test]
fn incremental_maintenance_matches_full() {
    check("incremental_maintenance_matches_full", CASES, |g| {
        let seed = g.range(0u64..60);
        let ops = g.vec(1..10, |g| (g.range(0u8..4), g.range(0usize..64)));
        let build = |incremental: bool| {
            let (db, _) = company::populate(company::CompanySize::small(), seed);
            let mut e = RuleEngine::new(db);
            e.add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
                .unwrap();
            e.add_rule("Rb", "if context REa:Employee * Project then REb (Employee, Project)")
                .unwrap();
            e.set_policy("REa", EvalPolicy::PreEvaluated);
            e.set_policy("REb", EvalPolicy::PreEvaluated);
            e.set_incremental(incremental);
            e.query("context REb:Employee").unwrap();
            e
        };
        let mut inc = build(true);
        let mut full = build(false);
        let apply = |e: &mut RuleEngine, op: u8, k: usize| {
            let db = e.db_mut();
            let employee = db.schema().class_by_name("Employee").unwrap();
            let department = db.schema().class_by_name("Department").unwrap();
            let project = db.schema().class_by_name("Project").unwrap();
            let works_in = db.schema().own_link_by_name(employee, "WorksIn").unwrap();
            let assigned = db.schema().own_link_by_name(employee, "AssignedTo").unwrap();
            let es: Vec<_> = db.extent(employee).collect();
            let ds: Vec<_> = db.extent(department).collect();
            let ps: Vec<_> = db.extent(project).collect();
            match op {
                0 => {
                    let _ = db.associate(works_in, es[k % es.len()], ds[k % ds.len()]);
                }
                1 => {
                    let _ = db.dissociate(works_in, es[k % es.len()], ds[k % ds.len()]);
                }
                2 => {
                    let _ = db.associate(assigned, es[k % es.len()], ps[k % ps.len()]);
                }
                _ => {
                    let e2 = db.new_object(employee).unwrap();
                    let _ = db.associate(works_in, e2, ds[k % ds.len()]);
                    let _ = db.associate(assigned, e2, ps[k % ps.len()]);
                }
            }
        };
        for (op, k) in ops {
            apply(&mut inc, op, k);
            apply(&mut full, op, k);
            inc.propagate().unwrap();
            full.propagate().unwrap();
            for s in ["REa", "REb"] {
                let a = inc.registry().subdb(s).unwrap().to_vec();
                let b = full.registry().subdb(s).unwrap().to_vec();
                assert_eq!(a, b, "{} diverged", s);
                assert!(inc.is_consistent(s).unwrap());
            }
        }
    });
}

/// Persistence: dump → load round-trips any generated population, and
/// queries over the loaded store give identical results.
#[test]
fn dump_load_round_trips() {
    check("dump_load_round_trips", CASES, |g| {
        let seed = g.range(0u64..200);
        let db = university::populate(university::Size::small(), seed);
        let text = dood::store::dump(&db);
        let loaded = dood::store::load(university::schema(), &text).unwrap();
        assert_eq!(dood::store::dump(&loaded), text);
        let reg = SubdbRegistry::new();
        let q = "context Teacher * Section * Course";
        let a = Oql::new().query(&db, &reg, q).unwrap().subdb.to_vec();
        let b = Oql::new().query(&loaded, &reg, q).unwrap().subdb.to_vec();
        assert_eq!(a, b);
    });
}

/// Value comparison is consistent with type comparability and
/// antisymmetric where defined.
#[test]
fn value_comparison_laws() {
    check("value_comparison_laws", CASES, |g| {
        use std::cmp::Ordering;
        let a = g.range(-50i64..50);
        let b = g.range(-50i64..50);
        let f = g.range(-5.0f64..5.0);
        let (va, vb, vf) = (Value::Int(a), Value::Int(b), Value::Real(f));
        assert_eq!(va.compare(&vb), Some(a.cmp(&b)));
        // Int/Real comparisons agree with f64 semantics.
        if let Some(ord) = va.compare(&vf) {
            assert_eq!(ord, (a as f64).partial_cmp(&f).unwrap());
        }
        // Null never compares.
        assert_eq!(va.compare(&Value::Null), None);
        // Antisymmetry.
        if va.compare(&vb) == Some(Ordering::Less) {
            assert_eq!(vb.compare(&va), Some(Ordering::Greater));
        }
    });
}
