//! Object records and per-class attribute layouts.
//!
//! Each object belongs to exactly one class and stores values for the
//! descriptive attributes declared *directly* on that class; inherited
//! attributes live on the superclass **perspective object** reachable over
//! the instance-level generalization (identity) links — "the two instances
//! are actually two different perspectives of the same real-world object"
//! (paper §3.2).

use dood_core::fxhash::FxHashMap;
use dood_core::ids::{AssocId, ClassId};
use dood_core::schema::Schema;
use dood_core::value::Value;

/// The stored state of one object: its class and its direct attribute
/// values (positionally laid out by [`AttrLayouts`]).
#[derive(Debug, Clone)]
pub struct ObjRecord {
    /// The class this object is a direct instance of.
    pub class: ClassId,
    /// Direct attribute values, in layout order. `Value::Null` when unset.
    pub attrs: Box<[Value]>,
}

/// Precomputed positional layout of each class's direct attributes.
#[derive(Debug, Clone)]
pub struct AttrLayouts {
    /// Per class: the attribute associations in slot order.
    per_class: Vec<Vec<AssocId>>,
    /// (class, attr assoc) → slot.
    slot_of: FxHashMap<(ClassId, AssocId), usize>,
}

impl AttrLayouts {
    /// Build layouts for all classes of a schema.
    pub fn new(schema: &Schema) -> Self {
        let mut per_class = Vec::with_capacity(schema.class_count());
        let mut slot_of = FxHashMap::default();
        for c in schema.classes() {
            let attrs = schema.own_attrs(c.id);
            for (i, &a) in attrs.iter().enumerate() {
                slot_of.insert((c.id, a), i);
            }
            per_class.push(attrs);
        }
        AttrLayouts { per_class, slot_of }
    }

    /// The attributes of `class`, in slot order.
    pub fn attrs_of(&self, class: ClassId) -> &[AssocId] {
        &self.per_class[class.index()]
    }

    /// The slot of attribute `attr` on `class`.
    pub fn slot(&self, class: ClassId, attr: AssocId) -> Option<usize> {
        self.slot_of.get(&(class, attr)).copied()
    }

    /// A fresh all-null attribute vector for `class`.
    pub fn empty_record(&self, class: ClassId) -> Box<[Value]> {
        vec![Value::Null; self.per_class[class.index()].len()].into_boxed_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::DType;

    #[test]
    fn layouts_cover_direct_attrs_only() {
        let mut b = SchemaBuilder::new();
        b.e_class("Person");
        b.e_class("Teacher");
        b.d_class("SS", DType::Str);
        b.d_class("Degree", DType::Str);
        b.attr("Person", "SS");
        b.attr("Teacher", "Degree");
        b.generalize("Person", "Teacher");
        let s = b.build().unwrap();
        let layouts = AttrLayouts::new(&s);

        let person = s.class_by_name("Person").unwrap();
        let teacher = s.class_by_name("Teacher").unwrap();
        assert_eq!(layouts.attrs_of(person).len(), 1);
        assert_eq!(layouts.attrs_of(teacher).len(), 1); // Degree only: SS is inherited
        let ss = s.own_attr_by_name(person, "SS").unwrap();
        assert_eq!(layouts.slot(person, ss), Some(0));
        assert_eq!(layouts.slot(teacher, ss), None);
        assert_eq!(layouts.empty_record(teacher).len(), 1);
    }
}
