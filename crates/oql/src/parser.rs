//! Recursive-descent parser for OQL query blocks.
//!
//! Grammar (paper §3.2, §5; `^*`/`^N` replaces the superscript iteration
//! sign):
//!
//! ```text
//! query    := 'context' expr [where] [select] ops
//! expr     := seq [ '^' ('*' | INT) ]
//! seq      := item (('*' | '!') item)*
//! item     := classref [ '[' pred ']' ]  |  '{' seq '}'
//! classref := IDENT [ ':' IDENT ]
//! pred     := orp ; orp := andp ('or' andp)* ; andp := unit ('and' unit)*
//! unit     := 'not' unit | '(' pred ')' | IDENT cmp literal
//! where    := 'where' cond ('and' cond)*
//! cond     := AGG '(' classref ['.' IDENT] ['by' classref] ')' cmp literal
//!           | classref '.' IDENT cmp (classref '.' IDENT | literal)
//! select   := 'select' sitem (',' sitem)*
//! sitem    := classref '[' IDENT (',' IDENT)* ']' | classref | IDENT
//! ops      := IDENT*            -- 'display', 'print', or registered names
//! ```
//!
//! Note: in `select name, section# display`, the missing comma before
//! `display` ends the Select subclause; the trailing identifiers form the
//! Operation clause.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};
use dood_core::diag::Span;

/// Parser state over a token stream.
///
/// Alongside the AST the parser records *span side-tables*: the source span
/// of every context class occurrence (in textual order, matching the
/// flatten order used by resolution) and of every WHERE condition. The
/// static analyzer uses these to anchor diagnostics without weighing the
/// AST down with positions.
pub struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    src: String,
    occ_spans: Vec<Span>,
    where_spans: Vec<Span>,
}

impl Parser {
    /// Create a parser for a source string.
    pub fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: lex(src).map_err(|e| e.located(src))?,
            pos: 0,
            src: src.to_string(),
            occ_spans: Vec::new(),
            where_spans: Vec::new(),
        })
    }

    /// The current token.
    pub fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    /// Current source offset (for error reporting).
    pub fn at(&self) -> usize {
        self.toks[self.pos].at
    }

    /// End offset of the most recently consumed token.
    pub fn prev_end(&self) -> usize {
        self.toks[self.pos.saturating_sub(1)].end
    }

    /// The span from `start` (a prior [`Parser::at`] mark) to the end of
    /// the last consumed token.
    pub fn span_since(&self, start: usize) -> Span {
        Span::new(start, self.prev_end().max(start))
    }

    /// The source text being parsed.
    pub fn src(&self) -> &str {
        &self.src
    }

    /// Fill line/column on an error using this parser's source.
    pub fn locate(&self, e: ParseError) -> ParseError {
        e.located(&self.src)
    }

    /// Spans of context class occurrences recorded so far, in textual
    /// (flatten) order.
    pub fn occurrence_spans(&self) -> &[Span] {
        &self.occ_spans
    }

    /// Spans of WHERE conditions recorded so far, in textual order.
    pub fn where_spans(&self) -> &[Span] {
        &self.where_spans
    }

    /// Advance and return the consumed token.
    pub fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// Consume the expected token or error.
    pub fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(self.at(), format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    /// Consume an identifier.
    pub fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(ParseError::new(self.at(), format!("expected identifier, found `{other}`"))),
        }
    }

    /// Whether all input was consumed.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    // --------------------------------------------------------------
    // Entry points
    // --------------------------------------------------------------

    /// Parse a complete query block.
    pub fn parse_query(src: &str) -> Result<Query, ParseError> {
        let mut p = Parser::new(src)?;
        let q = p.query().map_err(|e| p.locate(e))?;
        if !p.at_eof() {
            return Err(p.locate(ParseError::new(p.at(), format!("unexpected `{}`", p.peek()))));
        }
        Ok(q)
    }

    /// Parse just a context expression (used by the rule parser).
    pub fn parse_context_expr(src: &str) -> Result<ContextExpr, ParseError> {
        let mut p = Parser::new(src)?;
        let e = p.context_expr().map_err(|e| p.locate(e))?;
        if !p.at_eof() {
            return Err(p.locate(ParseError::new(p.at(), format!("unexpected `{}`", p.peek()))));
        }
        Ok(e)
    }

    /// Parse the body of a query after `context` has been consumed
    /// (shared with the rule parser, whose IF clause is a context clause).
    pub fn query(&mut self) -> Result<Query, ParseError> {
        self.expect(&Token::Context)?;
        let context = self.context_expr()?;
        let where_ = if matches!(self.peek(), Token::Where) {
            self.bump();
            self.where_conds()?
        } else {
            Vec::new()
        };
        let select = if matches!(self.peek(), Token::Select) {
            self.bump();
            self.select_items()?
        } else {
            Vec::new()
        };
        let mut ops = Vec::new();
        while let Token::Ident(_) = self.peek() {
            ops.push(self.ident()?);
        }
        Ok(Query { context, where_, select, ops })
    }

    // --------------------------------------------------------------
    // Context expressions
    // --------------------------------------------------------------

    /// Parse `seq [^closure]`.
    pub fn context_expr(&mut self) -> Result<ContextExpr, ParseError> {
        let seq = self.seq()?;
        let closure = if matches!(self.peek(), Token::Caret) {
            self.bump();
            match self.bump() {
                Token::Star => Some(ClosureSpec { iterations: None }),
                Token::Int(n) if n > 0 => Some(ClosureSpec { iterations: Some(n as u32) }),
                other => {
                    return Err(ParseError::new(
                        self.at(),
                        format!("expected `*` or a positive iteration count after `^`, found `{other}`"),
                    ))
                }
            }
        } else {
            None
        };
        Ok(ContextExpr { seq, closure })
    }

    fn seq(&mut self) -> Result<Seq, ParseError> {
        let first = Box::new(self.item()?);
        let mut rest = Vec::new();
        loop {
            let op = match self.peek() {
                Token::Star => {
                    // `^*` is handled by context_expr; a `*` directly before
                    // EOF/clause keywords would be a syntax error caught by
                    // item().
                    PatOp::Assoc
                }
                Token::Bang => PatOp::NonAssoc,
                _ => break,
            };
            self.bump();
            rest.push((op, self.item()?));
        }
        Ok(Seq { first, rest })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        match self.peek().clone() {
            Token::LBrace => {
                self.bump();
                let inner = self.seq()?;
                self.expect(&Token::RBrace)?;
                Ok(Item::Group(inner))
            }
            Token::Ident(_) => {
                let start = self.at();
                let class = self.classref()?;
                let cond = if matches!(self.peek(), Token::LBracket) {
                    self.bump();
                    let p = self.pred()?;
                    self.expect(&Token::RBracket)?;
                    Some(p)
                } else {
                    None
                };
                self.occ_spans.push(self.span_since(start));
                Ok(Item::Class { class, cond })
            }
            other => Err(ParseError::new(
                self.at(),
                format!("expected a class name or `{{`, found `{other}`"),
            )),
        }
    }

    /// Parse a possibly-qualified class reference.
    pub fn classref(&mut self) -> Result<ClassRef, ParseError> {
        let first = self.ident()?;
        if matches!(self.peek(), Token::Colon) {
            self.bump();
            let name = self.ident()?;
            Ok(ClassRef { subdb: Some(first), name })
        } else {
            Ok(ClassRef { subdb: None, name: first })
        }
    }

    // --------------------------------------------------------------
    // Predicates
    // --------------------------------------------------------------

    fn pred(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.pred_and()?;
        while matches!(self.peek(), Token::Or) {
            self.bump();
            let right = self.pred_and()?;
            left = Pred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.pred_unit()?;
        while matches!(self.peek(), Token::And) {
            self.bump();
            let right = self.pred_unit()?;
            left = Pred::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_unit(&mut self) -> Result<Pred, ParseError> {
        match self.peek().clone() {
            Token::Not => {
                self.bump();
                Ok(Pred::Not(Box::new(self.pred_unit()?)))
            }
            Token::LParen => {
                self.bump();
                let p = self.pred()?;
                self.expect(&Token::RParen)?;
                Ok(p)
            }
            Token::Ident(_) => {
                let attr = self.ident()?;
                let op = self.cmp_op()?;
                let value = self.literal()?;
                Ok(Pred::Cmp { attr, op, value })
            }
            other => Err(ParseError::new(
                self.at(),
                format!("expected a predicate, found `{other}`"),
            )),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Token::Eq => CmpOp::Eq,
            Token::Neq => CmpOp::Neq,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            other => {
                return Err(ParseError::new(
                    self.at(),
                    format!("expected a comparison operator, found `{other}`"),
                ))
            }
        };
        self.bump();
        Ok(op)
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        let negate = if matches!(self.peek(), Token::Minus) {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Token::Int(i) => Ok(Literal::Int(if negate { -i } else { i })),
            Token::Real(r) => Ok(Literal::Real(if negate { -r } else { r })),
            Token::Str(s) if !negate => Ok(Literal::Str(s)),
            other => Err(ParseError::new(self.at(), format!("expected a literal, found `{other}`"))),
        }
    }

    // --------------------------------------------------------------
    // WHERE subclause
    // --------------------------------------------------------------

    /// Parse `cond (and cond)*` of a WHERE subclause.
    pub fn where_conds(&mut self) -> Result<Vec<WhereCond>, ParseError> {
        let start = self.at();
        let mut out = vec![self.where_cond()?];
        self.where_spans.push(self.span_since(start));
        while matches!(self.peek(), Token::And) {
            self.bump();
            let start = self.at();
            out.push(self.where_cond()?);
            self.where_spans.push(self.span_since(start));
        }
        Ok(out)
    }

    fn where_cond(&mut self) -> Result<WhereCond, ParseError> {
        // Aggregation: IDENT '(' … — distinguished by the '('.
        if let (Token::Ident(name), Token::LParen) = (self.peek().clone(), self.peek2().clone()) {
            if let Some(func) = AggFunc::from_name(&name) {
                self.bump(); // func name
                self.bump(); // (
                let target = self.classref()?;
                let attr = if matches!(self.peek(), Token::Dot) {
                    self.bump();
                    Some(self.ident()?)
                } else {
                    None
                };
                let by = if matches!(self.peek(), Token::By) {
                    self.bump();
                    Some(self.classref()?)
                } else {
                    None
                };
                self.expect(&Token::RParen)?;
                let op = self.cmp_op()?;
                let value = self.literal()?;
                if func != AggFunc::Count && attr.is_none() {
                    return Err(ParseError::new(
                        self.at(),
                        "SUM/AVG/MIN/MAX require an attribute (Class.attr)",
                    ));
                }
                return Ok(WhereCond::Agg { func, target, attr, by, op, value });
            }
        }
        // Inter-class or attribute/literal comparison: classref '.' attr …
        let class = self.classref()?;
        self.expect(&Token::Dot)?;
        let attr = self.ident()?;
        let op = self.cmp_op()?;
        let right = match self.peek().clone() {
            Token::Int(_) | Token::Real(_) | Token::Str(_) | Token::Minus => {
                CmpRhs::Lit(self.literal()?)
            }
            Token::Ident(_) => {
                let rc = self.classref()?;
                self.expect(&Token::Dot)?;
                let ra = self.ident()?;
                CmpRhs::Attr(rc, ra)
            }
            other => {
                return Err(ParseError::new(
                    self.at(),
                    format!("expected a literal or Class.attr, found `{other}`"),
                ))
            }
        };
        Ok(WhereCond::Cmp { left: (class, attr), op, right })
    }

    // --------------------------------------------------------------
    // SELECT subclause
    // --------------------------------------------------------------

    fn select_items(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut out = vec![self.select_item()?];
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            out.push(self.select_item()?);
        }
        Ok(out)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        let first = self.classref()?;
        if matches!(self.peek(), Token::LBracket) {
            self.bump();
            let mut attrs = vec![self.ident()?];
            while matches!(self.peek(), Token::Comma) {
                self.bump();
                attrs.push(self.ident()?);
            }
            self.expect(&Token::RBracket)?;
            Ok(SelectItem::ClassAttrs(first, attrs))
        } else if first.subdb.is_some() {
            Ok(SelectItem::Class(first))
        } else {
            // A bare identifier: attribute or class, resolved later. We
            // default to Attr; resolution promotes to Class when the name
            // names a slot.
            Ok(SelectItem::Attr(first.name))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_3_1() {
        // Paper Query 3.1.
        let q = Parser::parse_query("context Teacher * Section select name, section# display")
            .unwrap();
        assert_eq!(q.context.seq.class_count(), 2);
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.ops, vec!["display"]);
        assert!(q.where_.is_empty());
    }

    #[test]
    fn query_3_2_intra_conditions() {
        // Paper Query 3.2.
        let q = Parser::parse_query(
            "context Department * Course [c# >= 6000 and c# < 7000] * Section \
             select name, title, textbook print",
        )
        .unwrap();
        assert_eq!(q.context.seq.class_count(), 3);
        let (_, item) = &q.context.seq.rest[0];
        match item {
            Item::Class { class, cond } => {
                assert_eq!(class.name, "Course");
                assert!(matches!(cond, Some(Pred::And(_, _))));
            }
            _ => panic!("expected class item"),
        }
        assert_eq!(q.ops, vec!["print"]);
    }

    #[test]
    fn rule_r2_where_aggregate() {
        let q = Parser::parse_query(
            "context Department [name = 'CIS'] * Course * Section * Student \
             where count(Student by Course) > 39",
        )
        .unwrap();
        match &q.where_[0] {
            WhereCond::Agg { func, target, by, op, value, attr } => {
                assert_eq!(*func, AggFunc::Count);
                assert_eq!(target.name, "Student");
                assert_eq!(by.as_ref().unwrap().name, "Course");
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(*value, Literal::Int(39));
                assert!(attr.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn qualified_classes_and_select_brackets() {
        // Paper Query 4.1 (reformulated textual syntax).
        let q = Parser::parse_query(
            "context Faculty * Advising * May_teach:TA [GPA < 3.5] \
             select TA[name], Faculty[name] display",
        )
        .unwrap();
        match &q.select[0] {
            SelectItem::ClassAttrs(c, attrs) => {
                assert_eq!(c.name, "TA");
                assert_eq!(attrs, &vec!["name".to_string()]);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let last = &q.context.seq.rest[1].1;
        match last {
            Item::Class { class, .. } => {
                assert_eq!(class.subdb.as_deref(), Some("May_teach"));
                assert_eq!(class.name, "TA");
            }
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn braces_query_5_1() {
        let q = Parser::parse_query(
            "context {{Grad} * Advising} * Faculty select Grad[SS], Faculty[name] display",
        )
        .unwrap();
        match &*q.context.seq.first {
            Item::Group(outer) => match &*outer.first {
                Item::Group(inner) => assert_eq!(inner.class_count(), 1),
                _ => panic!("expected nested group"),
            },
            _ => panic!("expected group"),
        }
    }

    #[test]
    fn closure_markers() {
        let e = Parser::parse_context_expr("Grad * TA * Teacher * Section * Student ^*").unwrap();
        assert_eq!(e.closure, Some(ClosureSpec { iterations: None }));
        let e2 = Parser::parse_context_expr("A * B * C ^3").unwrap();
        assert_eq!(e2.closure, Some(ClosureSpec { iterations: Some(3) }));
        assert!(Parser::parse_context_expr("A * B ^0").is_err());
    }

    #[test]
    fn non_association_operator() {
        let e = Parser::parse_context_expr("Teacher ! Section").unwrap();
        assert_eq!(e.seq.rest[0].0, PatOp::NonAssoc);
    }

    #[test]
    fn inter_class_comparison() {
        let q = Parser::parse_query(
            "context A * B where A.x = B.y and A.z > 3",
        )
        .unwrap();
        assert_eq!(q.where_.len(), 2);
        assert!(matches!(&q.where_[0], WhereCond::Cmp { right: CmpRhs::Attr(_, _), .. }));
        assert!(matches!(&q.where_[1], WhereCond::Cmp { right: CmpRhs::Lit(_), .. }));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(Parser::parse_query("context A * B }").is_err());
        assert!(Parser::parse_query("A * B").is_err()); // missing 'context'
        assert!(Parser::parse_context_expr("A * ").is_err());
        assert!(Parser::parse_context_expr("{A * B").is_err());
    }

    #[test]
    fn select_stops_without_comma() {
        let q = Parser::parse_query("context A * B select x display count").unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.ops, vec!["display", "count"]);
    }

    #[test]
    fn pred_precedence_or_over_and() {
        let q = Parser::parse_query("context A [x = 1 or y = 2 and z = 3]").unwrap();
        match &*q.context.seq.first {
            Item::Class { cond: Some(Pred::Or(_, rhs)), .. } => {
                assert!(matches!(**rhs, Pred::And(_, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn not_and_parens() {
        let q = Parser::parse_query("context A [not (x = 1)]").unwrap();
        match &*q.context.seq.first {
            Item::Class { cond: Some(Pred::Not(_)), .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
