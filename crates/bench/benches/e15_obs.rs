//! E15 — observability overhead: the disabled-path cost of the `core::obs`
//! instrumentation (DESIGN.md §8).
//!
//! Measures the per-site gate check, then the E12 association workload
//! (~100k objects, 1 thread) three ways: gates off, under span capture,
//! and with the metrics registry enabled. Afterwards compares the
//! gates-off median against the `BENCH_SEED.json` pre-instrumentation
//! baseline (`e12_parallel` `assoc/1t`): the acceptance bar is < 2%
//! regression. Prints `PASS`/`WARN`; exits nonzero on a miss only under
//! `DOOD_BENCH_STRICT=1` (shared hosts are noisy, so the hard gate is
//! opt-in for `scripts/bench_snapshot.sh`).

use dood_bench::harness::{fmt_ns, Harness, Record};
use dood_bench::{assoc_query, parallel_fixture, with_threads};
use dood_core::obs;
use std::path::PathBuf;

/// Allowed disabled-path regression vs the seed baseline (fraction).
const OVERHEAD_BUDGET: f64 = 0.02;

fn main() {
    let mut h = Harness::new("e15_obs");

    // The per-site cost when everything is off: one relaxed-atomic load.
    h.bench("gate/trace_enabled", || obs::trace_enabled());
    h.bench("gate/metrics_enabled", || obs::metrics_enabled());
    h.bench("gate/span_disabled", || obs::trace::span("e15.site"));

    let (db, reg) = parallel_fixture();
    eprintln!(
        "e15 workload: {} objects, {} association patterns",
        db.object_count(),
        assoc_query(&db, &reg)
    );

    with_threads(1, || {
        h.bench("assoc/off", || assoc_query(&db, &reg));
        h.bench("assoc/traced", || {
            let (rows, spans) = obs::trace::capture(|| assoc_query(&db, &reg));
            rows + spans.len()
        });
        obs::set_metrics_enabled(true);
        h.bench("assoc/metrics", || assoc_query(&db, &reg));
        obs::set_metrics_enabled(false);
        obs::metrics::reset_all();
    });

    h.finish();
    compare_with_seed();
}

/// Read back this run's records and the committed seed snapshot, then
/// check the disabled-path overhead budget.
fn compare_with_seed() {
    if std::env::var("DOOD_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        println!("# e15 overhead check skipped (smoke mode: timings are not meaningful)");
        return;
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_default();
    let own_path = match std::env::var_os("DOOD_BENCH_JSON") {
        Some(dir) => PathBuf::from(dir).join("BENCH_e15_obs.json"),
        None => workspace.join("target/bench-json/BENCH_e15_obs.json"),
    };
    let Some(own) = median_of(&own_path, "e15_obs", "assoc/off") else {
        println!("# e15 overhead check skipped (no assoc/off record in {})", own_path.display());
        return;
    };
    let seed_path = workspace.join("BENCH_SEED.json");
    let Some(baseline) = median_of(&seed_path, "e12_parallel", "assoc/1t") else {
        println!("# e15 overhead check skipped (no e12 assoc/1t baseline in {})", seed_path.display());
        return;
    };
    let delta = own / baseline - 1.0;
    let verdict = if delta < OVERHEAD_BUDGET { "PASS" } else { "WARN" };
    println!(
        "# e15 disabled-path overhead: {verdict} — assoc/off {} vs seed assoc/1t {} ({:+.2}%, budget {:.0}%)",
        fmt_ns(own),
        fmt_ns(baseline),
        delta * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    if verdict == "WARN" && std::env::var("DOOD_BENCH_STRICT").is_ok_and(|v| v == "1") {
        eprintln!("# e15: over budget under DOOD_BENCH_STRICT=1");
        std::process::exit(1);
    }
}

/// The first `group`/`bench` record's median in a JSON-lines bench file.
fn median_of(path: &PathBuf, group: &str, bench: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .filter_map(Record::from_json_line)
        .find(|r| r.group == group && r.bench == bench)
        .map(|r| r.median_ns)
}
