//! E5 — inheritance-path resolution and perspective climbing across
//! generalization depths.

use dood_bench::harness::Harness;
use dood_bench::{inherit_fixture, inherit_query};

fn main() {
    let mut h = Harness::new("e5_inherit");
    for depth in [2usize, 8, 16, 32] {
        let db = inherit_fixture(depth, 500);
        h.bench(&format!("{depth}"), || inherit_query(&db, depth));
    }
    h.finish();
}
