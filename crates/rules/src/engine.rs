//! The deductive engine: rule registration, backward and forward chaining,
//! and the **result-oriented control strategy** of paper §6.
//!
//! Two control modes are implemented:
//!
//! * [`ControlMode::ResultOriented`] (the paper's contribution): each
//!   *derived subdatabase* is declared pre-evaluated (materialized and
//!   forward-maintained on every update) or post-evaluated (computed on
//!   demand when a query needs it). "The same rule may follow the forward
//!   or backward chaining strategy depending on whether the derived
//!   subdatabase is to be pre- or post-evaluated."
//! * [`ControlMode::RuleOriented`] (the POSTGRES strategy the paper
//!   critiques): each *rule* is fixed forward or backward. A forward rule
//!   reading backward-derived data silently consumes a stale or missing
//!   copy, so downstream pre-computed results can become inconsistent with
//!   the base data — reproduced by the `Ra…Rd` scenario tests.

use crate::ast::Rule;
use crate::depgraph::DepGraph;
use crate::derive::{apply_rule, layouts_compatible};
use crate::error::RuleError;
use crate::maintain::{
    delta_apply, dirty_closure, plan_for, seed_cache, DeltaOutcome, MaintainPlan, RuleCache,
};
use crate::parser::parse_rule;
use crate::program::Program;
use dood_core::diag::Diagnostic;
use dood_core::fxhash::{FxHashMap, FxHashSet};
use dood_core::ids::{ClassId, Oid};
use dood_core::obs;
use dood_core::obs::profile::Profile;
use dood_core::pool::ChunkPool;
use dood_core::subdb::{Subdatabase, SubdbRegistry};
use dood_oql::ast::{ClassRef, Item, Query, SelectItem, Seq, WhereCond};
use dood_oql::{Oql, QueryOutput};
use dood_store::{Database, SubscriberId};

/// Per-result evaluation policy (result-oriented control, paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPolicy {
    /// Materialized and kept up to date by forward chaining.
    PreEvaluated,
    /// Computed on demand by backward chaining; invalidated by updates.
    PostEvaluated,
}

/// Per-rule chaining strategy (rule-oriented control, POSTGRES-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStrategy {
    /// Re-run when read data changes; result materialized.
    Forward,
    /// Run when the derived data is requested; result not preserved.
    Backward,
}

/// Which control strategy governs chaining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// The paper's result-oriented strategy.
    ResultOriented,
    /// The POSTGRES rule-oriented strategy (for comparison).
    RuleOriented,
}

/// One subdatabase's maintenance state, pulled out of the engine for a
/// stratum's parallel fan-out: its rules' delta caches plus its registered
/// copy (with the epoch it was derived at). The worker mutates all of it
/// in place; the commit loop drains it back.
struct MaintainState {
    caches: FxHashMap<String, RuleCache>,
    entry: Option<(Subdatabase, u64)>,
}

/// What maintaining one subdatabase produced, for the commit loop.
enum Maintained {
    /// Content unchanged: re-register with the old `derived_at` so
    /// downstream freshness checks keep passing without invalidation.
    Unchanged { sd: Subdatabase, derived_at: u64 },
    /// Content changed: commit at the current epoch. `diff` holds the
    /// delta's component oids when known; `None` means no before-image
    /// existed and readers must re-seed.
    Changed { sd: Subdatabase, diff: Option<Vec<Oid>> },
}

/// The deductive object-oriented database engine: an object store, a rule
/// set, the registry of derived subdatabases, and OQL.
pub struct RuleEngine {
    db: Database,
    oql: Oql,
    rules: Vec<Rule>,
    graph: DepGraph,
    registry: SubdbRegistry,
    policies: FxHashMap<String, EvalPolicy>,
    strategies: FxHashMap<String, ChainStrategy>,
    mode: ControlMode,
    /// Event-log watermark up to which forward chaining has run.
    watermark: u64,
    /// Per rule: the base classes its IF clause reads (hierarchy-closed).
    base_reads: Vec<FxHashSet<ClassId>>,
    /// Use semi-naive delta maintenance where sound (the default; see
    /// DESIGN.md §9). Disabled = the full-recompute ablation baseline.
    incremental: bool,
    /// Per-rule maintenance caches (context, WHERE verdicts, derivation
    /// counts, target) keyed by rule name.
    caches: FxHashMap<String, RuleCache>,
    /// Treat analyzer warnings as fatal in [`RuleEngine::register`].
    strict: bool,
    /// Dirty objects of the update batch being propagated, when any. Grows
    /// as maintained subdatabases commit content diffs.
    current_dirty: Option<std::collections::BTreeSet<Oid>>,
    /// Event-log watermark the current dirty set starts from: a rule cache
    /// at `at_seq >= dirty_from` can be delta-advanced by `current_dirty`.
    dirty_from: u64,
    /// Subdatabases (re)materialized this propagate without a before-image;
    /// readers cannot trust their content delta and re-seed in full.
    unknown: FxHashSet<String>,
    /// Forward targets skipped by the last effective propagate because a
    /// backward-derived source was absent (rule-oriented mode) — these are
    /// now silently stale, per the paper's POSTGRES critique.
    stale_skips: Vec<String>,
    /// The engine's subscription in the store's event log: acknowledged up
    /// to the forward-chaining watermark, so log compaction never drops an
    /// unconsumed event and `doodprof --metrics` can report engine lag.
    events_sub: SubscriberId,
}

impl RuleEngine {
    /// Wrap a database with an empty rule set (result-oriented mode;
    /// results default to post-evaluated).
    pub fn new(mut db: Database) -> Self {
        // Events logged before the engine exists (population) are base
        // facts, not updates to propagate.
        let watermark = db.seq();
        let events_sub = db.events_mut().subscribe("rules.engine");
        RuleEngine {
            db,
            oql: Oql::new(),
            rules: Vec::new(),
            graph: DepGraph::default(),
            registry: SubdbRegistry::new(),
            policies: FxHashMap::default(),
            strategies: FxHashMap::default(),
            mode: ControlMode::ResultOriented,
            watermark,
            base_reads: Vec::new(),
            incremental: true,
            caches: FxHashMap::default(),
            current_dirty: None,
            dirty_from: watermark,
            unknown: FxHashSet::default(),
            stale_skips: Vec::new(),
            strict: false,
            events_sub,
        }
    }

    /// Enable/disable semi-naive incremental forward maintenance.
    /// Incremental mode (the default) caches each rule's IF-context, WHERE
    /// verdicts and derivation counts and, on update, re-derives only the
    /// patterns containing touched objects; closure rules carry the
    /// fixpoint's successor-relation provenance and re-derive only the
    /// chains of affected roots (DESIGN.md §11). Disabling gives the
    /// full-recompute ablation baseline (E11/E16).
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
        if !on {
            self.caches.clear();
        }
    }

    /// Forward targets the last effective propagate left silently stale
    /// because a backward-derived source was absent (rule-oriented mode
    /// only — the inconsistency the paper's §6 critique predicts).
    pub fn stale_skips(&self) -> &[String] {
        &self.stale_skips
    }

    /// Static strategy diagnostics for the registered rules under the
    /// current rule-oriented strategy assignment — currently W105: a
    /// forward rule reading a backward-derived source.
    pub fn strategy_diagnostics(&self) -> Vec<Diagnostic> {
        crate::analyze::lint_forward_reads_backward(&self.rules, &self.strategies)
    }

    /// Read access to the store.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the store. After mutating, call
    /// [`RuleEngine::propagate`] to run forward chaining.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The derived-subdatabase registry.
    pub fn registry(&self) -> &SubdbRegistry {
        &self.registry
    }

    /// The OQL engine (to register user-defined operations).
    pub fn oql_mut(&mut self) -> &mut Oql {
        &mut self.oql
    }

    /// The registered rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Switch control mode.
    pub fn set_mode(&mut self, mode: ControlMode) {
        self.mode = mode;
    }

    /// Declare a derived subdatabase pre- or post-evaluated
    /// (result-oriented mode). Default: post-evaluated.
    pub fn set_policy(&mut self, subdb: impl Into<String>, policy: EvalPolicy) {
        self.policies.insert(subdb.into(), policy);
    }

    /// Fix a rule's chaining strategy (rule-oriented mode). Default:
    /// backward.
    pub fn set_strategy(&mut self, rule: impl Into<String>, strategy: ChainStrategy) {
        self.strategies.insert(rule.into(), strategy);
    }

    fn policy(&self, subdb: &str) -> EvalPolicy {
        self.policies.get(subdb).copied().unwrap_or(EvalPolicy::PostEvaluated)
    }

    /// The chaining strategy governing a subdatabase in rule-oriented mode:
    /// the strategy of its (first) deriving rule.
    fn subdb_strategy(&self, subdb: &str) -> ChainStrategy {
        self.graph
            .rules_for(subdb)
            .first()
            .map(|&i| {
                self.strategies
                    .get(&self.rules[i].name)
                    .copied()
                    .unwrap_or(ChainStrategy::Backward)
            })
            .unwrap_or(ChainStrategy::Backward)
    }

    /// Register a rule from source text. This is the *unchecked* path: the
    /// rule is parsed and the dependency graph kept acyclic, but no static
    /// analysis runs (resolution errors surface at derivation time). Use
    /// [`RuleEngine::register`] for the analyzed path.
    pub fn add_rule(&mut self, name: &str, src: &str) -> Result<(), RuleError> {
        let rule = parse_rule(name, src)?;
        self.add_parsed_rule(rule)
    }

    fn add_parsed_rule(&mut self, rule: Rule) -> Result<(), RuleError> {
        if self.rules.iter().any(|r| r.name == rule.name) {
            return Err(RuleError::DuplicateRule(rule.name));
        }
        let reads = self.rule_base_reads(&rule);
        self.rules.push(rule);
        self.base_reads.push(reads);
        self.graph = DepGraph::build(&self.rules);
        // Reject cyclic rule sets eagerly.
        self.graph.topo_order()?;
        Ok(())
    }

    /// Treat analyzer warnings as fatal in [`RuleEngine::register`].
    pub fn set_strict(&mut self, on: bool) {
        self.strict = on;
    }

    /// Register a whole rule program through the static analyzer
    /// ([`crate::analyze`]). Subdatabases already known to the engine —
    /// registered externally or derived by previously added rules — are
    /// legal sources for the program's rules.
    ///
    /// On success every rule of the program is added and the (non-fatal)
    /// diagnostics are returned. If the analyzer reports any error — or any
    /// warning under [`RuleEngine::set_strict`] — the program is rejected
    /// *before any rule is added*, so no derivation can ever run over an
    /// ill-typed, unsafe, or unstratifiable program.
    pub fn register(&mut self, program: &Program) -> Result<Vec<Diagnostic>, RuleError> {
        let mut external: FxHashSet<String> =
            self.registry.names().into_iter().map(str::to_string).collect();
        for r in &self.rules {
            external.insert(r.target_subdb.clone());
        }
        let mut diags = crate::analyze::analyze(program, self.db.schema(), &external);
        for pr in &program.rules {
            if self.rules.iter().any(|r| r.name == pr.rule.name) {
                diags.push(
                    Diagnostic::error(
                        "E016",
                        format!("rule `{}` is already registered", pr.rule.name),
                    )
                    .with_span(pr.header, &program.source)
                    .with_owner(pr.rule.name.clone()),
                );
            }
        }
        dood_core::diag::sort(&mut diags);
        if dood_core::diag::has_errors(&diags) || (self.strict && !diags.is_empty()) {
            return Err(RuleError::Analysis(diags));
        }
        for pr in &program.rules {
            self.add_parsed_rule(pr.rule.clone())?;
        }
        // Static planner priors: abstract-interpretation selectivity and
        // fan-out estimates, consulted by the cost model only until real
        // observations warm the corresponding stats keys.
        crate::absint::install_priors(program, self.db.schema());
        Ok(diags)
    }

    /// Base classes a rule's IF clause reads, closed over the
    /// generalization hierarchy (an update to any perspective of an object
    /// can affect patterns observed through another perspective).
    fn rule_base_reads(&self, rule: &Rule) -> FxHashSet<ClassId> {
        let mut out = FxHashSet::default();
        fn walk(seq: &Seq, schema: &dood_core::schema::Schema, out: &mut FxHashSet<ClassId>) {
            let item = |i: &Item, out: &mut FxHashSet<ClassId>| match i {
                Item::Class { class, .. } if class.subdb.is_none() => {
                    let name = &class.name;
                    let id = schema.try_class_by_name(name).or_else(|| {
                        let (family, lvl) = ClassRef::split_alias(name);
                        (lvl > 0).then(|| schema.try_class_by_name(family)).flatten()
                    });
                    if let Some(id) = id {
                        out.insert(id);
                    }
                }
                Item::Class { .. } => {}
                Item::Group(g) => walk(g, schema, out),
            };
            item(&seq.first, out);
            for (_, i) in &seq.rest {
                item(i, out);
            }
        }
        walk(&rule.context.seq, self.db.schema(), &mut out);
        // Hierarchy closure: ancestors and descendants.
        let mut closed = out.clone();
        for &c in &out {
            for (anc, _) in self.db.schema().ancestors(c) {
                closed.insert(anc);
            }
            // Descendants via BFS.
            let mut frontier = vec![c];
            while let Some(cur) = frontier.pop() {
                for &sub in self.db.schema().direct_subs(cur) {
                    if closed.insert(sub) {
                        frontier.push(sub);
                    }
                }
            }
        }
        closed
    }

    // ------------------------------------------------------------------
    // Backward chaining
    // ------------------------------------------------------------------

    /// Whether a derived subdatabase must be (re)computed before use.
    fn needs_derivation(&self, name: &str) -> bool {
        match self.mode {
            ControlMode::ResultOriented => match self.policy(name) {
                EvalPolicy::PreEvaluated => self.registry.subdb(name).is_none(),
                EvalPolicy::PostEvaluated => !self.registry.is_fresh(name, self.db.seq()),
            },
            ControlMode::RuleOriented => match self.subdb_strategy(name) {
                ChainStrategy::Forward => self.registry.subdb(name).is_none(),
                ChainStrategy::Backward => !self.registry.is_fresh(name, self.db.seq()),
            },
        }
    }

    /// Ensure `name` (and, recursively, its sources) is derived and fresh
    /// per the governing policy — the backward chaining entry point
    /// ("in order to derive May_teach, the subdatabase Suggest_offer …
    /// must be derived; this causes rule R2 … to be triggered").
    pub fn derive(&mut self, name: &str) -> Result<(), RuleError> {
        if !self.graph.is_derived(name) {
            if self.registry.subdb(name).is_some() {
                return Ok(());
            }
            return Err(RuleError::UnderivableSubdb(name.to_string()));
        }
        if !self.needs_derivation(name) {
            return Ok(());
        }
        for dep in self.graph.deps_of(name).to_vec() {
            if self.graph.is_derived(&dep) {
                self.derive(&dep)?;
            } else if self.registry.subdb(&dep).is_none() {
                return Err(RuleError::UnderivableSubdb(dep));
            }
        }
        self.run_rules_for(name)
    }

    /// Apply every rule deriving `name` (union semantics, R4/R5) against
    /// the current registry state and register the result.
    /// Commit a derived result to the registry, with delta-size accounting.
    fn commit_derived(&mut self, sd: Subdatabase) {
        if obs::metrics_enabled() {
            obs::metrics::counter("rules.rederived").inc();
            obs::metrics::histogram("rules.delta_rows").record(sd.len() as u64);
        }
        self.registry.put(sd, self.db.seq());
    }

    fn run_rules_for(&mut self, name: &str) -> Result<(), RuleError> {
        if !self.incremental {
            let sd = self.compute_rules_for(name)?;
            self.commit_derived(sd);
            return Ok(());
        }
        let idxs = self.graph.rules_for(name).to_vec();
        debug_assert!(!idxs.is_empty());
        let mut sp = obs::trace::span("rules.derive");
        sp.label(|| name.to_string());
        sp.attr("rules", idxs.len() as i64);
        let mut acc: Option<Subdatabase> = None;
        for i in idxs {
            let rule = self.rules[i].clone();
            let sd = self.apply_one(&rule)?;
            acc = Some(match acc {
                None => sd,
                Some(mut prev) => {
                    if !layouts_compatible(&prev, &sd) {
                        return Err(RuleError::TargetLayoutMismatch {
                            subdb: name.to_string(),
                            rule: rule.name.clone(),
                        });
                    }
                    prev.union_from(&sd);
                    prev
                }
            });
        }
        let sd = acc.expect("at least one rule ran");
        sp.attr("rows_out", sd.len() as i64);
        self.commit_derived(sd);
        Ok(())
    }

    /// The unioned result of every rule deriving `name` against the current
    /// store and registry state, *without* committing it. Read-only, so
    /// independent results (same depgraph stratum) can be computed on
    /// separate threads.
    fn compute_rules_for(&self, name: &str) -> Result<Subdatabase, RuleError> {
        debug_assert!(!self.graph.rules_for(name).is_empty());
        let mut sp = obs::trace::span("rules.derive");
        sp.label(|| name.to_string());
        sp.attr("rules", self.graph.rules_for(name).len() as i64);
        let mut acc: Option<Subdatabase> = None;
        for &i in self.graph.rules_for(name) {
            let sd = apply_rule(&self.rules[i], &self.db, &self.registry)?;
            acc = Some(match acc {
                None => sd,
                Some(mut prev) => {
                    if !layouts_compatible(&prev, &sd) {
                        return Err(RuleError::TargetLayoutMismatch {
                            subdb: name.to_string(),
                            rule: self.rules[i].name.clone(),
                        });
                    }
                    prev.union_from(&sd);
                    prev
                }
            });
        }
        let sd = acc.expect("at least one rule ran");
        sp.attr("rows_out", sd.len() as i64);
        Ok(sd)
    }

    /// Apply one rule, via the delta path when enabled and sound, caching
    /// the maintenance state for the next delta.
    fn apply_one(&mut self, rule: &Rule) -> Result<Subdatabase, RuleError> {
        if !self.incremental || plan_for(rule) == MaintainPlan::Recompute {
            return apply_rule(rule, &self.db, &self.registry);
        }
        let sources_known = rule.reads().iter().all(|r| !self.unknown.contains(r));
        if let (Some(cache), Some(dirty)) =
            (self.caches.get_mut(&rule.name), self.current_dirty.as_ref())
        {
            if sources_known && cache.at_seq >= self.dirty_from && !cache.needs_replan() {
                let out = delta_apply(rule, &self.db, &self.registry, cache, dirty)?;
                account_delta(&out);
                return Ok(cache.target.clone());
            }
        }
        if self.caches.get(&rule.name).is_some_and(RuleCache::needs_replan) {
            note_replan();
        }
        let cache = seed_cache(rule, &self.db, &self.registry)?;
        let target = cache.target.clone();
        self.caches.insert(rule.name.clone(), cache);
        Ok(target)
    }

    // ------------------------------------------------------------------
    // Forward chaining
    // ------------------------------------------------------------------

    /// Consume new update events and run forward chaining per the current
    /// control mode. Returns the names of re-derived subdatabases.
    pub fn propagate(&mut self) -> Result<Vec<String>, RuleError> {
        let prev_watermark = self.watermark;
        let events = self.db.events().since(self.watermark).to_vec();
        self.watermark = self.db.seq();
        self.db.events_mut().ack(self.events_sub, self.watermark);
        let mut sp = obs::trace::span("rules.propagate");
        sp.attr("events", events.len() as i64);
        if obs::metrics_enabled() {
            obs::metrics::counter("rules.propagate.runs").inc();
        }
        if events.is_empty() {
            sp.attr("rederived", 0);
            return Ok(Vec::new());
        }
        let _acct =
            obs::account::begin("maintain", || format!("propagate events={}", events.len()));
        self.stale_skips.clear();
        self.unknown.clear();
        self.dirty_from = prev_watermark;
        // Classes touched by the batch.
        let mut touched: FxHashSet<ClassId> = FxHashSet::default();
        for e in &events {
            for c in e.touched_classes(self.db.schema()) {
                touched.insert(c);
            }
        }
        // Objects touched by the batch (for delta maintenance).
        if self.incremental {
            let oids = events.iter().flat_map(|e| e.touched_oids());
            self.current_dirty = Some(dirty_closure(&self.db, oids));
        }
        // Dirty subdatabases: derived by a rule reading a touched class.
        let mut dirty: FxHashSet<String> = FxHashSet::default();
        for (i, rule) in self.rules.iter().enumerate() {
            if !self.base_reads[i].is_disjoint(&touched) {
                dirty.insert(rule.target_subdb.clone());
            }
        }
        let affected: FxHashSet<String> = {
            let mut a = self.graph.affected_by(&dirty);
            a.extend(dirty);
            a
        };
        let order = self.graph.topo_order()?;
        let mut rederived = Vec::new();
        if self.mode == ControlMode::ResultOriented && self.incremental {
            let rederived = self.propagate_incremental(&affected, &order)?;
            self.current_dirty = None;
            sp.attr("rederived", rederived.len() as i64);
            return Ok(rederived);
        }
        if self.mode == ControlMode::ResultOriented && !self.incremental {
            // Stratum-parallel forward maintenance: same-stratum results
            // are independent (deps live in strictly earlier strata), so
            // their rules run concurrently over the read-only store and
            // registry; commits happen in deterministic within-stratum
            // order, and `rederived` is reported in topological order as
            // on the sequential path.
            for (stratum_idx, stratum) in self.graph.strata()?.into_iter().enumerate() {
                let mut ssp = obs::trace::span("rules.stratum");
                ssp.attr("index", stratum_idx as i64);
                let mut batch: Vec<String> = Vec::new();
                for name in stratum {
                    if !affected.contains(&name) {
                        continue;
                    }
                    match self.policy(&name) {
                        // Forward-maintain: collected for this stratum's
                        // parallel fan-out.
                        EvalPolicy::PreEvaluated => batch.push(name),
                        EvalPolicy::PostEvaluated => {
                            // Invalidate; the next query re-derives.
                            self.registry.remove(&name);
                        }
                    }
                }
                // Sources are ensured fresh first, sequentially: deriving a
                // post-evaluated source mutates the registry (the rule runs
                // backward for it, forward for us).
                for name in &batch {
                    for dep in self.graph.deps_of(name).to_vec() {
                        if self.graph.is_derived(&dep) {
                            self.derive(&dep)?;
                        }
                    }
                }
                ssp.attr("subdbs", batch.len() as i64);
                let pool = ChunkPool::from_env();
                let results = pool.par_map(&batch, |name| self.compute_rules_for(name));
                for (name, result) in batch.into_iter().zip(results) {
                    self.commit_derived(result?);
                    rederived.push(name);
                }
            }
            let pos: FxHashMap<&str, usize> =
                order.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
            rederived.sort_unstable_by_key(|n| pos[n.as_str()]);
            self.current_dirty = None;
            sp.attr("rederived", rederived.len() as i64);
            return Ok(rederived);
        }
        // Rule-oriented (POSTGRES-style) propagation: both result-oriented
        // branches returned above.
        debug_assert_eq!(self.mode, ControlMode::RuleOriented);
        for name in order {
            if !affected.contains(&name) {
                continue;
            }
            match self.subdb_strategy(&name) {
                ChainStrategy::Forward => {
                    // POSTGRES restriction: a forward rule reads its
                    // sources *as materialized right now*. If a source is
                    // backward-derived (absent), the rule cannot run and
                    // the target stays stale — recorded in `stale_skips`
                    // and the `rules.maintain.stale_skip` metric rather
                    // than silently dropped.
                    let sources_present = self
                        .graph
                        .deps_of(&name)
                        .iter()
                        .all(|d| self.registry.subdb(d).is_some());
                    if sources_present {
                        let before = self.registry.subdb(&name).cloned();
                        self.run_rules_for(&name)?;
                        self.record_commit_delta(&name, before.as_ref());
                        rederived.push(name);
                    } else {
                        if !self.stale_skips.contains(&name) {
                            self.stale_skips.push(name.clone());
                        }
                        if obs::metrics_enabled() {
                            obs::metrics::counter("rules.maintain.stale_skip").inc();
                        }
                    }
                }
                ChainStrategy::Backward => {
                    // Backward results are not preserved across updates.
                    self.registry.remove(&name);
                }
            }
        }
        self.current_dirty = None;
        sp.attr("rederived", rederived.len() as i64);
        Ok(rederived)
    }

    /// After committing a maintained subdatabase, fold its content delta
    /// into the running dirty set (perspective-closed) so downstream rules'
    /// delta steps see source-extent changes — aggregate verdict flips can
    /// add or drop target patterns whose components were never base-dirty.
    /// Without a before-image the delta is unknowable: the name goes into
    /// `unknown` and readers re-seed in full.
    fn record_commit_delta(&mut self, name: &str, before: Option<&Subdatabase>) {
        if self.current_dirty.is_none() {
            return;
        }
        match (before, self.registry.subdb(name)) {
            (Some(b), Some(a)) => {
                let diff = b.diff_components(a);
                if !diff.is_empty() {
                    let closed = dirty_closure(&self.db, diff);
                    if let Some(d) = self.current_dirty.as_mut() {
                        d.extend(closed);
                    }
                }
            }
            _ => {
                self.unknown.insert(name.to_string());
            }
        }
    }

    /// Result-oriented incremental propagation: stratum-by-stratum
    /// semi-naive delta maintenance (DESIGN.md §9). Within a stratum,
    /// pre-evaluated members are maintained concurrently against the
    /// read-only store and registry and committed in deterministic order;
    /// every commit's content delta feeds the dirty set of later strata.
    fn propagate_incremental(
        &mut self,
        affected: &FxHashSet<String>,
        order: &[String],
    ) -> Result<Vec<String>, RuleError> {
        let mut rederived: Vec<String> = Vec::new();
        // Before-images of invalidated post-evaluated results: when a later
        // stratum backward-derives one as a source, its content delta is
        // computed against this image.
        let mut removed: FxHashMap<String, Subdatabase> = FxHashMap::default();
        let pool = ChunkPool::from_env();
        for (stratum_idx, stratum) in self.graph.strata()?.into_iter().enumerate() {
            let mut ssp = obs::trace::span("rules.stratum");
            ssp.attr("index", stratum_idx as i64);
            let mut batch: Vec<String> = Vec::new();
            for name in stratum {
                if !affected.contains(&name) {
                    continue;
                }
                match self.policy(&name) {
                    // Forward-maintain: collected for this stratum's
                    // parallel fan-out.
                    EvalPolicy::PreEvaluated => batch.push(name),
                    EvalPolicy::PostEvaluated => {
                        // Invalidate; the next query re-derives.
                        if let Some(old) = self.registry.remove(&name) {
                            removed.insert(name, old);
                        }
                    }
                }
            }
            if batch.is_empty() {
                continue;
            }
            // Ensure sources fresh, dependency-first, recording each
            // content delta *before* any reader's delta step runs.
            for dep in self.graph.transitive_deps(&batch)? {
                if !self.needs_derivation(&dep) {
                    continue;
                }
                let before = self
                    .registry
                    .subdb(&dep)
                    .cloned()
                    .or_else(|| removed.get(&dep).cloned());
                self.derive(&dep)?;
                self.record_commit_delta(&dep, before.as_ref());
            }
            ssp.attr("subdbs", batch.len() as i64);
            // Lend the dirty set to the fan-out (reinstalled below before
            // the commit loop extends it) instead of cloning per stratum.
            let dirty = self.current_dirty.take().unwrap_or_default();
            // Pull each member's maintenance state — its rules' caches and
            // its registered copy — out of the engine so every worker owns
            // its item and can mutate it in place. Same-stratum members
            // never read one another (their sources live in strictly
            // earlier strata), so removing the registry entries here is
            // invisible to the fan-out.
            let items: Vec<(String, std::sync::Mutex<MaintainState>)> = batch
                .into_iter()
                .map(|name| {
                    let mut caches = FxHashMap::default();
                    for &i in self.graph.rules_for(&name) {
                        let rn = &self.rules[i].name;
                        if let Some(c) = self.caches.remove(rn) {
                            caches.insert(rn.clone(), c);
                        }
                    }
                    let entry = self.registry.take(&name);
                    (name, std::sync::Mutex::new(MaintainState { caches, entry }))
                })
                .collect();
            let results = pool.par_map(&items, |(name, state)| {
                let mut st = state.lock().expect("maintain state lock");
                self.maintain_subdb(name, &mut st, &dirty)
            });
            self.current_dirty = Some(dirty);
            let mut first_err: Option<RuleError> = None;
            for ((name, state), result) in items.into_iter().zip(results) {
                let state = state.into_inner().expect("maintain state lock");
                for (rn, c) in state.caches {
                    self.caches.insert(rn, c);
                }
                match result {
                    Err(e) => {
                        // Restore the untouched registered copy so a rule
                        // error does not silently drop a materialized
                        // subdatabase.
                        if let Some((sd, at)) = state.entry {
                            self.registry.put(sd, at);
                        }
                        first_err.get_or_insert(e);
                    }
                    Ok(Maintained::Unchanged { sd, derived_at }) => {
                        // Content unchanged: re-register the copy with its
                        // old derived_at, sparing downstream invalidation.
                        self.registry.put(sd, derived_at);
                        if obs::metrics_enabled() {
                            obs::metrics::counter("rules.maintain.unchanged").inc();
                        }
                        rederived.push(name);
                    }
                    Ok(Maintained::Changed { sd, diff }) => {
                        self.commit_derived(sd);
                        match diff {
                            Some(d) => {
                                if !d.is_empty() {
                                    let closed = dirty_closure(&self.db, d);
                                    if let Some(cd) = self.current_dirty.as_mut() {
                                        cd.extend(closed);
                                    }
                                }
                            }
                            // Without a before-image the content delta is
                            // unknowable: readers must re-seed in full.
                            None => {
                                self.unknown.insert(name.clone());
                            }
                        }
                        rederived.push(name);
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        let pos: FxHashMap<&str, usize> =
            order.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
        rederived.sort_unstable_by_key(|n| pos[n.as_str()]);
        Ok(rederived)
    }

    /// Refresh `name`'s maintenance state — delta where the caches allow,
    /// seeding otherwise — *without* touching the engine. `&self` stays
    /// read-only, so same-stratum results run on separate threads; all
    /// mutation lands in the worker-owned `state`. Returns the refreshed
    /// registered copy plus what the commit loop needs to know.
    fn maintain_subdb(
        &self,
        name: &str,
        state: &mut MaintainState,
        dirty: &std::collections::BTreeSet<Oid>,
    ) -> Result<Maintained, RuleError> {
        let idxs = self.graph.rules_for(name);
        debug_assert!(!idxs.is_empty());
        let mut sp = obs::trace::span("rules.derive");
        sp.label(|| name.to_string());
        sp.attr("rules", idxs.len() as i64);

        // Hot path: a single delta-maintainable rule with a usable cache
        // and a registered copy. The step's exact edits are replayed onto
        // that copy in O(|edits|) — no context-sized clone, rebuild, or
        // compare anywhere on this path.
        if let &[i] = idxs {
            let rule = &self.rules[i];
            // For a single-rule subdatabase the dep-graph edge list equals
            // the rule's read set, and borrowing it avoids the per-step
            // `reads()` allocation.
            let sources_known =
                self.graph.deps_of(name).iter().all(|r| !self.unknown.contains(r));
            if plan_for(rule) != MaintainPlan::Recompute
                && sources_known
                && state.entry.is_some()
            {
                if let Some(cache) = state.caches.get_mut(&rule.name) {
                    let step_dirty = if cache.needs_replan() {
                        // Drift-flagged plan: fall through to the general
                        // path, which re-seeds (and thereby re-plans).
                        None
                    } else if cache.at_seq >= self.dirty_from {
                        Some(std::borrow::Cow::Borrowed(dirty))
                    } else if cache.at_seq >= self.db.events().dropped() {
                        // The cache predates this batch: the subdatabase sat
                        // out earlier propagates because nothing it reads
                        // changed (it is materialized, so it was never
                        // dropped while affected). Replay the event log from
                        // `at_seq` to rebuild the rule-local dirty set
                        // instead of re-seeding.
                        let replay = self
                            .db
                            .events()
                            .since(cache.at_seq)
                            .iter()
                            .flat_map(|e| e.touched_oids());
                        let mut full_dirty = dirty_closure(&self.db, replay);
                        full_dirty.extend(dirty.iter().copied());
                        Some(std::borrow::Cow::Owned(full_dirty))
                    } else {
                        None
                    };
                    if let Some(step_dirty) = step_dirty {
                        let out =
                            delta_apply(rule, &self.db, &self.registry, cache, &step_dirty)?;
                        account_delta(&out);
                        let (mut sd, derived_at) = state.entry.take().expect("checked above");
                        if sd.intension.width() != cache.target.intension.width() {
                            // A closure delta that changed the longest
                            // chain re-shaped the target intension; edit
                            // replay cannot cross that, so take the
                            // maintained copy wholesale.
                            sd = cache.target.clone();
                        } else {
                            for p in &out.removed {
                                sd.remove(p);
                            }
                            for p in &out.inserted {
                                sd.insert(p.clone());
                            }
                        }
                        debug_assert!(
                            sd.patterns().eq(cache.target.patterns()),
                            "registered copy diverged from maintained target for {name}"
                        );
                        sp.attr("rows_out", sd.len() as i64);
                        return Ok(if out.changed() {
                            let diff: Vec<Oid> = out.components().into_iter().collect();
                            Maintained::Changed { sd, diff: Some(diff) }
                        } else {
                            Maintained::Unchanged { sd, derived_at }
                        });
                    }
                }
            }
        }

        // General path: recomputing rules, multi-rule unions, and seeding.
        let mut acc: Option<Subdatabase> = None;
        for &i in idxs {
            let rule = &self.rules[i];
            let sd = if plan_for(rule) == MaintainPlan::Recompute {
                apply_rule(rule, &self.db, &self.registry)?
            } else {
                let sources_known = rule.reads().iter().all(|r| !self.unknown.contains(r));
                let stepped = match state.caches.get_mut(&rule.name) {
                    Some(c)
                        if sources_known
                            && c.at_seq >= self.dirty_from
                            && !c.needs_replan() =>
                    {
                        let out = delta_apply(rule, &self.db, &self.registry, c, dirty)?;
                        account_delta(&out);
                        true
                    }
                    Some(c)
                        if sources_known
                            && state.entry.is_some()
                            && c.at_seq >= self.db.events().dropped()
                            && !c.needs_replan() =>
                    {
                        // Same sat-out replay as the hot path, for a rule
                        // inside a multi-rule union.
                        let replay = self
                            .db
                            .events()
                            .since(c.at_seq)
                            .iter()
                            .flat_map(|e| e.touched_oids());
                        let mut full_dirty = dirty_closure(&self.db, replay);
                        full_dirty.extend(dirty.iter().copied());
                        let out = delta_apply(rule, &self.db, &self.registry, c, &full_dirty)?;
                        account_delta(&out);
                        true
                    }
                    _ => false,
                };
                if !stepped {
                    if state.caches.get(&rule.name).is_some_and(RuleCache::needs_replan) {
                        note_replan();
                    }
                    let cache = seed_cache(rule, &self.db, &self.registry)?;
                    state.caches.insert(rule.name.clone(), cache);
                }
                state.caches.get(&rule.name).expect("just stepped or seeded").target.clone()
            };
            acc = Some(match acc {
                None => sd,
                Some(mut prev) => {
                    if !layouts_compatible(&prev, &sd) {
                        return Err(RuleError::TargetLayoutMismatch {
                            subdb: name.to_string(),
                            rule: self.rules[i].name.clone(),
                        });
                    }
                    prev.union_from(&sd);
                    prev
                }
            });
        }
        let sd = acc.expect("at least one rule ran");
        sp.attr("rows_out", sd.len() as i64);
        Ok(match state.entry.take() {
            Some((old, derived_at)) => {
                if old.patterns().eq(sd.patterns()) {
                    Maintained::Unchanged { sd, derived_at }
                } else {
                    let diff = old.diff_components(&sd);
                    Maintained::Changed { sd, diff: Some(diff) }
                }
            }
            None => Maintained::Changed { sd, diff: None },
        })
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Run an OQL query, backward-chaining any derived subdatabases it
    /// references (paper §4.3 / Query 4.1).
    pub fn query(&mut self, src: &str) -> Result<QueryOutput, RuleError> {
        let q = dood_oql::Parser::parse_query(src)?;
        self.run_query(&q)
    }

    /// Run a parsed OQL query, backward-chaining any derived subdatabases
    /// it references.
    pub fn run_query(&mut self, q: &Query) -> Result<QueryOutput, RuleError> {
        let mut sp = obs::trace::span("rules.query");
        let subdbs = referenced_subdbs(q);
        if !subdbs.is_empty() {
            let _acct = obs::account::begin("derive", || subdbs.join(","));
            for subdb in &subdbs {
                self.derive(subdb)?;
            }
        }
        let out = self.oql.run(&self.db, &self.registry, q)?;
        sp.attr("rows", out.table.len() as i64);
        Ok(out)
    }

    /// Run a parsed query under span capture, returning the output and its
    /// EXPLAIN ANALYZE [`Profile`] tree (backward-chained derivations
    /// included).
    pub fn run_query_profiled(
        &mut self,
        q: &Query,
    ) -> Result<(QueryOutput, Profile), RuleError> {
        let (res, spans) = obs::trace::capture(|| self.run_query(q));
        Ok((res?, Profile::single(&spans)))
    }

    /// Parse and run a query under span capture (see
    /// [`run_query_profiled`](Self::run_query_profiled)).
    pub fn query_profiled(&mut self, src: &str) -> Result<(QueryOutput, Profile), RuleError> {
        let q = dood_oql::Parser::parse_query(src)?;
        self.run_query_profiled(&q)
    }

    /// Materialize and return a derived subdatabase (backward chaining).
    pub fn subdb(&mut self, name: &str) -> Result<&Subdatabase, RuleError> {
        self.derive(name)?;
        Ok(self.registry.subdb(name).expect("derive registered it"))
    }

    /// Recompute `name` and all its sources from scratch in a scratch
    /// registry and compare with the currently registered copy — the
    /// consistency oracle used to demonstrate the §6 staleness scenario.
    pub fn is_consistent(&self, name: &str) -> Result<bool, RuleError> {
        let Some(current) = self.registry.subdb(name) else {
            // Absent ≠ inconsistent when the result is computed on demand.
            // Under a rule-oriented *forward* strategy, though, the copy
            // "is always kept available" — absence is staleness.
            let forward_required = self.mode == ControlMode::RuleOriented
                && self.graph.is_derived(name)
                && self.subdb_strategy(name) == ChainStrategy::Forward;
            return Ok(!forward_required);
        };
        let fresh = self.derive_fresh(name)?;
        Ok(fresh.to_vec() == current.to_vec())
    }

    /// Compute `name` from scratch (ignoring all cached results).
    pub fn derive_fresh(&self, name: &str) -> Result<Subdatabase, RuleError> {
        let mut scratch = SubdbRegistry::new();
        // Seed with registered-but-not-derived (external) subdatabases.
        for n in self.registry.names() {
            if !self.graph.is_derived(n) {
                let e = self.registry.get(n).expect("listed");
                scratch.put(e.subdb.clone(), e.derived_at);
            }
        }
        self.derive_into(name, &mut scratch)?;
        Ok(scratch.subdb(name).expect("derived").clone())
    }

    fn derive_into(&self, name: &str, scratch: &mut SubdbRegistry) -> Result<(), RuleError> {
        if scratch.subdb(name).is_some() {
            return Ok(());
        }
        if !self.graph.is_derived(name) {
            return Err(RuleError::UnderivableSubdb(name.to_string()));
        }
        for dep in self.graph.deps_of(name) {
            if self.graph.is_derived(dep) {
                self.derive_into(dep, scratch)?;
            } else if scratch.subdb(dep).is_none() {
                return Err(RuleError::UnderivableSubdb(dep.clone()));
            }
        }
        let mut acc: Option<Subdatabase> = None;
        for &i in self.graph.rules_for(name) {
            let sd = apply_rule(&self.rules[i], &self.db, scratch)?;
            acc = Some(match acc {
                None => sd,
                Some(mut prev) => {
                    if !layouts_compatible(&prev, &sd) {
                        return Err(RuleError::TargetLayoutMismatch {
                            subdb: name.to_string(),
                            rule: self.rules[i].name.clone(),
                        });
                    }
                    prev.union_from(&sd);
                    prev
                }
            });
        }
        scratch.put(acc.expect("at least one rule"), self.db.seq());
        Ok(())
    }
}

/// Fold one delta step's exact edits into the active accounting scope, if
/// any. One relaxed atomic load when no scope is open.
fn account_delta(out: &DeltaOutcome) {
    if let Some(a) = obs::account::active() {
        a.add_delta_edits(out.inserted.len() as u64, out.removed.len() as u64);
    }
}

/// Count a drift-forced cache re-seed: the plan-drift watchdog flagged the
/// cached compiled plan, so the delta path was bypassed and the rule is
/// re-planned against the corrected statistics.
fn note_replan() {
    if obs::metrics_enabled() {
        obs::metrics::counter("rules.maintain.replans").inc();
    }
}

/// The derived subdatabases a query references (context, WHERE, SELECT).
pub fn referenced_subdbs(q: &Query) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(seq: &Seq, out: &mut Vec<String>) {
        let item = |i: &Item, out: &mut Vec<String>| match i {
            Item::Class { class, .. } => {
                if let Some(s) = &class.subdb {
                    out.push(s.clone());
                }
            }
            Item::Group(g) => walk(g, out),
        };
        item(&seq.first, out);
        for (_, i) in &seq.rest {
            item(i, out);
        }
    }
    walk(&q.context.seq, &mut out);
    let push_ref = |c: &ClassRef, out: &mut Vec<String>| {
        if let Some(s) = &c.subdb {
            out.push(s.clone());
        }
    };
    for w in &q.where_ {
        match w {
            WhereCond::Agg { target, by, .. } => {
                push_ref(target, &mut out);
                if let Some(b) = by {
                    push_ref(b, &mut out);
                }
            }
            WhereCond::Cmp { left, right, .. } => {
                push_ref(&left.0, &mut out);
                if let dood_oql::ast::CmpRhs::Attr(c, _) = right {
                    push_ref(c, &mut out);
                }
            }
        }
    }
    for s in &q.select {
        match s {
            SelectItem::ClassAttrs(c, _) | SelectItem::Class(c) => push_ref(c, &mut out),
            SelectItem::Attr(_) => {}
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}
