//! E4 — result-oriented vs rule-oriented control: cost of one
//! update+propagate round (consistency outcomes are reported by the
//! `report` binary; this measures the work).

use dood_bench::harness::Harness;
use dood_bench::{pipeline_engine, pipeline_update, rule_oriented_round};
use dood_rules::{ControlMode, EvalPolicy};

fn main() {
    let mut h = Harness::new("e4_control");
    h.bench_batched(
        "result_oriented_all_pre",
        || {
            let mut e = pipeline_engine(100, 4);
            e.set_mode(ControlMode::ResultOriented);
            for s in ["REa", "REb", "REc", "REd"] {
                e.set_policy(s, EvalPolicy::PreEvaluated);
            }
            e.query("context REd:Department").unwrap();
            e
        },
        |mut e| {
            pipeline_update(&mut e, 1);
            e.propagate().unwrap().len()
        },
    );
    h.bench_batched(
        "result_oriented_all_post",
        || {
            let mut e = pipeline_engine(100, 4);
            e.query("context REd:Department").unwrap();
            e
        },
        |mut e| {
            pipeline_update(&mut e, 1);
            e.propagate().unwrap();
            e.query("context REd:Department").unwrap().table.len()
        },
    );
    h.bench_batched(
        "rule_oriented_mixed",
        || {
            let mut e = pipeline_engine(100, 4);
            e.query("context REd:Department").unwrap();
            e
        },
        |mut e| rule_oriented_round(&mut e, 1),
    );
    h.finish();
}
