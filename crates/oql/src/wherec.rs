//! The WHERE subclause: inter-class comparisons and aggregation conditions
//! (paper §3.2), applied to a Context subdatabase.
//!
//! "The Where subclause further causes the extensional patterns that do not
//! satisfy some conditions to be dropped from the Context subdatabase."
//! Conditions bind against the *result* intension, so they also work on the
//! runtime-determined intensions of closure queries (`Grad_2`, …).

use crate::ast::{AggFunc, ClassRef, CmpRhs, WhereCond};
use crate::error::QueryError;
use dood_core::error::ResolveError;
use dood_core::fxhash::FxHashMap;
use dood_core::ids::Oid;
use dood_core::obs;
use dood_core::pool::ChunkPool;
use dood_core::schema::{ResolvedAttr, Schema};
use dood_core::subdb::{Intension, SlotSource, Subdatabase};
use dood_core::value::Value;
use dood_store::Database;
use std::collections::BTreeSet;

/// The stats key one WHERE condition's observed selectivity is recorded
/// under (`oql.wsel.*`): a fingerprint of the condition's AST shape, so a
/// structurally identical condition in any query or rule shares the
/// estimate. Static analysis (`rules::absint`) installs priors at the same
/// keys; `doodprof --plan` joins static, estimated, and measured values on
/// them.
pub fn where_sel_key(cond: &WhereCond) -> String {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{cond:?}").hash(&mut h);
    format!("oql.wsel.{:016x}", h.finish())
}

/// Minimum input rows before a WHERE stage feeds the stats registry —
/// tiny pattern sets produce noisy selectivity ratios.
const WSEL_MIN_ROWS: usize = 4;

/// Record one WHERE stage's observed keep-fraction.
fn observe_wsel(cond: &WhereCond, rows_in: usize, rows_out: usize) {
    if rows_in >= WSEL_MIN_ROWS {
        obs::stats::observe(&where_sel_key(cond), rows_out as f64 / rows_in as f64);
    }
}

/// Find the unique slot a class reference denotes within an intension.
pub fn find_slot(int: &Intension, cref: &ClassRef) -> Result<usize, QueryError> {
    let mut hits = Vec::new();
    for (i, s) in int.slots.iter().enumerate() {
        if s.name != cref.name {
            continue;
        }
        if let Some(q) = &cref.subdb {
            let matches = matches!(&s.source, SlotSource::Derived { subdb, .. } if subdb == q);
            if !matches {
                continue;
            }
        }
        hits.push(i);
    }
    match hits.len() {
        1 => Ok(hits[0]),
        0 => Err(QueryError::Resolve(ResolveError::UnknownClass(cref.to_string()))),
        _ => Err(QueryError::AmbiguousAttribute(cref.to_string())),
    }
}

/// Resolve an attribute on a slot, enforcing the slot's accessibility
/// restriction.
pub fn slot_attr(
    int: &Intension,
    slot: usize,
    attr: &str,
    schema: &Schema,
) -> Result<ResolvedAttr, QueryError> {
    let def = &int.slots[slot];
    if !def.attr_accessible(attr) {
        return Err(QueryError::Resolve(ResolveError::AttributeNotAccessible {
            class: def.name.clone(),
            attr: attr.to_string(),
        }));
    }
    Ok(schema.resolve_attr(def.base, attr)?)
}

/// Compute one group's aggregate over its distinct target OIDs and test it
/// against the threshold.
fn agg_passes(
    func: &AggFunc,
    tattr: &Option<ResolvedAttr>,
    targets: &BTreeSet<Oid>,
    op: &crate::ast::CmpOp,
    threshold: &Value,
    db: &Database,
) -> bool {
    let agg: Value = match (func, tattr) {
        (AggFunc::Count, None) => Value::Int(targets.len() as i64),
        (f, attr_opt) => {
            // Collect non-null attribute values of distinct targets (COUNT
            // with an attribute counts non-null values).
            let vals: Vec<f64> = targets
                .iter()
                .filter_map(|&o| {
                    let a = attr_opt.as_ref().expect("parser enforces attr");
                    db.attr_resolved(o, a).as_f64()
                })
                .collect();
            match f {
                AggFunc::Count => Value::Int(vals.len() as i64),
                AggFunc::Sum => Value::Real(vals.iter().sum()),
                AggFunc::Avg => {
                    if vals.is_empty() {
                        Value::Null
                    } else {
                        Value::Real(vals.iter().sum::<f64>() / vals.len() as f64)
                    }
                }
                AggFunc::Min => vals
                    .iter()
                    .copied()
                    .fold(None::<f64>, |m, v| Some(m.map_or(v, |x| x.min(v))))
                    .map_or(Value::Null, Value::Real),
                AggFunc::Max => vals
                    .iter()
                    .copied()
                    .fold(None::<f64>, |m, v| Some(m.map_or(v, |x| x.max(v))))
                    .map_or(Value::Null, Value::Real),
            }
        }
    };
    match agg.compare(threshold) {
        Some(ord) => op.test(ord),
        None => false,
    }
}

/// Apply WHERE conditions (conjunctive), dropping non-satisfying patterns.
pub fn apply_where(
    sd: &mut Subdatabase,
    conds: &[WhereCond],
    db: &Database,
) -> Result<(), QueryError> {
    for cond in conds {
        match cond {
            WhereCond::Cmp { left, op, right } => {
                let mut sp = obs::trace::span("oql.where.cmp");
                sp.attr("rows_in", sd.len() as i64);
                let lslot = find_slot(&sd.intension, &left.0)?;
                let lattr = slot_attr(&sd.intension, lslot, &left.1, db.schema())?;
                enum Rhs {
                    Attr(usize, ResolvedAttr),
                    Lit(Value),
                }
                let rhs = match right {
                    CmpRhs::Lit(l) => Rhs::Lit(l.to_value()),
                    CmpRhs::Attr(c, a) => {
                        let rslot = find_slot(&sd.intension, c)?;
                        let rattr = slot_attr(&sd.intension, rslot, a, db.schema())?;
                        Rhs::Attr(rslot, rattr)
                    }
                };
                let keep: Vec<_> = sd
                    .patterns()
                    .filter(|p| {
                        let Some(lo) = p.get(lslot) else { return false };
                        let lv = db.attr_resolved(lo, &lattr);
                        let rv = match &rhs {
                            Rhs::Lit(v) => v.clone(),
                            Rhs::Attr(rslot, rattr) => match p.get(*rslot) {
                                Some(ro) => db.attr_resolved(ro, rattr),
                                None => Value::Null,
                            },
                        };
                        match lv.compare(&rv) {
                            Some(ord) => op.test(ord),
                            None => false,
                        }
                    })
                    .cloned()
                    .collect();
                let rows_in = sd.len();
                let dropped = rows_in - keep.len();
                sd.set_patterns(keep);
                sp.attr("rows_out", sd.len() as i64);
                observe_wsel(cond, rows_in, sd.len());
                if dropped > 0 && obs::metrics_enabled() {
                    obs::metrics::counter("oql.where.dropped").add(dropped as u64);
                }
            }
            WhereCond::Agg { func, target, attr, by, op, value } => {
                let mut sp = obs::trace::span("oql.where.agg");
                sp.attr("rows_in", sd.len() as i64);
                let tslot = find_slot(&sd.intension, target)?;
                let tattr = match attr {
                    Some(a) => Some(slot_attr(&sd.intension, tslot, a, db.schema())?),
                    None => None,
                };
                let bslot = match by {
                    Some(b) => Some(find_slot(&sd.intension, b)?),
                    None => None,
                };
                // Accumulate per group: distinct target OIDs, then aggregate.
                // Accumulation runs chunk-parallel: each chunk of patterns
                // builds a partial group map, merged by set union — union is
                // commutative, so the merged groups are independent of chunk
                // assignment and thread count.
                let pool = ChunkPool::from_env();
                let pats: Vec<_> = sd.patterns().collect();
                let partials = pool.par_chunk_map(&pats, |chunk| {
                    let mut groups: FxHashMap<Option<Oid>, BTreeSet<Oid>> =
                        FxHashMap::default();
                    for p in chunk {
                        let key = match bslot {
                            Some(bs) => match p.get(bs) {
                                Some(o) => Some(o),
                                None => continue, // ungrouped pattern: cannot qualify
                            },
                            None => None,
                        };
                        if let Some(t) = p.get(tslot) {
                            groups.entry(key).or_default().insert(t);
                        } else {
                            groups.entry(key).or_default();
                        }
                    }
                    groups
                });
                let mut partials = partials.into_iter();
                let mut groups = partials.next().unwrap_or_default();
                for partial in partials {
                    for (key, targets) in partial {
                        groups.entry(key).or_default().extend(targets);
                    }
                }
                let threshold = value.to_value();
                // Aggregates per group are independent; compute them
                // chunk-parallel over a deterministically-ordered group list
                // (the result map is key-addressed, so order is moot anyway).
                let mut group_list: Vec<(Option<Oid>, BTreeSet<Oid>)> =
                    groups.into_iter().collect();
                group_list.sort_unstable_by_key(|(k, _)| *k);
                sp.attr("groups", group_list.len() as i64);
                let verdicts = pool.par_chunk_map(&group_list, |chunk| {
                    chunk
                        .iter()
                        .map(|(key, targets)| {
                            (*key, agg_passes(func, &tattr, targets, op, &threshold, db))
                        })
                        .collect::<Vec<_>>()
                });
                let passes: FxHashMap<Option<Oid>, bool> =
                    verdicts.into_iter().flatten().collect();
                let keep: Vec<_> = sd
                    .patterns()
                    .filter(|p| {
                        let key = match bslot {
                            Some(bs) => match p.get(bs) {
                                Some(o) => Some(o),
                                None => return false,
                            },
                            None => None,
                        };
                        passes.get(&key).copied().unwrap_or(false)
                    })
                    .cloned()
                    .collect();
                let rows_in = sd.len();
                let dropped = rows_in - keep.len();
                sd.set_patterns(keep);
                sp.attr("rows_out", sd.len() as i64);
                observe_wsel(cond, rows_in, sd.len());
                if dropped > 0 && obs::metrics_enabled() {
                    obs::metrics::counter("oql.where.dropped").add(dropped as u64);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;
    use dood_core::ids::ClassId;
    use dood_core::schema::SchemaBuilder;
    use dood_core::subdb::{ExtPattern, SlotDef};
    use dood_core::value::DType;

    fn setup() -> (Database, Subdatabase) {
        let mut b = SchemaBuilder::new();
        b.e_class("Course");
        b.e_class("Student");
        b.d_class("credits", DType::Int);
        b.attr("Course", "credits");
        b.aggregate("Course", "Student"); // direct for simplicity
        let mut db = Database::new(b.build().unwrap());
        let course = db.schema().class_by_name("Course").unwrap();
        let student = db.schema().class_by_name("Student").unwrap();
        let enrolls = db.schema().assocs().iter().find(|a| a.name == "Student").unwrap().id;
        let c1 = db.new_object(course).unwrap();
        let c2 = db.new_object(course).unwrap();
        db.set_attr(c1, "credits", Value::Int(3)).unwrap();
        db.set_attr(c2, "credits", Value::Int(4)).unwrap();
        let students: Vec<_> = (0..5).map(|_| db.new_object(student).unwrap()).collect();
        // c1 gets 3 students, c2 gets 2.
        let mut int = Intension::new(vec![
            SlotDef::base("Course", course),
            SlotDef::base("Student", student),
        ]);
        int.add_edge(0, 1);
        let mut sd = Subdatabase::new("ctx", int);
        for (i, &s) in students.iter().enumerate() {
            let c = if i < 3 { c1 } else { c2 };
            db.associate(enrolls, c, s).unwrap();
            sd.insert(ExtPattern::new(vec![Some(c), Some(s)]));
        }
        (db, sd)
    }

    fn conds(src: &str) -> Vec<WhereCond> {
        // Parse through a dummy query.
        let q = Parser::parse_query(&format!("context A * B where {src}")).unwrap();
        q.where_
    }

    #[test]
    fn count_by_group() {
        let (db, mut sd) = setup();
        apply_where(&mut sd, &conds("count(Student by Course) > 2"), &db).unwrap();
        // Only c1's group (3 students) passes.
        assert_eq!(sd.len(), 3);
    }

    #[test]
    fn count_global() {
        let (db, mut sd) = setup();
        let mut sd2 = sd.clone();
        apply_where(&mut sd, &conds("count(Student) = 5"), &db).unwrap();
        assert_eq!(sd.len(), 5);
        apply_where(&mut sd2, &conds("count(Student) > 5"), &db).unwrap();
        assert_eq!(sd2.len(), 0);
    }

    #[test]
    fn attr_literal_comparison() {
        let (db, mut sd) = setup();
        apply_where(&mut sd, &conds("Course.credits >= 4"), &db).unwrap();
        assert_eq!(sd.len(), 2); // c2's two students
    }

    #[test]
    fn sum_and_avg() {
        let (db, mut sd) = setup();
        let mut sd2 = sd.clone();
        // Each group has one course; sum(credits by Course) is that course's
        // credits.
        apply_where(&mut sd, &conds("sum(Course.credits by Course) >= 4"), &db).unwrap();
        assert_eq!(sd.len(), 2);
        apply_where(&mut sd2, &conds("avg(Course.credits) > 3.0"), &db).unwrap();
        assert_eq!(sd2.len(), 5); // global avg = 3.5
    }

    #[test]
    fn min_max() {
        let (db, mut sd) = setup();
        let mut sd2 = sd.clone();
        apply_where(&mut sd, &conds("min(Course.credits) = 3"), &db).unwrap();
        assert_eq!(sd.len(), 5);
        apply_where(&mut sd2, &conds("max(Course.credits by Course) < 4"), &db).unwrap();
        assert_eq!(sd2.len(), 3);
    }

    #[test]
    fn unknown_slot_errors() {
        let (db, mut sd) = setup();
        assert!(apply_where(&mut sd, &conds("Teacher.x = 1"), &db).is_err());
    }

    #[test]
    fn find_slot_qualified() {
        let course = ClassId(0);
        let mut int = Intension::new(vec![SlotDef::base("Course", course)]);
        int.slots[0].source =
            SlotSource::Derived { subdb: "Suggest_offer".into(), slot: "Course".into() };
        assert!(find_slot(&int, &ClassRef::qualified("Suggest_offer", "Course")).is_ok());
        assert!(find_slot(&int, &ClassRef::qualified("Other", "Course")).is_err());
        assert!(find_slot(&int, &ClassRef::base("Course")).is_ok());
    }
}
