//! A line-oriented dump/load format for the extensional database — the
//! persistence substrate an OO DBMS needs beneath the paper's language.
//!
//! ```text
//! dooddump 1
//! O <oid> <class-name>
//! V <oid> <attr-name> <typed-value>
//! L <class-name>/<link-name> <from-oid> <to-oid>
//! ```
//!
//! Typed values: `n` (Null), `i:<int>`, `r:<real>` (Rust's shortest
//! round-tripping float form), `b:<bool>`, `s:<escaped>` where `\\`, `\n`
//! and `\r` are escaped. The dump is deterministic (extent/OID order), so
//! equal databases produce byte-equal dumps. OIDs are preserved; loading
//! resumes OID generation past the maximum. The load validates against the
//! schema it is given.

use crate::database::Database;
use dood_core::ids::Oid;
use dood_core::schema::Schema;
use dood_core::value::Value;
use std::fmt;
use std::fmt::Write as _;

/// Errors raised while loading a dump.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum LoadError {
    /// The header line is missing or has the wrong version.
    BadHeader(String),
    /// A line could not be parsed.
    BadLine { line: usize, content: String },
    /// The dump references a name missing from the schema.
    UnknownName { line: usize, name: String },
    /// A store-level restore failed (duplicate OID, type mismatch, …).
    Store { line: usize, error: dood_core::error::StoreError },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::BadHeader(h) => write!(f, "bad dump header `{h}`"),
            LoadError::BadLine { line, content } => {
                write!(f, "line {line}: cannot parse `{content}`")
            }
            LoadError::UnknownName { line, name } => {
                write!(f, "line {line}: unknown schema name `{name}`")
            }
            LoadError::Store { line, error } => write!(f, "line {line}: {error}"),
        }
    }
}

impl std::error::Error for LoadError {}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "n".to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Real(r) => format!("r:{r}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Str(s) => format!("s:{}", escape(s)),
    }
}

fn decode_value(s: &str) -> Option<Value> {
    if s == "n" {
        return Some(Value::Null);
    }
    let (tag, rest) = s.split_once(':')?;
    match tag {
        "i" => rest.parse().ok().map(Value::Int),
        "r" => rest.parse().ok().map(Value::Real),
        "b" => rest.parse().ok().map(Value::Bool),
        "s" => Some(Value::str(unescape(rest))),
        _ => None,
    }
}

/// Serialize the extensional database (objects, attributes, links).
pub fn dump(db: &Database) -> String {
    let schema = db.schema();
    let mut out = String::from("dooddump 1\n");
    for c in schema.e_classes() {
        for oid in db.extent(c.id) {
            let _ = writeln!(out, "O {} {}", oid.raw(), c.name);
        }
    }
    for c in schema.e_classes() {
        for &attr in &schema.own_attrs(c.id) {
            for oid in db.extent(c.id) {
                let v = db.attr_direct(oid, attr);
                if !v.is_null() {
                    let _ = writeln!(
                        out,
                        "V {} {} {}",
                        oid.raw(),
                        schema.assoc(attr).name,
                        encode_value(&v)
                    );
                }
            }
        }
    }
    for a in schema.assocs() {
        if schema.is_attribute(a.id) {
            continue;
        }
        for (from, to) in db.links(a.id) {
            let _ = writeln!(
                out,
                "L {}/{} {} {}",
                schema.class(a.from).name,
                a.name,
                from.raw(),
                to.raw()
            );
        }
    }
    out
}

/// Serialize schema (DDL) + data into one self-describing document.
pub fn save_full(db: &Database) -> String {
    format!(
        "doodfile 1
{}%%data
{}",
        dood_core::schema::print_schema(db.schema()),
        dump(db)
    )
}

/// Load a self-describing document produced by [`save_full`].
pub fn load_full(text: &str) -> Result<Database, LoadError> {
    let rest = text
        .strip_prefix("doodfile 1\n")
        .ok_or_else(|| LoadError::BadHeader(text.lines().next().unwrap_or("").to_string()))?;
    let (schema_text, data_text) = rest
        .split_once("%%data\n")
        .ok_or_else(|| LoadError::BadHeader("missing %%data separator".to_string()))?;
    let schema = dood_core::schema::parse_schema(schema_text)
        .map_err(|e| LoadError::BadHeader(e.to_string()))?;
    load(schema, data_text)
}

/// Load a dump into a fresh database over `schema`.
pub fn load(schema: Schema, text: &str) -> Result<Database, LoadError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "dooddump 1")) => {}
        Some((_, other)) => return Err(LoadError::BadHeader(other.to_string())),
        None => return Err(LoadError::BadHeader(String::new())),
    }
    let mut db = Database::new(schema);
    let mut max_oid = 0u64;
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        let bad = || LoadError::BadLine { line: lineno, content: line.to_string() };
        let mut parts = line.splitn(2, ' ');
        let kind = parts.next().ok_or_else(bad)?;
        let rest = parts.next().ok_or_else(bad)?;
        match kind {
            "O" => {
                let (oid_s, class_name) = rest.split_once(' ').ok_or_else(bad)?;
                let oid = Oid(oid_s.parse().map_err(|_| bad())?);
                let class = db.schema().try_class_by_name(class_name).ok_or_else(|| {
                    LoadError::UnknownName { line: lineno, name: class_name.to_string() }
                })?;
                db.restore_object(oid, class)
                    .map_err(|error| LoadError::Store { line: lineno, error })?;
                max_oid = max_oid.max(oid.raw());
            }
            "V" => {
                let (oid_s, rest2) = rest.split_once(' ').ok_or_else(bad)?;
                let (attr_name, val_s) = rest2.split_once(' ').ok_or_else(bad)?;
                let oid = Oid(oid_s.parse().map_err(|_| bad())?);
                let class = db
                    .class_of(oid)
                    .map_err(|error| LoadError::Store { line: lineno, error })?;
                let attr =
                    db.schema().own_attr_by_name(class, attr_name).ok_or_else(|| {
                        LoadError::UnknownName { line: lineno, name: attr_name.to_string() }
                    })?;
                let value = decode_value(val_s).ok_or_else(bad)?;
                db.restore_attr(oid, attr, value)
                    .map_err(|error| LoadError::Store { line: lineno, error })?;
            }
            "L" => {
                let (link_s, rest2) = rest.split_once(' ').ok_or_else(bad)?;
                let (from_s, to_s) = rest2.split_once(' ').ok_or_else(bad)?;
                let (class_name, link_name) = link_s.split_once('/').ok_or_else(bad)?;
                let class = db.schema().try_class_by_name(class_name).ok_or_else(|| {
                    LoadError::UnknownName { line: lineno, name: class_name.to_string() }
                })?;
                let assoc = db
                    .schema()
                    .outgoing(class)
                    .iter()
                    .copied()
                    .find(|&a| db.schema().assoc(a).name == link_name)
                    .ok_or_else(|| LoadError::UnknownName {
                        line: lineno,
                        name: link_s.to_string(),
                    })?;
                let from = Oid(from_s.parse().map_err(|_| bad())?);
                let to = Oid(to_s.parse().map_err(|_| bad())?);
                db.restore_link(assoc, from, to)
                    .map_err(|error| LoadError::Store { line: lineno, error })?;
            }
            _ => return Err(bad()),
        }
    }
    db.resume_oids_after(Oid(max_oid));
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::DType;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.e_class("Person");
        b.e_class("Student");
        b.e_class("Dept");
        b.d_class("name", DType::Str);
        b.d_class("gpa", DType::Real);
        b.attr("Person", "name");
        b.attr("Student", "gpa");
        b.generalize("Person", "Student");
        b.aggregate_single_named("Student", "Dept", "Major");
        b.build().unwrap()
    }

    fn populated() -> Database {
        let mut db = Database::new(schema());
        let person = db.schema().class_by_name("Person").unwrap();
        let student = db.schema().class_by_name("Student").unwrap();
        let dept = db.schema().class_by_name("Dept").unwrap();
        let major = db.schema().own_link_by_name(student, "Major").unwrap();
        let p = db.new_object(person).unwrap();
        db.set_attr(p, "name", Value::str("ann\nwith newline \\ and 'quote'")).unwrap();
        let s = db.specialize(p, student).unwrap();
        db.set_attr(s, "gpa", Value::Real(3.25)).unwrap();
        let d = db.new_object(dept).unwrap();
        db.associate(major, s, d).unwrap();
        db
    }

    #[test]
    fn dump_load_round_trip() {
        let db = populated();
        let text = dump(&db);
        let loaded = load(schema(), &text).unwrap();
        // Same extents, attrs, links, under the same OIDs.
        for c in db.schema().e_classes() {
            let a: Vec<Oid> = db.extent(c.id).collect();
            let b: Vec<Oid> = loaded.extent(c.id).collect();
            assert_eq!(a, b, "extent of {}", c.name);
        }
        let person = db.schema().class_by_name("Person").unwrap();
        let p = db.extent(person).next().unwrap();
        assert_eq!(loaded.attr(p, "name").unwrap(), db.attr(p, "name").unwrap());
        let student = db.schema().class_by_name("Student").unwrap();
        let s = db.extent(student).next().unwrap();
        assert_eq!(loaded.attr(s, "gpa").unwrap(), Value::Real(3.25));
        let major = db.schema().own_link_by_name(student, "Major").unwrap();
        assert_eq!(loaded.links(major), db.links(major));
        // Dumps are deterministic.
        assert_eq!(dump(&loaded), text);
    }

    #[test]
    fn loaded_db_continues_oid_generation() {
        let db = populated();
        let before = db.object_count();
        let mut loaded = load(schema(), &dump(&db)).unwrap();
        let dept = loaded.schema().class_by_name("Dept").unwrap();
        let fresh = loaded.new_object(dept).unwrap();
        assert!(loaded.extent(dept).all(|o| o <= fresh));
        assert_eq!(loaded.object_count(), before + 1);
        // The fresh OID collides with nothing.
        assert!(db.extent(dept).all(|o| o != fresh));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(load(schema(), "nope"), Err(LoadError::BadHeader(_))));
        assert!(matches!(
            load(schema(), "dooddump 1\nX what"),
            Err(LoadError::BadLine { .. })
        ));
        assert!(matches!(
            load(schema(), "dooddump 1\nO 1 Nope"),
            Err(LoadError::UnknownName { .. })
        ));
        assert!(matches!(
            load(schema(), "dooddump 1\nO 1 Person\nO 1 Person"),
            Err(LoadError::Store { .. })
        ));
        assert!(matches!(
            load(schema(), "dooddump 1\nO 1 Person\nV 1 name x:?"),
            Err(LoadError::BadLine { .. })
        ));
    }

    #[test]
    fn full_save_load_round_trip() {
        let db = populated();
        let doc = save_full(&db);
        let loaded = load_full(&doc).unwrap();
        assert_eq!(save_full(&loaded), doc);
        assert_eq!(loaded.object_count(), db.object_count());
        // Schema survived: same classes and associations.
        assert_eq!(loaded.schema().class_count(), db.schema().class_count());
        assert_eq!(loaded.schema().assoc_count(), db.schema().assoc_count());
        // Garbage rejected.
        assert!(load_full("nope").is_err());
        assert!(load_full("doodfile 1\neclass A\n").is_err());
    }

    #[test]
    fn value_encoding_round_trips() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Real(0.1),
            Value::Real(-1e300),
            Value::Bool(true),
            Value::str("a b\\c\nd'e"),
            Value::str(""),
        ] {
            let enc = encode_value(&v);
            assert!(!enc.contains('\n'));
            assert_eq!(decode_value(&enc).unwrap(), v, "{enc}");
        }
    }
}
