//! Associations (links) between classes.
//!
//! "There are five types of links (associations) in OSAM*" (paper §2); the
//! paper details **Aggregation** (A) and **Generalization** (G), which are
//! the two used by the rule language. The remaining three (Interaction,
//! Composition, Crossproduct) are represented structurally so that schemas
//! using them validate and traverse, but they carry no special semantics in
//! the query engine beyond being traversable links.
//!
//! Conventions:
//! * An aggregation link *emanates from* the owning class and *connects to*
//!   the component class. "An aggregation link represents an attribute and
//!   has the same name as the class it connects to, unless specified
//!   otherwise" (paper §2).
//! * A generalization link emanates from the **superclass** and connects to
//!   the **subclass** ("Generalization links to the E-classes Student and
//!   Teacher, i.e. Student and Teacher are subclasses of the superclass
//!   Person"). At the instance level a G link is an *identity link*: the two
//!   instances are "two different perspectives of the same real-world
//!   object" (paper §3.2).

use crate::ids::{AssocId, ClassId};
use std::fmt;

/// The five OSAM* association types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssocKind {
    /// Aggregation (attribute / part-of). E→D aggregations are the
    /// *descriptive attributes* of the E-class.
    Aggregation,
    /// Generalization (superclass → subclass identity link).
    Generalization,
    /// Interaction (relationship-entity style association).
    Interaction,
    /// Composition (exclusive part-of).
    Composition,
    /// Crossproduct (grouping of component classes).
    Crossproduct,
}

impl AssocKind {
    /// One-letter label used in S-diagrams ("links of the same type that
    /// emanate from a class are grouped together and labeled by the letter
    /// that denotes the association type").
    pub fn letter(self) -> char {
        match self {
            AssocKind::Aggregation => 'A',
            AssocKind::Generalization => 'G',
            AssocKind::Interaction => 'I',
            AssocKind::Composition => 'C',
            AssocKind::Crossproduct => 'X',
        }
    }
}

impl fmt::Display for AssocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssocKind::Aggregation => "aggregation",
            AssocKind::Generalization => "generalization",
            AssocKind::Interaction => "interaction",
            AssocKind::Composition => "composition",
            AssocKind::Crossproduct => "crossproduct",
        };
        f.write_str(s)
    }
}

/// Cardinality of a link from the emanating side: how many `to`-objects one
/// `from`-object may link to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// At most one target object (e.g. a Section's Course).
    Single,
    /// Any number of target objects (e.g. a Teacher's Sections).
    Many,
}

/// An association definition.
///
/// The paper notes constraints such as "a Non-null constraint on the
/// aggregation association of Course with Section" (§3.1 footnote); we carry
/// a `required` flag on the emanating side for this.
#[derive(Debug, Clone)]
pub struct AssocDef {
    /// Stable identifier within the schema.
    pub id: AssocId,
    /// Link name. Unique among links emanating from `from`.
    pub name: String,
    /// The class the link emanates from (owner / superclass).
    pub from: ClassId,
    /// The class the link connects to (component / subclass / domain).
    pub to: ClassId,
    /// Association type.
    pub kind: AssocKind,
    /// Non-null constraint: every `from`-instance must carry at least one
    /// link. Enforced by `Database::check_constraints`.
    pub required: bool,
    /// How many `to`-objects one `from`-object may link to.
    pub cardinality: Cardinality,
}

impl AssocDef {
    /// Whether this is a descriptive attribute (decided by the schema, which
    /// knows whether `to` is a D-class); see `Schema::is_attribute`.
    #[inline]
    pub fn is_aggregation(&self) -> bool {
        self.kind == AssocKind::Aggregation
    }

    /// Whether this is a generalization link.
    #[inline]
    pub fn is_generalization(&self) -> bool {
        self.kind == AssocKind::Generalization
    }

    /// Given one endpoint, the other endpoint. Panics if `c` is neither.
    pub fn other_end(&self, c: ClassId) -> ClassId {
        if c == self.from {
            self.to
        } else {
            debug_assert_eq!(c, self.to, "class is not an endpoint of this association");
            self.from
        }
    }

    /// Whether `c` is an endpoint.
    pub fn touches(&self, c: ClassId) -> bool {
        self.from == c || self.to == c
    }
}

impl fmt::Display for AssocDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} --{}[{}]--> {}",
            self.from,
            self.name,
            self.kind.letter(),
            self.to
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> AssocDef {
        AssocDef {
            id: AssocId(0),
            name: "Teaches".into(),
            from: ClassId(1),
            to: ClassId(2),
            kind: AssocKind::Aggregation,
            required: false,
            cardinality: Cardinality::Many,
        }
    }

    #[test]
    fn endpoints() {
        let a = mk();
        assert_eq!(a.other_end(ClassId(1)), ClassId(2));
        assert_eq!(a.other_end(ClassId(2)), ClassId(1));
        assert!(a.touches(ClassId(1)));
        assert!(!a.touches(ClassId(3)));
    }

    #[test]
    fn letters() {
        assert_eq!(AssocKind::Aggregation.letter(), 'A');
        assert_eq!(AssocKind::Generalization.letter(), 'G');
        assert_eq!(AssocKind::Interaction.letter(), 'I');
        assert_eq!(AssocKind::Composition.letter(), 'C');
        assert_eq!(AssocKind::Crossproduct.letter(), 'X');
    }

    #[test]
    fn predicates() {
        let a = mk();
        assert!(a.is_aggregation());
        assert!(!a.is_generalization());
    }
}
