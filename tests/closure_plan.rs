//! E18 soundness: the compiled closure kernel (DESIGN.md §11) must agree
//! with the legacy AST-walking closure interpreter — on every closure
//! shape (bounded `^N`, unbounded `^*`, conditioned slot-0), over all four
//! closure-bearing schemas, at every thread count. And incremental
//! fixpoint maintenance (provenance-carrying delta closure in
//! `rules::maintain`) must land on exactly the subdatabases a fresh
//! recomputation produces, under arbitrary insert/delete/attr-flip
//! schedules, in both execution modes. Plus golden closure-plan
//! `describe()` snapshots pinning the fan-out/rounds/reach estimates.
//!
//! Driven by the in-repo seeded harness (`dood::core::propcheck`); replay
//! a reported failure with `DOOD_PROP_SEED=<seed> cargo test <name>`.

use dood::core::ids::Oid;
use dood::core::obs::stats;
use dood::core::propcheck::check;
use dood::core::schema::SchemaBuilder;
use dood::core::subdb::{ExtPattern, SubdbRegistry};
use dood::core::value::{DType, Value};
use dood::oql::parser::Parser;
use dood::oql::resolve::resolve_context;
use dood::oql::{Evaluator, ExecMode};
use dood::rules::{EvalPolicy, RuleEngine};
use dood::store::Database;
use dood::workload::{cad, social, university};
use std::sync::Mutex;

const CASES: usize = 4;
const THREADS: &[&str] = &["1", "2", "4"];

/// `DOOD_THREADS` / `DOOD_EXEC` are process-global; tests that set them
/// serialize on this lock (the stats registry rides along).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A minimal self-association schema (`N --Next--> N`) whose instances the
/// maintenance schedules mutate freely: the smallest graph where frontier
/// rounds, cycle cuts, and support-count GC all occur.
fn cyclic_db(nodes: usize) -> Database {
    let mut b = SchemaBuilder::new();
    b.e_class("N");
    b.d_class("v", DType::Int);
    b.attr("N", "v");
    b.aggregate_named("N", "N", "Next");
    let mut db = Database::new(b.build().expect("cyclic schema valid"));
    let n = db.schema().class_by_name("N").unwrap();
    let next = db.schema().own_link_by_name(n, "Next").unwrap();
    let mut prev = None;
    for i in 0..nodes {
        let o = db.new_object(n).unwrap();
        db.set_attr(o, "v", Value::Int(i as i64)).unwrap();
        if let Some(p) = prev {
            db.associate(next, p, o).unwrap();
        }
        prev = Some(o);
    }
    db
}

/// Closure context expressions per schema: unbounded, bounded, and
/// slot-0-conditioned variants — the shapes the kernel specializes.
const UNIVERSITY_QUERIES: &[&str] = &[
    "Grad * TA * Teacher * Section * Student ^*",
    "Grad * TA * Teacher * Section * Student ^2",
];
const CAD_QUERIES: &[&str] = &["Part ^*", "Part ^3", "Part [cost >= 20] ^*"];
const CYCLIC_QUERIES: &[&str] = &["N ^*", "N ^2", "N [v >= 2] ^*"];
const SOCIAL_QUERIES: &[&str] = &["Person ^*", "Person ^4", "Person [score >= 50] ^*"];

fn dbs(seed: u64) -> Vec<(Database, &'static [&'static str])> {
    vec![
        (university::populate(university::Size::small(), seed), UNIVERSITY_QUERIES),
        (cad::build_bom(cad::BomShape::small(), seed).0, CAD_QUERIES),
        (cyclic_db(8), CYCLIC_QUERIES),
        (social::build_graph(social::SocialShape::small(), seed).0, SOCIAL_QUERIES),
    ]
}

/// Evaluate `query` through the compiled fixpoint kernel and the legacy
/// interpreter; assert byte-identical pattern sets.
fn assert_equiv(db: &Database, reg: &SubdbRegistry, query: &str) {
    let expr = Parser::parse_context_expr(query).unwrap();
    let resolved = resolve_context(&expr, db.schema(), reg).unwrap();
    let compiled = Evaluator::new(&resolved, db, reg)
        .unwrap()
        .with_exec(ExecMode::Compiled)
        .eval("x")
        .to_vec();
    let interp = Evaluator::new(&resolved, db, reg)
        .unwrap()
        .with_exec(ExecMode::Interp)
        .eval("x")
        .to_vec();
    assert_eq!(compiled, interp, "compiled != interp for `{query}`");
}

#[test]
fn compiled_closure_equals_interp_across_schemas_and_threads() {
    let _g = lock();
    check("compiled_closure_equals_interp_across_schemas_and_threads", CASES, |g| {
        let seed = g.range(0u64..100);
        for threads in THREADS {
            std::env::set_var("DOOD_THREADS", threads);
            for (db, queries) in dbs(seed) {
                let reg = SubdbRegistry::new();
                for q in queries {
                    assert_equiv(&db, &reg, q);
                }
            }
            std::env::remove_var("DOOD_THREADS");
        }
    });
}

/// One mutation of a self-association graph, chosen by `(kind, k)`:
/// attach a new node, add an edge (possibly closing a cycle), delete a
/// node (detaching its links), or flip an attribute (dirtying conditions
/// and WHERE verdicts without touching structure).
fn mutate(db: &mut Database, class: &str, link: &str, attr: &str, kind: usize, k: usize) {
    let cls = db.schema().class_by_name(class).unwrap();
    let assoc = db.schema().own_link_by_name(cls, link).unwrap();
    let pop: Vec<Oid> = db.extent(cls).collect();
    match kind {
        0 => {
            let o = db.new_object(cls).unwrap();
            db.set_attr(o, attr, Value::Int(k as i64 % 100)).unwrap();
            let from = pop[k % pop.len()];
            db.associate(assoc, from, o).unwrap();
        }
        1 => {
            let a = pop[k % pop.len()];
            let b = pop[(k / 7 + 1) % pop.len()];
            if a != b && !db.linked(assoc, a, b) {
                db.associate(assoc, a, b).unwrap();
            }
        }
        2 => {
            if pop.len() > 2 {
                db.delete_object(pop[k % pop.len()]).unwrap();
            }
        }
        _ => {
            let o = pop[k % pop.len()];
            db.set_attr(o, attr, Value::Int(k as i64 % 100 - 30)).unwrap();
        }
    }
}

/// Register closure `rules` over `db`, derive `subdbs`, apply the
/// mutation schedule propagating after each step, and return the final
/// materializations. `incremental=false` is the fresh-recompute oracle.
#[allow(clippy::too_many_arguments)]
fn run_schedule(
    db: Database,
    class: &str,
    link: &str,
    attr: &str,
    rules: &[(&str, &str)],
    subdbs: &[&str],
    ops: &[(usize, usize)],
    incremental: bool,
    exec: &str,
) -> Vec<Vec<ExtPattern>> {
    std::env::set_var("DOOD_EXEC", exec);
    let mut e = RuleEngine::new(db);
    for (name, src) in rules {
        e.add_rule(name, src).unwrap();
    }
    for s in subdbs {
        e.set_policy(*s, EvalPolicy::PreEvaluated);
    }
    e.set_incremental(incremental);
    for s in subdbs {
        e.subdb(s).unwrap();
    }
    for &(kind, k) in ops {
        mutate(e.db_mut(), class, link, attr, kind, k);
        e.propagate().unwrap();
    }
    let out = subdbs.iter().map(|s| e.registry().subdb(s).unwrap().to_vec()).collect();
    std::env::remove_var("DOOD_EXEC");
    out
}

#[test]
fn closure_maintenance_incremental_equals_fresh_cyclic() {
    let _g = lock();
    check("closure_maintenance_incremental_equals_fresh_cyclic", CASES, |g| {
        let ops: Vec<(usize, usize)> =
            g.vec(3..9, |g| (g.range(0usize..4), g.range(0usize..64)));
        // A plain chain-collecting rule plus a conditioned + WHERE-guarded
        // one: the latter exercises the stale-verdict recheck path when an
        // attr flip dirties a retained chain.
        let rules: &[(&str, &str)] = &[
            ("R1", "if context N ^* then T (N, N_*)"),
            ("R2", "if context N [v < 60] ^* where N.v >= 0 then U (N, N_*)"),
        ];
        let subdbs = &["T", "U"];
        for threads in THREADS {
            std::env::set_var("DOOD_THREADS", threads);
            let run = |inc: bool, exec: &str| {
                run_schedule(cyclic_db(6), "N", "Next", "v", rules, subdbs, &ops, inc, exec)
            };
            let inc_compiled = run(true, "compiled");
            let inc_interp = run(true, "interp");
            let fresh = run(false, "compiled");
            assert_eq!(inc_compiled, inc_interp, "incremental compiled != interp");
            assert_eq!(inc_compiled, fresh, "incremental != fresh recompute");
            std::env::remove_var("DOOD_THREADS");
        }
    });
}

#[test]
fn closure_maintenance_incremental_equals_fresh_social() {
    let _g = lock();
    check("closure_maintenance_incremental_equals_fresh_social", CASES, |g| {
        let seed = g.range(0u64..100);
        let ops: Vec<(usize, usize)> =
            g.vec(3..8, |g| (g.range(0usize..4), g.range(0usize..64)));
        let rules: &[(&str, &str)] =
            &[("RS", "if context Person ^* then Reach (Person, Person_*)")];
        let build = || social::build_graph(social::SocialShape::small(), seed).0;
        let run = |inc: bool, exec: &str| {
            run_schedule(build(), "Person", "Follows", "score", rules, &["Reach"], &ops, inc, exec)
        };
        let inc_compiled = run(true, "compiled");
        let inc_interp = run(true, "interp");
        let fresh = run(false, "compiled");
        assert_eq!(inc_compiled, inc_interp, "incremental compiled != interp");
        assert_eq!(inc_compiled, fresh, "incremental != fresh recompute");
    });
}

/// Golden closure plans with the stats registry cleared (pure
/// schema-derived estimates): a cost-model change that moves the fan-out,
/// round, or reach estimates shows up here as a readable diff, with
/// `doodprof --plan` as the investigation tool.
#[test]
fn golden_closure_plans() {
    let _g = lock();
    stats::clear();
    let plan_of = |db: &Database, query: &str| {
        let reg = SubdbRegistry::new();
        let expr = Parser::parse_context_expr(query).unwrap();
        let resolved = resolve_context(&expr, db.schema(), &reg).unwrap();
        Evaluator::new(&resolved, db, &reg).unwrap().plan_handle().describe()
    };
    let social_db = social::build_graph(social::SocialShape::small(), 42).0;
    let cad_db = cad::build_bom(cad::BomShape::small(), 42).0;
    let unbounded = plan_of(&social_db, "Person ^*");
    let bounded = plan_of(&social_db, "Person ^2");
    let part = plan_of(&cad_db, "Part ^*");
    stats::clear();
    assert_eq!(
        unbounded,
        "plan mode=cost\n  span [0,1) anchor=Person cost=26 rows=26\n    scan Person est=26\n  closure ^* cycle=Person fan=1.15 est_rounds=23 est_reach=26\n",
        "social `^*` golden plan drifted:\n{unbounded}"
    );
    assert_eq!(
        bounded,
        "plan mode=cost\n  span [0,1) anchor=Person cost=26 rows=26\n    scan Person est=26\n  closure ^2 cycle=Person fan=1.15 est_rounds=2 est_reach=26\n",
        "social `^2` golden plan drifted:\n{bounded}"
    );
    assert_eq!(
        part,
        "plan mode=cost\n  span [0,1) anchor=Part cost=30 rows=30\n    scan Part est=30\n  closure ^* cycle=Part fan=0.93 est_rounds=30 est_reach=30\n",
        "cad `^*` golden plan drifted:\n{part}"
    );
}
