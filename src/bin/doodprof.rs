//! `doodprof` — EXPLAIN ANALYZE for `.dood` rule programs.
//!
//! ```text
//! doodprof [--builtin NAME | FILE.dood] [--seed N] [--metrics] [--json]
//!          [--plan] [--trace-out FILE] [--validate FILE]
//! ```
//!
//! Loads a rule program (a file, or a built-in workload program by name),
//! populates its builtin schema with a small seeded instance set, registers
//! the rules, then derives every `export` and runs every `query` under span
//! capture — printing one profile tree per derivation and query: per-operator
//! wall times, join input/output cardinalities, predicate selectivities,
//! subsumption-elimination counts, per-rule context/target sizes.
//!
//! * `--seed N` — population seed (default 42); profiles are deterministic
//!   per seed (wall times vary, cardinalities do not).
//! * `--metrics` — also enable the metrics registry and dump it (plus event
//!   log subscriber stats) after the run.
//! * `--json` — machine-readable output: one JSON object per profile (and
//!   per metric, under `--metrics`; per plan, under `--plan`).
//! * `--plan` — also print each compiled join pipeline (DESIGN.md §10):
//!   one block per executed `oql.join` span, with the planner's estimated
//!   cardinality next to the measured scanned/kept counts per stage, so
//!   misestimates are visible at a glance. Compiled closure fixpoints
//!   (DESIGN.md §11) get their own blocks: estimated vs. measured rounds
//!   and reach, plus per-round frontier sizes.
//! * `--trace-out FILE` — additionally stream every closed span to `FILE`
//!   as JSON lines (same format as `DOOD_TRACE=1`).
//! * `--flight` — keep the in-memory flight recorder populated during the
//!   run and print its merged ring (JSON lines plus a summary) afterwards
//!   (DESIGN.md §13). With `--validate`, switch to flight-tolerant
//!   validation instead (a bounded ring legally truncates forests).
//! * `--slowlog FILE` — don't profile; render a `DOOD_SLOWLOG_FILE`
//!   JSON-lines slow-query log as human-readable per-query reports.
//! * `--validate FILE` — don't profile; check that `FILE` is a well-formed
//!   JSON-lines trace (parseable, unique ids, children close before and
//!   nest inside their parents) and print its stats.

use dood::core::diag;
use dood::core::obs;
use dood::core::obs::profile::Profile;
use dood::rules::absint::{self, Analysis};
use dood::rules::program::{Program, SchemaRef};
use dood::rules::RuleEngine;
use dood::store::Database;
use dood::workload::programs;
use std::process::ExitCode;

const USAGE: &str = "usage: doodprof [--builtin NAME | FILE.dood] [--seed N] [--metrics] [--json] [--plan] [--trace-out FILE] [--flight] [--slowlog FILE] [--validate FILE]
  --builtin NAME    profile a built-in workload program
                    (university | company | cad | social)
  --seed N          population seed (default 42)
  --metrics         enable and dump the metrics registry after the run
  --json            machine-readable output (one JSON object per line)
  --plan            also print each compiled join pipeline with estimated
                    vs. measured cardinalities per stage, and each closure
                    fixpoint with per-round frontier sizes
  --trace-out FILE  also stream spans to FILE as JSON lines
  --flight          keep the flight recorder on and dump its ring after the
                    run; with --validate, use flight-tolerant validation
  --slowlog FILE    render a JSON-lines slow-query log as text and exit
  --validate FILE   validate a JSON-lines trace export and exit";

fn main() -> ExitCode {
    let mut file: Option<String> = None;
    let mut builtin: Option<String> = None;
    let mut seed: u64 = 42;
    let mut metrics = false;
    let mut json = false;
    let mut plan = false;
    let mut trace_out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut flight = false;
    let mut slowlog: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--builtin" => match args.next() {
                Some(n) => builtin = Some(n),
                None => return usage_err("`--builtin` needs a name"),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => return usage_err("`--seed` needs an integer"),
            },
            "--metrics" => metrics = true,
            "--json" => json = true,
            "--plan" => plan = true,
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(p),
                None => return usage_err("`--trace-out` needs a path"),
            },
            "--validate" => match args.next() {
                Some(p) => validate = Some(p),
                None => return usage_err("`--validate` needs a path"),
            },
            "--flight" => flight = true,
            "--slowlog" => match args.next() {
                Some(p) => slowlog = Some(p),
                None => return usage_err("`--slowlog` needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_err(&format!("unknown flag `{other}`"));
            }
            f => {
                if file.replace(f.to_string()).is_some() {
                    return usage_err("at most one FILE.dood");
                }
            }
        }
    }

    if let Some(path) = validate {
        return run_validate(&path, flight);
    }
    if let Some(path) = slowlog {
        return run_slowlog(&path, json);
    }

    let (name, src) = match (&builtin, &file) {
        (Some(n), None) => {
            match programs::all().into_iter().find(|(pn, _)| pn == n) {
                Some((pn, text)) => (format!("builtin:{pn}"), text.to_string()),
                None => return usage_err(&format!("unknown builtin program `{n}`")),
            }
        }
        (None, Some(f)) => match std::fs::read_to_string(f) {
            Ok(text) => (f.clone(), text),
            Err(e) => {
                eprintln!("doodprof: {f}: {e}");
                return ExitCode::from(2);
            }
        },
        _ => return usage_err("need exactly one of --builtin NAME or FILE.dood"),
    };

    let (program, diags) = Program::parse(&src);
    if diag::has_errors(&diags) {
        eprintln!("{}", diag::render_all(&diags, &name, &src));
        return ExitCode::FAILURE;
    }
    let db = match load_database(&program, &builtin, seed) {
        Ok(db) => db,
        Err(msg) => {
            eprintln!("doodprof: {name}: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if metrics {
        obs::set_metrics_enabled(true);
    }
    if flight {
        obs::recorder::set_enabled(true);
    }
    if let Some(path) = &trace_out {
        if let Err(e) = obs::trace::stream_to_path(path) {
            eprintln!("doodprof: {path}: {e}");
            return ExitCode::from(2);
        }
    }

    let mut engine = RuleEngine::new(db);
    match engine.register(&program) {
        Ok(ds) => {
            if !ds.is_empty() {
                eprintln!("{}", diag::render_all(&ds, &name, &src));
            }
        }
        Err(e) => {
            eprintln!("doodprof: {name}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // `--plan` adds a static column: the abstract interpreter's worst-case
    // row bounds over a snapshot of the loaded extents, matched to each
    // join's slot span so static / estimated / measured line up per stage.
    let analysis = plan.then(|| {
        let mut ext: dood::core::fxhash::FxHashSet<String> = Default::default();
        ext.extend(program.externs.iter().cloned());
        absint::analyze_bounds(
            &program,
            engine.db().schema(),
            &ext,
            &absint::CardEnv::from_db(engine.db()),
        )
    });

    let mut failed = false;
    for (export, _) in &program.exports {
        let (rows, spans) = obs::trace::capture(|| engine.subdb(export).map(|sd| sd.len()));
        match rows {
            Ok(rows) => {
                let profile = Profile::single(&spans);
                emit("export", export, rows, &profile, json);
                if plan {
                    emit_plans("export", export, &profile, json, analysis.as_ref());
                }
            }
            Err(e) => {
                eprintln!("doodprof: export {export}: {e}");
                failed = true;
            }
        }
    }
    for pq in &program.queries {
        match engine.run_query_profiled(&pq.query) {
            Ok((out, profile)) => {
                emit("query", &pq.name, out.table.len(), &profile, json);
                if plan {
                    emit_plans("query", &pq.name, &profile, json, analysis.as_ref());
                }
            }
            Err(e) => {
                eprintln!("doodprof: query {}: {e}", pq.name);
                failed = true;
            }
        }
    }

    if metrics {
        dump_metrics(&engine, json);
    }
    if flight {
        dump_flight(json);
    }
    obs::trace::flush_stream();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("doodprof: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Print one profiled section: a header + tree in text mode, one JSON
/// object in `--json` mode.
fn emit(kind: &str, name: &str, rows: usize, profile: &Profile, json: bool) {
    if json {
        println!(
            "{{\"kind\":\"{kind}\",\"name\":\"{}\",\"rows\":{rows},\"profile\":{}}}",
            obs::json_escape(name),
            profile.to_json()
        );
    } else {
        println!("== {kind} {name} ==  rows={rows}");
        print!("{}", profile.render());
        println!();
    }
}

/// `--plan`: extract every compiled join pipeline from a profile tree —
/// the `oql.join` nodes carrying `oql.plan.scan` / `oql.plan.step`
/// children — plus every compiled closure fixpoint (`oql.closure` with
/// its per-round frontier children), and print static (abstract
/// interpretation) vs. estimated (cost model) vs. measured cardinalities
/// per stage.
fn emit_plans(kind: &str, name: &str, profile: &Profile, json: bool, analysis: Option<&Analysis>) {
    // Each join is attributed to the nearest enclosing `rules.rule` span's
    // label (the rule name) so its slot indices can be matched against the
    // abstract interpreter's bounds; joins outside any rule span (query
    // contexts) belong to the profiled section itself.
    fn collect<'a>(
        p: &'a Profile,
        owner: &'a str,
        out: &mut Vec<(&'a Profile, &'a str)>,
        closures: &mut Vec<&'a Profile>,
    ) {
        let owner = if p.name == "rules.rule" {
            p.label.as_deref().unwrap_or(owner)
        } else {
            owner
        };
        if p.name == "oql.join" && p.children.iter().any(|c| c.name.starts_with("oql.plan.")) {
            out.push((p, owner));
        }
        if p.name == "oql.closure" {
            closures.push(p);
        }
        for c in &p.children {
            collect(c, owner, out, closures);
        }
    }
    let mut joins = Vec::new();
    let mut closures = Vec::new();
    collect(profile, name, &mut joins, &mut closures);
    for (ji, (j, owner)) in joins.iter().enumerate() {
        let a = |k: &str| j.attr(k).unwrap_or(-1);
        let bounds = analysis.and_then(|an| an.bounds_for(owner));
        // The static bound after each stage: the bound of the contiguous
        // slot range the pipeline has covered so far.
        let mut cur: Option<(usize, usize)> = None;
        let mut static_of = |slot: i64| -> Option<f64> {
            let b = bounds?;
            let s = usize::try_from(slot).ok()?;
            if s >= b.slot_hi.len() {
                return None;
            }
            let (lo, hi) = match cur {
                None => (s, s + 1),
                Some((lo, hi)) => (lo.min(s), hi.max(s + 1)),
            };
            cur = Some((lo, hi));
            Some(b.range_hi(lo, hi))
        };
        if json {
            let mut stages = String::new();
            for (si, c) in
                j.children.iter().filter(|c| c.name.starts_with("oql.plan.")).enumerate()
            {
                if si > 0 {
                    stages.push(',');
                }
                let op = c.name.strip_prefix("oql.plan.").unwrap_or(&c.name);
                stages.push_str(&format!(
                    "{{\"op\":\"{}\",\"label\":\"{}\",\"slot\":{},\"est\":{},\"rows\":{}",
                    obs::json_escape(op),
                    obs::json_escape(c.label.as_deref().unwrap_or("")),
                    c.attr("slot").unwrap_or(-1),
                    c.attr("est").unwrap_or(-1),
                    c.attr("rows").unwrap_or(-1),
                ));
                if let Some(s) = c.attr("scanned") {
                    stages.push_str(&format!(",\"scanned\":{s}"));
                }
                if let Some(st) = c.attr("slot").and_then(&mut static_of) {
                    if st.is_finite() {
                        stages.push_str(&format!(",\"static\":{}", st.round() as i64));
                    }
                }
                stages.push('}');
            }
            println!(
                "{{\"kind\":\"plan\",\"of\":\"{kind}\",\"name\":\"{}\",\"owner\":\"{}\",\
                 \"join\":{ji},\"lo\":{},\"hi\":{},\"anchor\":{},\"rows_in\":{},\
                 \"rows_out\":{},\"stages\":[{stages}]}}",
                obs::json_escape(name),
                obs::json_escape(owner),
                a("lo"),
                a("hi"),
                a("anchor"),
                a("rows_in"),
                a("rows_out"),
            );
        } else {
            println!(
                "-- plan {kind} {name} join#{ji}: span [{},{}) anchor=slot{} rows {} -> {}",
                a("lo"),
                a("hi"),
                a("anchor"),
                a("rows_in"),
                a("rows_out"),
            );
            for c in j.children.iter().filter(|c| c.name.starts_with("oql.plan.")) {
                let label = c.label.as_deref().unwrap_or("?");
                let stat = c
                    .attr("slot")
                    .and_then(&mut static_of)
                    .map(|s| format!(" static<={}", absint::show_bound(s)))
                    .unwrap_or_default();
                match c.name.as_str() {
                    "oql.plan.scan" => println!(
                        "   scan {label} {stat} est={} rows={}",
                        c.attr("est").unwrap_or(-1),
                        c.attr("rows").unwrap_or(-1),
                    ),
                    _ => println!(
                        "   step {label} {stat} est={} scanned={} rows={}",
                        c.attr("est").unwrap_or(-1),
                        c.attr("scanned").unwrap_or(-1),
                        c.attr("rows").unwrap_or(-1),
                    ),
                }
            }
            println!();
        }
    }
    for (ci, cl) in closures.iter().enumerate() {
        let a = |k: &str| cl.attr(k).unwrap_or(-1);
        let rounds: Vec<&Profile> =
            cl.children.iter().filter(|c| c.name == "oql.closure.round").collect();
        if json {
            let mut rs = String::new();
            for (ri, r) in rounds.iter().enumerate() {
                if ri > 0 {
                    rs.push(',');
                }
                rs.push_str(&format!(
                    "{{\"round\":{},\"frontier\":{},\"new\":{}}}",
                    r.attr("round").unwrap_or(-1),
                    r.attr("frontier").unwrap_or(-1),
                    r.attr("new").unwrap_or(-1),
                ));
            }
            println!(
                "{{\"kind\":\"closure\",\"of\":\"{kind}\",\"name\":\"{}\",\"closure\":{ci},\
                 \"roots\":{},\"est_rounds\":{},\"rounds\":{},\"est_reach\":{},\"reach\":{},\
                 \"steps\":{},\"frontiers\":[{rs}]}}",
                obs::json_escape(name),
                a("roots"),
                a("est_rounds"),
                a("rounds"),
                a("est_reach"),
                a("reach"),
                a("steps"),
            );
        } else {
            println!(
                "-- closure {kind} {name} #{ci}: roots={} rounds {} (est {}) reach {} (est {}) steps={}",
                a("roots"),
                a("rounds"),
                a("est_rounds"),
                a("reach"),
                a("est_reach"),
                a("steps"),
            );
            for r in &rounds {
                println!(
                    "   round {}  frontier={} new={}",
                    r.attr("round").unwrap_or(-1),
                    r.attr("frontier").unwrap_or(-1),
                    r.attr("new").unwrap_or(-1),
                );
            }
            println!();
        }
    }
}

/// Build the instance database the program runs against.
fn load_database(
    program: &Program,
    builtin: &Option<String>,
    seed: u64,
) -> Result<Database, String> {
    if let Some(n) = builtin {
        return programs::builtin_database(n, seed)
            .ok_or_else(|| format!("no builtin population for `{n}`"));
    }
    match &program.schema {
        Some(SchemaRef::Builtin { name, .. }) => programs::builtin_database(name, seed)
            .ok_or_else(|| format!("no builtin population for schema `{name}`")),
        Some(SchemaRef::Inline { text, .. }) => {
            // An inline schema has no generator: profile over an empty
            // extension (cardinalities will be zero, the plan shape won't).
            dood::core::schema::text::parse_schema(text)
                .map(Database::new)
                .map_err(|e| format!("inline schema: {e}"))
        }
        None => Err("program has no `schema` directive".to_string()),
    }
}

/// Dump the metrics registry and the event log's subscriber accounting.
fn dump_metrics(engine: &RuleEngine, json: bool) {
    let snap = obs::metrics::snapshot();
    if json {
        print!("{}", obs::metrics::to_json_lines(&snap));
        for (name, acked, lag) in engine.db().events().subscriber_stats() {
            println!(
                "{{\"metric\":\"store.events.subscriber\",\"name\":\"{}\",\"acked\":{acked},\"lag\":{lag}}}",
                obs::json_escape(&name)
            );
        }
    } else {
        println!("-- metrics --");
        print!("{}", obs::metrics::render_text(&snap));
        let log = engine.db().events();
        println!(
            "events: seq={} retained={} dropped={} subscribers={}",
            log.seq(),
            log.retained(),
            log.dropped(),
            log.subscriber_count()
        );
        for (name, acked, lag) in log.subscriber_stats() {
            println!("  subscriber {name}: acked={acked} lag={lag}");
        }
    }
}

/// `--validate`: parse and structurally check a JSON-lines trace export.
/// With `--flight`, use the flight-tolerant mode: a bounded ring legally
/// drops span ancestors, so escaped children are severed into extra roots
/// instead of rejected.
fn run_validate(path: &str, flight: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("doodprof: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mode = if flight {
        obs::trace::ValidateMode::Flight
    } else {
        obs::trace::ValidateMode::Strict
    };
    match obs::trace::validate_trace_with(&text, mode) {
        Ok(stats) => {
            println!(
                "{path}: ok — {} span(s), {} root(s), max depth {}, {} severed",
                stats.spans, stats.roots, stats.max_depth, stats.severed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--flight` after a profiling run: print the recorder's merged ring —
/// JSON span lines in `--json` mode, a rendered summary plus the lines in
/// text mode — and a trailing `flight:` summary with the drop count.
fn dump_flight(json: bool) {
    let (records, dropped) = obs::recorder::dump();
    if !json {
        println!("-- flight recorder --");
    }
    for r in &records {
        println!("{}", r.to_json_line());
    }
    let summary = format!("flight: {} span(s) in ring, {} overwritten", records.len(), dropped);
    if json {
        println!(
            "{{\"kind\":\"flight\",\"spans\":{},\"overwritten\":{dropped}}}",
            records.len()
        );
    } else {
        println!("{summary}");
    }
}

/// `--slowlog FILE`: render a slow-query log (JSON lines of
/// [`obs::account::QueryReport`]) as human-readable per-query blocks, or
/// echo the validated JSON in `--json` mode.
fn run_slowlog(path: &str, json: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("doodprof: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match obs::account::QueryReport::from_json_line(line) {
            Ok(rep) => {
                n += 1;
                if json {
                    println!("{}", rep.to_json_line());
                } else {
                    print!("{}", rep.render_text());
                }
            }
            Err(e) => {
                eprintln!("{path}:{}: bad slowlog record: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    if !json {
        println!("{path}: {n} slow record(s)");
    }
    ExitCode::SUCCESS
}
