//! A hermetic, std-only work-chunking thread pool for the parallel
//! evaluation paths (DESIGN.md §6).
//!
//! The pool is deliberately minimal: [`ChunkPool::par_chunk_map`] splits a
//! slice into contiguous chunks, hands chunk *indices* to scoped
//! `std::thread` workers through an atomic cursor, and returns the per-chunk
//! results **in chunk order**. Because chunk boundaries depend only on input
//! length (never on thread count or scheduling), a caller that concatenates
//! or merges the returned buffers observes the same result at every thread
//! count — determinism by merge order, property-tested in the evaluators.
//!
//! Threads are scoped (`std::thread::scope`), so borrowed data (`&Database`,
//! `&Evaluator`) flows into workers without `'static` bounds or `Arc`
//! plumbing, and a worker panic propagates to the caller on join.
//!
//! Tuning:
//! * `DOOD_THREADS` — overrides the worker count for every pool constructed
//!   via [`ChunkPool::from_env`] (`1` forces the sequential path);
//! * [`ChunkPool::cutoff`] — inputs at or below this length run inline on
//!   the calling thread (spawning threads for tiny inputs costs more than
//!   the work itself; the cutoff is swept by ablation E13).

use crate::obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default input-length cutoff below which work runs inline. Chosen by the
/// E13 ablation sweep: thread spawn costs tens of microseconds, so inputs
/// that evaluate faster than that must not fan out.
pub const DEFAULT_CUTOFF: usize = 256;

/// How many chunks each worker should get on average, so that chunks are
/// small enough to rebalance skewed work but large enough to amortize the
/// cursor increment.
const CHUNKS_PER_THREAD: usize = 4;

/// The machine's available parallelism, cached for the process lifetime.
fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// The configured worker count: `DOOD_THREADS` if set to a positive
/// integer, else the machine's available parallelism. Read on every call so
/// benchmarks can vary the override between runs.
pub fn configured_threads() -> usize {
    match std::env::var("DOOD_THREADS") {
        Ok(s) => s.trim().parse().ok().filter(|&n| n >= 1).unwrap_or_else(hardware_threads),
        Err(_) => hardware_threads(),
    }
}

/// A work-chunking pool: a worker count plus a sequential-fallback cutoff.
/// Cheap to construct (two integers); workers are spawned per call and
/// scoped to it.
#[derive(Debug, Clone, Copy)]
pub struct ChunkPool {
    threads: usize,
    cutoff: usize,
}

impl ChunkPool {
    /// A pool sized by [`configured_threads`] (`DOOD_THREADS` override,
    /// hardware default).
    pub fn from_env() -> Self {
        Self::with_threads(configured_threads())
    }

    /// A pool with an explicit worker count (benchmarks, tests).
    pub fn with_threads(threads: usize) -> Self {
        ChunkPool { threads: threads.max(1), cutoff: DEFAULT_CUTOFF }
    }

    /// Set the sequential-fallback cutoff: inputs of at most this length
    /// run inline on the calling thread.
    pub fn cutoff(mut self, cutoff: usize) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether an input of `len` items would run on the sequential path.
    pub fn is_sequential(&self, len: usize) -> bool {
        self.threads <= 1 || len <= self.cutoff
    }

    /// The chunk length used for an input of `len` items. Depends only on
    /// the input length, never on the thread count, so chunk boundaries —
    /// and therefore chunk-local results — are identical at every thread
    /// count. The divisor is the *hardware* thread ceiling to keep the
    /// geometry stable under `DOOD_THREADS` overrides.
    fn chunk_len(&self, len: usize) -> usize {
        let target_chunks = hardware_threads().max(2) * CHUNKS_PER_THREAD;
        len.div_ceil(target_chunks).max(1)
    }

    /// Map `f` over contiguous chunks of `items`, returning per-chunk
    /// results in chunk order. Sequential (inline, no spawning) when the
    /// pool has one thread or the input is at or below the cutoff;
    /// otherwise chunks are executed by up-to-`threads` scoped workers
    /// pulling indices from an atomic cursor.
    pub fn par_chunk_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        if self.is_sequential(items.len()) {
            return vec![f(items)];
        }
        let chunk_len = self.chunk_len(items.len());
        let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
        if chunks.len() == 1 {
            return vec![f(chunks[0])];
        }
        let workers = self.threads.min(chunks.len());
        let mut sp = obs::trace::span("pool.par_chunk_map");
        sp.attr("items", items.len() as i64);
        sp.attr("chunks", chunks.len() as i64);
        sp.attr("threads", workers as i64);
        let parent = sp.id();
        let metered = obs::metrics_enabled();
        if metered {
            obs::metrics::counter("pool.par_calls").inc();
            obs::metrics::counter("pool.chunks").add(chunks.len() as u64);
            obs::metrics::gauge("pool.threads.peak").set_max(workers as i64);
        }
        let cursor = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let chunks = &chunks;
                    let f = &f;
                    s.spawn(move || {
                        let busy_start = if metered { Some(obs::now_ns()) } else { None };
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(chunk) = chunks.get(i) else { break };
                            let mut csp = obs::trace::span_under("pool.chunk", parent);
                            csp.attr("chunk", i as i64);
                            csp.attr("len", chunk.len() as i64);
                            let t0 = if metered { Some(obs::now_ns()) } else { None };
                            let r = f(chunk);
                            if let Some(t0) = t0 {
                                obs::metrics::histogram("pool.chunk_ns")
                                    .record(obs::now_ns().saturating_sub(t0));
                            }
                            drop(csp);
                            out.push((i, r));
                        }
                        if let Some(t0) = busy_start {
                            obs::metrics::histogram("pool.worker_busy_ns")
                                .record(obs::now_ns().saturating_sub(t0));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Map `f` over the items of a slice — one work unit per item — and
    /// return results in item order. For small sets of coarse-grained jobs
    /// (e.g. one rule application each); the cutoff does not apply, only
    /// `threads <= 1` or a single item short-circuits to inline execution.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let workers = self.threads.min(items.len());
        let mut sp = obs::trace::span("pool.par_map");
        sp.attr("items", items.len() as i64);
        sp.attr("threads", workers as i64);
        let parent = sp.id();
        if obs::metrics_enabled() {
            obs::metrics::counter("pool.par_calls").inc();
            obs::metrics::gauge("pool.threads.peak").set_max(workers as i64);
        }
        let cursor = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let f = &f;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            let mut isp = obs::trace::span_under("pool.item", parent);
                            isp.attr("item", i as i64);
                            let r = f(item);
                            drop(isp);
                            out.push((i, r));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

impl Default for ChunkPool {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_no_chunks() {
        let pool = ChunkPool::with_threads(4).cutoff(0);
        let out: Vec<usize> = pool.par_chunk_map(&[] as &[u32], |c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_path_is_one_chunk() {
        let pool = ChunkPool::with_threads(1);
        let items: Vec<u32> = (0..100).collect();
        let out = pool.par_chunk_map(&items, |c| c.to_vec());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], items);
    }

    #[test]
    fn cutoff_keeps_small_inputs_inline() {
        let pool = ChunkPool::with_threads(8).cutoff(1000);
        let items: Vec<u32> = (0..100).collect();
        assert!(pool.is_sequential(items.len()));
        assert_eq!(pool.par_chunk_map(&items, |c| c.len()), vec![100]);
    }

    #[test]
    fn concatenated_chunks_equal_sequential_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [2, 3, 4, 8] {
            let pool = ChunkPool::with_threads(threads).cutoff(0);
            let par: Vec<u64> = pool
                .par_chunk_map(&items, |c| c.iter().map(|x| x * 3).collect::<Vec<_>>())
                .concat();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn chunk_geometry_is_thread_count_independent() {
        let items: Vec<u32> = (0..5_000).collect();
        let lens =
            |t: usize| ChunkPool::with_threads(t).cutoff(0).par_chunk_map(&items, |c| c.len());
        let base = lens(2);
        assert_eq!(base.iter().sum::<usize>(), items.len());
        for t in [3, 4, 8] {
            assert_eq!(lens(t), base, "chunk layout must not depend on threads");
        }
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<u32> = (0..257).collect();
        for threads in [1, 2, 4] {
            let pool = ChunkPool::with_threads(threads);
            let out = pool.par_map(&items, |&x| x + 1);
            assert_eq!(out, (1..258).collect::<Vec<u32>>(), "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panic_propagates() {
        let pool = ChunkPool::with_threads(2).cutoff(0);
        let items: Vec<u32> = (0..1000).collect();
        pool.par_chunk_map(&items, |c| {
            if c.iter().any(|&x| x == 700) {
                panic!("boom");
            }
            c.len()
        });
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
