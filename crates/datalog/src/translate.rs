//! Translation of an OO database into flat relations — the encoding a
//! relational-deductive system would use for the same data (paper §1), used
//! for apples-to-apples baseline comparisons:
//!
//! * each E-class `C` becomes a unary predicate `class_C(oid)`;
//! * each association `a` from `F` becomes a binary predicate
//!   `assoc_F_a(from, to)` (generalization links included — they are the
//!   identity links a relational encoding must also carry);
//! * each descriptive attribute becomes `attr_C_a(oid, valsym)` with values
//!   interned into a symbol table.

use crate::db::FactDb;
use crate::program::{Pred, Program};
use dood_core::fxhash::FxHashMap;
use dood_core::value::Value;
use dood_store::Database;

/// The outcome of translating a database.
#[derive(Debug)]
pub struct Translated {
    /// The flat facts.
    pub edb: FactDb,
    /// Predicate interner (extend with rules afterwards).
    pub program: Program,
    /// Value symbol table (attribute values → symbols).
    pub symbols: SymbolTable,
}

/// Interns attribute values as `u64` symbols.
#[derive(Debug, Default)]
pub struct SymbolTable {
    by_repr: FxHashMap<String, u64>,
    reprs: Vec<String>,
}

impl SymbolTable {
    /// Intern a value (by canonical string form).
    pub fn intern(&mut self, v: &Value) -> u64 {
        let repr = format!("{v:?}");
        if let Some(&s) = self.by_repr.get(&repr) {
            return s;
        }
        let s = self.reprs.len() as u64;
        self.reprs.push(repr.clone());
        self.by_repr.insert(repr, s);
        s
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.reprs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.reprs.is_empty()
    }
}

/// Predicate name for a class extent.
pub fn class_pred_name(db: &Database, class: dood_core::ids::ClassId) -> String {
    format!("class_{}", db.schema().class(class).name)
}

/// Predicate name for an association.
pub fn assoc_pred_name(db: &Database, assoc: dood_core::ids::AssocId) -> String {
    let d = db.schema().assoc(assoc);
    format!("assoc_{}_{}", db.schema().class(d.from).name, d.name)
}

/// Translate the full database.
pub fn translate(db: &Database) -> Translated {
    let mut program = Program::new();
    let mut edb = FactDb::new();
    let mut symbols = SymbolTable::default();
    let schema = db.schema();

    // Class extents.
    for cdef in schema.e_classes() {
        let p = program.pred(&class_pred_name(db, cdef.id));
        for oid in db.extent(cdef.id) {
            edb.insert(p, vec![oid.raw()]);
        }
    }
    // Associations (E→E links, including generalization identity links).
    for adef in schema.assocs() {
        if schema.is_attribute(adef.id) {
            continue;
        }
        let p = program.pred(&assoc_pred_name(db, adef.id));
        for (from, to) in db.links(adef.id) {
            edb.insert(p, vec![from.raw(), to.raw()]);
        }
    }
    // Attributes.
    for cdef in schema.e_classes() {
        for attr in schema.own_attrs(cdef.id) {
            let p = program.pred(&format!(
                "attr_{}_{}",
                cdef.name,
                schema.assoc(attr).name
            ));
            for oid in db.extent(cdef.id) {
                let v = db.attr_direct(oid, attr);
                if !v.is_null() {
                    let sym = symbols.intern(&v);
                    edb.insert(p, vec![oid.raw(), sym]);
                }
            }
        }
    }
    Translated { edb, program, symbols }
}

/// Intern the predicate for an association in a translated program.
pub fn assoc_pred(t: &mut Translated, db: &Database, assoc: dood_core::ids::AssocId) -> Pred {
    let name = assoc_pred_name(db, assoc);
    t.program.pred(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::DType;

    #[test]
    fn translation_covers_extents_links_attrs() {
        let mut b = SchemaBuilder::new();
        b.e_class("Person");
        b.e_class("Student");
        b.e_class("Dept");
        b.d_class("name", DType::Str);
        b.attr("Person", "name");
        b.generalize("Person", "Student");
        b.aggregate_single_named("Student", "Dept", "Major");
        let mut db = Database::new(b.build().unwrap());
        let person = db.schema().class_by_name("Person").unwrap();
        let student = db.schema().class_by_name("Student").unwrap();
        let dept = db.schema().class_by_name("Dept").unwrap();
        let major = db.schema().own_link_by_name(student, "Major").unwrap();
        let p = db.new_object(person).unwrap();
        db.set_attr(p, "name", Value::str("ann")).unwrap();
        let s = db.specialize(p, student).unwrap();
        let d = db.new_object(dept).unwrap();
        db.associate(major, s, d).unwrap();

        let t = translate(&db);
        let cp = t.program.try_pred("class_Person").unwrap();
        assert_eq!(t.edb.count(cp), 1);
        let mp = t.program.try_pred("assoc_Student_Major").unwrap();
        assert!(t.edb.contains(mp, &[s.raw(), d.raw()]));
        // Generalization link translated too.
        let gp = t.program.try_pred("assoc_Person_G_Student").unwrap();
        assert!(t.edb.contains(gp, &[p.raw(), s.raw()]));
        let ap = t.program.try_pred("attr_Person_name").unwrap();
        assert_eq!(t.edb.count(ap), 1);
        assert_eq!(t.symbols.len(), 1);
    }

    #[test]
    fn symbols_dedupe() {
        let mut st = SymbolTable::default();
        let a = st.intern(&Value::str("x"));
        let b = st.intern(&Value::str("x"));
        let c = st.intern(&Value::Int(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(st.len(), 2);
        assert!(!st.is_empty());
    }
}
