//! Ablations of DESIGN.md's marked (✦) design decisions:
//!
//! * **E9** — join-order planner: the cost-based planner vs the forced
//!   orders it replaced (min-extent anchor, naive leftmost anchor), both of
//!   which remain available at runtime via `DOOD_PLANNER=minextent|leftmost`;
//! * **E10** — ordered attribute indexes vs full extent scans for
//!   intra-class conditions;
//! * **E11** — scoped incremental (delta) forward maintenance vs full
//!   re-derivation;
//! * **E13** — the parallel span join's sequential-fallback cutoff
//!   (`ChunkPool::cutoff`): sweep the anchor-candidate threshold below
//!   which evaluation stays inline.
//!
//! ```sh
//! cargo run --release -p dood-bench --bin ablations
//! ```

use dood_bench::{pipeline_engine, pipeline_update, time_us};
use dood_core::pool::ChunkPool;
use dood_core::subdb::SubdbRegistry;
use dood_oql::parser::Parser;
use dood_oql::resolve::resolve_context;
use dood_oql::{Evaluator, PlannerMode};
use dood_rules::EvalPolicy;
use dood_workload::university;

fn main() {
    println!("# dood ablation report\n");

    // ------------------------------------------------------------------
    // E9 — join order. A skewed chain with a selective predicate at the
    // right end: the cost-based planner anchors at the conditioned
    // Department and works leftward; min-extent picks the smallest raw
    // extent; leftmost starts from the populous Student.
    // ------------------------------------------------------------------
    println!("## E9 — join-order planner: cost-based vs forced orders\n");
    println!("| scale | patterns | cost (us) | min-extent (us) | leftmost (us) | vs best forced |");
    println!("|---|---|---|---|---|---|");
    for factor in [1usize, 2, 4] {
        let db = university::populate(university::Size::scaled(factor), 13);
        let reg = SubdbRegistry::new();
        let expr = Parser::parse_context_expr(
            "Student * Section * Course * Department [name = 'CIS']",
        )
        .unwrap();
        let resolved = resolve_context(&expr, db.schema(), &reg).unwrap();
        let run = |mode: PlannerMode| {
            Evaluator::new(&resolved, &db, &reg)
                .unwrap()
                .with_planner(mode)
                .eval("x")
                .len()
        };
        let n_cost = run(PlannerMode::CostBased);
        let n_min = run(PlannerMode::MinExtent);
        let n_left = run(PlannerMode::Leftmost);
        assert_eq!(n_cost, n_min, "planner must not change results");
        assert_eq!(n_cost, n_left, "planner must not change results");
        let t_cost = time_us(5, || run(PlannerMode::CostBased));
        let t_min = time_us(5, || run(PlannerMode::MinExtent));
        let t_left = time_us(5, || run(PlannerMode::Leftmost));
        let best_forced = t_min.min(t_left);
        println!(
            "| {factor} | {n_cost} | {t_cost:.0} | {t_min:.0} | {t_left:.0} | {:.2}x |",
            best_forced / t_cost
        );
    }

    // ------------------------------------------------------------------
    // E10 — attribute indexes for intra-class conditions.
    // ------------------------------------------------------------------
    println!("\n## E10 — ordered attribute index vs full extent scan\n");
    println!("| scale | hits | scan (us) | indexed (us) | speedup |");
    println!("|---|---|---|---|---|");
    for factor in [1usize, 2, 4] {
        let mut db = university::populate(university::Size::scaled(factor), 13);
        let reg = SubdbRegistry::new();
        let oql = dood_oql::Oql::new();
        // Selective predicate: one course-number bucket.
        let q = "context Section * Course [c# >= 6000] select title";
        let n = oql.query(&db, &reg, q).unwrap().subdb.len();
        let t_scan = time_us(5, || oql.query(&db, &reg, q).unwrap().subdb.len());
        let course = db.schema().class_by_name("Course").unwrap();
        db.create_attr_index(course, "c#").unwrap();
        let n_ix = oql.query(&db, &reg, q).unwrap().subdb.len();
        assert_eq!(n, n_ix, "index must not change results");
        let t_ix = time_us(5, || oql.query(&db, &reg, q).unwrap().subdb.len());
        println!("| {factor} | {n} | {t_scan:.0} | {t_ix:.0} | {:.2}x |", t_scan / t_ix);
    }

    // ------------------------------------------------------------------
    // E11 — incremental vs full forward maintenance.
    // ------------------------------------------------------------------
    println!("\n## E11 — delta maintenance vs full re-derivation (per update)\n");
    println!("| employees | full (us) | incremental (us) | speedup |");
    println!("|---|---|---|---|");
    for employees in [100usize, 400, 1600] {
        let mk = |incremental: bool| {
            let mut e = pipeline_engine(employees, 5);
            for s in ["REa", "REb", "REc", "REd"] {
                e.set_policy(s, EvalPolicy::PreEvaluated);
            }
            e.set_incremental(incremental);
            e.query("context REd:Department").unwrap();
            e
        };
        // Correctness check outside timing.
        {
            let mut inc = mk(true);
            let mut full = mk(false);
            pipeline_update(&mut inc, 7);
            pipeline_update(&mut full, 7);
            inc.propagate().unwrap();
            full.propagate().unwrap();
            for s in ["REa", "REb"] {
                assert_eq!(
                    inc.registry().subdb(s).unwrap().to_vec(),
                    full.registry().subdb(s).unwrap().to_vec()
                );
            }
        }
        let mut i = 0usize;
        let mut full_engine = mk(false);
        let t_full = time_us(5, || {
            i += 1;
            pipeline_update(&mut full_engine, i);
            full_engine.propagate().unwrap().len()
        });
        let mut inc_engine = mk(true);
        let t_inc = time_us(5, || {
            i += 1;
            pipeline_update(&mut inc_engine, i);
            inc_engine.propagate().unwrap().len()
        });
        println!("| {employees} | {t_full:.0} | {t_inc:.0} | {:.2}x |", t_full / t_inc);
    }

    // ------------------------------------------------------------------
    // E13 — chunk-size cutoff for the parallel span join. A 4-thread pool
    // is forced so the cutoff (not the machine's core count) decides
    // whether the chunked path engages; `seq` rows pin the single-thread
    // baseline the cutoff falls back to.
    // ------------------------------------------------------------------
    println!("\n## E13 — parallel span-join cutoff sweep (4-thread pool)\n");
    println!("| scale | candidates | cutoff | query (us) | vs seq |");
    println!("|---|---|---|---|---|");
    for factor in [4usize, 16] {
        let db = university::populate(university::Size::scaled(factor), 13);
        let reg = SubdbRegistry::new();
        let expr = Parser::parse_context_expr("Teacher * Section * Course").unwrap();
        let resolved = resolve_context(&expr, db.schema(), &reg).unwrap();
        let teacher = db.schema().class_by_name("Teacher").unwrap();
        let candidates = db.extent_size(teacher);
        let run = |pool: ChunkPool| {
            Evaluator::new(&resolved, &db, &reg).unwrap().with_pool(pool).eval("x").len()
        };
        let n_seq = run(ChunkPool::with_threads(1));
        let t_seq = time_us(5, || run(ChunkPool::with_threads(1)));
        println!("| {factor} | {candidates} | seq | {t_seq:.0} | 1.00x |");
        for cutoff in [0usize, 64, 256, 1024, 4096] {
            let pool = ChunkPool::with_threads(4).cutoff(cutoff);
            assert_eq!(run(pool), n_seq, "cutoff must not change results");
            let t = time_us(5, || run(pool));
            println!("| {factor} | {candidates} | {cutoff} | {t:.0} | {:.2}x |", t_seq / t);
        }
    }

    println!("\nDone.");
}
