//! The university application domain of paper Fig. 2.1, as an OSAM* schema
//! plus a scalable, seeded population generator.
//!
//! Classes: `Person ⊒ {Student, Teacher}`, `Student ⊒ Grad`,
//! `Grad ⊒ {TA, RA}`, `Teacher ⊒ {TA, Faculty}` (TA is the paper's
//! multiple-inheritance diamond), plus `Department`, `Course` (with the
//! `Prereq` self-association), `Section`, `Transcript` and `Advising`.

use dood_core::ids::{ClassId, Oid};
use dood_core::schema::{Schema, SchemaBuilder};
use dood_core::value::{DType, Value};
use dood_store::Database;
use dood_core::rng::Rng;

/// Build the Fig. 2.1 schema.
pub fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    for c in [
        "Person", "Student", "Teacher", "Grad", "TA", "RA", "Faculty", "Department", "Course",
        "Section", "Transcript", "Advising",
    ] {
        b.e_class(c);
    }
    b.d_class("SS", DType::Str);
    b.d_class("name", DType::Str);
    b.d_class("Degree", DType::Str);
    b.d_class("GPA", DType::Real);
    b.d_class("grade", DType::Str);
    b.d_class("c#", DType::Int);
    b.d_class("title", DType::Str);
    b.d_class("credit_hours", DType::Int);
    b.d_class("section#", DType::Int);
    b.d_class("textbook", DType::Str);

    b.attr("Person", "SS");
    b.attr("Person", "name");
    b.attr("Teacher", "Degree");
    b.attr("Grad", "GPA");
    b.attr_named("Department", "name", "name");
    b.attr_named("Course", "c#", "c#");
    b.attr("Course", "title");
    b.attr("Course", "credit_hours");
    b.attr_named("Section", "section#", "section#");
    b.attr("Section", "textbook");
    b.attr("Transcript", "grade");

    b.generalize("Person", "Student");
    b.generalize("Person", "Teacher");
    b.generalize("Student", "Grad");
    b.generalize("Grad", "TA");
    b.generalize("Grad", "RA");
    b.generalize("Teacher", "TA");
    b.generalize("Teacher", "Faculty");

    b.aggregate_single_named("Student", "Department", "Major");
    b.aggregate_named("Student", "Section", "Enrolls");
    b.aggregate_named("Teacher", "Section", "Teaches");
    b.aggregate_single("Course", "Department");
    b.aggregate_single("Section", "Course");
    b.aggregate_named("Course", "Course", "Prereq");
    b.aggregate_named("Student", "Transcript", "Transcripts");
    b.aggregate_single("Transcript", "Course");
    b.aggregate_single_named("Advising", "Faculty", "Advisor");
    b.aggregate_single_named("Advising", "Grad", "Advisee");

    b.build().expect("university schema is valid")
}

/// Population parameters. All counts are deterministic given the seed.
#[derive(Debug, Clone, Copy)]
pub struct Size {
    /// Number of departments (the first is named "CIS").
    pub departments: usize,
    /// Courses per department.
    pub courses_per_dept: usize,
    /// Sections per course (uniform 0..=this, so some courses have no
    /// current offering).
    pub max_sections_per_course: usize,
    /// Teacher count.
    pub teachers: usize,
    /// Student count.
    pub students: usize,
    /// Fraction of students who are grads (per-mille to stay `Copy+Eq`).
    pub grad_per_mille: u32,
    /// TAs (grads who are also teachers).
    pub tas: usize,
    /// RAs.
    pub ras: usize,
    /// Faculty (subset of teachers).
    pub faculty: usize,
    /// Sections each student enrolls in.
    pub enrollments_per_student: usize,
    /// Transcript entries per grad.
    pub transcripts_per_grad: usize,
    /// Advising relationships (grad/faculty pairs).
    pub advisings: usize,
    /// Per-mille probability that a course has a prerequisite.
    pub prereq_per_mille: u32,
}

impl Size {
    /// A tiny population for unit tests and examples.
    pub fn small() -> Self {
        Size {
            departments: 2,
            courses_per_dept: 4,
            max_sections_per_course: 2,
            teachers: 6,
            students: 20,
            grad_per_mille: 400,
            tas: 3,
            ras: 2,
            faculty: 3,
            enrollments_per_student: 3,
            transcripts_per_grad: 3,
            advisings: 4,
            prereq_per_mille: 400,
        }
    }

    /// A medium population for integration tests.
    pub fn medium() -> Self {
        Size {
            departments: 5,
            courses_per_dept: 20,
            max_sections_per_course: 3,
            teachers: 60,
            students: 500,
            grad_per_mille: 300,
            tas: 25,
            ras: 15,
            faculty: 25,
            enrollments_per_student: 4,
            transcripts_per_grad: 5,
            advisings: 80,
            prereq_per_mille: 500,
        }
    }

    /// Scale the head-count parameters by roughly `factor` (benchmarks).
    pub fn scaled(factor: usize) -> Self {
        let s = Size::medium();
        Size {
            departments: s.departments,
            courses_per_dept: s.courses_per_dept * factor.max(1),
            teachers: s.teachers * factor.max(1),
            students: s.students * factor.max(1),
            tas: s.tas * factor.max(1),
            ras: s.ras * factor.max(1),
            faculty: s.faculty * factor.max(1),
            advisings: s.advisings * factor.max(1),
            ..s
        }
    }
}

/// Handles to the populated database's object groups (for tests and
/// follow-up mutations).
#[derive(Debug, Default)]
pub struct Population {
    /// Person perspectives (everyone).
    pub persons: Vec<Oid>,
    /// Teacher perspectives.
    pub teachers: Vec<Oid>,
    /// Student perspectives.
    pub students: Vec<Oid>,
    /// Grad perspectives.
    pub grads: Vec<Oid>,
    /// TA perspectives.
    pub tas: Vec<Oid>,
    /// Faculty perspectives.
    pub faculty: Vec<Oid>,
    /// Departments.
    pub departments: Vec<Oid>,
    /// Courses.
    pub courses: Vec<Oid>,
    /// Sections.
    pub sections: Vec<Oid>,
}

fn cls(db: &Database, name: &str) -> ClassId {
    db.schema().class_by_name(name).expect("university class")
}

fn link(db: &Database, class: &str, name: &str) -> dood_core::ids::AssocId {
    let c = cls(db, class);
    db.schema().own_link_by_name(c, name).expect("university link")
}

/// Populate a fresh university database. Deterministic in `seed`.
pub fn populate(size: Size, seed: u64) -> Database {
    populate_with_handles(size, seed).0
}

/// Populate and return object handles too.
pub fn populate_with_handles(size: Size, seed: u64) -> (Database, Population) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new(schema());
    let mut pop = Population::default();

    let person = cls(&db, "Person");
    let student = cls(&db, "Student");
    let teacher = cls(&db, "Teacher");
    let grad = cls(&db, "Grad");
    let ta = cls(&db, "TA");
    let ra = cls(&db, "RA");
    let faculty = cls(&db, "Faculty");
    let department = cls(&db, "Department");
    let course = cls(&db, "Course");
    let section = cls(&db, "Section");
    let transcript = cls(&db, "Transcript");
    let advising = cls(&db, "Advising");

    let major = link(&db, "Student", "Major");
    let enrolls = link(&db, "Student", "Enrolls");
    let teaches = link(&db, "Teacher", "Teaches");
    let course_dept = link(&db, "Course", "Department");
    let section_course = link(&db, "Section", "Course");
    let prereq = link(&db, "Course", "Prereq");
    let transcripts = link(&db, "Student", "Transcripts");
    let transcript_course = link(&db, "Transcript", "Course");
    let advisor = link(&db, "Advising", "Advisor");
    let advisee = link(&db, "Advising", "Advisee");

    // Departments.
    for i in 0..size.departments {
        let d = db.new_object(department).unwrap();
        let name = if i == 0 { "CIS".to_string() } else { format!("D{i}") };
        db.set_attr(d, "name", Value::str(&name)).unwrap();
        pop.departments.push(d);
    }

    // Courses, with acyclic prerequisites (later course → earlier course).
    for (di, &d) in pop.departments.clone().iter().enumerate() {
        for ci in 0..size.courses_per_dept {
            let c = db.new_object(course).unwrap();
            let number = 1000 + (rng.random_range(0..70) * 100) as i64 + ci as i64 % 100;
            db.set_attr(c, "c#", Value::Int(number)).unwrap();
            db.set_attr(c, "title", Value::str(format!("course-{di}-{ci}"))).unwrap();
            db.set_attr(c, "credit_hours", Value::Int(rng.random_range(1i64..=4)))
                .unwrap();
            db.associate(course_dept, c, d).unwrap();
            if !pop.courses.is_empty() && rng.random_range(0u32..1000) < size.prereq_per_mille {
                let p = pop.courses[rng.random_range(0..pop.courses.len())];
                db.associate(prereq, c, p).unwrap();
            }
            pop.courses.push(c);
        }
    }

    // Sections.
    for (ci, &c) in pop.courses.clone().iter().enumerate() {
        let n = rng.random_range(0..=size.max_sections_per_course);
        for si in 0..n {
            let s = db.new_object(section).unwrap();
            db.set_attr(s, "section#", Value::Int((ci * 10 + si) as i64)).unwrap();
            db.set_attr(s, "textbook", Value::str(format!("book-{ci}"))).unwrap();
            db.associate(section_course, s, c).unwrap();
            pop.sections.push(s);
        }
    }

    // Teachers.
    for i in 0..size.teachers {
        let p = db.new_object(person).unwrap();
        db.set_attr(p, "SS", Value::str(format!("ss-t{i}"))).unwrap();
        db.set_attr(p, "name", Value::str(format!("teacher-{i}"))).unwrap();
        pop.persons.push(p);
        let t = db.specialize(p, teacher).unwrap();
        db.set_attr(t, "Degree", Value::str(if i % 3 == 0 { "PhD" } else { "MS" })).unwrap();
        pop.teachers.push(t);
    }
    // Assign sections round-robin-ish.
    if !pop.teachers.is_empty() {
        for (si, &s) in pop.sections.iter().enumerate() {
            let t = pop.teachers[(si + rng.random_range(0..pop.teachers.len())) % pop.teachers.len()];
            db.associate(teaches, t, s).unwrap();
        }
    }

    // Students (and grads).
    for i in 0..size.students {
        let p = db.new_object(person).unwrap();
        db.set_attr(p, "SS", Value::str(format!("ss-s{i}"))).unwrap();
        db.set_attr(p, "name", Value::str(format!("student-{i}"))).unwrap();
        pop.persons.push(p);
        let st = db.specialize(p, student).unwrap();
        if !pop.departments.is_empty() {
            let d = pop.departments[rng.random_range(0..pop.departments.len())];
            db.associate(major, st, d).unwrap();
        }
        for _ in 0..size.enrollments_per_student {
            if pop.sections.is_empty() {
                break;
            }
            let s = pop.sections[rng.random_range(0..pop.sections.len())];
            db.associate(enrolls, st, s).unwrap();
        }
        pop.students.push(st);
        if rng.random_range(0u32..1000) < size.grad_per_mille {
            let g = db.specialize(st, grad).unwrap();
            db.set_attr(g, "GPA", Value::Real(2.0 + rng.random_range(0..20) as f64 / 10.0))
                .unwrap();
            pop.grads.push(g);
        }
    }

    // Transcripts for grads.
    for &g in &pop.grads {
        // Climb to the Student perspective to attach transcripts.
        let g_chain = db.schema().up_chain(grad, student).unwrap();
        let st = db.climb(g, &g_chain).unwrap();
        for _ in 0..size.transcripts_per_grad {
            if pop.courses.is_empty() {
                break;
            }
            let tr = db.new_object(transcript).unwrap();
            let grade_ix = rng.random_range(0..5usize);
            db.set_attr(tr, "grade", Value::str(["A", "B", "C", "D", "F"][grade_ix])).unwrap();
            db.associate(transcripts, st, tr).unwrap();
            let c = pop.courses[rng.random_range(0..pop.courses.len())];
            db.associate(transcript_course, tr, c).unwrap();
        }
    }

    // TAs: a grad whose person also becomes a teacher (the diamond).
    let g_to_student = db.schema().up_chain(grad, student).unwrap();
    let s_to_person = db.schema().up_chain(student, person).unwrap();
    for i in 0..size.tas.min(pop.grads.len()) {
        let g = pop.grads[i];
        let st = db.climb(g, &g_to_student).unwrap();
        let p = db.climb(st, &s_to_person).unwrap();
        // Ensure a Teacher perspective.
        let t_g = db.schema().g_link(person, teacher).unwrap();
        let t = match db.descend(p, &[t_g]) {
            Some(t) => t,
            None => {
                let t = db.specialize(p, teacher).unwrap();
                db.set_attr(t, "Degree", Value::str("MS")).unwrap();
                pop.teachers.push(t);
                // The new teacher teaches one section, if any exist.
                if !pop.sections.is_empty() {
                    let s = pop.sections[rng.random_range(0..pop.sections.len())];
                    db.associate(teaches, t, s).unwrap();
                }
                t
            }
        };
        let ta_obj = db.specialize(g, ta).unwrap();
        db.add_perspective(t, ta_obj).unwrap();
        pop.tas.push(ta_obj);
    }

    // RAs.
    for i in 0..size.ras.min(pop.grads.len().saturating_sub(size.tas)) {
        let g = pop.grads[size.tas + i];
        let _ = db.specialize(g, ra).unwrap();
    }

    // Faculty.
    for i in 0..size.faculty.min(pop.teachers.len()) {
        let t = pop.teachers[i];
        if let Ok(f) = db.specialize(t, faculty) {
            pop.faculty.push(f);
        }
    }

    // Advising.
    for _ in 0..size.advisings {
        if pop.faculty.is_empty() || pop.grads.is_empty() {
            break;
        }
        let a = db.new_object(advising).unwrap();
        let f = pop.faculty[rng.random_range(0..pop.faculty.len())];
        let g = pop.grads[rng.random_range(0..pop.grads.len())];
        db.associate(advisor, a, f).unwrap();
        db.associate(advisee, a, g).unwrap();
    }

    (db, pop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_builds_and_matches_figure() {
        let s = schema();
        assert_eq!(s.e_classes().count(), 12);
        let ta = s.class_by_name("TA").unwrap();
        // TA's diamond: direct supers are Grad and Teacher.
        let supers: Vec<&str> = s
            .direct_supers(ta)
            .iter()
            .map(|&c| s.class(c).name.as_str())
            .collect();
        assert_eq!(supers, vec!["Grad", "Teacher"]);
        // Paper §3.2: TA * Section is ambiguous …
        let section = s.class_by_name("Section").unwrap();
        assert!(s.resolve_edge(ta, section).is_err());
        // … but RA * Section is legal (unique path through Student).
        let ra = s.class_by_name("RA").unwrap();
        assert!(s.resolve_edge(ra, section).is_ok());
    }

    #[test]
    fn populate_is_deterministic() {
        let a = populate(Size::small(), 7);
        let b = populate(Size::small(), 7);
        assert_eq!(a.object_count(), b.object_count());
        let c = populate(Size::small(), 8);
        // Different seed ⇒ (almost surely) different link structure; the
        // object count may coincide, so compare event counts too.
        let _ = c;
    }

    #[test]
    fn population_satisfies_expectations() {
        let (db, pop) = populate_with_handles(Size::small(), 42);
        assert_eq!(pop.departments.len(), 2);
        assert_eq!(pop.courses.len(), 8);
        assert!(!pop.teachers.is_empty());
        assert!(!pop.grads.is_empty());
        assert!(!pop.tas.is_empty());
        // Every TA has both Grad and Teacher perspectives.
        let s = db.schema();
        let grad = s.class_by_name("Grad").unwrap();
        let teacher = s.class_by_name("Teacher").unwrap();
        let ta = s.class_by_name("TA").unwrap();
        for &t in &pop.tas {
            assert_eq!(db.class_of(t).unwrap(), ta);
            let g1 = s.g_link(grad, ta).unwrap();
            let g2 = s.g_link(teacher, ta).unwrap();
            assert!(db.climb(t, &[g1]).is_some());
            assert!(db.climb(t, &[g2]).is_some());
        }
    }

    #[test]
    fn medium_population_scales() {
        let db = populate(Size::medium(), 1);
        let s = db.schema();
        assert!(db.extent_size(s.class_by_name("Student").unwrap()) == 500);
        assert!(db.extent_size(s.class_by_name("Course").unwrap()) == 100);
    }
}
