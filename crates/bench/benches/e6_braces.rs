//! E6 — brace (outer-pattern) evaluation overhead vs the plain association
//! operator.

use dood_bench::braces_pair;
use dood_bench::harness::Harness;
use dood_core::subdb::SubdbRegistry;
use dood_oql::Oql;
use dood_workload::university;

fn main() {
    let mut h = Harness::new("e6_braces");
    for factor in [1usize, 2, 4] {
        let db = university::populate(university::Size::scaled(factor), 6);
        let reg = SubdbRegistry::new();
        let oql = Oql::new();
        h.bench(&format!("plain/{factor}"), || {
            oql.query(&db, &reg, "context Teacher * Section * Course")
                .unwrap()
                .subdb
                .len()
        });
        h.bench(&format!("braced/{factor}"), || {
            oql.query(&db, &reg, "context {Teacher * Section} * Course")
                .unwrap()
                .subdb
                .len()
        });
        // Sanity outside the timed loop.
        let (p, br) = braces_pair(&db);
        assert!(br >= p);
    }
    h.finish();
}
