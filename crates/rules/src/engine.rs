//! The deductive engine: rule registration, backward and forward chaining,
//! and the **result-oriented control strategy** of paper §6.
//!
//! Two control modes are implemented:
//!
//! * [`ControlMode::ResultOriented`] (the paper's contribution): each
//!   *derived subdatabase* is declared pre-evaluated (materialized and
//!   forward-maintained on every update) or post-evaluated (computed on
//!   demand when a query needs it). "The same rule may follow the forward
//!   or backward chaining strategy depending on whether the derived
//!   subdatabase is to be pre- or post-evaluated."
//! * [`ControlMode::RuleOriented`] (the POSTGRES strategy the paper
//!   critiques): each *rule* is fixed forward or backward. A forward rule
//!   reading backward-derived data silently consumes a stale or missing
//!   copy, so downstream pre-computed results can become inconsistent with
//!   the base data — reproduced by the `Ra…Rd` scenario tests.

use crate::ast::Rule;
use crate::depgraph::DepGraph;
use crate::derive::{apply_rule, eval_rule_context, layouts_compatible, project_targets};
use crate::error::RuleError;
use crate::maintain::{dirty_closure, incremental_apply, supports_incremental};
use crate::parser::parse_rule;
use crate::program::Program;
use dood_core::diag::Diagnostic;
use dood_core::fxhash::{FxHashMap, FxHashSet};
use dood_core::ids::{ClassId, Oid};
use dood_core::obs;
use dood_core::obs::profile::Profile;
use dood_core::pool::ChunkPool;
use dood_core::subdb::{Subdatabase, SubdbRegistry};
use dood_oql::ast::{ClassRef, Item, Query, SelectItem, Seq, WhereCond};
use dood_oql::{Oql, QueryOutput};
use dood_store::{Database, SubscriberId};

/// Per-result evaluation policy (result-oriented control, paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPolicy {
    /// Materialized and kept up to date by forward chaining.
    PreEvaluated,
    /// Computed on demand by backward chaining; invalidated by updates.
    PostEvaluated,
}

/// Per-rule chaining strategy (rule-oriented control, POSTGRES-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStrategy {
    /// Re-run when read data changes; result materialized.
    Forward,
    /// Run when the derived data is requested; result not preserved.
    Backward,
}

/// Which control strategy governs chaining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// The paper's result-oriented strategy.
    ResultOriented,
    /// The POSTGRES rule-oriented strategy (for comparison).
    RuleOriented,
}

/// The deductive object-oriented database engine: an object store, a rule
/// set, the registry of derived subdatabases, and OQL.
pub struct RuleEngine {
    db: Database,
    oql: Oql,
    rules: Vec<Rule>,
    graph: DepGraph,
    registry: SubdbRegistry,
    policies: FxHashMap<String, EvalPolicy>,
    strategies: FxHashMap<String, ChainStrategy>,
    mode: ControlMode,
    /// Event-log watermark up to which forward chaining has run.
    watermark: u64,
    /// Per rule: the base classes its IF clause reads (hierarchy-closed).
    base_reads: Vec<FxHashSet<ClassId>>,
    /// E11: use scoped delta maintenance where sound.
    incremental: bool,
    /// Cached IF-contexts per rule (incremental mode).
    ctx_cache: FxHashMap<String, dood_core::subdb::Subdatabase>,
    /// Treat analyzer warnings as fatal in [`RuleEngine::register`].
    strict: bool,
    /// Dirty objects of the update batch being propagated, when any.
    current_dirty: Option<std::collections::BTreeSet<Oid>>,
    /// The engine's subscription in the store's event log: acknowledged up
    /// to the forward-chaining watermark, so log compaction never drops an
    /// unconsumed event and `doodprof --metrics` can report engine lag.
    events_sub: SubscriberId,
}

impl RuleEngine {
    /// Wrap a database with an empty rule set (result-oriented mode;
    /// results default to post-evaluated).
    pub fn new(mut db: Database) -> Self {
        // Events logged before the engine exists (population) are base
        // facts, not updates to propagate.
        let watermark = db.seq();
        let events_sub = db.events_mut().subscribe("rules.engine");
        RuleEngine {
            db,
            oql: Oql::new(),
            rules: Vec::new(),
            graph: DepGraph::default(),
            registry: SubdbRegistry::new(),
            policies: FxHashMap::default(),
            strategies: FxHashMap::default(),
            mode: ControlMode::ResultOriented,
            watermark,
            base_reads: Vec::new(),
            incremental: false,
            ctx_cache: FxHashMap::default(),
            current_dirty: None,
            strict: false,
            events_sub,
        }
    }

    /// Enable/disable scoped incremental forward maintenance (E11).
    /// Incremental mode caches each eligible rule's IF-context and, on
    /// update, re-derives only the patterns containing touched objects;
    /// rules with closures, braces or aggregate WHEREs fall back to full
    /// re-derivation. Off by default (the ablation baseline).
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
        if !on {
            self.ctx_cache.clear();
        }
    }

    /// Read access to the store.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the store. After mutating, call
    /// [`RuleEngine::propagate`] to run forward chaining.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The derived-subdatabase registry.
    pub fn registry(&self) -> &SubdbRegistry {
        &self.registry
    }

    /// The OQL engine (to register user-defined operations).
    pub fn oql_mut(&mut self) -> &mut Oql {
        &mut self.oql
    }

    /// The registered rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Switch control mode.
    pub fn set_mode(&mut self, mode: ControlMode) {
        self.mode = mode;
    }

    /// Declare a derived subdatabase pre- or post-evaluated
    /// (result-oriented mode). Default: post-evaluated.
    pub fn set_policy(&mut self, subdb: impl Into<String>, policy: EvalPolicy) {
        self.policies.insert(subdb.into(), policy);
    }

    /// Fix a rule's chaining strategy (rule-oriented mode). Default:
    /// backward.
    pub fn set_strategy(&mut self, rule: impl Into<String>, strategy: ChainStrategy) {
        self.strategies.insert(rule.into(), strategy);
    }

    fn policy(&self, subdb: &str) -> EvalPolicy {
        self.policies.get(subdb).copied().unwrap_or(EvalPolicy::PostEvaluated)
    }

    /// The chaining strategy governing a subdatabase in rule-oriented mode:
    /// the strategy of its (first) deriving rule.
    fn subdb_strategy(&self, subdb: &str) -> ChainStrategy {
        self.graph
            .rules_for(subdb)
            .first()
            .map(|&i| {
                self.strategies
                    .get(&self.rules[i].name)
                    .copied()
                    .unwrap_or(ChainStrategy::Backward)
            })
            .unwrap_or(ChainStrategy::Backward)
    }

    /// Register a rule from source text. This is the *unchecked* path: the
    /// rule is parsed and the dependency graph kept acyclic, but no static
    /// analysis runs (resolution errors surface at derivation time). Use
    /// [`RuleEngine::register`] for the analyzed path.
    pub fn add_rule(&mut self, name: &str, src: &str) -> Result<(), RuleError> {
        let rule = parse_rule(name, src)?;
        self.add_parsed_rule(rule)
    }

    fn add_parsed_rule(&mut self, rule: Rule) -> Result<(), RuleError> {
        if self.rules.iter().any(|r| r.name == rule.name) {
            return Err(RuleError::DuplicateRule(rule.name));
        }
        let reads = self.rule_base_reads(&rule);
        self.rules.push(rule);
        self.base_reads.push(reads);
        self.graph = DepGraph::build(&self.rules);
        // Reject cyclic rule sets eagerly.
        self.graph.topo_order()?;
        Ok(())
    }

    /// Treat analyzer warnings as fatal in [`RuleEngine::register`].
    pub fn set_strict(&mut self, on: bool) {
        self.strict = on;
    }

    /// Register a whole rule program through the static analyzer
    /// ([`crate::analyze`]). Subdatabases already known to the engine —
    /// registered externally or derived by previously added rules — are
    /// legal sources for the program's rules.
    ///
    /// On success every rule of the program is added and the (non-fatal)
    /// diagnostics are returned. If the analyzer reports any error — or any
    /// warning under [`RuleEngine::set_strict`] — the program is rejected
    /// *before any rule is added*, so no derivation can ever run over an
    /// ill-typed, unsafe, or unstratifiable program.
    pub fn register(&mut self, program: &Program) -> Result<Vec<Diagnostic>, RuleError> {
        let mut external: FxHashSet<String> =
            self.registry.names().into_iter().map(str::to_string).collect();
        for r in &self.rules {
            external.insert(r.target_subdb.clone());
        }
        let mut diags = crate::analyze::analyze(program, self.db.schema(), &external);
        for pr in &program.rules {
            if self.rules.iter().any(|r| r.name == pr.rule.name) {
                diags.push(
                    Diagnostic::error(
                        "E016",
                        format!("rule `{}` is already registered", pr.rule.name),
                    )
                    .with_span(pr.header, &program.source)
                    .with_owner(pr.rule.name.clone()),
                );
            }
        }
        dood_core::diag::sort(&mut diags);
        if dood_core::diag::has_errors(&diags) || (self.strict && !diags.is_empty()) {
            return Err(RuleError::Analysis(diags));
        }
        for pr in &program.rules {
            self.add_parsed_rule(pr.rule.clone())?;
        }
        Ok(diags)
    }

    /// Base classes a rule's IF clause reads, closed over the
    /// generalization hierarchy (an update to any perspective of an object
    /// can affect patterns observed through another perspective).
    fn rule_base_reads(&self, rule: &Rule) -> FxHashSet<ClassId> {
        let mut out = FxHashSet::default();
        fn walk(seq: &Seq, schema: &dood_core::schema::Schema, out: &mut FxHashSet<ClassId>) {
            let item = |i: &Item, out: &mut FxHashSet<ClassId>| match i {
                Item::Class { class, .. } if class.subdb.is_none() => {
                    let name = &class.name;
                    let id = schema.try_class_by_name(name).or_else(|| {
                        let (family, lvl) = ClassRef::split_alias(name);
                        (lvl > 0).then(|| schema.try_class_by_name(family)).flatten()
                    });
                    if let Some(id) = id {
                        out.insert(id);
                    }
                }
                Item::Class { .. } => {}
                Item::Group(g) => walk(g, schema, out),
            };
            item(&seq.first, out);
            for (_, i) in &seq.rest {
                item(i, out);
            }
        }
        walk(&rule.context.seq, self.db.schema(), &mut out);
        // Hierarchy closure: ancestors and descendants.
        let mut closed = out.clone();
        for &c in &out {
            for (anc, _) in self.db.schema().ancestors(c) {
                closed.insert(anc);
            }
            // Descendants via BFS.
            let mut frontier = vec![c];
            while let Some(cur) = frontier.pop() {
                for &sub in self.db.schema().direct_subs(cur) {
                    if closed.insert(sub) {
                        frontier.push(sub);
                    }
                }
            }
        }
        closed
    }

    // ------------------------------------------------------------------
    // Backward chaining
    // ------------------------------------------------------------------

    /// Whether a derived subdatabase must be (re)computed before use.
    fn needs_derivation(&self, name: &str) -> bool {
        match self.mode {
            ControlMode::ResultOriented => match self.policy(name) {
                EvalPolicy::PreEvaluated => self.registry.subdb(name).is_none(),
                EvalPolicy::PostEvaluated => !self.registry.is_fresh(name, self.db.seq()),
            },
            ControlMode::RuleOriented => match self.subdb_strategy(name) {
                ChainStrategy::Forward => self.registry.subdb(name).is_none(),
                ChainStrategy::Backward => !self.registry.is_fresh(name, self.db.seq()),
            },
        }
    }

    /// Ensure `name` (and, recursively, its sources) is derived and fresh
    /// per the governing policy — the backward chaining entry point
    /// ("in order to derive May_teach, the subdatabase Suggest_offer …
    /// must be derived; this causes rule R2 … to be triggered").
    pub fn derive(&mut self, name: &str) -> Result<(), RuleError> {
        if !self.graph.is_derived(name) {
            if self.registry.subdb(name).is_some() {
                return Ok(());
            }
            return Err(RuleError::UnderivableSubdb(name.to_string()));
        }
        if !self.needs_derivation(name) {
            return Ok(());
        }
        for dep in self.graph.deps_of(name).to_vec() {
            if self.graph.is_derived(&dep) {
                self.derive(&dep)?;
            } else if self.registry.subdb(&dep).is_none() {
                return Err(RuleError::UnderivableSubdb(dep));
            }
        }
        self.run_rules_for(name)
    }

    /// Apply every rule deriving `name` (union semantics, R4/R5) against
    /// the current registry state and register the result.
    /// Commit a derived result to the registry, with delta-size accounting.
    fn commit_derived(&mut self, sd: Subdatabase) {
        if obs::metrics_enabled() {
            obs::metrics::counter("rules.rederived").inc();
            obs::metrics::histogram("rules.delta_rows").record(sd.len() as u64);
        }
        self.registry.put(sd, self.db.seq());
    }

    fn run_rules_for(&mut self, name: &str) -> Result<(), RuleError> {
        if !self.incremental {
            let sd = self.compute_rules_for(name)?;
            self.commit_derived(sd);
            return Ok(());
        }
        let idxs = self.graph.rules_for(name).to_vec();
        debug_assert!(!idxs.is_empty());
        let mut acc: Option<Subdatabase> = None;
        for i in idxs {
            let rule = self.rules[i].clone();
            let sd = self.apply_one(&rule)?;
            acc = Some(match acc {
                None => sd,
                Some(mut prev) => {
                    if !layouts_compatible(&prev, &sd) {
                        return Err(RuleError::TargetLayoutMismatch {
                            subdb: name.to_string(),
                            rule: rule.name.clone(),
                        });
                    }
                    prev.union_from(&sd);
                    prev
                }
            });
        }
        let sd = acc.expect("at least one rule ran");
        self.commit_derived(sd);
        Ok(())
    }

    /// The unioned result of every rule deriving `name` against the current
    /// store and registry state, *without* committing it. Read-only, so
    /// independent results (same depgraph stratum) can be computed on
    /// separate threads.
    fn compute_rules_for(&self, name: &str) -> Result<Subdatabase, RuleError> {
        debug_assert!(!self.graph.rules_for(name).is_empty());
        let mut sp = obs::trace::span("rules.derive");
        sp.label(|| name.to_string());
        sp.attr("rules", self.graph.rules_for(name).len() as i64);
        let mut acc: Option<Subdatabase> = None;
        for &i in self.graph.rules_for(name) {
            let sd = apply_rule(&self.rules[i], &self.db, &self.registry)?;
            acc = Some(match acc {
                None => sd,
                Some(mut prev) => {
                    if !layouts_compatible(&prev, &sd) {
                        return Err(RuleError::TargetLayoutMismatch {
                            subdb: name.to_string(),
                            rule: self.rules[i].name.clone(),
                        });
                    }
                    prev.union_from(&sd);
                    prev
                }
            });
        }
        let sd = acc.expect("at least one rule ran");
        sp.attr("rows_out", sd.len() as i64);
        Ok(sd)
    }

    /// Apply one rule, via the delta path when enabled and sound, caching
    /// the IF-context for the next delta.
    fn apply_one(&mut self, rule: &Rule) -> Result<Subdatabase, RuleError> {
        if !self.incremental {
            return apply_rule(rule, &self.db, &self.registry);
        }
        if supports_incremental(rule) {
            if let (Some(old_ctx), Some(dirty)) =
                (self.ctx_cache.get(&rule.name), self.current_dirty.as_ref())
            {
                let (target, ctx) =
                    incremental_apply(rule, &self.db, &self.registry, old_ctx, dirty)?;
                self.ctx_cache.insert(rule.name.clone(), ctx);
                return Ok(target);
            }
        }
        let ctx = eval_rule_context(rule, &self.db, &self.registry)?;
        let target = project_targets(rule, &ctx, &self.db)?;
        self.ctx_cache.insert(rule.name.clone(), ctx);
        Ok(target)
    }

    // ------------------------------------------------------------------
    // Forward chaining
    // ------------------------------------------------------------------

    /// Consume new update events and run forward chaining per the current
    /// control mode. Returns the names of re-derived subdatabases.
    pub fn propagate(&mut self) -> Result<Vec<String>, RuleError> {
        let events = self.db.events().since(self.watermark).to_vec();
        self.watermark = self.db.seq();
        self.db.events_mut().ack(self.events_sub, self.watermark);
        let mut sp = obs::trace::span("rules.propagate");
        sp.attr("events", events.len() as i64);
        if obs::metrics_enabled() {
            obs::metrics::counter("rules.propagate.runs").inc();
        }
        if events.is_empty() {
            sp.attr("rederived", 0);
            return Ok(Vec::new());
        }
        // Classes touched by the batch.
        let mut touched: FxHashSet<ClassId> = FxHashSet::default();
        for e in &events {
            for c in e.touched_classes(self.db.schema()) {
                touched.insert(c);
            }
        }
        // Objects touched by the batch (for delta maintenance).
        if self.incremental {
            use dood_store::UpdateEvent as E;
            let oids = events.iter().flat_map(|e| match e {
                E::ObjectCreated { oid, .. } | E::ObjectDeleted { oid, .. } => vec![*oid],
                E::Associated { from, to, .. } | E::Dissociated { from, to, .. } => {
                    vec![*from, *to]
                }
                E::AttrSet { oid, .. } => vec![*oid],
            });
            self.current_dirty = Some(dirty_closure(&self.db, oids));
        }
        // Dirty subdatabases: derived by a rule reading a touched class.
        let mut dirty: FxHashSet<String> = FxHashSet::default();
        for (i, rule) in self.rules.iter().enumerate() {
            if !self.base_reads[i].is_disjoint(&touched) {
                dirty.insert(rule.target_subdb.clone());
            }
        }
        let affected: FxHashSet<String> = {
            let mut a = self.graph.affected_by(&dirty);
            a.extend(dirty);
            a
        };
        let order = self.graph.topo_order()?;
        let mut rederived = Vec::new();
        if self.mode == ControlMode::ResultOriented && !self.incremental {
            // Stratum-parallel forward maintenance: same-stratum results
            // are independent (deps live in strictly earlier strata), so
            // their rules run concurrently over the read-only store and
            // registry; commits happen in deterministic within-stratum
            // order, and `rederived` is reported in topological order as
            // on the sequential path.
            for (stratum_idx, stratum) in self.graph.strata()?.into_iter().enumerate() {
                let mut ssp = obs::trace::span("rules.stratum");
                ssp.attr("index", stratum_idx as i64);
                let mut batch: Vec<String> = Vec::new();
                for name in stratum {
                    if !affected.contains(&name) {
                        continue;
                    }
                    match self.policy(&name) {
                        // Forward-maintain: collected for this stratum's
                        // parallel fan-out.
                        EvalPolicy::PreEvaluated => batch.push(name),
                        EvalPolicy::PostEvaluated => {
                            // Invalidate; the next query re-derives.
                            self.registry.remove(&name);
                        }
                    }
                }
                // Sources are ensured fresh first, sequentially: deriving a
                // post-evaluated source mutates the registry (the rule runs
                // backward for it, forward for us).
                for name in &batch {
                    for dep in self.graph.deps_of(name).to_vec() {
                        if self.graph.is_derived(&dep) {
                            self.derive(&dep)?;
                        }
                    }
                }
                ssp.attr("subdbs", batch.len() as i64);
                let pool = ChunkPool::from_env();
                let results = pool.par_map(&batch, |name| self.compute_rules_for(name));
                for (name, result) in batch.into_iter().zip(results) {
                    self.commit_derived(result?);
                    rederived.push(name);
                }
            }
            let pos: FxHashMap<&str, usize> =
                order.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
            rederived.sort_unstable_by_key(|n| pos[n.as_str()]);
            self.current_dirty = None;
            sp.attr("rederived", rederived.len() as i64);
            return Ok(rederived);
        }
        for name in order {
            if !affected.contains(&name) {
                continue;
            }
            match self.mode {
                ControlMode::ResultOriented => match self.policy(&name) {
                    EvalPolicy::PreEvaluated => {
                        // Forward-maintain: sources are ensured fresh first
                        // (post-evaluated sources are derived on the fly —
                        // the rule runs backward for them, forward for us).
                        self.derive_forced(&name)?;
                        rederived.push(name);
                    }
                    EvalPolicy::PostEvaluated => {
                        // Invalidate; the next query re-derives.
                        self.registry.remove(&name);
                    }
                },
                ControlMode::RuleOriented => match self.subdb_strategy(&name) {
                    ChainStrategy::Forward => {
                        // POSTGRES restriction: a forward rule reads its
                        // sources *as materialized right now*. If a source is
                        // backward-derived (absent), the rule cannot run and
                        // the target silently stays stale.
                        let sources_present = self
                            .graph
                            .deps_of(&name)
                            .iter()
                            .all(|d| self.registry.subdb(d).is_some());
                        if sources_present {
                            self.run_rules_for(&name)?;
                            rederived.push(name);
                        }
                    }
                    ChainStrategy::Backward => {
                        // Backward results are not preserved across updates.
                        self.registry.remove(&name);
                    }
                },
            }
        }
        self.current_dirty = None;
        sp.attr("rederived", rederived.len() as i64);
        Ok(rederived)
    }

    /// Recompute `name` after ensuring its sources are fresh (used by
    /// forward maintenance).
    fn derive_forced(&mut self, name: &str) -> Result<(), RuleError> {
        for dep in self.graph.deps_of(name).to_vec() {
            if self.graph.is_derived(&dep) {
                self.derive(&dep)?;
            }
        }
        self.run_rules_for(name)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Run an OQL query, backward-chaining any derived subdatabases it
    /// references (paper §4.3 / Query 4.1).
    pub fn query(&mut self, src: &str) -> Result<QueryOutput, RuleError> {
        let q = dood_oql::Parser::parse_query(src)?;
        self.run_query(&q)
    }

    /// Run a parsed OQL query, backward-chaining any derived subdatabases
    /// it references.
    pub fn run_query(&mut self, q: &Query) -> Result<QueryOutput, RuleError> {
        let mut sp = obs::trace::span("rules.query");
        for subdb in referenced_subdbs(q) {
            self.derive(&subdb)?;
        }
        let out = self.oql.run(&self.db, &self.registry, q)?;
        sp.attr("rows", out.table.len() as i64);
        Ok(out)
    }

    /// Run a parsed query under span capture, returning the output and its
    /// EXPLAIN ANALYZE [`Profile`] tree (backward-chained derivations
    /// included).
    pub fn run_query_profiled(
        &mut self,
        q: &Query,
    ) -> Result<(QueryOutput, Profile), RuleError> {
        let (res, spans) = obs::trace::capture(|| self.run_query(q));
        Ok((res?, Profile::single(&spans)))
    }

    /// Parse and run a query under span capture (see
    /// [`run_query_profiled`](Self::run_query_profiled)).
    pub fn query_profiled(&mut self, src: &str) -> Result<(QueryOutput, Profile), RuleError> {
        let q = dood_oql::Parser::parse_query(src)?;
        self.run_query_profiled(&q)
    }

    /// Materialize and return a derived subdatabase (backward chaining).
    pub fn subdb(&mut self, name: &str) -> Result<&Subdatabase, RuleError> {
        self.derive(name)?;
        Ok(self.registry.subdb(name).expect("derive registered it"))
    }

    /// Recompute `name` and all its sources from scratch in a scratch
    /// registry and compare with the currently registered copy — the
    /// consistency oracle used to demonstrate the §6 staleness scenario.
    pub fn is_consistent(&self, name: &str) -> Result<bool, RuleError> {
        let Some(current) = self.registry.subdb(name) else {
            // Absent ≠ inconsistent: it will be derived on demand.
            return Ok(true);
        };
        let fresh = self.derive_fresh(name)?;
        Ok(fresh.to_vec() == current.to_vec())
    }

    /// Compute `name` from scratch (ignoring all cached results).
    pub fn derive_fresh(&self, name: &str) -> Result<Subdatabase, RuleError> {
        let mut scratch = SubdbRegistry::new();
        // Seed with registered-but-not-derived (external) subdatabases.
        for n in self.registry.names() {
            if !self.graph.is_derived(n) {
                let e = self.registry.get(n).expect("listed");
                scratch.put(e.subdb.clone(), e.derived_at);
            }
        }
        self.derive_into(name, &mut scratch)?;
        Ok(scratch.subdb(name).expect("derived").clone())
    }

    fn derive_into(&self, name: &str, scratch: &mut SubdbRegistry) -> Result<(), RuleError> {
        if scratch.subdb(name).is_some() {
            return Ok(());
        }
        if !self.graph.is_derived(name) {
            return Err(RuleError::UnderivableSubdb(name.to_string()));
        }
        for dep in self.graph.deps_of(name) {
            if self.graph.is_derived(dep) {
                self.derive_into(dep, scratch)?;
            } else if scratch.subdb(dep).is_none() {
                return Err(RuleError::UnderivableSubdb(dep.clone()));
            }
        }
        let mut acc: Option<Subdatabase> = None;
        for &i in self.graph.rules_for(name) {
            let sd = apply_rule(&self.rules[i], &self.db, scratch)?;
            acc = Some(match acc {
                None => sd,
                Some(mut prev) => {
                    if !layouts_compatible(&prev, &sd) {
                        return Err(RuleError::TargetLayoutMismatch {
                            subdb: name.to_string(),
                            rule: self.rules[i].name.clone(),
                        });
                    }
                    prev.union_from(&sd);
                    prev
                }
            });
        }
        scratch.put(acc.expect("at least one rule"), self.db.seq());
        Ok(())
    }
}

/// The derived subdatabases a query references (context, WHERE, SELECT).
pub fn referenced_subdbs(q: &Query) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(seq: &Seq, out: &mut Vec<String>) {
        let item = |i: &Item, out: &mut Vec<String>| match i {
            Item::Class { class, .. } => {
                if let Some(s) = &class.subdb {
                    out.push(s.clone());
                }
            }
            Item::Group(g) => walk(g, out),
        };
        item(&seq.first, out);
        for (_, i) in &seq.rest {
            item(i, out);
        }
    }
    walk(&q.context.seq, &mut out);
    let push_ref = |c: &ClassRef, out: &mut Vec<String>| {
        if let Some(s) = &c.subdb {
            out.push(s.clone());
        }
    };
    for w in &q.where_ {
        match w {
            WhereCond::Agg { target, by, .. } => {
                push_ref(target, &mut out);
                if let Some(b) = by {
                    push_ref(b, &mut out);
                }
            }
            WhereCond::Cmp { left, right, .. } => {
                push_ref(&left.0, &mut out);
                if let dood_oql::ast::CmpRhs::Attr(c, _) = right {
                    push_ref(c, &mut out);
                }
            }
        }
    }
    for s in &q.select {
        match s {
            SelectItem::ClassAttrs(c, _) | SelectItem::Class(c) => push_ref(c, &mut out),
            SelectItem::Attr(_) => {}
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}
