//! Identifier newtypes.
//!
//! OSAM* requires that "each object is assumed to have a unique object
//! identifier (OID)" (paper §1). We use dense `u64` newtypes for objects and
//! `u32` newtypes for schema-level entities (classes, associations), which
//! keeps hot join state small (perf-book: smaller integers for indices).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The raw integer value.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Construct from a raw integer value.
            #[inline]
            pub const fn from_raw(raw: $repr) -> Self {
                Self(raw)
            }

            /// The index form, for dense-vector addressing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }
    };
}

id_newtype!(
    /// A system-generated unique object identifier (paper §2: "Each object of
    /// an E-class is represented by a system-generated unique object
    /// identifier (OID)").
    Oid,
    u64,
    "o"
);

id_newtype!(
    /// Identifies an object class (E-class or D-class) within a schema.
    ClassId,
    u32,
    "c"
);

id_newtype!(
    /// Identifies an association (link type) within a schema.
    AssocId,
    u32,
    "a"
);

/// Monotonic OID generator. Thread-safe; OIDs are never reused, even after
/// object deletion, so dangling references are detectable rather than
/// silently re-bound.
#[derive(Debug)]
pub struct OidGen {
    next: AtomicU64,
}

impl OidGen {
    /// A generator whose first OID is `o1` (0 is reserved as a niche/sentinel
    /// in debug assertions).
    pub fn new() -> Self {
        Self { next: AtomicU64::new(1) }
    }

    /// Resume generation after `watermark` (used when reloading a store).
    pub fn starting_after(watermark: Oid) -> Self {
        Self { next: AtomicU64::new(watermark.0 + 1) }
    }

    /// Allocate the next OID.
    #[inline]
    pub fn next(&self) -> Oid {
        Oid(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// The OID that would be allocated next (exclusive upper bound of all
    /// allocated OIDs).
    pub fn peek(&self) -> Oid {
        Oid(self.next.load(Ordering::Relaxed))
    }
}

impl Default for OidGen {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oids_are_monotonic_and_unique() {
        let g = OidGen::new();
        let a = g.next();
        let b = g.next();
        let c = g.next();
        assert!(a < b && b < c);
        assert_eq!(a, Oid(1));
    }

    #[test]
    fn starting_after_resumes() {
        let g = OidGen::starting_after(Oid(100));
        assert_eq!(g.next(), Oid(101));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Oid(7).to_string(), "o7");
        assert_eq!(ClassId(3).to_string(), "c3");
        assert_eq!(AssocId(9).to_string(), "a9");
    }

    #[test]
    fn raw_round_trip() {
        let id = ClassId::from_raw(12);
        assert_eq!(id.raw(), 12);
        assert_eq!(id.index(), 12);
    }
}
