//! E2 — looping transitive closure (`Part ^*`, paper §5.2) vs Datalog
//! recursive reachability over CAD bills of materials.

use dood_bench::harness::Harness;
use dood_bench::{closure_datalog, closure_dood, closure_fixture};

fn main() {
    let mut h = Harness::new("e2_closure");
    for (depth, fanout) in [(4usize, 2usize), (8, 2), (12, 2), (6, 3)] {
        let f = closure_fixture(depth, fanout);
        h.bench(&format!("dood/d{depth}f{fanout}"), || closure_dood(&f));
        h.bench(&format!("datalog/d{depth}f{fanout}"), || closure_datalog(&f));
    }
    h.finish();
}
