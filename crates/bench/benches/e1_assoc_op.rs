//! E1 — association-operator pattern matching vs the Datalog baseline join
//! (`Teacher * Section * Course`) across population scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dood_bench::{assoc_datalog, assoc_dood, assoc_fixture};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_assoc_op");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for factor in [1usize, 2, 4] {
        let f = assoc_fixture(factor);
        g.bench_with_input(BenchmarkId::new("dood", factor), &f, |b, f| {
            b.iter(|| black_box(assoc_dood(f)));
        });
        g.bench_with_input(BenchmarkId::new("datalog", factor), &f, |b, f| {
            b.iter(|| black_box(assoc_datalog(f)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
