//! Shared setup for the evaluation suite (experiments E1–E8 and E12 of DESIGN.md).
//!
//! Each experiment has a bench target (`benches/`, running on the in-repo
//! [`harness`]) and a row-printing entry in the `report` binary; both call
//! into the fixtures here so they measure identical work.

#![warn(missing_docs)]

pub mod harness;

use dood_core::subdb::SubdbRegistry;
use dood_datalog as datalog;
use dood_datalog::Atom;
use dood_oql::Oql;
use dood_rules::{ChainStrategy, ControlMode, EvalPolicy, RuleEngine};
use dood_store::Database;
use dood_workload::{cad, company, university};

/// E1 fixture: a scaled university database plus the two query engines'
/// inputs for the three-way association `Teacher * Section * Course`.
pub struct AssocFixture {
    /// The object database.
    pub db: Database,
    /// Empty registry (base-data query).
    pub registry: SubdbRegistry,
    /// Translated flat facts + program computing `tsc(T,S,C)`.
    pub datalog: (datalog::Program, datalog::FactDb, datalog::Pred),
}

/// Build the E1 fixture at a population scale factor.
pub fn assoc_fixture(factor: usize) -> AssocFixture {
    let db = university::populate(university::Size::scaled(factor), 42);
    let mut t = datalog::translate(&db);
    let teacher = db.schema().class_by_name("Teacher").unwrap();
    let section = db.schema().class_by_name("Section").unwrap();
    let teaches = db.schema().own_link_by_name(teacher, "Teaches").unwrap();
    let of = db.schema().own_link_by_name(section, "Course").unwrap();
    let teaches_p = datalog::translate::assoc_pred(&mut t, &db, teaches);
    let of_p = datalog::translate::assoc_pred(&mut t, &db, of);
    let tsc = t.program.pred("tsc");
    t.program.rule(
        Atom::new(tsc, vec![datalog::v(0), datalog::v(1), datalog::v(2)]),
        vec![
            Atom::new(teaches_p, vec![datalog::v(0), datalog::v(1)]),
            Atom::new(of_p, vec![datalog::v(1), datalog::v(2)]),
        ],
    );
    AssocFixture {
        db,
        registry: SubdbRegistry::new(),
        datalog: (t.program, t.edb, tsc),
    }
}

/// E1: run the OQL three-way association; returns the pattern count.
pub fn assoc_dood(f: &AssocFixture) -> usize {
    Oql::new()
        .query(&f.db, &f.registry, "context Teacher * Section * Course")
        .expect("E1 query")
        .subdb
        .len()
}

/// E1: run the Datalog equivalent; returns the derived tuple count.
pub fn assoc_datalog(f: &AssocFixture) -> usize {
    let (program, edb, tsc) = &f.datalog;
    let (db, _) = datalog::seminaive(program, edb);
    db.count(*tsc)
}

/// E2 fixture: a BOM plus the Datalog reachability program.
pub struct ClosureFixture {
    /// The BOM database.
    pub db: Database,
    /// Empty registry.
    pub registry: SubdbRegistry,
    /// Program + facts + the `reach` predicate.
    pub datalog: (datalog::Program, datalog::FactDb, datalog::Pred),
}

/// Build the E2 fixture.
pub fn closure_fixture(depth: usize, fanout: usize) -> ClosureFixture {
    let (db, _) = cad::build_bom(
        cad::BomShape { depth, fanout, roots: 2, share_per_mille: 300 },
        7,
    );
    let mut t = datalog::translate(&db);
    let part = db.schema().class_by_name("Part").unwrap();
    let comp = db.schema().own_link_by_name(part, "Component").unwrap();
    let comp_p = datalog::translate::assoc_pred(&mut t, &db, comp);
    let reach = t.program.pred("reach");
    t.program.rule(
        Atom::new(reach, vec![datalog::v(0), datalog::v(1)]),
        vec![Atom::new(comp_p, vec![datalog::v(0), datalog::v(1)])],
    );
    t.program.rule(
        Atom::new(reach, vec![datalog::v(0), datalog::v(2)]),
        vec![
            Atom::new(reach, vec![datalog::v(0), datalog::v(1)]),
            Atom::new(comp_p, vec![datalog::v(1), datalog::v(2)]),
        ],
    );
    ClosureFixture { db, registry: SubdbRegistry::new(), datalog: (t.program, t.edb, reach) }
}

/// E2: dood looping closure (`Part ^*`); returns the chain count.
pub fn closure_dood(f: &ClosureFixture) -> usize {
    Oql::new()
        .query(&f.db, &f.registry, "context Part ^*")
        .expect("E2 query")
        .subdb
        .len()
}

/// E2: Datalog recursive reachability; returns the fact count.
pub fn closure_datalog(f: &ClosureFixture) -> usize {
    let (program, edb, reach) = &f.datalog;
    let (db, _) = datalog::seminaive(program, edb);
    db.count(*reach)
}

/// E3/E4 fixture: the §6 pipeline over the company domain.
pub fn pipeline_engine(employees: usize, seed: u64) -> RuleEngine {
    let (db, _) = company::populate(company::CompanySize::scaled(employees), seed);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
        .unwrap();
    engine
        .add_rule("Rb", "if context REa:Employee * Project then REb (Employee, Project)")
        .unwrap();
    engine
        .add_rule("Rc", "if context REb:Employee * REb:Project then REc (Project)")
        .unwrap();
    engine
        .add_rule("Rd", "if context REc:Project * Department then REd (Department)")
        .unwrap();
    engine
}

/// One update step for E3/E4: reassign an employee to a fresh project.
pub fn pipeline_update(engine: &mut RuleEngine, i: usize) {
    let db = engine.db_mut();
    let employee = db.schema().class_by_name("Employee").unwrap();
    let project = db.schema().class_by_name("Project").unwrap();
    let assigned = db.schema().own_link_by_name(employee, "AssignedTo").unwrap();
    let e = db.extent(employee).nth(i % db.extent_size(employee)).unwrap();
    let p = db.new_object(project).unwrap();
    db.set_attr(p, "budget", dood_core::value::Value::Int(i as i64)).unwrap();
    db.associate(assigned, e, p).unwrap();
}

/// E3: run a workload of `updates` updates and `queries` queries under the
/// given policy for the whole pipeline; returns total query result rows
/// (to keep the optimizer honest).
pub fn chaining_workload(
    engine: &mut RuleEngine,
    policy: EvalPolicy,
    updates: usize,
    queries: usize,
) -> usize {
    for s in ["REa", "REb", "REc", "REd"] {
        engine.set_policy(s, policy);
    }
    let mut rows = 0;
    let rounds = updates.max(queries);
    for i in 0..rounds {
        if i < updates {
            pipeline_update(engine, i);
            engine.propagate().unwrap();
        }
        if i < queries {
            rows += engine
                .query("context REd:Department select dname")
                .unwrap()
                .table
                .len();
        }
    }
    rows
}

/// E4: run one update+query round in rule-oriented mode with the paper's
/// problematic strategy mix; returns whether REc/REd stayed consistent.
pub fn rule_oriented_round(engine: &mut RuleEngine, i: usize) -> bool {
    engine.set_mode(ControlMode::RuleOriented);
    engine.set_strategy("Ra", ChainStrategy::Backward);
    engine.set_strategy("Rb", ChainStrategy::Backward);
    engine.set_strategy("Rc", ChainStrategy::Forward);
    engine.set_strategy("Rd", ChainStrategy::Forward);
    pipeline_update(engine, i);
    engine.propagate().unwrap();
    engine.is_consistent("REd").unwrap() && engine.is_consistent("REc").unwrap()
}

/// E5 fixture: a linear generalization chain `C0 ⊒ C1 ⊒ … ⊒ Cdepth` with an
/// attribute at the root and an association partner at the top.
pub fn inherit_fixture(depth: usize, instances: usize) -> Database {
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::{DType, Value};
    let mut b = SchemaBuilder::new();
    b.e_class("Partner");
    b.d_class("v", DType::Int);
    for i in 0..=depth {
        b.e_class(format!("C{i}"));
        if i > 0 {
            b.generalize(format!("C{}", i - 1), format!("C{i}"));
        }
    }
    b.attr("C0", "v");
    b.aggregate_named("C0", "Partner", "Link");
    let mut db = Database::new(b.build().unwrap());
    let c0 = db.schema().class_by_name("C0").unwrap();
    let partner = db.schema().class_by_name("Partner").unwrap();
    let link = db.schema().own_link_by_name(c0, "Link").unwrap();
    for i in 0..instances {
        let root = db.new_object(c0).unwrap();
        db.set_attr(root, "v", Value::Int(i as i64)).unwrap();
        let p = db.new_object(partner).unwrap();
        db.associate(link, root, p).unwrap();
        let mut cur = root;
        for d in 1..=depth {
            let cls = db.schema().class_by_name(&format!("C{d}")).unwrap();
            cur = db.specialize(cur, cls).unwrap();
        }
    }
    db
}

/// E5: query the deepest subclass against Partner (forces climbing the
/// whole chain per instance); returns the pattern count.
pub fn inherit_query(db: &Database, depth: usize) -> usize {
    let reg = SubdbRegistry::new();
    Oql::new()
        .query(db, &reg, &format!("context C{depth} * Partner"))
        .expect("E5 query")
        .subdb
        .len()
}

/// E6: plain vs braced three-way chains over the university data; returns
/// (plain patterns, braced patterns).
pub fn braces_pair(db: &Database) -> (usize, usize) {
    let reg = SubdbRegistry::new();
    let oql = Oql::new();
    let plain = oql
        .query(db, &reg, "context Teacher * Section * Course")
        .expect("plain")
        .subdb
        .len();
    let braced = oql
        .query(db, &reg, "context {Teacher * Section} * Course")
        .expect("braced")
        .subdb
        .len();
    (plain, braced)
}

/// E7: grouped aggregation (rule R2's COUNT) at scale; returns qualifying
/// pattern count.
pub fn aggregate_query(db: &Database, threshold: i64) -> usize {
    let reg = SubdbRegistry::new();
    Oql::new()
        .query(
            db,
            &reg,
            &format!(
                "context Department * Course * Section * Student \
                 where count(Student by Course) > {threshold}"
            ),
        )
        .expect("E7 query")
        .subdb
        .len()
}

/// E12 population scale: the smallest factor that pushes the university
/// database past 100k objects (factor 1 ≈ 2.5k objects).
pub const PARALLEL_FACTOR: usize = 41;

/// E12 fixture: the E1 association workload's database at
/// [`PARALLEL_FACTOR`] scale. No Datalog baseline — the comparison axis is
/// the thread count, not the engine.
pub fn parallel_fixture() -> (Database, SubdbRegistry) {
    let db = university::populate(university::Size::scaled(PARALLEL_FACTOR), 42);
    (db, SubdbRegistry::new())
}

/// E12: the E1 association query against an explicit database; returns the
/// pattern count.
pub fn assoc_query(db: &Database, registry: &SubdbRegistry) -> usize {
    Oql::new()
        .query(db, registry, "context Teacher * Section * Course")
        .expect("E12 query")
        .subdb
        .len()
}

/// Median wall-clock time of `runs` executions, in microseconds. The
/// shared timing primitive of the row-printing binaries (`report`,
/// `ablations`); the bench targets use the [`harness`] instead.
pub fn time_us<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = std::time::Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Run `f` with `DOOD_THREADS` set to `n`, restoring the prior value after
/// (the pool reads the variable on every construction).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("DOOD_THREADS").ok();
    std::env::set_var("DOOD_THREADS", n.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("DOOD_THREADS", v),
        None => std::env::remove_var("DOOD_THREADS"),
    }
    out
}

/// E8 fixture: chain EDB for naive-vs-semi-naive.
pub fn tc_program_and_edb(n: u64) -> (datalog::Program, datalog::FactDb) {
    let mut p = datalog::Program::new();
    let edge = p.pred("edge");
    let path = p.pred("path");
    p.rule(
        Atom::new(path, vec![datalog::v(0), datalog::v(1)]),
        vec![Atom::new(edge, vec![datalog::v(0), datalog::v(1)])],
    );
    p.rule(
        Atom::new(path, vec![datalog::v(0), datalog::v(2)]),
        vec![
            Atom::new(path, vec![datalog::v(0), datalog::v(1)]),
            Atom::new(edge, vec![datalog::v(1), datalog::v(2)]),
        ],
    );
    let mut edb = datalog::FactDb::new();
    for i in 1..n {
        edb.insert(edge, vec![i, i + 1]);
    }
    (p, edb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_engines_agree() {
        let f = assoc_fixture(1);
        assert_eq!(assoc_dood(&f), assoc_datalog(&f));
    }

    #[test]
    fn e2_runs() {
        let f = closure_fixture(3, 2);
        assert!(closure_dood(&f) > 0);
        assert!(closure_datalog(&f) > 0);
    }

    #[test]
    fn e3_policies_give_same_answers() {
        let mut pre = pipeline_engine(40, 1);
        let mut post = pipeline_engine(40, 1);
        let a = chaining_workload(&mut pre, EvalPolicy::PreEvaluated, 3, 3);
        let b = chaining_workload(&mut post, EvalPolicy::PostEvaluated, 3, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn e4_rule_oriented_goes_stale() {
        let mut engine = pipeline_engine(40, 2);
        engine.query("context REd:Department").unwrap();
        assert!(!rule_oriented_round(&mut engine, 0));
    }

    #[test]
    fn e5_inherit_scales() {
        let db = inherit_fixture(4, 10);
        assert_eq!(inherit_query(&db, 4), 10);
    }

    #[test]
    fn e6_braced_superset() {
        let db = university::populate(university::Size::small(), 9);
        let (plain, braced) = braces_pair(&db);
        assert!(braced >= plain);
    }

    #[test]
    fn e7_aggregate_monotone() {
        let db = university::populate(university::Size::small(), 9);
        assert!(aggregate_query(&db, 0) >= aggregate_query(&db, 3));
    }

    #[test]
    fn e8_fixpoints() {
        let (p, edb) = tc_program_and_edb(20);
        let (a, _) = datalog::naive(&p, &edb);
        let (b, _) = datalog::seminaive(&p, &edb);
        let path = p.try_pred("path").unwrap();
        assert_eq!(a.count(path), b.count(path));
    }
}
