//! E20 — flight-recorder overhead: the cost of leaving `core::obs::recorder`
//! always on (DESIGN.md §13).
//!
//! Measures the per-site gate checks and the E1 association workload with
//! the recorder off and on (harness records, for `bench_diff.sh`
//! continuity), then renders the verdict from a dedicated paired probe:
//! interleaved off/on run pairs in one process, judged by the *median
//! per-pair ratio*. Pairing cancels the machine drift that dominates a
//! ~300µs workload on shared hosts — two independent phase medians can
//! disagree by several percent on identical code, while the paired median
//! is stable well under 1%. The acceptance bar is < 2% overhead. Prints
//! `PASS`/`WARN`; exits nonzero on a miss only under `DOOD_BENCH_STRICT=1`
//! (`DOOD_E20_FULL=1` in `scripts/ci.sh`).

use dood_bench::{assoc_dood, assoc_fixture, AssocFixture};
use dood_bench::harness::Harness;
use dood_core::obs;
use std::time::Instant;

/// Allowed recorder-on overhead vs the recorder-off median (fraction).
const OVERHEAD_BUDGET: f64 = 0.02;

/// Interleaved off/on pairs in the verdict probe.
const PAIRS: usize = 100;

fn main() {
    let mut h = Harness::new("e20_recorder");

    // Per-site costs: the recorder gate, and the accounting fast path when
    // no scope is open (one relaxed atomic load each).
    h.bench("gate/recorder_enabled", || obs::recorder::is_enabled());
    h.bench("gate/account_active", || obs::account::active().is_none());

    let f = assoc_fixture(2);
    eprintln!("e20 workload: {} objects, {} association patterns", f.db.object_count(), assoc_dood(&f));

    h.bench("assoc/recorder_off", || assoc_dood(&f));

    obs::recorder::set_enabled(true);
    h.bench("assoc/recorder_on", || assoc_dood(&f));
    obs::recorder::set_enabled(false);
    obs::recorder::clear();

    h.finish();
    paired_overhead_check(&f);
}

/// The overhead verdict: run off/on back to back [`PAIRS`] times and take
/// the median per-pair on/off ratio, so slow drift in machine state hits
/// both sides of each pair equally.
fn paired_overhead_check(f: &AssocFixture) {
    if std::env::var("DOOD_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        println!("# e20 overhead check skipped (smoke mode: timings are not meaningful)");
        return;
    }
    let mut ratios = Vec::with_capacity(PAIRS);
    for _ in 0..PAIRS {
        obs::recorder::set_enabled(false);
        let t = Instant::now();
        std::hint::black_box(assoc_dood(f));
        let off = t.elapsed().as_nanos() as f64;
        obs::recorder::set_enabled(true);
        let t = Instant::now();
        std::hint::black_box(assoc_dood(f));
        let on = t.elapsed().as_nanos() as f64;
        ratios.push(on / off);
    }
    obs::recorder::set_enabled(false);
    obs::recorder::clear();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let delta = ratios[ratios.len() / 2] - 1.0;
    let verdict = if delta < OVERHEAD_BUDGET { "PASS" } else { "WARN" };
    println!(
        "# e20 recorder overhead: {verdict} — median paired on/off ratio {:+.2}% over {PAIRS} pairs (budget {:.0}%)",
        delta * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    if verdict == "WARN" && std::env::var("DOOD_BENCH_STRICT").is_ok_and(|v| v == "1") {
        eprintln!("# e20: over budget under DOOD_BENCH_STRICT=1");
        std::process::exit(1);
    }
}
