//! Fluent construction of schemas.
//!
//! The builder resolves class names lazily, so classes and associations may
//! be declared in any order; `build` performs the final validation.

use crate::error::SchemaError;
use crate::ids::{AssocId, ClassId};
use crate::schema::assoc::{AssocDef, AssocKind, Cardinality};
use crate::schema::class::{ClassDef, ClassKind};
use crate::schema::graph::{assemble, Schema};
use crate::value::DType;

#[derive(Debug, Clone)]
struct PendingAssoc {
    name: Option<String>,
    from: String,
    to: String,
    kind: AssocKind,
    required: bool,
    cardinality: Cardinality,
}

/// Builds a [`Schema`].
///
/// ```
/// use dood_core::schema::SchemaBuilder;
/// use dood_core::value::DType;
///
/// let mut b = SchemaBuilder::new();
/// b.e_class("Person");
/// b.e_class("Student");
/// b.d_class("Name", DType::Str);
/// b.attr("Person", "Name");
/// b.generalize("Person", "Student");
/// let schema = b.build().unwrap();
/// assert_eq!(schema.class_count(), 3);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    classes: Vec<(String, ClassKind)>,
    assocs: Vec<PendingAssoc>,
}

impl SchemaBuilder {
    /// New, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an entity class.
    pub fn e_class(&mut self, name: impl Into<String>) -> &mut Self {
        self.classes.push((name.into(), ClassKind::EClass));
        self
    }

    /// Declare a domain class of the given value type.
    pub fn d_class(&mut self, name: impl Into<String>, ty: DType) -> &mut Self {
        self.classes.push((name.into(), ClassKind::DClass(ty)));
        self
    }

    fn push_assoc(
        &mut self,
        name: Option<String>,
        from: impl Into<String>,
        to: impl Into<String>,
        kind: AssocKind,
        required: bool,
        cardinality: Cardinality,
    ) -> &mut Self {
        self.assocs.push(PendingAssoc {
            name,
            from: from.into(),
            to: to.into(),
            kind,
            required,
            cardinality,
        });
        self
    }

    /// Declare a descriptive attribute: an aggregation from E-class `class`
    /// to D-class `domain`, named after the domain (the paper's default
    /// naming rule).
    pub fn attr(&mut self, class: impl Into<String>, domain: impl Into<String>) -> &mut Self {
        self.push_assoc(None, class, domain, AssocKind::Aggregation, false, Cardinality::Single)
    }

    /// Declare a descriptive attribute with an explicit link name (the
    /// paper's `Major` link from Student to Department is the example of a
    /// link "with a different name from the class it connects to").
    pub fn attr_named(
        &mut self,
        class: impl Into<String>,
        domain: impl Into<String>,
        name: impl Into<String>,
    ) -> &mut Self {
        self.push_assoc(
            Some(name.into()),
            class,
            domain,
            AssocKind::Aggregation,
            false,
            Cardinality::Single,
        )
    }

    /// Declare a many-valued E→E aggregation named after the target class.
    pub fn aggregate(&mut self, from: impl Into<String>, to: impl Into<String>) -> &mut Self {
        self.push_assoc(None, from, to, AssocKind::Aggregation, false, Cardinality::Many)
    }

    /// Declare a many-valued E→E aggregation with an explicit name.
    pub fn aggregate_named(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        name: impl Into<String>,
    ) -> &mut Self {
        self.push_assoc(Some(name.into()), from, to, AssocKind::Aggregation, false, Cardinality::Many)
    }

    /// Declare a single-valued E→E aggregation (e.g. a Section's Course).
    pub fn aggregate_single(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> &mut Self {
        self.push_assoc(None, from, to, AssocKind::Aggregation, false, Cardinality::Single)
    }

    /// Declare a single-valued E→E aggregation with explicit name.
    pub fn aggregate_single_named(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        name: impl Into<String>,
    ) -> &mut Self {
        self.push_assoc(Some(name.into()), from, to, AssocKind::Aggregation, false, Cardinality::Single)
    }

    /// Mark the most recently declared association as non-null (required).
    pub fn required(&mut self) -> &mut Self {
        if let Some(a) = self.assocs.last_mut() {
            a.required = true;
        }
        self
    }

    /// Declare a generalization: `sub` is a subclass of `sup`.
    pub fn generalize(&mut self, sup: impl Into<String>, sub: impl Into<String>) -> &mut Self {
        let sub = sub.into();
        let name = format!("G_{sub}");
        self.push_assoc(Some(name), sup, sub, AssocKind::Generalization, false, Cardinality::Many)
    }

    /// Declare an interaction association.
    pub fn interact(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        name: impl Into<String>,
    ) -> &mut Self {
        self.push_assoc(Some(name.into()), from, to, AssocKind::Interaction, false, Cardinality::Many)
    }

    /// Declare a composition association.
    pub fn compose(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        name: impl Into<String>,
    ) -> &mut Self {
        self.push_assoc(Some(name.into()), from, to, AssocKind::Composition, false, Cardinality::Many)
    }

    /// Declare a crossproduct association.
    pub fn crossproduct(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        name: impl Into<String>,
    ) -> &mut Self {
        self.push_assoc(Some(name.into()), from, to, AssocKind::Crossproduct, false, Cardinality::Many)
    }

    /// Validate and produce the immutable schema.
    pub fn build(&self) -> Result<Schema, SchemaError> {
        let classes: Vec<ClassDef> = self
            .classes
            .iter()
            .enumerate()
            .map(|(i, (name, kind))| ClassDef {
                id: ClassId(i as u32),
                name: name.clone(),
                kind: *kind,
            })
            .collect();
        // Temporary name table (duplicates are caught by assemble()).
        let mut by_name = crate::fxhash::FxHashMap::default();
        for c in &classes {
            by_name.entry(c.name.clone()).or_insert(c.id);
        }
        let lookup = |n: &str| -> Result<ClassId, SchemaError> {
            by_name
                .get(n)
                .copied()
                .ok_or_else(|| SchemaError::UnknownClass(n.to_string()))
        };
        let mut assocs = Vec::with_capacity(self.assocs.len());
        for (i, p) in self.assocs.iter().enumerate() {
            let from = lookup(&p.from)?;
            let to = lookup(&p.to)?;
            let name = p.name.clone().unwrap_or_else(|| p.to.clone());
            assocs.push(AssocDef {
                id: AssocId(i as u32),
                name,
                from,
                to,
                kind: p.kind,
                required: p.required,
                cardinality: p.cardinality,
            });
        }
        assemble(classes, assocs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_name_is_target_class() {
        let mut b = SchemaBuilder::new();
        b.e_class("Section");
        b.e_class("Course");
        b.aggregate_single("Section", "Course");
        let s = b.build().unwrap();
        let sec = s.class_by_name("Section").unwrap();
        assert!(s.own_link_by_name(sec, "Course").is_some());
    }

    #[test]
    fn explicit_link_name() {
        let mut b = SchemaBuilder::new();
        b.e_class("Student");
        b.e_class("Department");
        b.aggregate_single_named("Student", "Department", "Major");
        let s = b.build().unwrap();
        let st = s.class_by_name("Student").unwrap();
        assert!(s.own_link_by_name(st, "Major").is_some());
        assert!(s.own_link_by_name(st, "Department").is_none());
    }

    #[test]
    fn unknown_class_in_assoc_errors() {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.aggregate("A", "Nope");
        assert!(matches!(b.build(), Err(SchemaError::UnknownClass(_))));
    }

    #[test]
    fn required_marks_last_assoc() {
        let mut b = SchemaBuilder::new();
        b.e_class("Course");
        b.e_class("Section");
        b.aggregate_single("Section", "Course");
        b.required();
        let s = b.build().unwrap();
        assert!(s.assocs()[0].required);
    }

    #[test]
    fn declaration_order_independent() {
        let mut b = SchemaBuilder::new();
        b.aggregate("A", "B"); // declared before classes exist
        b.e_class("A");
        b.e_class("B");
        let s = b.build().unwrap();
        assert_eq!(s.assoc_count(), 1);
    }

    #[test]
    fn five_association_kinds_build() {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.aggregate("A", "B");
        b.generalize("A", "B");
        b.interact("A", "B", "i");
        b.compose("A", "B", "c");
        b.crossproduct("A", "B", "x");
        let s = b.build().unwrap();
        assert_eq!(s.assoc_count(), 5);
        let letters: Vec<char> = s.assocs().iter().map(|a| a.kind.letter()).collect();
        assert_eq!(letters, vec!['A', 'G', 'I', 'C', 'X']);
    }
}
