//! A social follow-graph domain — the deep-closure scenario ROADMAP item 5
//! names: reachability over a `Follows` self-association under heavy
//! fan-out, long follower chains, and follow-back cycles.
//!
//! The generated shape stresses exactly what the compiled closure kernel
//! (DESIGN.md §11) is built for: a few *influencers* with wide fan-out
//! (big frontier rounds), long chains hanging off each branch (many
//! fixpoint rounds), and optional back-edges closing cycles (the per-chain
//! cycle cut). Clusters are kept independent so the number of maximal
//! chains stays linear in the population rather than combinatorial.

use dood_core::ids::Oid;
use dood_core::rng::Rng;
use dood_core::schema::{Schema, SchemaBuilder};
use dood_core::value::{DType, Value};
use dood_store::Database;

/// Build the social schema: `Person` with a `Follows` self-association and
/// name/score attributes.
pub fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.e_class("Person");
    b.d_class("pname", DType::Str);
    b.d_class("score", DType::Int);
    b.attr("Person", "pname");
    b.attr("Person", "score");
    b.aggregate_named("Person", "Person", "Follows");
    b.build().expect("social schema valid")
}

/// Shape of a generated follow graph.
#[derive(Debug, Clone, Copy)]
pub struct SocialShape {
    /// Independent influencer clusters.
    pub influencers: usize,
    /// Branches per influencer (frontier width).
    pub fanout: usize,
    /// Followers chained below each branch (fixpoint depth).
    pub depth: usize,
    /// Per-mille probability that a branch's deepest follower follows the
    /// cluster's influencer back, closing a cycle.
    pub cycle_per_mille: u32,
}

impl SocialShape {
    /// A small graph for tests: 2 influencers × 3 branches × 4-deep
    /// chains, every branch cycling back.
    pub fn small() -> Self {
        SocialShape { influencers: 2, fanout: 3, depth: 4, cycle_per_mille: 1000 }
    }

    /// Total people the shape generates.
    pub fn people(&self) -> usize {
        self.influencers * (1 + self.fanout * self.depth)
    }
}

/// Build a follow graph. Returns the database and the influencer OIDs.
/// Deterministic in `seed`.
pub fn build_graph(shape: SocialShape, seed: u64) -> (Database, Vec<Oid>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new(schema());
    let person = db.schema().class_by_name("Person").unwrap();
    let follows = db.schema().own_link_by_name(person, "Follows").unwrap();

    let mut influencers = Vec::with_capacity(shape.influencers);
    for i in 0..shape.influencers {
        let inf = db.new_object(person).unwrap();
        db.set_attr(inf, "pname", Value::str(format!("inf-{i}"))).unwrap();
        db.set_attr(inf, "score", Value::Int(rng.random_range(50i64..100))).unwrap();
        influencers.push(inf);
        for f in 0..shape.fanout {
            let mut prev = inf;
            for d in 0..shape.depth {
                let p = db.new_object(person).unwrap();
                db.set_attr(p, "pname", Value::str(format!("p-{i}-{f}-{d}"))).unwrap();
                db.set_attr(p, "score", Value::Int(rng.random_range(0i64..100))).unwrap();
                db.associate(follows, prev, p).unwrap();
                prev = p;
            }
            if rng.random_range(0u32..1000) < shape.cycle_per_mille {
                db.associate(follows, prev, inf).unwrap();
            }
        }
    }
    (db, influencers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_expected_counts() {
        let shape = SocialShape::small();
        let (db, infs) = build_graph(shape, 7);
        let person = db.schema().class_by_name("Person").unwrap();
        assert_eq!(infs.len(), 2);
        assert_eq!(db.extent_size(person), shape.people());
        let follows = db.schema().own_link_by_name(person, "Follows").unwrap();
        // Every chain edge plus one cycle-back edge per branch.
        assert_eq!(db.link_count(follows), 2 * 3 * 4 + 2 * 3);
    }

    #[test]
    fn deterministic() {
        let (a, _) = build_graph(SocialShape::small(), 5);
        let (b, _) = build_graph(SocialShape::small(), 5);
        assert_eq!(a.object_count(), b.object_count());
    }
}
