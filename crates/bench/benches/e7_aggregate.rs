//! E7 — grouped aggregation (`COUNT … BY …`, rule R2) at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dood_bench::aggregate_query;
use dood_workload::university;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_aggregate");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for factor in [1usize, 2, 4] {
        let db = university::populate(university::Size::scaled(factor), 8);
        g.bench_with_input(BenchmarkId::from_parameter(factor), &db, |b, db| {
            b.iter(|| black_box(aggregate_query(db, 10)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
