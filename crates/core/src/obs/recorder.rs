//! `obs::recorder` — the always-on flight recorder (DESIGN.md §13).
//!
//! A bounded in-memory ring of the most recent closed spans, kept so the
//! evidence for an anomaly (a slow query, a plan drift) already exists
//! when the anomaly is noticed — no re-run needed. The ring is striped
//! per thread: every recording thread owns a fixed-capacity buffer behind
//! its own (uncontended) mutex, and each record is stamped with a global
//! sequence number so [`dump`] can merge the stripes back into one
//! coherent, oldest-to-newest event stream.
//!
//! Cost contract: when disabled, the recorder costs the one relaxed
//! atomic load already paid by the trace gate (spans are inert, so
//! [`record`] is never reached). When enabled, recording a span is one
//! thread-local access, one relaxed fetch-add, and one uncontended lock —
//! bench E20 gates the end-to-end overhead at <2% on the E1 workload.
//!
//! Enabling: env `DOOD_FLIGHT=1` (capacity per stripe via
//! `DOOD_FLIGHT_CAP`, default 2048) or [`set_enabled`]. Enabling the
//! recorder turns the trace gate on — spans must be live to be recorded —
//! but installs no stream writer, so nothing is written anywhere until
//! [`dump`] (or an anomaly) asks for the ring's contents.

use super::trace::SpanRecord;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One thread's slice of the ring.
struct Stripe {
    /// `(sequence, record)` pairs; at most `cap` of them.
    buf: Vec<(u64, SpanRecord)>,
    /// Next overwrite position once `buf` is full.
    cursor: usize,
    /// Records overwritten (lost) on this stripe since the last [`clear`].
    dropped: u64,
}

impl Stripe {
    fn push(&mut self, seq: u64, rec: SpanRecord, cap: usize) {
        if self.buf.len() < cap {
            self.buf.push((seq, rec));
        } else {
            self.buf[self.cursor] = (seq, rec);
            self.cursor = (self.cursor + 1) % cap;
            self.dropped += 1;
        }
    }
}

fn stripes() -> &'static Mutex<Vec<Arc<Mutex<Stripe>>>> {
    static S: OnceLock<Mutex<Vec<Arc<Mutex<Stripe>>>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Mutex<Stripe>> = {
        let stripe = Arc::new(Mutex::new(Stripe {
            buf: Vec::new(),
            cursor: 0,
            dropped: 0,
        }));
        stripes().lock().unwrap().push(stripe.clone());
        stripe
    };
}

/// Global sequence stamp: total order over records from all stripes.
static SEQ: AtomicU64 = AtomicU64::new(0);

static RECORDER_GATE: super::Gate = super::Gate::new();

fn env_init() -> bool {
    super::env_flag("DOOD_FLIGHT")
}

/// Whether the flight recorder is on (env `DOOD_FLIGHT` or
/// [`set_enabled`]). One relaxed atomic load after the first call.
#[inline]
pub fn is_enabled() -> bool {
    RECORDER_GATE.is_on(env_init)
}

/// Programmatically enable or disable the recorder (overrides the
/// `DOOD_FLIGHT` environment default) and refresh the trace gate, which
/// folds the recorder state in: spans must be live to be recorded.
pub fn set_enabled(on: bool) {
    let _ = super::trace_enabled(); // settle env state first
    RECORDER_GATE.set(on);
    super::trace::recompute_gate();
}

/// Per-stripe ring capacity: `DOOD_FLIGHT_CAP`, default 2048, min 16.
pub fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("DOOD_FLIGHT_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|c| c.max(16))
            .unwrap_or(2048)
    })
}

/// Record one closed span into the current thread's stripe. Called by the
/// trace emitter for every closed span while the recorder is enabled.
pub(super) fn record(rec: &SpanRecord) {
    record_owned(rec.clone());
}

/// [`record`] by move: the emit path uses this when the ring is the only
/// consumer of a closing span, skipping the record's deep clone.
pub(super) fn record_owned(rec: SpanRecord) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let cap = capacity();
    LOCAL.with(|s| s.lock().unwrap().push(seq, rec, cap));
}

/// Merge every stripe into one chronological (sequence-ordered) snapshot
/// of the ring's current contents. Returns the records plus the number of
/// older records that were overwritten and lost.
pub fn dump() -> (Vec<SpanRecord>, u64) {
    let mut all: Vec<(u64, SpanRecord)> = Vec::new();
    let mut dropped = 0u64;
    for stripe in stripes().lock().unwrap().iter() {
        let s = stripe.lock().unwrap();
        all.extend(s.buf.iter().cloned());
        dropped += s.dropped;
    }
    all.sort_by_key(|&(seq, _)| seq);
    (all.into_iter().map(|(_, r)| r).collect(), dropped)
}

/// The ring's contents as a JSON-lines trace (same format as
/// `DOOD_TRACE=1`, validatable in flight mode — a ring dump may begin
/// mid-span, so strict nesting checks do not apply).
pub fn dump_json() -> String {
    let (recs, _) = dump();
    let mut out = String::new();
    for r in &recs {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

/// Write the ring's contents to `path` as JSON lines.
pub fn dump_to_path(path: &str) -> std::io::Result<usize> {
    let (recs, _) = dump();
    let mut out = String::new();
    for r in &recs {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    std::fs::write(path, out)?;
    Ok(recs.len())
}

/// Empty every stripe (tests; keeps the stripes registered).
pub fn clear() {
    for stripe in stripes().lock().unwrap().iter() {
        let mut s = stripe.lock().unwrap();
        s.buf.clear();
        s.cursor = 0;
        s.dropped = 0;
    }
}

/// Anomaly hook: if the recorder is enabled and `DOOD_FLIGHT_DUMP` names
/// a path, write the ring there (annotated to stderr with `reason`), so
/// the evidence window around the anomaly survives the process. Counts
/// `obs.flight.dumps` when metrics are on. Returns whether a dump was
/// written.
pub fn dump_on_anomaly(reason: &str) -> bool {
    if !is_enabled() {
        return false;
    }
    if super::metrics_enabled() {
        super::metrics::counter("obs.flight.anomalies").inc();
    }
    let Ok(path) = std::env::var("DOOD_FLIGHT_DUMP") else {
        return false;
    };
    match dump_to_path(&path) {
        Ok(n) => {
            eprintln!("obs: flight recorder dumped {n} span(s) to `{path}` ({reason})");
            if super::metrics_enabled() {
                super::metrics::counter("obs.flight.dumps").inc();
            }
            true
        }
        Err(e) => {
            eprintln!("obs: flight dump to `{path}` failed: {e}");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both tests mutate the shared stripes; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn rec(id: u64, name: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent: None,
            thread: 0,
            name: name.to_string(),
            label: None,
            start_ns: id * 10,
            dur_ns: 5,
            attrs: vec![],
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_merges_by_sequence() {
        let _g = lock();
        clear();
        let cap = capacity();
        // Overfill from two threads; the merged dump must be
        // sequence-ordered and bounded by the stripe capacities.
        let n = cap + 32;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..n as u64 {
                    record(&rec(i, "test.flight.a"));
                }
            });
            s.spawn(|| {
                for i in 0..64u64 {
                    record(&rec(1_000_000 + i, "test.flight.b"));
                }
            });
        });
        let (recs, dropped) = dump();
        assert!(dropped >= 32, "overfill must drop: {dropped}");
        assert!(recs.len() <= cap + 64);
        let a: Vec<&SpanRecord> =
            recs.iter().filter(|r| r.name == "test.flight.a").collect();
        assert_eq!(a.len(), cap, "stripe a holds exactly its capacity");
        // Oldest were overwritten: the lowest surviving id is n - cap.
        assert!(a.iter().all(|r| r.id >= (n - cap) as u64));
        // Per-stripe order survives the merge.
        for w in a.windows(2) {
            assert!(w[0].id < w[1].id);
        }
        clear();
        assert_eq!(dump().0.len(), 0);
    }

    #[test]
    fn dump_json_round_trips() {
        let _g = lock();
        clear();
        record(&rec(7, "test.flight.json"));
        let text = dump_json();
        let line = text
            .lines()
            .find(|l| l.contains("test.flight.json"))
            .expect("recorded span in dump");
        let parsed = SpanRecord::from_json_line(line).unwrap();
        assert_eq!(parsed.id, 7);
        clear();
    }
}
