//! Tokens of the OQL / rule-language surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // paired delimiters & comparison variants are self-describing
pub enum Token {
    /// Identifier: class, attribute, subdatabase or operation name.
    /// Identifiers may contain `#` (the paper's `c#`, `section#`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `*` — the association pattern operator.
    Star,
    /// `!` — the non-association pattern operator.
    Bang,
    /// `{` `}` — association pattern subexpressions (paper §5.1).
    LBrace,
    RBrace,
    /// `[` `]` — intra-class conditions / attribute lists.
    LBracket,
    RBracket,
    /// `(` `)`.
    LParen,
    RParen,
    /// `:` — subdatabase qualification (`Suggest_offer:Course`).
    Colon,
    /// `,`.
    Comma,
    /// `.` — attribute access in WHERE (`Teacher.name`).
    Dot,
    /// `^` — the iteration ("superscript") marker of §5.2: `^*` or `^3`.
    Caret,
    /// `-` — unary minus in literals.
    Minus,
    /// Comparison operators.
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    /// Keywords (case-insensitive in the source).
    If,
    Then,
    Context,
    Where,
    Select,
    And,
    Or,
    Not,
    By,
    /// End of input.
    Eof,
}

impl Token {
    /// Keyword for an identifier spelling, if any.
    pub fn keyword(s: &str) -> Option<Token> {
        match s.to_ascii_lowercase().as_str() {
            "if" => Some(Token::If),
            "then" => Some(Token::Then),
            "context" => Some(Token::Context),
            "where" => Some(Token::Where),
            "select" => Some(Token::Select),
            "and" => Some(Token::And),
            "or" => Some(Token::Or),
            "not" => Some(Token::Not),
            "by" => Some(Token::By),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Star => f.write_str("*"),
            Token::Bang => f.write_str("!"),
            Token::LBrace => f.write_str("{"),
            Token::RBrace => f.write_str("}"),
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Colon => f.write_str(":"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Caret => f.write_str("^"),
            Token::Minus => f.write_str("-"),
            Token::Eq => f.write_str("="),
            Token::Neq => f.write_str("!="),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::If => f.write_str("if"),
            Token::Then => f.write_str("then"),
            Token::Context => f.write_str("context"),
            Token::Where => f.write_str("where"),
            Token::Select => f.write_str("select"),
            Token::And => f.write_str("and"),
            Token::Or => f.write_str("or"),
            Token::Not => f.write_str("not"),
            Token::By => f.write_str("by"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source span (for error messages and diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Start byte offset in the source.
    pub at: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}
