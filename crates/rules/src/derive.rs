//! Applying one rule: evaluate the IF clause, then build the target
//! subdatabase per the THEN clause (paper §4.2).
//!
//! The THEN clause:
//! * retains only the referenced classes ("other unreferenced classes will
//!   not be retained");
//! * derives **new direct associations** between the retained classes
//!   (Fig. 4.3a: Teacher—Course, though associated only through Section in
//!   the operand);
//! * restricts inherited attributes when an attribute list is given;
//! * keeps, per slot, the source-class bookkeeping that constitutes the
//!   **induced generalization association** (§4.1).

use crate::ast::{Rule, TargetItem};
use crate::error::RuleError;
use dood_core::obs;
use dood_oql::ast::ClassRef;
use dood_oql::eval_context;
use dood_oql::wherec::find_slot;
use dood_core::subdb::{Intension, Subdatabase, SubdbRegistry};
use dood_store::Database;

/// Evaluate `rule` against the database and the already-derived sources in
/// `registry`, producing the target subdatabase (not yet registered).
pub fn apply_rule(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
) -> Result<Subdatabase, RuleError> {
    let mut sp = obs::trace::span("rules.rule");
    sp.label(|| rule.name.clone());
    if obs::metrics_enabled() {
        obs::metrics::counter("rules.rule.applications").inc();
    }
    let ctx = eval_rule_context(rule, db, registry)?;
    sp.attr("ctx_rows", ctx.len() as i64);
    let target = project_targets(rule, &ctx, db)?;
    sp.attr("target_rows", target.len() as i64);
    Ok(target)
}

/// Evaluate just the IF clause (context + WHERE) of a rule, returning the
/// unprojected context subdatabase. Exposed for incremental maintenance,
/// which caches the context to keep the evidence for projected-away
/// intermediate classes.
pub fn eval_rule_context(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
) -> Result<Subdatabase, RuleError> {
    eval_context(&rule.context, &rule.where_, db, registry, "if-context")
        .map_err(RuleError::Query)
}

/// Resolve a rule's THEN-clause targets to context-slot indices (in target
/// order, families expanded). Exposed for incremental maintenance, which
/// counts projections of context patterns onto these slots.
pub fn target_slots(rule: &Rule, intension: &Intension) -> Result<Vec<usize>, RuleError> {
    let mut slots: Vec<usize> = Vec::new();
    for t in &rule.targets {
        match t {
            TargetItem::Class { class, .. } => {
                slots.push(find_slot(intension, class).map_err(|_| {
                    RuleError::UnknownTarget { rule: rule.name.clone(), target: class.to_string() }
                })?);
            }
            TargetItem::Family { base } => {
                let fam: Vec<usize> = intension
                    .slots_of_family(base)
                    .into_iter()
                    .filter(|&i| intension.slots[i].name != *base)
                    .collect();
                if fam.is_empty() {
                    return Err(RuleError::UnknownTarget {
                        rule: rule.name.clone(),
                        target: format!("{base}_*"),
                    });
                }
                slots.extend(fam);
            }
        }
    }
    Ok(slots)
}

/// Build the target subdatabase from an evaluated IF-context.
pub fn project_targets(
    rule: &Rule,
    ctx: &Subdatabase,
    db: &Database,
) -> Result<Subdatabase, RuleError> {
    let mut slots: Vec<usize> = Vec::new();
    let mut restrictions: Vec<Option<Vec<String>>> = Vec::new();
    for t in &rule.targets {
        match t {
            TargetItem::Class { class, attrs } => {
                let slot = find_slot(&ctx.intension, class).map_err(|_| {
                    RuleError::UnknownTarget { rule: rule.name.clone(), target: class.to_string() }
                })?;
                // Validate the attribute restriction against the base class.
                if let Some(list) = attrs {
                    for a in list {
                        db.schema()
                            .resolve_attr(ctx.intension.slots[slot].base, a)
                            .map_err(|e| RuleError::Query(e.into()))?;
                    }
                }
                slots.push(slot);
                restrictions.push(attrs.clone());
            }
            TargetItem::Family { base } => {
                // Paper R6: "the second argument Grad* stands for Grad_1,
                // Grad_2, …" — the family covers levels ≥ 1; level 0 is
                // referenced by its plain name.
                let fam: Vec<usize> = ctx
                    .intension
                    .slots_of_family(base)
                    .into_iter()
                    .filter(|&i| ctx.intension.slots[i].name != *base)
                    .collect();
                if fam.is_empty() {
                    return Err(RuleError::UnknownTarget {
                        rule: rule.name.clone(),
                        target: format!("{base}_*"),
                    });
                }
                for s in fam {
                    slots.push(s);
                    restrictions.push(None);
                }
            }
        }
    }
    let mut out = ctx.project(&rule.target_subdb, &slots);
    // Intersect attribute restrictions.
    for (i, restriction) in restrictions.iter().enumerate() {
        if let Some(list) = restriction {
            let def = &mut out.intension.slots[i];
            def.attrs = Some(match def.attrs.take() {
                None => list.clone(),
                Some(existing) => list.iter().filter(|a| existing.contains(a)).cloned().collect(),
            });
        }
    }
    // Derived direct associations between consecutive target classes.
    for i in 0..out.intension.width().saturating_sub(1) {
        out.intension.add_edge(i, i + 1);
    }
    // Projection may produce all-Null rows (a retained brace-span pattern
    // whose classes were all projected away) and newly-subsumed parts.
    let keep: Vec<_> = out
        .patterns()
        .filter(|p| p.pattern_type().arity() > 0)
        .cloned()
        .collect();
    out.set_patterns(keep);
    out.retain_maximal();
    Ok(out)
}

/// Check that two rules deriving the same subdatabase agree on the slot
/// layout (names), so their unions are meaningful (R4/R5 semantics).
pub fn layouts_compatible(a: &Subdatabase, b: &Subdatabase) -> bool {
    a.intension.slots.len() == b.intension.slots.len()
        && a.intension
            .slots
            .iter()
            .zip(&b.intension.slots)
            .all(|(x, y)| x.name == y.name && x.base == y.base)
}

/// The target-slot *names* a rule will produce, without evaluating it
/// (families expand at runtime, represented here as `base_*`). Used for
/// cheap layout pre-checks.
pub fn target_names(rule: &Rule) -> Vec<String> {
    rule.targets
        .iter()
        .map(|t| match t {
            TargetItem::Class { class, .. } => class.name.clone(),
            TargetItem::Family { base } => format!("{base}_*"),
        })
        .collect()
}

/// A [`ClassRef`] to each derived class of a subdatabase (helper for
/// callers constructing follow-up queries).
pub fn derived_refs(sd: &Subdatabase) -> Vec<ClassRef> {
    sd.intension
        .slots
        .iter()
        .map(|s| ClassRef::qualified(sd.name.clone(), s.name.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::{DType, Value};

    /// Teacher–Section–Course mini-world mirroring Fig. 3.1.
    fn setup() -> Database {
        let mut b = SchemaBuilder::new();
        b.e_class("Teacher");
        b.e_class("Section");
        b.e_class("Course");
        b.d_class("name", DType::Str);
        b.d_class("Degree", DType::Str);
        b.attr("Teacher", "name");
        b.attr("Teacher", "Degree");
        b.aggregate_named("Teacher", "Section", "Teaches");
        b.aggregate_single("Section", "Course");
        let mut db = Database::new(b.build().unwrap());
        let teacher = db.schema().class_by_name("Teacher").unwrap();
        let section = db.schema().class_by_name("Section").unwrap();
        let course = db.schema().class_by_name("Course").unwrap();
        let teaches = db.schema().own_link_by_name(teacher, "Teaches").unwrap();
        let of = db.schema().own_link_by_name(section, "Course").unwrap();
        let t1 = db.new_object(teacher).unwrap();
        let s1 = db.new_object(section).unwrap();
        let s2 = db.new_object(section).unwrap();
        let c1 = db.new_object(course).unwrap();
        db.set_attr(t1, "name", Value::str("smith")).unwrap();
        db.associate(teaches, t1, s1).unwrap();
        db.associate(teaches, t1, s2).unwrap();
        db.associate(of, s1, c1).unwrap();
        db.associate(of, s2, c1).unwrap();
        db
    }

    #[test]
    fn rule_r1_projects_and_derives_direct_edge() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let rule = parse_rule(
            "R1",
            "if context Teacher * Section * Course then Teacher_course (Teacher, Course)",
        )
        .unwrap();
        let sd = apply_rule(&rule, &db, &reg).unwrap();
        assert_eq!(sd.name, "Teacher_course");
        assert_eq!(sd.intension.width(), 2);
        // t1 teaches two sections of c1 → one derived pattern.
        assert_eq!(sd.len(), 1);
        assert!(sd.intension.has_edge(0, 1));
        assert_eq!(sd.intension.slots[0].name, "Teacher");
    }

    #[test]
    fn attribute_restriction_recorded() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let rule = parse_rule(
            "R1b",
            "if context Teacher * Section * Course \
             then Teacher_course (Teacher [Degree], Course)",
        )
        .unwrap();
        let sd = apply_rule(&rule, &db, &reg).unwrap();
        assert_eq!(sd.intension.slots[0].attrs, Some(vec!["Degree".to_string()]));
        assert!(sd.intension.slots[0].attr_accessible("Degree"));
        assert!(!sd.intension.slots[0].attr_accessible("name"));
    }

    #[test]
    fn unknown_attr_in_restriction_errors() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let rule = parse_rule(
            "bad",
            "if context Teacher * Section then T (Teacher [salary])",
        )
        .unwrap();
        assert!(apply_rule(&rule, &db, &reg).is_err());
    }

    #[test]
    fn unknown_target_errors() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let rule =
            parse_rule("bad", "if context Teacher * Section then T (Course)").unwrap();
        assert!(matches!(
            apply_rule(&rule, &db, &reg),
            Err(RuleError::UnknownTarget { .. })
        ));
    }

    #[test]
    fn layout_compatibility() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let r1 = parse_rule(
            "a",
            "if context Teacher * Section * Course then X (Teacher, Course)",
        )
        .unwrap();
        let r2 = parse_rule(
            "b",
            "if context Teacher * Section then X (Teacher, Section)",
        )
        .unwrap();
        let s1 = apply_rule(&r1, &db, &reg).unwrap();
        let s2 = apply_rule(&r2, &db, &reg).unwrap();
        assert!(!layouts_compatible(&s1, &s2));
        assert!(layouts_compatible(&s1, &s1));
    }

    #[test]
    fn derived_refs_are_qualified() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let rule = parse_rule(
            "R1",
            "if context Teacher * Section * Course then TC (Teacher, Course)",
        )
        .unwrap();
        let sd = apply_rule(&rule, &db, &reg).unwrap();
        let refs = derived_refs(&sd);
        assert_eq!(refs[0].to_string(), "TC:Teacher");
        assert_eq!(refs[1].to_string(), "TC:Course");
    }
}
