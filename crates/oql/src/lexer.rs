//! Lexer for OQL queries and deductive rules.

use crate::error::ParseError;
use crate::token::{Spanned, Token};

/// Tokenize a source string. Identifiers may contain letters, digits, `_`
/// and `#` (`c#`, `section#`); they must not start with a digit. `--`
/// starts a line comment.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Chars are decoded properly so multibyte input errors cleanly
        // instead of slicing mid-codepoint.
        let c = src[i..].chars().next().expect("i is on a char boundary");
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' => {
                out.push(Spanned { tok: Token::Minus, at: i, end: i + 1 });
                i += 1;
            }
            '*' => {
                out.push(Spanned { tok: Token::Star, at: i, end: i + 1 });
                i += 1;
            }
            '{' => {
                out.push(Spanned { tok: Token::LBrace, at: i, end: i + 1 });
                i += 1;
            }
            '}' => {
                out.push(Spanned { tok: Token::RBrace, at: i, end: i + 1 });
                i += 1;
            }
            '[' => {
                out.push(Spanned { tok: Token::LBracket, at: i, end: i + 1 });
                i += 1;
            }
            ']' => {
                out.push(Spanned { tok: Token::RBracket, at: i, end: i + 1 });
                i += 1;
            }
            '(' => {
                out.push(Spanned { tok: Token::LParen, at: i, end: i + 1 });
                i += 1;
            }
            ')' => {
                out.push(Spanned { tok: Token::RParen, at: i, end: i + 1 });
                i += 1;
            }
            ':' => {
                out.push(Spanned { tok: Token::Colon, at: i, end: i + 1 });
                i += 1;
            }
            ',' => {
                out.push(Spanned { tok: Token::Comma, at: i, end: i + 1 });
                i += 1;
            }
            '^' => {
                out.push(Spanned { tok: Token::Caret, at: i, end: i + 1 });
                i += 1;
            }
            '.' => {
                out.push(Spanned { tok: Token::Dot, at: i, end: i + 1 });
                i += 1;
            }
            '=' => {
                out.push(Spanned { tok: Token::Eq, at: i, end: i + 1 });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Token::Neq, at: i, end: i + 2 });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Bang, at: i, end: i + 1 });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Token::Le, at: i, end: i + 2 });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Spanned { tok: Token::Neq, at: i, end: i + 2 });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Lt, at: i, end: i + 1 });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Token::Ge, at: i, end: i + 2 });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Gt, at: i, end: i + 1 });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match src[i..].chars().next() {
                        None => {
                            return Err(ParseError::new(start, "unterminated string literal"))
                        }
                        Some('\'') => {
                            // Doubled quote escapes a quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(ch) => {
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Spanned { tok: Token::Str(s), at: start, end: i });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A decimal point followed by a digit makes it a real
                // (a lone `.` is the attribute-access dot).
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::new(start, "invalid real literal"))?;
                    out.push(Spanned { tok: Token::Real(v), at: start, end: i });
                } else {
                    let text = &src[start..i];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::new(start, "invalid integer literal"))?;
                    out.push(Spanned { tok: Token::Int(v), at: start, end: i });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while let Some(ch) = src[i..].chars().next() {
                    if ch.is_alphanumeric() || ch == '_' || ch == '#' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                let tok = Token::keyword(text).unwrap_or_else(|| Token::Ident(text.to_string()));
                out.push(Spanned { tok, at: start, end: i });
            }
            other => {
                let _ = other.len_utf8(); // multibyte symbols reach here too
                return Err(ParseError::new(i, format!("unexpected character `{other}`")));
            }
        }
    }
    out.push(Spanned { tok: Token::Eof, at: src.len(), end: src.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_query() {
        let t = toks("context Teacher * Section display");
        assert_eq!(
            t,
            vec![
                Token::Context,
                Token::Ident("Teacher".into()),
                Token::Star,
                Token::Ident("Section".into()),
                Token::Ident("display".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn hash_identifiers_and_ranges() {
        let t = toks("Course [c# >= 6000 and c# < 7000]");
        assert!(t.contains(&Token::Ident("c#".into())));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Lt));
        assert!(t.contains(&Token::And));
    }

    #[test]
    fn string_literals_and_escapes() {
        assert_eq!(toks("'CIS'")[0], Token::Str("CIS".into()));
        assert_eq!(toks("'o''brien'")[0], Token::Str("o'brien".into()));
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn numbers_int_and_real() {
        assert_eq!(toks("42")[0], Token::Int(42));
        assert_eq!(toks("3.5")[0], Token::Real(3.5));
        // A dot not followed by a digit is attribute access.
        assert_eq!(toks("3.x")[0..3], [Token::Int(3), Token::Dot, Token::Ident("x".into())]);
    }

    #[test]
    fn closure_markers() {
        assert_eq!(toks("^*")[0..2], [Token::Caret, Token::Star]);
        assert_eq!(toks("^3")[0..2], [Token::Caret, Token::Int(3)]);
    }

    #[test]
    fn bang_vs_neq() {
        assert_eq!(toks("A ! B")[1], Token::Bang);
        assert_eq!(toks("x != 1")[1], Token::Neq);
        assert_eq!(toks("x <> 1")[1], Token::Neq);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(toks("CONTEXT Where SELECT")[0..3], [Token::Context, Token::Where, Token::Select]);
    }

    #[test]
    fn comments_skipped() {
        let t = toks("context -- this is a comment\n Teacher");
        assert_eq!(t, vec![Token::Context, Token::Ident("Teacher".into()), Token::Eof]);
    }

    #[test]
    fn qualified_names() {
        let t = toks("Suggest_offer:Course");
        assert_eq!(
            t[0..3],
            [
                Token::Ident("Suggest_offer".into()),
                Token::Colon,
                Token::Ident("Course".into())
            ]
        );
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex("a $ b").is_err());
    }
}
