//! Paper §2 — the OO view of the university database: the Fig. 2.1
//! S-diagram and the Fig. 2.2 expanded view of class RA.

use dood::core::schema::parse_schema;
use dood::core::schema::print_schema;
use dood::workload::university;

/// Fig. 2.1: the schema's structural shape.
#[test]
fn fig_2_1_schema_shape() {
    let s = university::schema();
    // 12 E-classes, 10 D-classes.
    assert_eq!(s.e_classes().count(), 12);
    assert_eq!(s.d_classes().count(), 10);
    // "Person has two types of links: Aggregation links connecting Person
    // to the D-classes SS and Name, and Generalization links to the
    // E-classes Student and Teacher."
    let person = s.class_by_name("Person").unwrap();
    let attrs: Vec<&str> = s
        .own_attrs(person)
        .iter()
        .map(|&a| s.assoc(a).name.as_str())
        .collect();
    assert_eq!(attrs, vec!["SS", "name"]);
    let subs: Vec<&str> = s
        .direct_subs(person)
        .iter()
        .map(|&c| s.class(c).name.as_str())
        .collect();
    assert_eq!(subs, vec!["Student", "Teacher"]);
    // "The link labeled Major which emanates from the class Student has a
    // different name from the class it connects to."
    let student = s.class_by_name("Student").unwrap();
    let major = s.own_link_by_name(student, "Major").unwrap();
    assert_eq!(s.class(s.assoc(major).to).name, "Department");
}

/// Fig. 2.2: "the actual view of the class Research Assistant (RA) in which
/// all the associations inherited by RA from its superclasses are
/// explicitly represented."
#[test]
fn fig_2_2_ra_expanded_view() {
    let s = university::schema();
    let ra = s.class_by_name("RA").unwrap();
    let view = s.expanded_view(ra);
    let mut names: Vec<(String, u32)> = view
        .iter()
        .map(|e| (s.assoc(e.assoc).name.clone(), e.depth))
        .collect();
    names.sort();
    // RA inherits through Grad → Student → Person: GPA (depth 1), the
    // Advisee end of Advising (depth 1), Major/Enrolls/Transcripts
    // (depth 2), SS/name (depth 3). Teacher-side links are absent: RA is
    // not a Teacher subclass.
    let has = |n: &str, d: u32| names.contains(&(n.to_string(), d));
    assert!(has("GPA", 1));
    assert!(has("Advisee", 1));
    assert!(has("Major", 2));
    assert!(has("Enrolls", 2));
    assert!(has("Transcripts", 2));
    assert!(has("SS", 3));
    assert!(!names.iter().any(|(n, _)| n == "Teaches"));
}

/// The S-diagram renders every class and groups links by type letter.
#[test]
fn s_diagram_rendering() {
    let s = university::schema();
    let text = s.render_text();
    for c in s.classes() {
        assert!(text.contains(&c.name), "missing {}", c.name);
    }
    assert!(text.contains("[E] Person"));
    assert!(text.contains("(D) SS"));
    assert!(text.contains("G: "));
    assert!(text.contains("A: "));
    let dot = s.render_dot();
    assert!(dot.contains("\"Person\" -> \"Student\""));
    assert!(dot.contains("arrowhead=onormal"));
}

/// The Fig. 2.1 schema round-trips through the textual DDL.
#[test]
fn fig_2_1_ddl_round_trip() {
    let s = university::schema();
    let ddl = print_schema(&s);
    let s2 = parse_schema(&ddl).expect("printed DDL re-parses");
    assert_eq!(print_schema(&s2), ddl);
    assert_eq!(s2.class_count(), s.class_count());
    assert_eq!(s2.assoc_count(), s.assoc_count());
    // Inheritance semantics survive: TA * Section is still ambiguous.
    let ta = s2.class_by_name("TA").unwrap();
    let section = s2.class_by_name("Section").unwrap();
    assert!(s2.resolve_edge(ta, section).is_err());
}

/// §2: "a class inherits all the aggregation associations that connect to
/// or emanate from its superclasses" — both directions, checked on TA.
#[test]
fn inheritance_covers_both_directions() {
    let s = university::schema();
    let ta = s.class_by_name("TA").unwrap();
    let view = s.expanded_view(ta);
    let names: Vec<&str> = view.iter().map(|e| s.assoc(e.assoc).name.as_str()).collect();
    // Emanating (Teaches via Teacher, Enrolls via Student) and connecting
    // (Advisee via Grad) links both appear.
    assert!(names.contains(&"Teaches"));
    assert!(names.contains(&"Enrolls"));
    assert!(names.contains(&"Advisee"));
    let advisee = view
        .iter()
        .find(|e| s.assoc(e.assoc).name == "Advisee")
        .unwrap();
    assert!(!advisee.emanating);
}
