//! The paper's full §4 rule chain over the university domain: R2
//! (Suggest_offer), R3 (Deps_need_res), R4/R5 (May_teach, union semantics),
//! then Query 4.1 evaluated by backward chaining.
//!
//! ```sh
//! cargo run --example university_rules
//! ```

use dood::rules::RuleEngine;
use dood::workload::university::{self, Size};

fn main() {
    let db = university::populate(Size::medium(), 7);
    let mut engine = RuleEngine::new(db);

    // R2: "If the total number of students who are enrolled in a course that
    // belongs to the CIS department is greater than N, then suggest offering
    // the course in the next semester." (Paper threshold 39; scaled to the
    // synthetic population.)
    engine
        .add_rule(
            "R2",
            "if context Department [name = 'CIS'] * Course * Section * Student \
             where count(Student by Course) > 10 \
             then Suggest_offer (Course)",
        )
        .expect("R2");

    // R3: "If for any department the number of courses suggested to be
    // offered is greater than M, the department needs more resources."
    engine
        .add_rule(
            "R3",
            "if context Department * Suggest_offer:Course \
             then Deps_need_res (Department) \
             where count(Suggest_offer:Course by Department) > 2",
        )
        .expect("R3");

    // R4: "If a graduate student is currently teaching a course that is
    // suggested to be offered, then he/she may teach the same course."
    engine
        .add_rule(
            "R4",
            "if context TA * Teacher * Section * Suggest_offer:Course \
             then May_teach (TA, Course)",
        )
        .expect("R4");

    // R5: "A graduate student may teach an undergraduate course (c# < 5000)
    // if he/she has taken the course and got a grade of B or more."
    // (Phrased on the TA perspective so R4 and R5 share one intension.)
    engine
        .add_rule(
            "R5",
            "if context TA * Grad * Transcript [grade <= 'B'] * Course [c# < 5000] \
             then May_teach (TA, Course)",
        )
        .expect("R5");

    println!("Registered rules:");
    for r in engine.rules() {
        println!("  {r}");
    }
    println!();

    // Nothing is materialized yet: the default control policy is
    // post-evaluation (backward chaining).
    assert!(engine.registry().is_empty());

    // Query 4.1: "For the teaching assistants who may teach a course in the
    // next semester, have advisors, and whose GPAs are less than 3.5,
    // display their names and their advisors' names."
    let out = engine
        .query(
            "context Faculty * Advising * May_teach:TA [GPA < 3.5] \
             select TA[name], Faculty[name] display",
        )
        .expect("query 4.1");
    println!("== Query 4.1 (backward chaining cascade) ==");
    println!("{}", out.op_results[0].1);

    println!("Derived subdatabases materialized by the cascade:");
    for name in engine.registry().names() {
        let sd = engine.registry().subdb(name).unwrap();
        println!("  {name}: {} patterns over {}", sd.len(), sd.intension);
    }

    // Inspect the intermediate results.
    let suggest = engine.subdb("Suggest_offer").expect("Suggest_offer");
    println!("\nSuggest_offer holds {} popular CIS courses.", suggest.len());
    let deps = engine.subdb("Deps_need_res").expect("Deps_need_res");
    println!(
        "Deps_need_res holds {} department(s) needing more resources.",
        deps.len()
    );
    let may = engine.subdb("May_teach").expect("May_teach");
    println!("May_teach (union of R4 and R5) holds {} TA/course pairs.", may.len());
}
