//! Integration coverage for the dump/load persistence path over a real
//! workload: dump a populated university database, reload it into a fresh
//! `Database`, and check that every object, attribute and association
//! survived — the "no serialization capability lost" guarantee after the
//! removal of the serde derives.

use dood::core::value::Value;
use dood::store::{dump, load, load_full, save_full, Database};
use dood::workload::university;

fn object_attr_link_counts(db: &Database) -> (usize, usize, usize) {
    let schema = db.schema();
    let mut attrs = 0;
    let mut links = 0;
    for c in schema.e_classes() {
        for &attr in &schema.own_attrs(c.id) {
            attrs += db
                .extent(c.id)
                .filter(|&o| !db.attr_direct(o, attr).is_null())
                .count();
        }
    }
    for a in schema.assocs() {
        if !schema.is_attribute(a.id) {
            links += db.links(a.id).len();
        }
    }
    (db.object_count(), attrs, links)
}

#[test]
fn university_dump_reloads_with_identical_counts() {
    let (db, pop) = university::populate_with_handles(university::Size::medium(), 42);
    let text = dump(&db);
    let loaded = load(university::schema(), &text).expect("dump must reload");

    assert_eq!(object_attr_link_counts(&loaded), object_attr_link_counts(&db));

    // Per-class extents match exactly (same OIDs, same order).
    for c in db.schema().e_classes() {
        let a: Vec<_> = db.extent(c.id).collect();
        let b: Vec<_> = loaded.extent(c.id).collect();
        assert_eq!(a, b, "extent of {}", c.name);
    }

    // Per-association link sets match exactly.
    for assoc in db.schema().assocs() {
        if !db.schema().is_attribute(assoc.id) {
            assert_eq!(loaded.links(assoc.id), db.links(assoc.id), "links of {}", assoc.name);
        }
    }

    // Spot-check attribute values through the population handles.
    let dept_name = loaded.attr(pop.departments[0], "name").unwrap();
    assert_eq!(dept_name, Value::str("CIS"));
    for &c in pop.courses.iter().take(5) {
        assert_eq!(loaded.attr(c, "title").unwrap(), db.attr(c, "title").unwrap());
        assert_eq!(loaded.attr(c, "c#").unwrap(), db.attr(c, "c#").unwrap());
    }

    // Reloaded databases keep dumping identically (fixed point).
    assert_eq!(dump(&loaded), text);
}

#[test]
fn university_full_document_roundtrip_preserves_schema_and_data() {
    let db = university::populate(university::Size::small(), 7);
    let doc = save_full(&db);
    let loaded = load_full(&doc).expect("self-describing document must reload");
    assert_eq!(loaded.schema().class_count(), db.schema().class_count());
    assert_eq!(loaded.schema().assoc_count(), db.schema().assoc_count());
    assert_eq!(object_attr_link_counts(&loaded), object_attr_link_counts(&db));
    assert_eq!(save_full(&loaded), doc);
}

#[test]
fn loaded_university_database_remains_fully_operable() {
    use dood::core::subdb::SubdbRegistry;
    use dood::oql::Oql;

    let db = university::populate(university::Size::small(), 11);
    let mut loaded = load(university::schema(), &dump(&db)).expect("reload");

    // Queries over the reloaded store give the same patterns.
    let reg = SubdbRegistry::new();
    let q = "context Department * Course * Section";
    let a = Oql::new().query(&db, &reg, q).unwrap().subdb.to_vec();
    let b = Oql::new().query(&loaded, &reg, q).unwrap().subdb.to_vec();
    assert_eq!(a, b);

    // The store accepts new objects without OID collisions.
    let before = loaded.object_count();
    let dept = loaded.schema().class_by_name("Department").unwrap();
    let fresh = loaded.new_object(dept).unwrap();
    assert_eq!(loaded.object_count(), before + 1);
    assert!(db.extent(dept).all(|o| o != fresh), "fresh OID must not collide");
}
