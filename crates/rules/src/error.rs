//! Rule-engine errors.

use dood_core::diag::{self, Diagnostic};
use dood_oql::error::{ParseError, QueryError};
use std::fmt;

/// Errors raised by rule definition, derivation, or chaining.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum RuleError {
    /// Rule or query syntax error.
    Parse(ParseError),
    /// Resolution/evaluation error in a rule body or query.
    Query(QueryError),
    /// A duplicate rule name.
    DuplicateRule(String),
    /// A THEN-clause target does not name a class of the IF clause
    /// ("these classes should be a subset of the classes referenced in the
    /// association pattern expression of the If clause").
    UnknownTarget { rule: String, target: String },
    /// Two rules deriving the same subdatabase disagree on its intension
    /// (slot names must match for the union semantics of R4/R5).
    TargetLayoutMismatch { subdb: String, rule: String },
    /// The rule dependency graph is cyclic; recursion must be expressed via
    /// the closure construct (`^*`) instead (paper §5.2).
    CyclicRules(Vec<String>),
    /// Reference to a subdatabase that no rule derives and that is not
    /// registered.
    UnderivableSubdb(String),
    /// The static analyzer rejected the program ([`crate::analyze`]); the
    /// payload carries every diagnostic, errors and warnings alike.
    Analysis(Vec<Diagnostic>),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Parse(e) => write!(f, "{e}"),
            RuleError::Query(e) => write!(f, "{e}"),
            RuleError::DuplicateRule(n) => write!(f, "duplicate rule name `{n}`"),
            RuleError::UnknownTarget { rule, target } => write!(
                f,
                "rule `{rule}`: target `{target}` is not a class of the IF clause"
            ),
            RuleError::TargetLayoutMismatch { subdb, rule } => write!(
                f,
                "rule `{rule}` derives `{subdb}` with a different class list than an earlier rule"
            ),
            RuleError::CyclicRules(names) => write!(
                f,
                "cyclic rule dependencies through {}; use the ^* closure construct instead",
                names.join(" -> ")
            ),
            RuleError::UnderivableSubdb(s) => {
                write!(f, "no rule derives subdatabase `{s}` and it is not registered")
            }
            RuleError::Analysis(diags) => {
                let (e, w) = diag::counts(diags);
                write!(f, "program rejected by the analyzer: {e} error(s), {w} warning(s)")?;
                for d in diags {
                    write!(f, "\n  {}", d.headline(""))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RuleError {}

impl From<ParseError> for RuleError {
    fn from(e: ParseError) -> Self {
        RuleError::Parse(e)
    }
}

impl From<QueryError> for RuleError {
    fn from(e: QueryError) -> Self {
        RuleError::Query(e)
    }
}
