//! A minimal seeded property-testing driver over [`crate::rng`], replacing
//! the external `proptest` dependency so the workspace builds hermetically.
//!
//! [`check`] runs a property closure over `N` generated cases. Each case
//! gets an independently seeded [`Gen`]; on failure (panic inside the
//! closure) the driver re-panics with the property name, the case index and
//! the case seed, so the failure is reproducible:
//!
//! ```text
//! DOOD_PROP_SEED=<case-seed> cargo test <property_name>
//! ```
//!
//! Environment knobs:
//! * `DOOD_PROP_CASES` — override the per-property case count;
//! * `DOOD_PROP_SEED` — run exactly one case with this seed (for replaying
//!   a reported failure).
//!
//! There is no shrinking: generated inputs are kept small by construction
//! (sized collections, bounded recursion), which in practice keeps failing
//! cases readable.

use crate::rng::{splitmix64, Rng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Base seed mixed into every property; changing it reshuffles all cases.
const BASE_SEED: u64 = 0xD00D_CAFE;

/// The per-case generator handed to property closures: a seeded [`Rng`]
/// plus combinators for the shapes property tests need.
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// A generator with a fully determined stream.
    pub fn from_seed(seed: u64) -> Self {
        Gen { rng: Rng::seed_from_u64(seed) }
    }

    /// The underlying RNG, for direct [`Rng::random_range`] calls.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Uniform sample from a range (see [`Rng::random_range`]).
    pub fn range<R: crate::rng::SampleRange>(&mut self, r: R) -> R::Output {
        self.rng.random_range(r)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.random_bool(p)
    }

    /// `Some(f(self))` with probability 1/2.
    pub fn option<T>(&mut self, f: impl FnOnce(&mut Gen) -> T) -> Option<T> {
        if self.bool(0.5) {
            Some(f(self))
        } else {
            None
        }
    }

    /// A vector with uniformly chosen length in `len`, elements from `f`.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.range(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// One uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0..items.len())]
    }

    /// A string of length in `len` over the characters of `alphabet`.
    pub fn string_of(&mut self, alphabet: &str, len: std::ops::Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = self.range(len);
        (0..n).map(|_| *self.choose(&chars)).collect()
    }

    /// An arbitrary printable string (ASCII plus a sprinkling of
    /// multi-byte code points) — for totality/fuzz properties.
    pub fn printable_string(&mut self, len: std::ops::Range<usize>) -> String {
        let n = self.range(len);
        (0..n)
            .map(|_| {
                if self.bool(0.85) {
                    // Printable ASCII.
                    self.range(0x20u32..0x7F) as u8 as char
                } else {
                    // Any printable-ish scalar value; skip surrogates.
                    loop {
                        let c = self.range(0xA0u32..0x2_FFFF);
                        if let Some(c) = char::from_u32(c) {
                            break c;
                        }
                    }
                }
            })
            .collect()
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Run `prop` over `cases` generated cases (overridable via
/// `DOOD_PROP_CASES` / `DOOD_PROP_SEED`); panics with a reproduction line
/// on the first failing case.
pub fn check(name: &str, cases: usize, mut prop: impl FnMut(&mut Gen)) {
    if let Some(seed) = env_u64("DOOD_PROP_SEED") {
        let mut g = Gen::from_seed(seed);
        prop(&mut g);
        return;
    }
    let cases = env_usize("DOOD_PROP_CASES").unwrap_or(cases);
    let mut state = BASE_SEED ^ fingerprint(name);
    for case in 0..cases {
        let case_seed = splitmix64(&mut state);
        let mut g = Gen::from_seed(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut g)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property `{name}` failed on case {case}/{cases} \
                 (replay with DOOD_PROP_SEED={case_seed}): {msg}"
            );
        }
    }
}

/// Stable 64-bit fingerprint of the property name (FNV-1a), so each
/// property gets its own case stream.
fn fingerprint(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0;
        check("always_true", 17, |g| {
            let _ = g.range(0..10);
            n += 1;
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn failing_property_reports_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("always_false", 5, |_| panic!("boom"));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_false"), "{msg}");
        assert!(msg.contains("DOOD_PROP_SEED="), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic_per_property() {
        let collect = || {
            let mut v = Vec::new();
            check("stream", 5, |g| v.push(g.range(0u64..1000)));
            v
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn combinators_respect_bounds() {
        check("combinators", 50, |g| {
            let v = g.vec(0..7, |g| g.range(1u64..6));
            assert!(v.len() < 7);
            assert!(v.iter().all(|&x| (1..6).contains(&x)));
            let s = g.string_of("abc", 1..5);
            assert!(!s.is_empty() && s.len() < 5);
            assert!(s.chars().all(|c| "abc".contains(c)));
            let p = g.printable_string(0..20);
            assert!(p.chars().count() < 20);
            let o = g.option(|g| g.range(0..3));
            if let Some(x) = o {
                assert!(x < 3);
            }
        });
    }
}
