//! Incremental (delta) forward maintenance — DESIGN.md ablation E11.
//!
//! The paper's forward chaining "runs the relevant deductive rules to
//! maintain the consistency between the derived subdatabase and the
//! original database" but does not prescribe *how*. The baseline
//! implementation re-derives affected results in full; this module adds a
//! scoped alternative for rules whose semantics localize:
//!
//! Given the set of *dirty* objects touched by an update batch (closed over
//! perspective/identity links), every context pattern either
//!
//! 1. contains no dirty object — it cannot have changed, and is kept from
//!    the cached context; or
//! 2. contains a dirty object in some slot — it is re-derived by evaluating
//!    the context with that slot restricted to the dirty set.
//!
//! This is sound exactly when pattern membership is per-pattern-local:
//! single-span (no braces) contexts without closure and without aggregate
//! WHERE conditions. [`supports_incremental`] gates on that; everything
//! else falls back to full re-derivation.

use crate::ast::Rule;
use crate::derive::project_targets;
use crate::error::RuleError;
use dood_core::fxhash::FxHashSet;
use dood_core::ids::Oid;
use dood_core::subdb::{Subdatabase, SubdbRegistry};
use dood_oql::ast::{Item, Seq, WhereCond};
use dood_oql::eval::Evaluator;
use dood_oql::resolve::resolve_context;
use dood_oql::wherec::apply_where;
use dood_store::Database;
use std::collections::BTreeSet;

/// Whether scoped incremental maintenance is sound for this rule: a single
/// linear span (no braces), no closure, and only per-pattern (non-aggregate)
/// WHERE conditions.
pub fn supports_incremental(rule: &Rule) -> bool {
    fn no_groups(seq: &Seq) -> bool {
        let flat = |i: &Item| matches!(i, Item::Class { .. });
        flat(&seq.first) && seq.rest.iter().all(|(_, i)| flat(i))
    }
    rule.context.closure.is_none()
        && no_groups(&rule.context.seq)
        && rule.where_.iter().all(|w| matches!(w, WhereCond::Cmp { .. }))
}

/// Expand an update batch's touched objects over the identity links: a
/// pattern slot may hold a different perspective of the touched object.
pub fn dirty_closure(db: &Database, touched: impl IntoIterator<Item = Oid>) -> BTreeSet<Oid> {
    let mut out = BTreeSet::new();
    for oid in touched {
        out.insert(oid); // deleted objects have no closure but stay dirty
        for p in db.perspective_closure(oid) {
            out.insert(p);
        }
    }
    out
}

/// Incrementally refresh a rule's *context* subdatabase. `old_ctx` is the
/// cached context from the previous derivation; `dirty` is the
/// perspective-closed set of touched objects. Returns the fresh context.
pub fn incremental_context(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
    old_ctx: &Subdatabase,
    dirty: &BTreeSet<Oid>,
) -> Result<Subdatabase, RuleError> {
    debug_assert!(supports_incremental(rule), "caller must gate on supports_incremental");
    let resolved =
        resolve_context(&rule.context, db.schema(), registry).map_err(RuleError::Query)?;
    let width = resolved.slots.len();
    let dirty_hash: FxHashSet<Oid> = dirty.iter().copied().collect();

    // 1. Patterns untouched by the update survive as-is.
    let mut fresh = Subdatabase::new(old_ctx.name.clone(), old_ctx.intension.clone());
    for p in old_ctx.patterns() {
        let clean = p
            .components()
            .iter()
            .flatten()
            .all(|o| !dirty_hash.contains(o));
        if clean {
            fresh.insert(p.clone());
        }
    }

    // 2. Re-derive every pattern that contains a dirty object in some slot.
    for slot in 0..width {
        let ev = Evaluator::new(&resolved, db, registry)
            .map_err(RuleError::Query)?
            .restrict_slot(slot, dirty.clone());
        let mut delta = ev.eval(&old_ctx.name);
        apply_where(&mut delta, &rule.where_, db).map_err(RuleError::Query)?;
        for p in delta.patterns() {
            fresh.insert(p.clone());
        }
    }
    Ok(fresh)
}

/// Full incremental application: refresh the context, then project per the
/// THEN clause. Returns `(target, fresh_context)`.
pub fn incremental_apply(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
    old_ctx: &Subdatabase,
    dirty: &BTreeSet<Oid>,
) -> Result<(Subdatabase, Subdatabase), RuleError> {
    let ctx = incremental_context(rule, db, registry, old_ctx, dirty)?;
    let target = project_targets(rule, &ctx, db)?;
    Ok((target, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::eval_rule_context;
    use crate::parser::parse_rule;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::DType;

    fn setup() -> (Database, Vec<Oid>, Vec<Oid>) {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.d_class("v", DType::Int);
        b.attr("A", "v");
        b.aggregate("A", "B");
        let mut db = Database::new(b.build().unwrap());
        let a_cls = db.schema().class_by_name("A").unwrap();
        let b_cls = db.schema().class_by_name("B").unwrap();
        let link = db.schema().own_link_by_name(a_cls, "B").unwrap();
        let avec: Vec<Oid> = (0..5).map(|_| db.new_object(a_cls).unwrap()).collect();
        let bvec: Vec<Oid> = (0..5).map(|_| db.new_object(b_cls).unwrap()).collect();
        for i in 0..5 {
            db.associate(link, avec[i], bvec[i]).unwrap();
        }
        (db, avec, bvec)
    }

    #[test]
    fn gate_rejects_closure_braces_aggregates() {
        assert!(supports_incremental(
            &parse_rule("r", "if context A * B then T (A, B)").unwrap()
        ));
        assert!(supports_incremental(
            &parse_rule("r", "if context A * B where A.v > 1 then T (A)").unwrap()
        ));
        assert!(!supports_incremental(
            &parse_rule("r", "if context A ^* then T (A, A_*)").unwrap()
        ));
        assert!(!supports_incremental(
            &parse_rule("r", "if context {A} * B then T (A)").unwrap()
        ));
        assert!(!supports_incremental(
            &parse_rule(
                "r",
                "if context A * B where count(B by A) > 1 then T (A)"
            )
            .unwrap()
        ));
    }

    #[test]
    fn incremental_matches_full_after_updates() {
        let (mut db, avec, bvec) = setup();
        let rule = parse_rule("r", "if context A * B then T (A, B)").unwrap();
        let reg = SubdbRegistry::new();
        let old_ctx = eval_rule_context(&rule, &db, &reg).unwrap();

        // Mutate: add a cross link, remove one, create a fresh pair.
        let a_cls = db.schema().class_by_name("A").unwrap();
        let b_cls = db.schema().class_by_name("B").unwrap();
        let link = db.schema().own_link_by_name(a_cls, "B").unwrap();
        let mark = db.seq();
        db.associate(link, avec[0], bvec[1]).unwrap();
        db.dissociate(link, avec[2], bvec[2]).unwrap();
        let na = db.new_object(a_cls).unwrap();
        let nb = db.new_object(b_cls).unwrap();
        db.associate(link, na, nb).unwrap();

        let mut touched = Vec::new();
        for e in db.events().since(mark) {
            match e {
                dood_store::UpdateEvent::Associated { from, to, .. }
                | dood_store::UpdateEvent::Dissociated { from, to, .. } => {
                    touched.push(*from);
                    touched.push(*to);
                }
                dood_store::UpdateEvent::ObjectCreated { oid, .. } => touched.push(*oid),
                _ => {}
            }
        }
        let dirty = dirty_closure(&db, touched);
        let (inc_target, inc_ctx) =
            incremental_apply(&rule, &db, &reg, &old_ctx, &dirty).unwrap();
        let full_ctx = eval_rule_context(&rule, &db, &reg).unwrap();
        let full_target = crate::derive::apply_rule(&rule, &db, &reg).unwrap();
        assert_eq!(inc_ctx.to_vec(), full_ctx.to_vec());
        assert_eq!(inc_target.to_vec(), full_target.to_vec());
    }

    #[test]
    fn dirty_closure_includes_perspectives() {
        let mut b = SchemaBuilder::new();
        b.e_class("Person");
        b.e_class("Student");
        b.generalize("Person", "Student");
        let mut db = Database::new(b.build().unwrap());
        let person = db.schema().class_by_name("Person").unwrap();
        let student = db.schema().class_by_name("Student").unwrap();
        let p = db.new_object(person).unwrap();
        let st = db.specialize(p, student).unwrap();
        let d = dirty_closure(&db, [p]);
        assert!(d.contains(&p) && d.contains(&st));
    }
}
