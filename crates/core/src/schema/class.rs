//! Object classes.
//!
//! OSAM* distinguishes **Entity object classes** (E-classes), whose instances
//! are real-world objects identified by OIDs, from **Domain object classes**
//! (D-classes), whose "sole function is to form a domain of values of a
//! simple data type from which descriptive attributes of objects draw their
//! values" (paper §2).

use crate::ids::ClassId;
use crate::value::DType;
use std::fmt;

/// Whether a class is an entity class or a value-domain class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    /// Entity object class: instances are OID-identified objects.
    EClass,
    /// Domain object class: instances are values of the given simple type.
    DClass(DType),
}

impl ClassKind {
    /// Whether this is an entity class.
    #[inline]
    pub fn is_entity(self) -> bool {
        matches!(self, ClassKind::EClass)
    }

    /// Whether this is a domain class.
    #[inline]
    pub fn is_domain(self) -> bool {
        matches!(self, ClassKind::DClass(_))
    }

    /// The value type, for domain classes.
    pub fn dtype(self) -> Option<DType> {
        match self {
            ClassKind::EClass => None,
            ClassKind::DClass(t) => Some(t),
        }
    }
}

/// A class definition in a schema.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Stable identifier within the schema.
    pub id: ClassId,
    /// Unique class name (case-sensitive).
    pub name: String,
    /// Entity or domain.
    pub kind: ClassKind,
}

impl ClassDef {
    /// Whether this class is an E-class.
    #[inline]
    pub fn is_entity(&self) -> bool {
        self.kind.is_entity()
    }

    /// Whether this class is a D-class.
    #[inline]
    pub fn is_domain(&self) -> bool {
        self.kind.is_domain()
    }
}

impl fmt::Display for ClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ClassKind::EClass => write!(f, "E-class {}", self.name),
            ClassKind::DClass(t) => write!(f, "D-class {} : {t}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(ClassKind::EClass.is_entity());
        assert!(!ClassKind::EClass.is_domain());
        assert!(ClassKind::DClass(DType::Int).is_domain());
        assert_eq!(ClassKind::DClass(DType::Str).dtype(), Some(DType::Str));
        assert_eq!(ClassKind::EClass.dtype(), None);
    }

    #[test]
    fn display() {
        let e = ClassDef { id: ClassId(0), name: "Teacher".into(), kind: ClassKind::EClass };
        assert_eq!(e.to_string(), "E-class Teacher");
        let d = ClassDef {
            id: ClassId(1),
            name: "SS".into(),
            kind: ClassKind::DClass(DType::Str),
        };
        assert_eq!(d.to_string(), "D-class SS : string");
    }
}
