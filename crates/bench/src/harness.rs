//! The in-repo benchmark harness that replaces Criterion so `cargo bench`
//! runs hermetically (no registry dependencies).
//!
//! Protocol per benchmark: a time-boxed warmup, then timed samples; each
//! sample is a batch of iterations sized so the clock resolution doesn't
//! dominate. Reported statistics are per-iteration median, p95, mean and
//! min in nanoseconds.
//!
//! Results stream to stdout as human-readable lines and are written as
//! JSON lines (one object per benchmark) to `$DOOD_BENCH_JSON/BENCH_<group>.json`
//! if that env var (a directory) is set, else `target/bench-json/BENCH_<group>.json`. The `report` binary can
//! re-render these files (`--from-json <file>…`), and the flat format is
//! parsed by [`parse_json_line`] in this module — keep the two in sync.
//!
//! `cargo bench` CLI compatibility: flags (`--bench`, …) are ignored; a
//! bare positional argument is a substring filter on benchmark names.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Target wall-clock budget for one benchmark's timed phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(700);
/// Target wall-clock budget for warmup.
const WARMUP_BUDGET: Duration = Duration::from_millis(200);
/// Preferred number of samples per benchmark.
const TARGET_SAMPLES: usize = 15;
/// Minimum samples before budget cut-off applies.
const MIN_SAMPLES: usize = 5;

/// One benchmark's measured statistics (all times per-iteration, ns).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Benchmark group (one per bench target, e.g. `e1_assoc_op`).
    pub group: String,
    /// Benchmark name within the group (e.g. `dood/4`).
    pub bench: String,
    /// Total timed iterations across all samples.
    pub iters: u64,
    /// Number of samples (batches) taken.
    pub samples: usize,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time (nearest-rank).
    pub p95_ns: f64,
    /// 99th-percentile per-iteration time (nearest-rank). Old result files
    /// predate this field; parsing falls back to `p95_ns`.
    pub p99_ns: f64,
    /// Slowest per-iteration time. Old result files fall back to `p95_ns`.
    pub max_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Fastest per-iteration time.
    pub min_ns: f64,
}

impl Record {
    /// Serialize as one JSON line (the `BENCH_*.json` format).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"group\":{},\"bench\":{},\"iters\":{},\"samples\":{},\
             \"median_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\
             \"mean_ns\":{},\"min_ns\":{}}}",
            json_string(&self.group),
            json_string(&self.bench),
            self.iters,
            self.samples,
            self.median_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns,
            self.mean_ns,
            self.min_ns,
        )
    }

    /// Parse one JSON line previously produced by [`Record::to_json_line`].
    pub fn from_json_line(line: &str) -> Option<Record> {
        let fields = parse_json_line(line)?;
        let str_field = |k: &str| -> Option<String> {
            fields.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
                JsonVal::Str(s) => Some(s.clone()),
                JsonVal::Num(_) => None,
            })
        };
        let num_field = |k: &str| -> Option<f64> {
            fields.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
                JsonVal::Num(n) => Some(*n),
                JsonVal::Str(_) => None,
            })
        };
        let p95_ns = num_field("p95_ns")?;
        Some(Record {
            group: str_field("group")?,
            bench: str_field("bench")?,
            iters: num_field("iters")? as u64,
            samples: num_field("samples")? as usize,
            median_ns: num_field("median_ns")?,
            p95_ns,
            // Files written before the tail statistics existed degrade to
            // the p95 figure rather than failing to parse.
            p99_ns: num_field("p99_ns").unwrap_or(p95_ns),
            max_ns: num_field("max_ns").unwrap_or(p95_ns),
            mean_ns: num_field("mean_ns")?,
            min_ns: num_field("min_ns")?,
        })
    }
}

/// Harness for one bench target: register benchmarks, then [`finish`].
///
/// [`finish`]: Harness::finish
pub struct Harness {
    group: String,
    filter: Option<String>,
    /// `DOOD_BENCH_SMOKE=1`: one sample of one iteration per benchmark —
    /// a CI-speed pass that exercises every measured path without the
    /// warmup/sampling budget. Timings are not meaningful in this mode.
    smoke: bool,
    records: Vec<Record>,
}

impl Harness {
    /// Start a harness for `group`, reading the CLI filter from `argv`.
    pub fn new(group: &str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let smoke = std::env::var("DOOD_BENCH_SMOKE").is_ok_and(|v| v == "1");
        println!("# bench group {group}{}", if smoke { " (smoke)" } else { "" });
        Harness { group: group.to_string(), filter, smoke, records: Vec::new() }
    }

    fn skipped(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => !name.contains(f.as_str()) && !self.group.contains(f.as_str()),
            None => false,
        }
    }

    /// Benchmark `f`, batching iterations against clock resolution.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if self.skipped(name) {
            return;
        }
        if self.smoke {
            let t = Instant::now();
            std::hint::black_box(f());
            self.record(name, 1, vec![t.elapsed().as_nanos() as f64]);
            return;
        }
        // Warmup, and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET || warm_iters < 3 {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // Batch so one sample is ≥ ~100µs (clock noise) but small enough
        // that TARGET_SAMPLES batches fit the budget.
        let budget_ns = MEASURE_BUDGET.as_nanos() as f64;
        let by_budget = budget_ns / (TARGET_SAMPLES as f64 * est_ns);
        let by_noise = 100_000.0 / est_ns;
        let batch = by_noise.max(1.0).min(by_budget.max(1.0)).round() as u64;

        let mut samples = Vec::with_capacity(TARGET_SAMPLES);
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        while samples.len() < TARGET_SAMPLES
            && (samples.len() < MIN_SAMPLES || run_start.elapsed() < MEASURE_BUDGET)
        {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }
        self.record(name, total_iters, samples);
    }

    /// Benchmark `routine` with a fresh `setup` value per iteration;
    /// setup time is excluded. For routines that consume/mutate state.
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        if self.skipped(name) {
            return;
        }
        if self.smoke {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.record(name, 1, vec![t.elapsed().as_nanos() as f64]);
            return;
        }
        // One warmup iteration (these routines are typically expensive).
        std::hint::black_box(routine(setup()));
        let mut samples = Vec::with_capacity(TARGET_SAMPLES);
        let run_start = Instant::now();
        while samples.len() < TARGET_SAMPLES
            && (samples.len() < MIN_SAMPLES || run_start.elapsed() < MEASURE_BUDGET)
        {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
        }
        let iters = samples.len() as u64;
        self.record(name, iters, samples);
    }

    fn record(&mut self, name: &str, iters: u64, mut samples: Vec<f64>) {
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let median_ns = samples[n / 2];
        let p95_ns = samples[(n * 95 / 100).min(n - 1)];
        let p99_ns = samples[(n * 99 / 100).min(n - 1)];
        let max_ns = samples[n - 1];
        let mean_ns = samples.iter().sum::<f64>() / n as f64;
        let min_ns = samples[0];
        let rec = Record {
            group: self.group.clone(),
            bench: name.to_string(),
            iters,
            samples: n,
            median_ns,
            p95_ns,
            p99_ns,
            max_ns,
            mean_ns,
            min_ns,
        };
        println!(
            "{}/{:<24} median {:>12}  p95 {:>12}  p99 {:>12}  max {:>12}  ({} samples, {} iters)",
            rec.group,
            rec.bench,
            fmt_ns(rec.median_ns),
            fmt_ns(rec.p95_ns),
            fmt_ns(rec.p99_ns),
            fmt_ns(rec.max_ns),
            rec.samples,
            rec.iters
        );
        self.records.push(rec);
    }

    /// Write the JSON-lines result file and print its path.
    pub fn finish(self) {
        let path = out_path(&self.group);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                for r in &self.records {
                    let _ = writeln!(f, "{}", r.to_json_line());
                }
                println!("# wrote {} records to {}", self.records.len(), path.display());
            }
            Err(e) => eprintln!("# could not write {}: {e}", path.display()),
        }
    }
}

fn out_path(group: &str) -> PathBuf {
    if let Some(dir) = std::env::var_os("DOOD_BENCH_JSON") {
        return PathBuf::from(dir).join(format!("BENCH_{group}.json"));
    }
    // Bench executables run with CWD = the package dir; anchor the default
    // output at the workspace root so all groups land in one place.
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_default();
    workspace.join("target/bench-json").join(format!("BENCH_{group}.json"))
}

/// Human scale for nanosecond figures.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A scalar in the flat JSON-lines bench format.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// A JSON string.
    Str(String),
    /// A JSON number.
    Num(f64),
}

/// Parse one flat JSON object (string/number values only — the shape
/// [`Record::to_json_line`] emits). Returns `None` on malformed input.
pub fn parse_json_line(line: &str) -> Option<Vec<(String, JsonVal)>> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = if *chars.peek()? == '"' {
            JsonVal::Str(parse_string(&mut chars)?)
        } else {
            let mut num = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    num.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            JsonVal::Num(num.parse().ok()?)
        };
        fields.push((key, val));
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None;
    }
    Some(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> Record {
        Record {
            group: "e1_assoc_op".into(),
            bench: "dood/4".into(),
            iters: 120,
            samples: 15,
            median_ns: 1234.5,
            p95_ns: 2000.0,
            p99_ns: 2400.0,
            max_ns: 2500.0,
            mean_ns: 1300.25,
            min_ns: 1100.0,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = record();
        let line = r.to_json_line();
        assert_eq!(Record::from_json_line(&line).unwrap(), r);
    }

    #[test]
    fn old_format_without_tail_stats_still_parses() {
        let line = "{\"group\":\"g\",\"bench\":\"b\",\"iters\":10,\"samples\":5,\
                    \"median_ns\":100,\"p95_ns\":200,\"mean_ns\":120,\"min_ns\":90}";
        let r = Record::from_json_line(line).unwrap();
        assert_eq!(r.p99_ns, 200.0);
        assert_eq!(r.max_ns, 200.0);
    }

    #[test]
    fn json_escaping_round_trips() {
        let mut r = record();
        r.bench = "we\"ird\\name\nwith\tstuff".into();
        assert_eq!(Record::from_json_line(&r.to_json_line()).unwrap(), r);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json_line("").is_none());
        assert!(parse_json_line("not json").is_none());
        assert!(parse_json_line("{\"a\":}").is_none());
        assert!(parse_json_line("{\"a\":1} trailing").is_none());
        assert!(Record::from_json_line("{\"group\":\"g\"}").is_none());
    }

    #[test]
    fn parser_accepts_whitespace_and_unicode() {
        let fields =
            parse_json_line("{ \"k\" : \"caf\\u00e9\" , \"n\" : -1.5e3 }").unwrap();
        assert_eq!(fields[0], ("k".into(), JsonVal::Str("café".into())));
        assert_eq!(fields[1], ("n".into(), JsonVal::Num(-1500.0)));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(512.0), "512ns");
        assert_eq!(fmt_ns(1_500.0), "1.5us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00s");
    }
}
