//! # dood — a Deductive Object-Oriented Database
//!
//! A from-scratch Rust reproduction of *"A Rule-based Language for
//! Deductive Object-Oriented Databases"* (A. M. Alashqur, S. Y. W. Su,
//! H. Lam — ICDE 1990).
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`core`] — the OSAM* structural model (classes, the five association
//!   types, generalization/inheritance) and the subdatabase algebra.
//! * [`store`] — the extensional object store: extents, attributes,
//!   association indexes, perspective (identity) links, events,
//!   transactions.
//! * [`oql`] — the OQL query language: association pattern expressions,
//!   braces, WHERE aggregation, SELECT, display, transitive closure.
//! * [`rules`] — the deductive rule language: `IF … THEN Subdb(…)`,
//!   backward/forward chaining, result-oriented control.
//! * [`datalog`] — a semi-naive Datalog baseline for the evaluation suite.
//! * [`workload`] — generators: the paper's university schema (Fig. 2.1),
//!   its worked-example instances, and CAD/company domains.
//!
//! ## Quickstart
//!
//! ```
//! use dood::rules::RuleEngine;
//! use dood::workload::university;
//!
//! // Build the paper's university database (Fig. 2.1) with a small,
//! // deterministic population.
//! let db = university::populate(university::Size::small(), 42);
//! let mut engine = RuleEngine::new(db);
//!
//! // Rule R1 (paper §4.2): teachers teach courses through sections.
//! engine
//!     .add_rule(
//!         "R1",
//!         "if context Teacher * Section * Course \
//!          then Teacher_course (Teacher, Course)",
//!     )
//!     .unwrap();
//!
//! // Query the derived subdatabase (backward chaining runs R1).
//! let out = engine
//!     .query("context Teacher_course:Teacher * Teacher_course:Course \
//!             select Teacher[name], Course[title] display")
//!     .unwrap();
//! assert!(!out.table.is_empty());
//! ```

pub use dood_core as core;
pub use dood_datalog as datalog;
pub use dood_oql as oql;
pub use dood_rules as rules;
pub use dood_store as store;
pub use dood_workload as workload;
