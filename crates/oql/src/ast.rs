//! Abstract syntax of OQL queries.
//!
//! The concrete syntax follows the paper (§3.2, §5) with one textual
//! substitution: the paper's *superscript* iteration sign on a cyclic
//! association pattern expression is written `^*` (traverse until Null) or
//! `^N` (N iterations), since plain text has no superscripts.

use std::fmt;

/// A possibly-qualified class reference: `Course`, `Suggest_offer:Course`,
/// or an auto-alias such as `Course_1` (paper §5.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClassRef {
    /// Qualifying subdatabase, if any (`Suggest_offer:Course`).
    pub subdb: Option<String>,
    /// Class (or alias) name.
    pub name: String,
}

impl ClassRef {
    /// Unqualified reference.
    pub fn base(name: impl Into<String>) -> Self {
        ClassRef { subdb: None, name: name.into() }
    }

    /// Qualified reference.
    pub fn qualified(subdb: impl Into<String>, name: impl Into<String>) -> Self {
        ClassRef { subdb: Some(subdb.into()), name: name.into() }
    }

    /// Split an auto-alias name into `(family, level)`: `Grad_2` →
    /// `("Grad", 2)`; names without a `_<int>` suffix are level 0.
    pub fn split_alias(name: &str) -> (&str, u32) {
        if let Some(pos) = name.rfind('_') {
            if let Ok(level) = name[pos + 1..].parse::<u32>() {
                return (&name[..pos], level);
            }
        }
        (name, 0)
    }
}

impl fmt::Display for ClassRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.subdb {
            Some(s) => write!(f, "{s}:{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an `Ordering` produced by `Value::compare`.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Neq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
    /// String.
    Str(String),
}

impl Literal {
    /// Convert to a runtime value.
    pub fn to_value(&self) -> dood_core::value::Value {
        match self {
            Literal::Int(i) => dood_core::value::Value::Int(*i),
            Literal::Real(r) => dood_core::value::Value::Real(*r),
            Literal::Str(s) => dood_core::value::Value::str(s),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Real(r) => write!(f, "{r}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// An intra-class condition (paper §3.2: "expressed in the form of
/// predicates that involve the descriptive attributes of that class").
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `attr op literal`.
    Cmp {
        /// Attribute name.
        attr: String,
        /// Operator.
        op: CmpOp,
        /// Literal right-hand side.
        value: Literal,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Cmp { attr, op, value } => write!(f, "{attr} {op} {value}"),
            Pred::And(a, b) => write!(f, "({a} and {b})"),
            Pred::Or(a, b) => write!(f, "({a} or {b})"),
            Pred::Not(p) => write!(f, "(not {p})"),
        }
    }
}

/// The two association pattern operators (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatOp {
    /// `*` — the association operator.
    Assoc,
    /// `!` — the non-association operator.
    NonAssoc,
}

impl fmt::Display for PatOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PatOp::Assoc => "*",
            PatOp::NonAssoc => "!",
        })
    }
}

/// One element of an association pattern expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A class reference with optional intra-class condition.
    Class {
        /// The class.
        class: ClassRef,
        /// Optional intra-class condition.
        cond: Option<Pred>,
    },
    /// A braced subexpression `{ … }`: its span's patterns are retained even
    /// when they do not extend to the enclosing expression (paper §5.1).
    Group(Seq),
}

/// A linear sequence: `item (op item)*`.
#[derive(Debug, Clone, PartialEq)]
pub struct Seq {
    /// The first element.
    pub first: Box<Item>,
    /// The following `(operator, element)` pairs.
    pub rest: Vec<(PatOp, Item)>,
}

impl Seq {
    /// Total number of class occurrences (recursively).
    pub fn class_count(&self) -> usize {
        fn item(i: &Item) -> usize {
            match i {
                Item::Class { .. } => 1,
                Item::Group(s) => s.class_count(),
            }
        }
        item(&self.first) + self.rest.iter().map(|(_, i)| item(i)).sum::<usize>()
    }
}

/// The iteration marker on a cyclic expression (paper §5.2): `^*` performs
/// the transitive closure ("the cycle is traversed until Null values are
/// obtained"), `^N` stops "at the Nth iteration".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosureSpec {
    /// Maximum iterations; `None` = until Null (full transitive closure).
    pub iterations: Option<u32>,
}

/// A Context clause: an association pattern expression, optionally cyclic.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextExpr {
    /// The pattern expression.
    pub seq: Seq,
    /// Optional closure marker.
    pub closure: Option<ClosureSpec>,
}

/// Aggregation functions usable in WHERE conditions (paper R2 uses COUNT;
/// "comparison conditions that involve aggregation functions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Count of distinct objects (or non-null attribute values).
    Count,
    /// Sum of an attribute.
    Sum,
    /// Mean of an attribute.
    Avg,
    /// Minimum of an attribute.
    Min,
    /// Maximum of an attribute.
    Max,
}

impl AggFunc {
    /// Parse a (case-insensitive) function name.
    pub fn from_name(s: &str) -> Option<AggFunc> {
        match s.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// A WHERE-subclause condition (paper §3.2: inter-class comparisons and
/// aggregation conditions).
#[derive(Debug, Clone, PartialEq)]
pub enum WhereCond {
    /// `AGG(Class[.attr] [by Class]) op literal` — e.g. the paper's
    /// `COUNT(Student by Course) > 39` (R2).
    Agg {
        /// The aggregation function.
        func: AggFunc,
        /// The aggregated class.
        target: ClassRef,
        /// Attribute aggregated (required for SUM/AVG/MIN/MAX; COUNT counts
        /// objects when absent).
        attr: Option<String>,
        /// Group-by class; absent = aggregate over the whole pattern set.
        by: Option<ClassRef>,
        /// Comparison operator.
        op: CmpOp,
        /// Threshold literal.
        value: Literal,
    },
    /// `Class.attr op Class.attr` or `Class.attr op literal`.
    Cmp {
        /// Left operand.
        left: (ClassRef, String),
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: CmpRhs,
    },
}

/// Right-hand side of an inter-class comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum CmpRhs {
    /// Another class's attribute.
    Attr(ClassRef, String),
    /// A literal.
    Lit(Literal),
}

/// A Select-subclause item: "identifies the descriptive attributes and/or
/// classes in the Context subdatabase that are to be operated on".
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A bare attribute name; attributed to the unique slot carrying it.
    Attr(String),
    /// `Class[attr, …]` — qualified attributes (paper Query 4.1: `TA[name]`).
    ClassAttrs(ClassRef, Vec<String>),
    /// A whole class (its OID column).
    Class(ClassRef),
}

/// A complete OQL query block: Context clause (with optional Where and
/// Select subclauses) and an Operation clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The context expression.
    pub context: ContextExpr,
    /// WHERE conditions (conjunctive).
    pub where_: Vec<WhereCond>,
    /// SELECT items (empty = all classes and attributes).
    pub select: Vec<SelectItem>,
    /// Operation names (`display`, `print`, or user-registered).
    pub ops: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_splitting() {
        assert_eq!(ClassRef::split_alias("Grad_2"), ("Grad", 2));
        assert_eq!(ClassRef::split_alias("Grad"), ("Grad", 0));
        assert_eq!(ClassRef::split_alias("Teacher_course"), ("Teacher_course", 0));
        assert_eq!(ClassRef::split_alias("A_1_2"), ("A_1", 2));
    }

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.test(Equal));
        assert!(!CmpOp::Eq.test(Less));
        assert!(CmpOp::Le.test(Equal));
        assert!(CmpOp::Le.test(Less));
        assert!(CmpOp::Neq.test(Greater));
        assert!(CmpOp::Ge.test(Equal));
        assert!(CmpOp::Gt.test(Greater));
        assert!(CmpOp::Lt.test(Less));
    }

    #[test]
    fn display_forms() {
        let c = ClassRef::qualified("May_teach", "TA");
        assert_eq!(c.to_string(), "May_teach:TA");
        let p = Pred::And(
            Box::new(Pred::Cmp { attr: "c#".into(), op: CmpOp::Ge, value: Literal::Int(6000) }),
            Box::new(Pred::Cmp { attr: "c#".into(), op: CmpOp::Lt, value: Literal::Int(7000) }),
        );
        assert_eq!(p.to_string(), "(c# >= 6000 and c# < 7000)");
    }

    #[test]
    fn class_count_recursive() {
        let seq = Seq {
            first: Box::new(Item::Class { class: ClassRef::base("A"), cond: None }),
            rest: vec![(
                PatOp::Assoc,
                Item::Group(Seq {
                    first: Box::new(Item::Class { class: ClassRef::base("B"), cond: None }),
                    rest: vec![(
                        PatOp::Assoc,
                        Item::Class { class: ClassRef::base("C"), cond: None },
                    )],
                }),
            )],
        };
        assert_eq!(seq.class_count(), 3);
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
