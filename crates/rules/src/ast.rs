//! Abstract syntax of deductive rules (paper §4.2).
//!
//! ```text
//! if context <association pattern expression>
//!    [where <conditions>]
//! then <subdatabase-id> ( <target> [, <target>]* )
//! ```
//!
//! A target is a class occurrence of the IF clause, optionally with an
//! attribute list in brackets ("if a target class … is to inherit only a
//! subset of the descriptive attributes of its source class, then these
//! attributes should be listed in brackets"), or a *family* `C_*` denoting
//! all closure levels of `C` (the paper writes `Grad*`; its intension "is
//! determined at runtime").

use dood_oql::ast::{ClassRef, ContextExpr, WhereCond};
use std::fmt;

/// One item of a THEN clause's argument list.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetItem {
    /// A class occurrence, with an optional inherited-attribute restriction.
    Class {
        /// The class (matched against the context intension's slot names).
        class: ClassRef,
        /// Retained attributes; `None` = all (the paper's default).
        attrs: Option<Vec<String>>,
    },
    /// `C_*`: every closure level of family `C` (paper R6's `Grad*`).
    Family {
        /// The family's base name.
        base: String,
    },
}

impl fmt::Display for TargetItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetItem::Class { class, attrs } => {
                write!(f, "{class}")?;
                if let Some(a) = attrs {
                    write!(f, "[{}]", a.join(", "))?;
                }
                Ok(())
            }
            TargetItem::Family { base } => write!(f, "{base}_*"),
        }
    }
}

/// A deductive rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (unique within a rule set; e.g. "R2").
    pub name: String,
    /// The IF clause's context expression.
    pub context: ContextExpr,
    /// The WHERE subclause conditions.
    pub where_: Vec<WhereCond>,
    /// Name of the derived (target) subdatabase.
    pub target_subdb: String,
    /// The target classes retained in the derived subdatabase.
    pub targets: Vec<TargetItem>,
}

impl Rule {
    /// The names of derived subdatabases this rule *reads* (qualified class
    /// references in its IF clause and WHERE subclause).
    pub fn reads(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk_seq(seq: &dood_oql::ast::Seq, out: &mut Vec<String>) {
            let item = |i: &dood_oql::ast::Item, out: &mut Vec<String>| match i {
                dood_oql::ast::Item::Class { class, .. } => {
                    if let Some(s) = &class.subdb {
                        out.push(s.clone());
                    }
                }
                dood_oql::ast::Item::Group(g) => walk_seq(g, out),
            };
            item(&seq.first, out);
            for (_, i) in &seq.rest {
                item(i, out);
            }
        }
        walk_seq(&self.context.seq, &mut out);
        for w in &self.where_ {
            match w {
                WhereCond::Agg { target, by, .. } => {
                    if let Some(s) = &target.subdb {
                        out.push(s.clone());
                    }
                    if let Some(b) = by {
                        if let Some(s) = &b.subdb {
                            out.push(s.clone());
                        }
                    }
                }
                WhereCond::Cmp { left, right, .. } => {
                    if let Some(s) = &left.0.subdb {
                        out.push(s.clone());
                    }
                    if let dood_oql::ast::CmpRhs::Attr(c, _) = right {
                        if let Some(s) = &c.subdb {
                            out.push(s.clone());
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {}: if context … then {}(", self.name, self.target_subdb)?;
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dood_oql::parser::Parser;

    #[test]
    fn reads_collects_qualified_subdbs() {
        let context =
            Parser::parse_context_expr("TA * Teacher * Section * Suggest_offer:Course").unwrap();
        let rule = Rule {
            name: "R4".into(),
            context,
            where_: vec![],
            target_subdb: "May_teach".into(),
            targets: vec![],
        };
        assert_eq!(rule.reads(), vec!["Suggest_offer".to_string()]);
    }

    #[test]
    fn reads_deduplicates() {
        let context = Parser::parse_context_expr("S:A * S:B").unwrap();
        let rule = Rule {
            name: "r".into(),
            context,
            where_: vec![],
            target_subdb: "T".into(),
            targets: vec![],
        };
        assert_eq!(rule.reads(), vec!["S".to_string()]);
    }

    #[test]
    fn display_form() {
        let context = Parser::parse_context_expr("A * B").unwrap();
        let rule = Rule {
            name: "R1".into(),
            context,
            where_: vec![],
            target_subdb: "X".into(),
            targets: vec![
                TargetItem::Class {
                    class: ClassRef::base("A"),
                    attrs: Some(vec!["ss".into()]),
                },
                TargetItem::Family { base: "B".into() },
            ],
        };
        assert_eq!(rule.to_string(), "rule R1: if context … then X(A[ss], B_*)");
    }
}
