//! Paper §6 — control strategies: forward vs backward chaining, the
//! POSTGRES rule-oriented restriction and the inconsistency it causes, and
//! the paper's result-oriented fix.

use dood::core::value::Value;
use dood::rules::{ChainStrategy, ControlMode, EvalPolicy, RuleEngine};
use dood::workload::company::{self, CompanySize};

/// Build the §6 pipeline `DB → REa → REb → REc → REd` over the company
/// domain (Ra..Rd are the paper's schematic rules).
fn pipeline() -> RuleEngine {
    let (db, _) = company::populate(CompanySize::small(), 21);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
        .unwrap();
    engine
        .add_rule("Rb", "if context REa:Employee * Project then REb (Employee, Project)")
        .unwrap();
    engine
        .add_rule("Rc", "if context REb:Employee * REb:Project then REc (Project)")
        .unwrap();
    engine
        .add_rule("Rd", "if context REc:Project * Department then REd (Department)")
        .unwrap();
    engine
}

/// Make an update that changes the pipeline's inputs: hire an employee in
/// the first department, assigned to the first project.
fn hire(engine: &mut RuleEngine) {
    let db = engine.db_mut();
    let employee = db.schema().class_by_name("Employee").unwrap();
    let department = db.schema().class_by_name("Department").unwrap();
    let project = db.schema().class_by_name("Project").unwrap();
    let works_in = db.schema().own_link_by_name(employee, "WorksIn").unwrap();
    let assigned = db.schema().own_link_by_name(employee, "AssignedTo").unwrap();
    let d = db.extent(department).next().unwrap();
    // A brand-new project, so downstream projections (REc) really change.
    let p = db.new_object(project).unwrap();
    db.set_attr(p, "budget", Value::Int(1)).unwrap();
    let sponsors = db.schema().own_link_by_name(department, "Sponsors").unwrap();
    db.associate(sponsors, d, p).unwrap();
    let e = db.new_object(employee).unwrap();
    db.set_attr(e, "ename", Value::str("new-hire")).unwrap();
    db.set_attr(e, "salary", Value::Int(50_000)).unwrap();
    db.associate(works_in, e, d).unwrap();
    db.associate(assigned, e, p).unwrap();
}

/// Backward chaining: nothing is derived until a query asks for it; then
/// the whole source chain materializes.
#[test]
fn backward_chaining_is_lazy() {
    let mut engine = pipeline();
    assert!(engine.registry().is_empty());
    engine.query("context REd:Department select dname display").unwrap();
    for s in ["REa", "REb", "REc", "REd"] {
        assert!(engine.registry().subdb(s).is_some(), "{s} should be derived");
    }
}

/// Post-evaluated results are invalidated by updates and re-derived fresh
/// on the next query (result-oriented mode, the default).
#[test]
fn post_evaluated_results_track_updates() {
    let mut engine = pipeline();
    let before = engine.subdb("REa").unwrap().len();
    hire(&mut engine);
    engine.propagate().unwrap();
    // Invalidated:
    assert!(engine.registry().subdb("REa").is_none());
    let after = engine.subdb("REa").unwrap().len();
    assert_eq!(after, before + 1);
    assert!(engine.is_consistent("REa").unwrap());
}

/// Pre-evaluated results are forward-maintained: after `propagate`, the
/// materialized copy is already consistent, with no query needed
/// ("an up-to-date copy of the derived subdatabase is always kept
/// available, which improves the performance of retrieval operations").
#[test]
fn pre_evaluated_results_forward_maintained() {
    let mut engine = pipeline();
    for s in ["REa", "REb", "REc", "REd"] {
        engine.set_policy(s, EvalPolicy::PreEvaluated);
    }
    // Bootstrap materialization.
    engine.query("context REd:Department").unwrap();
    hire(&mut engine);
    let rederived = engine.propagate().unwrap();
    assert_eq!(rederived, vec!["REa", "REb", "REc", "REd"]);
    for s in ["REa", "REb", "REc", "REd"] {
        assert!(engine.is_consistent(s).unwrap(), "{s} should be consistent");
    }
}

/// The mixed case the paper highlights: REd pre-evaluated, REb
/// post-evaluated. "Whenever the database is updated, the rules Ra, Rb, Rc
/// and Rd will be triggered in the forward chaining fashion to keep REd …
/// up to date; REb on the other hand will be evaluated whenever a retrieval
/// operation is issued against it. Thus Ra and Rb follow one control
/// strategy when deriving REd and the other when deriving REb."
#[test]
fn result_oriented_mixing_stays_consistent() {
    let mut engine = pipeline();
    engine.set_policy("REd", EvalPolicy::PreEvaluated);
    // REa, REb, REc stay post-evaluated.
    engine.query("context REd:Department").unwrap();
    hire(&mut engine);
    engine.propagate().unwrap();
    // The pre-evaluated result is already fresh…
    assert!(engine.registry().subdb("REd").is_some());
    assert!(engine.is_consistent("REd").unwrap());
    // …and a later query on the post-evaluated REb recomputes it fresh.
    engine.query("context REb:Employee * REb:Project").unwrap();
    assert!(engine.is_consistent("REb").unwrap());
}

/// The POSTGRES rule-oriented restriction (paper §6): with Ra/Rb backward
/// and Rc/Rd forward, "rules Rc and Rd, though they are forward chaining
/// rules, will not be triggered to update the result REd … Thus REd may be
/// inconsistent with the base data."
#[test]
fn control_strategy_postgres_scenario() {
    let mut engine = pipeline();
    engine.set_mode(ControlMode::RuleOriented);
    engine.set_strategy("Ra", ChainStrategy::Backward);
    engine.set_strategy("Rb", ChainStrategy::Backward);
    engine.set_strategy("Rc", ChainStrategy::Forward);
    engine.set_strategy("Rd", ChainStrategy::Forward);
    // Materialize everything once (bootstrap query).
    engine.query("context REd:Department").unwrap();
    assert!(engine.is_consistent("REd").unwrap());

    // Update the base data.
    hire(&mut engine);
    let rederived = engine.propagate().unwrap();
    // The backward results were dropped, so the forward rule Rc could not
    // run; Rd re-ran against the stale REc.
    assert!(!rederived.contains(&"REc".to_string()));
    // REd (and REc) are now inconsistent with the base data.
    let c_ok = engine.is_consistent("REc").unwrap();
    let d_ok = engine.is_consistent("REd").unwrap();
    assert!(!c_ok, "REc should be stale under rule-oriented mixing");
    // REd may coincidentally agree (it projects departments); staleness
    // must show on at least one of the forward results.
    assert!(!c_ok || !d_ok);

    // The paper's fix: result-oriented control over the same pipeline.
    engine.set_mode(ControlMode::ResultOriented);
    engine.set_policy("REc", EvalPolicy::PreEvaluated);
    engine.set_policy("REd", EvalPolicy::PreEvaluated);
    hire(&mut engine);
    engine.propagate().unwrap();
    assert!(engine.is_consistent("REc").unwrap());
    assert!(engine.is_consistent("REd").unwrap());
}

/// Forward chaining only touches affected results: updates to unrelated
/// classes do not re-derive the pipeline.
#[test]
fn propagation_is_selective() {
    let (db, _) = company::populate(CompanySize::small(), 22);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
        .unwrap();
    engine
        .add_rule("Rp", "if context Department * Project then Sponsored (Department, Project)")
        .unwrap();
    engine.set_policy("REa", EvalPolicy::PreEvaluated);
    engine.set_policy("Sponsored", EvalPolicy::PreEvaluated);
    engine.query("context REa:Employee").unwrap();
    engine.query("context Sponsored:Project").unwrap();

    // A project-budget change touches Project only: REa must not re-derive.
    let db = engine.db_mut();
    let project = db.schema().class_by_name("Project").unwrap();
    let p = db.extent(project).next().unwrap();
    db.set_attr(p, "budget", Value::Int(999)).unwrap();
    let rederived = engine.propagate().unwrap();
    assert_eq!(rederived, vec!["Sponsored"]);
}

/// `propagate` with no events is a no-op.
#[test]
fn propagate_without_updates_is_noop() {
    let mut engine = pipeline();
    engine.query("context REa:Employee").unwrap();
    assert!(engine.propagate().unwrap().is_empty());
    assert!(engine.registry().subdb("REa").is_some());
}
