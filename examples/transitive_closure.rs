//! Transitive closure as looping (paper §5.2): course prerequisite chains
//! and the CAD bill-of-materials part explosion, with the Datalog baseline
//! computing the same reachability for comparison.
//!
//! ```sh
//! cargo run --example transitive_closure
//! ```

use dood::core::subdb::SubdbRegistry;
use dood::datalog::{self, Atom};
use dood::oql::Oql;
use dood::workload::{cad, university};

fn main() {
    // --- Course prerequisite chains -----------------------------------
    let db = university::populate(university::Size::medium(), 5);
    let reg = SubdbRegistry::new();
    let oql = Oql::new();

    // `Course ^*`: iterate the Prereq cycle until Null — the paper's
    // looping formulation of transitive closure.
    let out = oql.query(&db, &reg, "context Course ^*").expect("closure query");
    let sd = &out.subdb;
    println!("== Course prerequisite closure (`context Course ^*`) ==");
    println!(
        "runtime intension: {} (depth determined by the data, paper §5.2)",
        sd.intension
    );
    let longest = sd
        .patterns()
        .map(|p| p.pattern_type().arity())
        .max()
        .unwrap_or(0);
    println!("chains: {}, longest chain: {} courses\n", sd.len(), longest);

    // Bounded iteration: `^2` visits at most two prerequisite levels.
    let out2 = oql.query(&db, &reg, "context Course ^2").expect("bounded closure");
    println!(
        "`context Course ^2` limits the intension to {} levels.\n",
        out2.subdb.intension.width()
    );

    // --- CAD part explosion -------------------------------------------
    let shape = cad::BomShape { depth: 6, fanout: 3, roots: 3, share_per_mille: 150 };
    let (bom, roots) = cad::build_bom(shape, 11);
    let part = bom.schema().class_by_name("Part").unwrap();
    println!("== CAD bill of materials ==");
    println!(
        "{} parts, {} component links, {} root assemblies",
        bom.extent_size(part),
        bom.link_count(bom.schema().own_link_by_name(part, "Component").unwrap()),
        roots.len()
    );

    let out = oql.query(&bom, &reg, "context Part ^*").expect("part explosion");
    let chains = &out.subdb;
    let mut pairs: std::collections::BTreeSet<(u64, u64)> = Default::default();
    for p in chains.patterns() {
        let chain: Vec<_> = p.components().iter().flatten().copied().collect();
        for i in 0..chain.len() {
            for j in i + 1..chain.len() {
                pairs.insert((chain[i].raw(), chain[j].raw()));
            }
        }
    }
    println!(
        "part explosion: {} maximal chains, {} (assembly, subpart) reachability pairs",
        chains.len(),
        pairs.len()
    );

    // --- The Datalog baseline computes the same reachability -----------
    let mut t = datalog::translate(&bom);
    let comp = bom.schema().own_link_by_name(part, "Component").unwrap();
    let comp_pred = datalog::translate::assoc_pred(&mut t, &bom, comp);
    let reach = t.program.pred("reach");
    t.program.rule(
        Atom::new(reach, vec![datalog::v(0), datalog::v(1)]),
        vec![Atom::new(comp_pred, vec![datalog::v(0), datalog::v(1)])],
    );
    t.program.rule(
        Atom::new(reach, vec![datalog::v(0), datalog::v(2)]),
        vec![
            Atom::new(reach, vec![datalog::v(0), datalog::v(1)]),
            Atom::new(comp_pred, vec![datalog::v(1), datalog::v(2)]),
        ],
    );
    let (fixpoint, stats) = datalog::seminaive(&t.program, &t.edb);
    println!(
        "datalog baseline: {} reach facts in {} semi-naive iterations",
        fixpoint.count(reach),
        stats.iterations
    );
    assert_eq!(fixpoint.count(reach), pairs.len(), "both engines must agree");
    println!("both engines agree on the reachability set.");
}
