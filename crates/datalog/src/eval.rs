//! Bottom-up evaluation: naive and semi-naive fixpoints.
//!
//! Both strategies produce identical fixpoints (property-tested in the
//! integration suite); semi-naive restricts each iteration's joins to rule
//! instantiations involving at least one *delta* fact from the previous
//! iteration, which is the standard optimization the E8 benchmark measures.

use crate::db::FactDb;
use crate::program::{Atom, DlRule, Pred, Program, Term, Var};
use dood_core::fxhash::FxHashMap;

/// Evaluation statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint iterations.
    pub iterations: usize,
    /// Facts derived (beyond the EDB).
    pub derived: usize,
}

type Env = FxHashMap<Var, u64>;

fn unify(atom: &Atom, tuple: &[u64], env: &Env) -> Option<Env> {
    if atom.args.len() != tuple.len() {
        return None;
    }
    let mut out = env.clone();
    for (t, &v) in atom.args.iter().zip(tuple) {
        match t {
            Term::Const(c) => {
                if *c != v {
                    return None;
                }
            }
            Term::Var(x) => match out.get(x) {
                Some(&bound) if bound != v => return None,
                Some(_) => {}
                None => {
                    out.insert(*x, v);
                }
            },
        }
    }
    Some(out)
}

fn instantiate(atom: &Atom, env: &Env) -> Vec<u64> {
    atom.args
        .iter()
        .map(|t| match t {
            Term::Const(c) => *c,
            Term::Var(x) => *env.get(x).expect("safe rule: head vars bound"),
        })
        .collect()
}

/// Join the rule body left-to-right. `delta_at` forces body atom `i` to
/// range over `delta` instead of the full store (semi-naive); `None`
/// evaluates fully naively.
fn eval_rule(
    rule: &DlRule,
    db: &FactDb,
    delta: Option<(&FactDb, usize)>,
    out: &mut Vec<Vec<u64>>,
) {
    fn rec(
        rule: &DlRule,
        db: &FactDb,
        delta: Option<(&FactDb, usize)>,
        i: usize,
        env: &Env,
        out: &mut Vec<Vec<u64>>,
    ) {
        if i == rule.body.len() {
            out.push(instantiate(&rule.head, env));
            return;
        }
        let atom = &rule.body[i];
        let source = match delta {
            Some((d, at)) if at == i => d,
            _ => db,
        };
        // When delta is active at a *later* position, earlier atoms range
        // over the full store; when active at an earlier position, later
        // atoms also range over the full store — the standard semi-naive
        // decomposition.
        for tuple in source.tuples(atom.pred) {
            if let Some(next) = unify(atom, tuple, env) {
                rec(rule, db, delta, i + 1, &next, out);
            }
        }
    }
    rec(rule, db, delta, 0, &Env::default(), out);
}

/// Naive fixpoint: re-derive everything each round until nothing is new.
pub fn naive(program: &Program, edb: &FactDb) -> (FactDb, EvalStats) {
    let mut db = edb.clone();
    let mut stats = EvalStats::default();
    loop {
        stats.iterations += 1;
        let mut added = 0;
        let mut heads: Vec<(Pred, Vec<u64>)> = Vec::new();
        for rule in &program.rules {
            let mut out = Vec::new();
            eval_rule(rule, &db, None, &mut out);
            for t in out {
                heads.push((rule.head.pred, t));
            }
        }
        for (p, t) in heads {
            if db.insert(p, t) {
                added += 1;
            }
        }
        stats.derived += added;
        if added == 0 {
            return (db, stats);
        }
    }
}

/// Semi-naive fixpoint.
pub fn seminaive(program: &Program, edb: &FactDb) -> (FactDb, EvalStats) {
    let mut db = edb.clone();
    let mut stats = EvalStats::default();
    // Round 0: all rules once over the EDB.
    let mut delta = FactDb::new();
    for rule in &program.rules {
        let mut out = Vec::new();
        eval_rule(rule, &db, None, &mut out);
        for t in out {
            if !db.contains(rule.head.pred, &t) {
                delta.insert(rule.head.pred, t);
            }
        }
    }
    stats.iterations += 1;
    stats.derived += db.absorb(&delta);
    let idb: Vec<Pred> = program.idb();
    while delta.total() > 0 {
        stats.iterations += 1;
        let mut next_delta = FactDb::new();
        for rule in &program.rules {
            for (i, atom) in rule.body.iter().enumerate() {
                // Only IDB body atoms can have deltas.
                if !idb.contains(&atom.pred) || delta.count(atom.pred) == 0 {
                    continue;
                }
                let mut out = Vec::new();
                eval_rule(rule, &db, Some((&delta, i)), &mut out);
                for t in out {
                    if !db.contains(rule.head.pred, &t) {
                        next_delta.insert(rule.head.pred, t);
                    }
                }
            }
        }
        stats.derived += db.absorb(&next_delta);
        delta = next_delta;
    }
    (db, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{c, v, Atom};

    /// edge facts along a path 1→2→…→n.
    fn path_edb(p: &mut Program, n: u64) -> FactDb {
        let edge = p.pred("edge");
        let mut db = FactDb::new();
        for i in 1..n {
            db.insert(edge, vec![i, i + 1]);
        }
        db
    }

    fn tc_program() -> Program {
        let mut p = Program::new();
        let edge = p.pred("edge");
        let path = p.pred("path");
        p.rule(Atom::new(path, vec![v(0), v(1)]), vec![Atom::new(edge, vec![v(0), v(1)])]);
        p.rule(
            Atom::new(path, vec![v(0), v(2)]),
            vec![Atom::new(path, vec![v(0), v(1)]), Atom::new(edge, vec![v(1), v(2)])],
        );
        p
    }

    #[test]
    fn naive_transitive_closure() {
        let mut p = tc_program();
        let edb = path_edb(&mut p, 6);
        let (db, stats) = naive(&p, &edb);
        let path = p.try_pred("path").unwrap();
        // Path over a 6-node chain: 5+4+3+2+1 = 15 pairs.
        assert_eq!(db.count(path), 15);
        assert!(stats.iterations >= 5);
    }

    #[test]
    fn seminaive_matches_naive() {
        let mut p = tc_program();
        let edb = path_edb(&mut p, 9);
        let (a, _) = naive(&p, &edb);
        let (b, sstats) = seminaive(&p, &edb);
        let path = p.try_pred("path").unwrap();
        assert_eq!(a.relation(path), b.relation(path));
        assert_eq!(b.count(path), 36); // 8+7+…+1 over the 9-node chain
        assert!(sstats.derived >= 36);
    }

    #[test]
    fn constants_in_rules() {
        let mut p = Program::new();
        let edge = p.pred("edge");
        let from1 = p.pred("from1");
        p.rule(Atom::new(from1, vec![v(0)]), vec![Atom::new(edge, vec![c(1), v(0)])]);
        let mut edb = FactDb::new();
        edb.insert(edge, vec![1, 2]);
        edb.insert(edge, vec![3, 4]);
        let (db, _) = seminaive(&p, &edb);
        assert_eq!(db.count(from1), 1);
        assert!(db.contains(from1, &[2]));
    }

    #[test]
    fn shared_variables_join() {
        // triangle(X,Y,Z) :- edge(X,Y), edge(Y,Z), edge(Z,X).
        let mut p = Program::new();
        let edge = p.pred("edge");
        let tri = p.pred("tri");
        p.rule(
            Atom::new(tri, vec![v(0), v(1), v(2)]),
            vec![
                Atom::new(edge, vec![v(0), v(1)]),
                Atom::new(edge, vec![v(1), v(2)]),
                Atom::new(edge, vec![v(2), v(0)]),
            ],
        );
        let mut edb = FactDb::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4)] {
            edb.insert(edge, vec![a, b]);
        }
        let (db, _) = naive(&p, &edb);
        assert_eq!(db.count(tri), 3); // the 3 rotations of the 1-2-3 triangle
    }

    #[test]
    fn empty_program_stops_immediately() {
        let p = Program::new();
        let edb = FactDb::new();
        let (db, stats) = seminaive(&p, &edb);
        assert_eq!(db.total(), 0);
        assert_eq!(stats.derived, 0);
    }
}
