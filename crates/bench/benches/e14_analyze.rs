//! E14 — static analyzer throughput: lint the built-in workload programs
//! and synthetic N-rule chain programs. The analyzer runs on every
//! `RuleEngine::register`, so its cost must stay negligible next to
//! derivation; this benchmark tracks it.

use dood_bench::harness::Harness;
use dood_core::fxhash::FxHashSet;
use dood_rules::analyze::analyze;
use dood_rules::program::Program;
use dood_workload::{programs, university};

/// A synthetic chain program: `C0` reads base classes, each `Ci` reads
/// `Ci-1`, exercising layout bookkeeping, topological ordering, and edge
/// resolution at scale.
fn chain_program(n: usize) -> Program {
    let mut src = String::new();
    src.push_str("rule C0:\n  if context Teacher * Section then S0 (Teacher, Section)\n");
    for i in 1..n {
        src.push_str(&format!(
            "rule C{i}:\n  if context S{}:Teacher * S{}:Section then S{i} (Teacher, Section)\n",
            i - 1,
            i - 1
        ));
    }
    src.push_str(&format!("export S{}\n", n - 1));
    let (prog, diags) = Program::parse(&src);
    assert!(diags.is_empty(), "{diags:?}");
    prog
}

fn main() {
    let mut h = Harness::new("e14_analyze");
    let schema = university::schema();
    let none = FxHashSet::default();

    for (name, text) in programs::all() {
        let s = programs::builtin_schema(name).expect("builtin");
        let (prog, diags) = Program::parse(text);
        assert!(diags.is_empty());
        h.bench(&format!("builtin/{name}"), || {
            let d = analyze(&prog, &s, &none);
            assert!(d.is_empty());
            d.len()
        });
    }

    for n in [10usize, 50, 200] {
        let prog = chain_program(n);
        h.bench(&format!("chain/{n}rules"), || {
            let d = analyze(&prog, &schema, &none);
            assert!(d.is_empty());
            d.len()
        });
    }

    // Parse + analyze end to end (the doodlint hot path).
    h.bench("parse+analyze/university", || {
        let (prog, _) = Program::parse(programs::UNIVERSITY);
        analyze(&prog, &schema, &none).len()
    });

    h.finish();
}
