//! E16 soundness: semi-naive incremental forward maintenance (DESIGN.md §9)
//! must be indistinguishable from from-scratch derivation under random
//! insert / associate / dissociate / attribute-set / delete schedules, on
//! all three paper schemas, at every thread count — plus regression tests
//! for the three staleness bugs the maintenance rewrite fixed (silent
//! forward-reads-backward skips, deleted-oid resurrection, and
//! `is_consistent` on absent forward results).
//!
//! Driven by the in-repo seeded harness (`dood::core::propcheck`); replay
//! a reported failure with `DOOD_PROP_SEED=<seed> cargo test <name>`.

use dood::core::ids::Oid;
use dood::core::propcheck::check;
use dood::core::value::Value;
use dood::rules::{ChainStrategy, ControlMode, EvalPolicy, RuleEngine};
use dood::workload::{cad, company, university};

const CASES: usize = 10;
const THREADS: &[&str] = &["1", "2", "4"];

/// Assert every pre-evaluated subdatabase equals its from-scratch
/// derivation and passes the engine's own consistency oracle.
fn assert_fresh(engine: &RuleEngine, subdbs: &[&str]) {
    for s in subdbs {
        let current = engine
            .registry()
            .subdb(s)
            .unwrap_or_else(|| panic!("{s} should be materialized"))
            .to_vec();
        let fresh = engine.derive_fresh(s).unwrap().to_vec();
        assert_eq!(current, fresh, "{s} diverged from scratch derivation");
        assert!(engine.is_consistent(s).unwrap(), "{s} inconsistent");
    }
}

/// Company schema: plain join, second-level chaining, comparison WHERE,
/// and a grouped aggregate — a DeltaLocal / DeltaReWhere mix — under
/// random link churn, salary flips, hires, and firings.
#[test]
fn incremental_equals_fresh_company() {
    check("incremental_equals_fresh_company", CASES, |g| {
        let seed = g.range(0u64..100);
        let ops = g.vec(2..10, |g| (g.range(0u8..6), g.range(0usize..64)));
        for threads in THREADS {
            std::env::set_var("DOOD_THREADS", threads);
            let (db, _) = company::populate(company::CompanySize::small(), seed);
            let mut e = RuleEngine::new(db);
            e.add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
                .unwrap();
            e.add_rule("Rb", "if context REa:Employee * Project then REb (Employee, Project)")
                .unwrap();
            e.add_rule(
                "Rc",
                "if context Employee * Department where Employee.salary >= 100000 \
                 then WellPaid (Employee)",
            )
            .unwrap();
            e.add_rule(
                "Rd",
                "if context Department * Project where count(Project by Department) > 1 \
                 then Busy (Department)",
            )
            .unwrap();
            let subdbs = ["REa", "REb", "WellPaid", "Busy"];
            for s in subdbs {
                e.set_policy(s, EvalPolicy::PreEvaluated);
            }
            for s in subdbs {
                e.subdb(s).unwrap();
            }
            for (i, (op, k)) in ops.iter().copied().enumerate() {
                apply_company_op(&mut e, i, op, k);
                e.propagate().unwrap();
                assert_fresh(&e, &subdbs);
            }
            std::env::remove_var("DOOD_THREADS");
        }
    });
}

fn apply_company_op(e: &mut RuleEngine, i: usize, op: u8, k: usize) {
    let db = e.db_mut();
    let employee = db.schema().class_by_name("Employee").unwrap();
    let department = db.schema().class_by_name("Department").unwrap();
    let project = db.schema().class_by_name("Project").unwrap();
    let works_in = db.schema().own_link_by_name(employee, "WorksIn").unwrap();
    let assigned = db.schema().own_link_by_name(employee, "AssignedTo").unwrap();
    let sponsors = db.schema().own_link_by_name(department, "Sponsors").unwrap();
    let es: Vec<Oid> = db.extent(employee).collect();
    let ds: Vec<Oid> = db.extent(department).collect();
    let ps: Vec<Oid> = db.extent(project).collect();
    match op {
        0 => {
            let _ = db.associate(works_in, es[k % es.len()], ds[k % ds.len()]);
        }
        1 => {
            let _ = db.dissociate(works_in, es[k % es.len()], ds[k % ds.len()]);
        }
        2 => {
            let _ = db.associate(sponsors, ds[k % ds.len()], ps[k % ps.len()]);
        }
        3 => {
            // Flip a salary across the WellPaid threshold.
            let v = if k % 2 == 0 { 250_000 } else { 10_000 };
            let _ = db.set_attr(es[k % es.len()], "salary", Value::Int(v + i as i64));
        }
        4 => {
            // Hire: a fresh employee wired into every association.
            let e2 = db.new_object(employee).unwrap();
            let _ = db.set_attr(e2, "salary", Value::Int(150_000));
            let _ = db.associate(works_in, e2, ds[k % ds.len()]);
            let _ = db.associate(assigned, e2, ps[k % ps.len()]);
        }
        _ => {
            // Fire: deletion must not resurrect via stale cache slots.
            let _ = db.delete_object(es[k % es.len()]);
        }
    }
}

/// University schema (Fig. 2.1): three-way joins, a brace grouping, and a
/// grouped aggregate over Section counts, under teaching/enrollment churn,
/// section creation and deletion.
#[test]
fn incremental_equals_fresh_university() {
    check("incremental_equals_fresh_university", CASES, |g| {
        let seed = g.range(0u64..100);
        let ops = g.vec(2..10, |g| (g.range(0u8..5), g.range(0usize..64)));
        for threads in THREADS {
            std::env::set_var("DOOD_THREADS", threads);
            let db = university::populate(university::Size::small(), seed);
            let mut e = RuleEngine::new(db);
            e.add_rule("Ru1", "if context Teacher * Section * Course then TSC (Teacher, Course)")
                .unwrap();
            e.add_rule("Ru2", "if context {Teacher * Section} * Course then TC (Course)")
                .unwrap();
            e.add_rule(
                "Ru3",
                "if context Course * Section where count(Section by Course) > 1 \
                 then Popular (Course)",
            )
            .unwrap();
            let subdbs = ["TSC", "TC", "Popular"];
            for s in subdbs {
                e.set_policy(s, EvalPolicy::PreEvaluated);
            }
            for s in subdbs {
                e.subdb(s).unwrap();
            }
            for (op, k) in ops.iter().copied() {
                apply_university_op(&mut e, op, k);
                e.propagate().unwrap();
                assert_fresh(&e, &subdbs);
            }
            std::env::remove_var("DOOD_THREADS");
        }
    });
}

fn apply_university_op(e: &mut RuleEngine, op: u8, k: usize) {
    let db = e.db_mut();
    let teacher = db.schema().class_by_name("Teacher").unwrap();
    let section = db.schema().class_by_name("Section").unwrap();
    let course = db.schema().class_by_name("Course").unwrap();
    let teaches = db.schema().own_link_by_name(teacher, "Teaches").unwrap();
    let section_course = db.schema().own_link_by_name(section, "Course").unwrap();
    let ts: Vec<Oid> = db.extent(teacher).collect();
    let ss: Vec<Oid> = db.extent(section).collect();
    let cs: Vec<Oid> = db.extent(course).collect();
    match op {
        0 => {
            let _ = db.associate(teaches, ts[k % ts.len()], ss[k % ss.len()]);
        }
        1 => {
            let _ = db.dissociate(teaches, ts[k % ts.len()], ss[k % ss.len()]);
        }
        2 => {
            let _ = db.associate(section_course, ss[k % ss.len()], cs[k % cs.len()]);
        }
        3 => {
            // A new section of an existing course, taught immediately.
            let s2 = db.new_object(section).unwrap();
            let _ = db.set_attr(s2, "section#", Value::Int(9000 + k as i64));
            let _ = db.associate(section_course, s2, cs[k % cs.len()]);
            let _ = db.associate(teaches, ts[k % ts.len()], s2);
        }
        _ => {
            // Cancel a section: aggregate counts must drop with it.
            let _ = db.delete_object(ss[k % ss.len()]);
        }
    }
}

/// CAD schema: the `Part ^*` BOM closure (the scoped-rederivation fallback
/// plan) alongside an incremental supplier join, under component rewiring,
/// part creation and deletion. Component edges are only ever added from a
/// lower to a higher oid, so the BOM stays acyclic.
#[test]
fn incremental_equals_fresh_cad() {
    check("incremental_equals_fresh_cad", CASES, |g| {
        let seed = g.range(0u64..100);
        let ops = g.vec(2..9, |g| (g.range(0u8..5), g.range(0usize..64)));
        for threads in THREADS {
            std::env::set_var("DOOD_THREADS", threads);
            let (db, _) = cad::build_bom(cad::BomShape::small(), seed);
            let mut e = RuleEngine::new(db);
            e.add_rule("Rbom", "if context Part ^* then Bom (Part, Part_*)").unwrap();
            e.add_rule("Rsp", "if context Supplier * Part then SP (Supplier, Part)").unwrap();
            let subdbs = ["Bom", "SP"];
            for s in subdbs {
                e.set_policy(s, EvalPolicy::PreEvaluated);
            }
            for s in subdbs {
                e.subdb(s).unwrap();
            }
            for (op, k) in ops.iter().copied() {
                apply_cad_op(&mut e, op, k);
                e.propagate().unwrap();
                assert_fresh(&e, &subdbs);
            }
            std::env::remove_var("DOOD_THREADS");
        }
    });
}

fn apply_cad_op(e: &mut RuleEngine, op: u8, k: usize) {
    let db = e.db_mut();
    let part = db.schema().class_by_name("Part").unwrap();
    let supplier = db.schema().class_by_name("Supplier").unwrap();
    let component = db.schema().own_link_by_name(part, "Component").unwrap();
    let supplies = db.schema().own_link_by_name(supplier, "Supplies").unwrap();
    let parts: Vec<Oid> = db.extent(part).collect();
    let sups: Vec<Oid> = db.extent(supplier).collect();
    match op {
        0 => {
            // Acyclic by construction: lower oid → higher oid only.
            let (a, b) = (parts[k % parts.len()], parts[(k / 2) % parts.len()]);
            let (lo, hi) = if a.raw() < b.raw() { (a, b) } else { (b, a) };
            if lo != hi {
                let _ = db.associate(component, lo, hi);
            }
        }
        1 => {
            let (a, b) = (parts[k % parts.len()], parts[(k / 2) % parts.len()]);
            let _ = db.dissociate(component, a, b);
        }
        2 => {
            // A supplier (created on demand) supplying an existing part.
            let s = if sups.is_empty() || k % 3 == 0 {
                let s = db.new_object(supplier).unwrap();
                let _ = db.set_attr(s, "sname", Value::str(format!("sup-{k}")));
                s
            } else {
                sups[k % sups.len()]
            };
            let _ = db.associate(supplies, s, parts[k % parts.len()]);
        }
        3 => {
            // A new part attached under an existing assembly.
            let p2 = db.new_object(part).unwrap();
            let _ = db.set_attr(p2, "cost", Value::Real(k as f64));
            let _ = db.associate(component, parts[k % parts.len()], p2);
        }
        _ => {
            // Scrap a part: closure chains through it must vanish.
            let _ = db.delete_object(parts[k % parts.len()]);
        }
    }
}

/// Regression (engine level): deleting an object and propagating must not
/// resurrect cached patterns whose other slots referenced it, and a
/// follow-up delta step over the post-deletion cache stays sound.
#[test]
fn deleted_oid_never_resurrects_through_the_cache() {
    let (db, com) = company::populate(company::CompanySize::small(), 3);
    let mut e = RuleEngine::new(db);
    e.add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
        .unwrap();
    e.add_rule("Rb", "if context REa:Employee * Project then REb (Employee, Project)")
        .unwrap();
    e.set_policy("REa", EvalPolicy::PreEvaluated);
    e.set_policy("REb", EvalPolicy::PreEvaluated);
    e.query("context REb:Employee").unwrap();

    let victim = com.employees[0];
    assert!(
        e.registry()
            .subdb("REa")
            .unwrap()
            .patterns()
            .any(|p| p.components().contains(&Some(victim))),
        "victim should appear in REa before deletion"
    );
    e.db_mut().delete_object(victim).unwrap();
    e.propagate().unwrap();
    for s in ["REa", "REb"] {
        let sd = e.registry().subdb(s).unwrap();
        assert!(
            sd.patterns().all(|p| !p.components().contains(&Some(victim))),
            "{s} resurrected the deleted oid"
        );
        assert_eq!(sd.to_vec(), e.derive_fresh(s).unwrap().to_vec());
    }
    // A second delta step over the post-deletion cache must stay sound.
    e.db_mut().set_attr(com.employees[1], "salary", Value::Int(42)).unwrap();
    e.propagate().unwrap();
    assert_fresh(&e, &["REa", "REb"]);
}

/// Regression (satellite): under rule-oriented control, a forward rule
/// whose source is backward-derived can never run — the skip is now
/// recorded in `stale_skips`, surfaced by the `is_consistent` oracle, and
/// flagged ahead of time by the W105 strategy lint.
#[test]
fn forward_reads_backward_source_is_reported() {
    let (db, com) = company::populate(company::CompanySize::small(), 7);
    let mut e = RuleEngine::new(db);
    e.set_mode(ControlMode::RuleOriented);
    e.add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
        .unwrap();
    e.add_rule("Rb", "if context REa:Employee * Project then REb (Employee, Project)")
        .unwrap();
    e.set_strategy("Ra", ChainStrategy::Backward);
    e.set_strategy("Rb", ChainStrategy::Forward);

    // The lint sees the hazard statically, before any update arrives.
    let diags = e.strategy_diagnostics();
    assert!(
        diags.iter().any(|d| d.code == "W105" && d.message.contains("REa")),
        "expected a W105 diagnostic, got {diags:?}"
    );

    e.db_mut().set_attr(com.employees[0], "salary", Value::Int(1)).unwrap();
    let rederived = e.propagate().unwrap();
    assert!(!rederived.contains(&"REb".to_string()));
    assert_eq!(e.stale_skips(), ["REb".to_string()]);
    // The skipped target is stale, and the oracle says so.
    assert!(!e.is_consistent("REb").unwrap());
}

/// Regression (satellite): `is_consistent` distinguishes "absent because
/// it is computed on demand" (fine) from "absent although the rule-oriented
/// forward strategy promises it is always kept available" (stale).
#[test]
fn absent_forward_subdb_is_stale_absent_backward_is_fine() {
    let (db, _) = company::populate(company::CompanySize::small(), 11);
    let mut e = RuleEngine::new(db);
    e.add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
        .unwrap();

    // Result-oriented control: absence is never staleness.
    assert!(e.is_consistent("REa").unwrap());

    // Rule-oriented + backward: computed on demand, absence is fine.
    e.set_mode(ControlMode::RuleOriented);
    e.set_strategy("Ra", ChainStrategy::Backward);
    assert!(e.is_consistent("REa").unwrap());

    // Rule-oriented + forward: the copy should exist — absence is stale.
    e.set_strategy("Ra", ChainStrategy::Forward);
    assert!(!e.is_consistent("REa").unwrap());

    // Once materialized, consistency is judged on content again.
    e.subdb("REa").unwrap();
    assert!(e.is_consistent("REa").unwrap());
}
