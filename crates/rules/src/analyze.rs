//! `dood-analyze`: the schema-aware static analyzer for rule programs.
//!
//! Runs over a parsed [`Program`] and the OSAM* schema **without touching
//! extensional data**, in four passes:
//!
//! 1. **Type checking** — every context-expression class exists (`E001`),
//!    qualified references name derivable subdatabases and their classes
//!    (`E002`/`E003`), `*`/`!`-linked pairs share a unique association
//!    (`E004`/`E005`), and `[...]` / WHERE predicates reference real
//!    attributes with comparable value types (`E006`–`E010`).
//! 2. **Safety / range restriction** — every slot of the derived
//!    association pattern is bound by a positive (`*`) context atom; an
//!    occurrence constrained only by `!` edges cannot safely feed a THEN
//!    target (`E013`, warning `W101` otherwise). THEN targets must name
//!    IF-clause classes (`E011`) and union rules must agree on the target
//!    layout (`E012`).
//! 3. **Stratification** — rule dependency cycles are rejected with the
//!    full named cycle path (`E014`), and cycles that pass through a
//!    negated (`!`) read of a derived subdatabase are flagged as
//!    negation-through-derivation (`E015`).
//! 4. **Lints** — dead rules (`W102`), duplicate rule bodies (`W103`),
//!    Null-propagation from `{...}` brace retention into `=` comparisons
//!    (`W104`), `!` edges whose best static plan is still an
//!    unconstrained cross-product stage (`W106`), and unbounded `^*`
//!    closures whose cycle-back edge re-traverses an association already
//!    on the chain (`W107`). A strategy-aware lint,
//!    `W105` (a forward rule reading a
//!    backward-derived source, the paper's §6 staleness hazard), runs
//!    separately via [`lint_forward_reads_backward`] because it needs the
//!    engine's rule-oriented strategy assignment, not just the program
//!    text.
//!
//! The analyzer is deliberately conservative where runtime resolution is
//! richer than its static model: edges between two occurrences qualified by
//! the *same* derived subdatabase, and closure-level alias slots (`Grad_2`)
//! of open (family-targeted) subdatabases, are accepted without a verdict.

use crate::ast::{Rule, TargetItem};
use crate::depgraph::DepGraph;
use crate::derive::target_names;
use crate::engine::referenced_subdbs;
use crate::error::RuleError;
use crate::program::{Program, ProgramRule};
use dood_core::diag::{self, Diagnostic, Span};
use dood_core::error::ResolveError;
use dood_core::fxhash::{FxHashMap, FxHashSet};
use dood_core::ids::ClassId;
use dood_core::schema::Schema;
use dood_core::value::DType;
use dood_oql::ast::{
    AggFunc, ClassRef, ClosureSpec, CmpOp, CmpRhs, Item, Literal, PatOp, Pred, Seq, WhereCond,
};

/// Analyze a program against a schema. `external` names subdatabases that
/// are registered outside the program (the engine's registry); references
/// to them are legal even though no program rule derives them. The
/// program's own `extern` directives are honored in addition.
///
/// Returns all diagnostics, sorted by source position.
pub fn analyze(
    program: &Program,
    schema: &Schema,
    external: &FxHashSet<String>,
) -> Vec<Diagnostic> {
    let mut ext = external.clone();
    ext.extend(program.externs.iter().cloned());
    let mut a = Analyzer::new(program, schema, ext.clone());
    a.run();
    let mut diags = a.diags;
    // The abstract-interpretation pass (E017/E018/W108-W110) only runs on
    // programs the base analyzer can make sense of: its bounds assume
    // resolvable classes and coherent layouts.
    if !diag::has_errors(&diags) {
        diags.extend(crate::absint::analyze_bounds(
            program,
            schema,
            &ext,
            &crate::absint::CardEnv::unknown(),
        )
        .diags);
    }
    // `allow <CODE>` directives suppress warning-severity diagnostics (a
    // lint opt-out); errors are never suppressible.
    if !program.allows.is_empty() {
        diags.retain(|d| {
            d.severity != diag::Severity::Warning
                || !program.allows.iter().any(|c| c == d.code)
        });
    }
    diag::sort(&mut diags);
    diags
}

/// W105: flag every forward-chaining rule that reads a subdatabase whose
/// deriving rule is backward-chaining. Under rule-oriented control the
/// forward rule "will not be triggered to update the result" when its
/// backward source is absent (paper §6's POSTGRES critique) — the target
/// goes silently stale. Rules without an entry in `strategies` default to
/// backward, matching the engine.
pub fn lint_forward_reads_backward(
    rules: &[Rule],
    strategies: &FxHashMap<String, crate::engine::ChainStrategy>,
) -> Vec<Diagnostic> {
    use crate::engine::ChainStrategy;
    let graph = DepGraph::build(rules);
    let rule_strategy = |r: &Rule| {
        strategies.get(&r.name).copied().unwrap_or(ChainStrategy::Backward)
    };
    let subdb_strategy = |name: &str| {
        graph
            .rules_for(name)
            .first()
            .map(|&i| rule_strategy(&rules[i]))
            .unwrap_or(ChainStrategy::Backward)
    };
    let mut out = Vec::new();
    for r in rules {
        if rule_strategy(r) != ChainStrategy::Forward {
            continue;
        }
        for read in r.reads() {
            if graph.is_derived(&read) && subdb_strategy(&read) == ChainStrategy::Backward {
                out.push(
                    Diagnostic::warning(
                        "W105",
                        format!(
                            "forward rule `{}` reads backward-derived `{read}`: \
                             `{}` goes silently stale whenever `{read}` is absent",
                            r.name, r.target_subdb
                        ),
                    )
                    .with_owner(r.name.clone())
                    .with_note(
                        "make the source's rule forward too, or use result-oriented control",
                    ),
                );
            }
        }
    }
    out
}

/// One slot of a statically-modelled derived subdatabase.
struct SlotInfo {
    name: String,
    base: Option<ClassId>,
    attrs: Option<Vec<String>>,
}

/// The static intension of a derived subdatabase.
struct SubdbInfo {
    /// Full THEN-clause name list of the first deriving rule (families as
    /// `base_*`), for layout comparison.
    names: Vec<String>,
    /// Non-family slots, in order.
    slots: Vec<SlotInfo>,
    /// Whether a family target (`C_*`) makes the slot set open-ended.
    open: bool,
}

/// A resolved context occurrence.
struct OccInfo {
    name: String,
    subdb: Option<String>,
    base: Option<ClassId>,
    /// Attribute restriction inherited from the source subdatabase slot.
    filter: Option<Vec<String>>,
    span: Span,
}

/// The flattened shape of a context expression. Shared with the abstract
/// interpreter ([`crate::absint`]), which walks the same occurrence list.
pub(crate) struct Shape<'a> {
    pub(crate) occs: Vec<(&'a ClassRef, Option<&'a Pred>)>,
    /// Operator between occurrence `i` and `i+1`.
    pub(crate) ops: Vec<PatOp>,
    /// Inclusive occurrence-index ranges covered by `{...}` groups.
    pub(crate) groups: Vec<(usize, usize)>,
}

pub(crate) fn shape(seq: &Seq) -> Shape<'_> {
    fn walk<'a>(seq: &'a Seq, sh: &mut Shape<'a>) {
        visit(&seq.first, sh);
        for (op, it) in &seq.rest {
            sh.ops.push(*op);
            visit(it, sh);
        }
    }
    fn visit<'a>(i: &'a Item, sh: &mut Shape<'a>) {
        match i {
            Item::Class { class, cond } => sh.occs.push((class, cond.as_ref())),
            Item::Group(g) => {
                let start = sh.occs.len();
                walk(g, sh);
                if sh.occs.len() > start {
                    sh.groups.push((start, sh.occs.len() - 1));
                }
            }
        }
    }
    let mut sh = Shape { occs: Vec::new(), ops: Vec::new(), groups: Vec::new() };
    walk(seq, &mut sh);
    sh
}

struct Analyzer<'a> {
    prog: &'a Program,
    schema: &'a Schema,
    external: FxHashSet<String>,
    graph: DepGraph,
    subdbs: FxHashMap<String, SubdbInfo>,
    diags: Vec<Diagnostic>,
}

impl<'a> Analyzer<'a> {
    fn new(prog: &'a Program, schema: &'a Schema, external: FxHashSet<String>) -> Self {
        let rules: Vec<Rule> = prog.rules.iter().map(|r| r.rule.clone()).collect();
        Analyzer {
            prog,
            schema,
            external,
            graph: DepGraph::build(&rules),
            subdbs: FxHashMap::default(),
            diags: Vec::new(),
        }
    }

    fn src(&self) -> &str {
        &self.prog.source
    }

    fn err(&mut self, code: &'static str, msg: String, span: Span, owner: &str) {
        let d = Diagnostic::error(code, msg).with_span(span, &self.prog.source).with_owner(owner);
        self.diags.push(d);
    }

    fn warn(&mut self, code: &'static str, msg: String, span: Span, owner: &str) {
        let d = Diagnostic::warning(code, msg).with_span(span, &self.prog.source).with_owner(owner);
        self.diags.push(d);
    }

    fn run(&mut self) {
        self.check_duplicate_names();
        self.collect_layouts();
        let order = self.check_stratification();
        for ri in order {
            let pr = &self.prog.rules[ri];
            self.check_rule(pr);
        }
        for q in &self.prog.queries {
            let sh = shape(&q.query.context.seq);
            let occs = self.resolve_occurrences(&sh, &q.occurrences, &q.name);
            self.check_edges(&sh, &occs, q.query.context.closure.as_ref(), &q.name);
            self.check_wheres(&q.query.where_, &sh, &occs, &q.wheres, &q.name, true);
        }
        self.check_exports();
        self.lint_dead_rules();
        self.lint_duplicates();
    }

    // ----------------------------------------------------------------
    // Setup passes
    // ----------------------------------------------------------------

    fn check_duplicate_names(&mut self) {
        let mut seen: FxHashSet<&str> = FxHashSet::default();
        let mut dups = Vec::new();
        for pr in &self.prog.rules {
            if !seen.insert(&pr.rule.name) {
                dups.push((pr.rule.name.clone(), pr.header));
            }
        }
        for (name, span) in dups {
            self.err("E016", format!("duplicate rule name `{name}`"), span, &name);
        }
    }

    /// Record each derived subdatabase's slot layout; flag union rules that
    /// disagree on it (E012).
    fn collect_layouts(&mut self) {
        for pr in &self.prog.rules {
            let names = target_names(&pr.rule);
            let open = pr.rule.targets.iter().any(|t| matches!(t, TargetItem::Family { .. }));
            match self.subdbs.get(&pr.rule.target_subdb) {
                None => {
                    let slots = pr
                        .rule
                        .targets
                        .iter()
                        .filter_map(|t| match t {
                            TargetItem::Class { class, attrs } => Some(SlotInfo {
                                name: class.name.clone(),
                                base: None,
                                attrs: attrs.clone(),
                            }),
                            TargetItem::Family { .. } => None,
                        })
                        .collect();
                    self.subdbs.insert(
                        pr.rule.target_subdb.clone(),
                        SubdbInfo { names, slots, open },
                    );
                }
                Some(info) => {
                    if info.names != names {
                        let (subdb, name) = (pr.rule.target_subdb.clone(), pr.rule.name.clone());
                        self.err(
                            "E012",
                            format!(
                                "rule `{name}` derives `{subdb}` with class list ({}) but an \
                                 earlier rule derives it with ({})",
                                names.join(", "),
                                info.names.join(", "),
                            ),
                            pr.spans.target_subdb,
                            &name,
                        );
                    }
                }
            }
        }
    }

    /// Topological processing order of rule indices; on a cycle, emit
    /// E014/E015 with the named path and fall back to declaration order.
    fn check_stratification(&mut self) -> Vec<usize> {
        match self.graph.topo_order() {
            Ok(order) => {
                let mut out = Vec::new();
                for name in &order {
                    out.extend(self.graph.rules_for(name).iter().copied());
                }
                out
            }
            Err(RuleError::CyclicRules(path)) => {
                self.report_cycle(&path);
                (0..self.prog.rules.len()).collect()
            }
            Err(_) => (0..self.prog.rules.len()).collect(),
        }
    }

    fn report_cycle(&mut self, path: &[String]) {
        let mut negative = false;
        let mut notes = Vec::new();
        let mut owner = None;
        for w in path.windows(2) {
            let (p, q) = (&w[0], &w[1]);
            // `p` depends on `q`: find a deriving rule that reads `q`.
            for &ri in self.graph.rules_for(p) {
                let pr = &self.prog.rules[ri];
                if pr.rule.reads().iter().any(|r| r == q) {
                    let neg = negated_reads(&pr.rule).contains(q.as_str());
                    negative |= neg;
                    notes.push(format!(
                        "`{p}` reads `{q}` in rule `{}`{}",
                        pr.rule.name,
                        if neg { " through a `!` (negated) edge" } else { "" },
                    ));
                    if owner.is_none() {
                        owner = Some((pr.rule.name.clone(), pr.header));
                    }
                    break;
                }
            }
        }
        let (code, what): (&'static str, _) = if negative {
            ("E015", "negation-through-derivation cycle")
        } else {
            ("E014", "cyclic rule dependencies")
        };
        let mut d = Diagnostic::error(
            code,
            format!(
                "{what}: {}; recursion must use the `^*` closure construct instead",
                path.join(" -> ")
            ),
        );
        if let Some((name, span)) = owner {
            d = d.with_span(span, self.src()).with_owner(name);
        }
        for n in notes {
            d = d.with_note(n);
        }
        self.diags.push(d);
    }

    // ----------------------------------------------------------------
    // Per-rule checks
    // ----------------------------------------------------------------

    fn check_rule(&mut self, pr: &ProgramRule) {
        let rule = &pr.rule;
        let name = rule.name.clone();
        let sh = shape(&rule.context.seq);
        let occs = self.resolve_occurrences(&sh, &pr.spans.occurrences, &name);
        let closed = rule.context.closure.is_some();
        self.check_edges(&sh, &occs, rule.context.closure.as_ref(), &name);
        let target_use = self.check_targets(pr, &occs, closed);
        self.check_safety(pr, &sh, &occs, closed, &target_use);
        self.check_wheres(&rule.where_, &sh, &occs, &pr.spans.wheres, &name, false);
        self.fill_slot_bases(pr, &occs);
    }

    /// Resolve every context occurrence to a base class, reporting
    /// E001/E002/E003 as needed.
    fn resolve_occurrences(
        &mut self,
        sh: &Shape<'_>,
        spans: &[Span],
        owner: &str,
    ) -> Vec<OccInfo> {
        let mut out = Vec::new();
        for (i, (cref, _)) in sh.occs.iter().enumerate() {
            let span = spans.get(i).copied().unwrap_or_default();
            let base;
            let mut filter = None;
            match &cref.subdb {
                Some(sd) => {
                    if let Some(info) = self.subdbs.get(sd.as_str()) {
                        match info.slots.iter().find(|s| s.name == cref.name) {
                            Some(slot) => {
                                base = slot.base;
                                filter = slot.attrs.clone();
                            }
                            None if info.open => {
                                // Open (family-targeted) subdatabase: alias
                                // levels exist only at runtime; resolve the
                                // base class by family name, no verdict on
                                // slot existence.
                                base = self.class_of(&cref.name);
                            }
                            None => {
                                self.err(
                                    "E003",
                                    format!("subdatabase `{sd}` has no class `{}`", cref.name),
                                    span,
                                    owner,
                                );
                                base = self.class_of(&cref.name);
                            }
                        }
                    } else if self.external.contains(sd.as_str()) {
                        // Externally-registered subdatabase: slots unknown
                        // statically; resolve the base best-effort.
                        base = self.class_of(&cref.name);
                    } else {
                        self.err(
                            "E002",
                            format!(
                                "no rule derives subdatabase `{sd}` and it is not registered"
                            ),
                            span,
                            owner,
                        );
                        base = self.class_of(&cref.name);
                    }
                }
                None => {
                    base = self.class_of(&cref.name);
                    if base.is_none() {
                        self.err(
                            "E001",
                            format!("unknown class `{}`", cref.name),
                            span,
                            owner,
                        );
                    }
                }
            }
            out.push(OccInfo {
                name: cref.name.clone(),
                subdb: cref.subdb.clone(),
                base,
                filter,
                span,
            });
        }
        // Intra-class predicate type checks.
        for (i, (_, cond)) in sh.occs.iter().enumerate() {
            if let Some(p) = cond {
                let occ = &out[i];
                let (base, filter, span) = (occ.base, occ.filter.clone(), occ.span);
                self.check_pred(p, base, filter.as_deref(), span, owner);
            }
        }
        out
    }

    /// The base class a name denotes: the class itself, or (for a closure
    /// alias like `Part_1`) its family class.
    fn class_of(&self, name: &str) -> Option<ClassId> {
        self.schema.try_class_by_name(name).or_else(|| {
            let (family, level) = ClassRef::split_alias(name);
            (level > 0).then(|| self.schema.try_class_by_name(family)).flatten()
        })
    }

    /// Recursively type-check an intra-class predicate against a class.
    fn check_pred(
        &mut self,
        pred: &Pred,
        base: Option<ClassId>,
        filter: Option<&[String]>,
        span: Span,
        owner: &str,
    ) {
        match pred {
            Pred::And(a, b) | Pred::Or(a, b) => {
                self.check_pred(a, base, filter, span, owner);
                self.check_pred(b, base, filter, span, owner);
            }
            Pred::Not(p) => self.check_pred(p, base, filter, span, owner),
            Pred::Cmp { attr, value, .. } => {
                if let Some(dt) = self.check_attr(base, filter, attr, span, owner) {
                    self.check_comparable(dt, Some(literal_dtype(value)), attr, span, owner);
                }
            }
        }
    }

    /// Resolve an attribute on a class (reporting E006/E008) and return its
    /// value type when known.
    fn check_attr(
        &mut self,
        base: Option<ClassId>,
        filter: Option<&[String]>,
        attr: &str,
        span: Span,
        owner: &str,
    ) -> Option<DType> {
        let base = base?;
        if let Some(list) = filter {
            if !list.iter().any(|a| a == attr) {
                let class = self.schema.class(base).name.clone();
                self.err(
                    "E008",
                    format!(
                        "attribute `{attr}` of `{class}` was projected away by the deriving \
                         rule's THEN clause and is not accessible here"
                    ),
                    span,
                    owner,
                );
                return None;
            }
        }
        match self.schema.resolve_attr(base, attr) {
            Ok(ra) => self.schema.attr_dtype(ra.attr),
            Err(e) => {
                self.err("E006", e.to_string(), span, owner);
                None
            }
        }
    }

    /// Report E007 when two value types cannot be compared.
    fn check_comparable(
        &mut self,
        left: DType,
        right: Option<DType>,
        what: &str,
        span: Span,
        owner: &str,
    ) {
        let Some(right) = right else { return };
        let numeric = |d: DType| matches!(d, DType::Int | DType::Real);
        if left != right && !(numeric(left) && numeric(right)) {
            self.err(
                "E007",
                format!("`{what}` has type {left} but is compared with a {right} value"),
                span,
                owner,
            );
        }
    }

    /// Check every association-pattern edge (E004/E005), including the
    /// closure's cycle-back edge; lint unavoidable cross products (W106)
    /// and unbounded closures that re-traverse a chain association (W107).
    fn check_edges(
        &mut self,
        sh: &Shape<'_>,
        occs: &[OccInfo],
        closure: Option<&ClosureSpec>,
        owner: &str,
    ) {
        let mut chain_assocs: Vec<dood_core::ids::AssocId> = Vec::new();
        for i in 0..sh.ops.len() {
            chain_assocs.extend(self.check_edge(&occs[i], &occs[i + 1], owner));
            // W106: a `!` edge is evaluated as a complement scan of the
            // target slot's extent. The planner may direct it either way,
            // so one conditioned (or subdatabase-restricted) endpoint is
            // enough to bound it — but when *both* endpoints are
            // unconstrained, every join order pays a full cross-product
            // stage over the two extents.
            if matches!(sh.ops[i], PatOp::NonAssoc) {
                let unconstrained = |k: usize| sh.occs[k].1.is_none() && occs[k].subdb.is_none();
                if unconstrained(i) && unconstrained(i + 1) {
                    self.warn(
                        "W106",
                        format!(
                            "`!` between unconditioned `{}` and `{}` is an \
                             unconstrained cross-product stage under every join \
                             order; add a `[...]` condition to either side",
                            occs[i].name,
                            occs[i + 1].name
                        ),
                        occs[i].span,
                        owner,
                    );
                }
            }
        }
        if let Some(spec) = closure {
            if occs.len() >= 2 {
                let (last, first) = (occs.len() - 1, 0);
                let back = self.check_edge(&occs[last], &occs[first], owner);
                // W107: an unbounded closure whose cycle-back edge
                // re-traverses an association already on the chain walks a
                // schema-cyclic loop — any data cycle through it multiplies
                // the emitted chains, bounded only by the per-chain cycle
                // cut. A `^N` bound caps the fixpoint instead.
                if let Some(back) = back {
                    if spec.iterations.is_none() && chain_assocs.contains(&back) {
                        self.warn(
                            "W107",
                            format!(
                                "unbounded `^*` re-traverses association `{}` already \
                                 on the chain: chain count is limited only by the \
                                 cycle cut; consider a `^N` iteration bound",
                                self.schema.assoc(back).name
                            ),
                            occs[first].span,
                            owner,
                        );
                    }
                }
            } else if occs.len() == 1 {
                self.check_edge(&occs[0], &occs[0], owner);
            }
        }
    }

    /// Returns the ordinary association the edge resolved to, when it did
    /// (identity edges, derived-subdb edges, and unresolved classes yield
    /// `None`).
    fn check_edge(
        &mut self,
        a: &OccInfo,
        b: &OccInfo,
        owner: &str,
    ) -> Option<dood_core::ids::AssocId> {
        // Two slots of the same derived subdatabase are linked by the
        // derived direct associations; runtime resolution handles them.
        if a.subdb.is_some() && a.subdb == b.subdb {
            return None;
        }
        let (Some(ca), Some(cb)) = (a.base, b.base) else { return None };
        match self.schema.resolve_edge(ca, cb) {
            Ok(dood_core::schema::ResolvedEdge::Assoc { assoc, .. }) => Some(assoc),
            Ok(_) => None,
            Err(e @ ResolveError::Ambiguous { .. }) => {
                self.err("E004", e.to_string(), a.span, owner);
                None
            }
            Err(e) => {
                self.err("E005", e.to_string(), a.span, owner);
                None
            }
        }
    }

    /// Validate THEN-clause targets (E011); returns the set of occurrence
    /// indices used by targets (for the safety pass).
    fn check_targets(
        &mut self,
        pr: &ProgramRule,
        occs: &[OccInfo],
        closed: bool,
    ) -> FxHashSet<usize> {
        let rule = &pr.rule;
        let name = rule.name.clone();
        let mut used = FxHashSet::default();
        for (ti, t) in rule.targets.iter().enumerate() {
            let span = pr.spans.targets.get(ti).copied().unwrap_or(pr.spans.target_subdb);
            match t {
                TargetItem::Class { class, attrs } => {
                    let matches: Vec<usize> = occs
                        .iter()
                        .enumerate()
                        .filter(|(_, o)| {
                            o.name == class.name
                                && class.subdb.as_ref().is_none_or(|s| o.subdb.as_deref() == Some(s))
                        })
                        .map(|(i, _)| i)
                        .collect();
                    match matches.len() {
                        0 => {
                            let (family, level) = ClassRef::split_alias(&class.name);
                            let alias_ok = closed
                                && level >= 1
                                && occs.iter().any(|o| o.name == family);
                            if !alias_ok {
                                self.err(
                                    "E011",
                                    format!(
                                        "target `{class}` is not a class of the IF clause"
                                    ),
                                    span,
                                    &name,
                                );
                            }
                        }
                        1 => {
                            used.insert(matches[0]);
                            if let Some(list) = attrs {
                                let base = occs[matches[0]].base;
                                for a in list {
                                    self.check_attr(base, None, a, span, &name);
                                }
                            }
                        }
                        _ => {
                            self.err(
                                "E011",
                                format!(
                                    "target `{class}` matches {} classes of the IF clause; \
                                     qualify it",
                                    matches.len()
                                ),
                                span,
                                &name,
                            );
                        }
                    }
                }
                TargetItem::Family { base } => {
                    if !closed {
                        self.err(
                            "E011",
                            format!(
                                "family target `{base}_*` requires a cyclic (`^*`) IF clause"
                            ),
                            span,
                            &name,
                        );
                    } else if let Some(i) = occs.iter().position(|o| o.name == *base) {
                        used.insert(i);
                    } else {
                        self.err(
                            "E011",
                            format!("family target `{base}_*` has no base class `{base}` \
                                     in the IF clause"),
                            span,
                            &name,
                        );
                    }
                }
            }
        }
        used
    }

    /// Safety / range restriction: an occurrence constrained only by `!`
    /// edges has no positive binding. Feeding a THEN target from it is an
    /// error (E013); otherwise it draws a warning (W101).
    fn check_safety(
        &mut self,
        pr: &ProgramRule,
        sh: &Shape<'_>,
        occs: &[OccInfo],
        closed: bool,
        target_use: &FxHashSet<usize>,
    ) {
        let name = pr.rule.name.clone();
        let n = occs.len();
        for i in 0..n {
            if n == 1 {
                break; // a single-class context is its class extent: bound.
            }
            let mut bound = false;
            if i > 0 && sh.ops[i - 1] == PatOp::Assoc {
                bound = true;
            }
            if i < sh.ops.len() && sh.ops[i] == PatOp::Assoc {
                bound = true;
            }
            // The closure's cycle-back edge is a positive association.
            if closed && (i == 0 || i == n - 1) {
                bound = true;
            }
            if bound {
                continue;
            }
            let occ = &occs[i];
            if target_use.contains(&i) {
                self.err(
                    "E013",
                    format!(
                        "target class `{}` is bound only by `!` (non-association) edges; \
                         a derived slot needs a positive `*` binding",
                        occ.name
                    ),
                    occ.span,
                    &name,
                );
            } else {
                self.warn(
                    "W101",
                    format!(
                        "class `{}` is bound only by `!` (non-association) edges",
                        occ.name
                    ),
                    occ.span,
                    &name,
                );
            }
        }
    }

    /// WHERE-condition checks: operands must name IF-clause classes (E009),
    /// attributes must resolve (E006/E008) with comparable types (E007),
    /// and SUM/AVG need numeric attributes (E010). Also the W104
    /// Null-propagation lint for brace retention.
    fn check_wheres(
        &mut self,
        conds: &[WhereCond],
        sh: &Shape<'_>,
        occs: &[OccInfo],
        spans: &[Span],
        owner: &str,
        _is_query: bool,
    ) {
        for (wi, cond) in conds.iter().enumerate() {
            let span = spans.get(wi).copied().unwrap_or_default();
            match cond {
                WhereCond::Agg { func, target, attr, by, op: _, value } => {
                    let t = self.match_operand(occs, target, sh, span, owner);
                    if let Some(b) = by {
                        self.match_operand(occs, b, sh, span, owner);
                    }
                    let dt = match (t, attr) {
                        (Some(ti), Some(a)) => {
                            let (base, filter) = (occs[ti].base, occs[ti].filter.clone());
                            self.check_attr(base, filter.as_deref(), a, span, owner)
                        }
                        _ => None,
                    };
                    match func {
                        AggFunc::Count => {
                            // COUNT yields an integer whatever it counts.
                            self.check_comparable(
                                DType::Int,
                                Some(literal_dtype(value)),
                                "count(...)",
                                span,
                                owner,
                            );
                        }
                        AggFunc::Sum | AggFunc::Avg => {
                            if let Some(dt) = dt {
                                if !matches!(dt, DType::Int | DType::Real) {
                                    let a = attr.as_deref().unwrap_or("?");
                                    self.err(
                                        "E010",
                                        format!(
                                            "{func:?}(...) needs a numeric attribute, but \
                                             `{a}` has type {dt}"
                                        ),
                                        span,
                                        owner,
                                    );
                                } else {
                                    self.check_comparable(
                                        dt,
                                        Some(literal_dtype(value)),
                                        attr.as_deref().unwrap_or("?"),
                                        span,
                                        owner,
                                    );
                                }
                            }
                        }
                        AggFunc::Min | AggFunc::Max => {
                            if let Some(dt) = dt {
                                self.check_comparable(
                                    dt,
                                    Some(literal_dtype(value)),
                                    attr.as_deref().unwrap_or("?"),
                                    span,
                                    owner,
                                );
                            }
                        }
                    }
                }
                WhereCond::Cmp { left: (cref, attr), op, right } => {
                    let li = self.match_operand(occs, cref, sh, span, owner);
                    let ldt = li.and_then(|i| {
                        let (base, filter) = (occs[i].base, occs[i].filter.clone());
                        self.check_attr(base, filter.as_deref(), attr, span, owner)
                    });
                    let rdt = match right {
                        CmpRhs::Lit(l) => Some(literal_dtype(l)),
                        CmpRhs::Attr(rc, ra) => {
                            let ri = self.match_operand(occs, rc, sh, span, owner);
                            ri.and_then(|i| {
                                let (base, filter) = (occs[i].base, occs[i].filter.clone());
                                self.check_attr(base, filter.as_deref(), ra, span, owner)
                            })
                        }
                    };
                    if let Some(ldt) = ldt {
                        self.check_comparable(ldt, rdt, &format!("{cref}.{attr}"), span, owner);
                    }
                    // W104: brace retention injects Null into slots outside
                    // the retained span; `=` never matches Null, so such
                    // retained patterns are silently dropped here.
                    if *op == CmpOp::Eq {
                        if let Some(i) = li {
                            if sh.groups.iter().any(|&(lo, hi)| i < lo || i > hi) {
                                self.warn(
                                    "W104",
                                    format!(
                                        "`{{...}}` retention can leave `{cref}` Null in \
                                         retained patterns, and `=` never matches Null; \
                                         those patterns are dropped by this comparison"
                                    ),
                                    span,
                                    owner,
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Match a WHERE operand to a context occurrence (E009 on failure).
    fn match_operand(
        &mut self,
        occs: &[OccInfo],
        r: &ClassRef,
        sh: &Shape<'_>,
        span: Span,
        owner: &str,
    ) -> Option<usize> {
        let matches: Vec<usize> = occs
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                o.name == r.name
                    && r.subdb.as_ref().is_none_or(|s| o.subdb.as_deref() == Some(s))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Some(matches[0]),
            0 => {
                // Closure alias levels (`Grad_2`) are legal operands when
                // the family class appears in a cyclic context.
                let (family, level) = ClassRef::split_alias(&r.name);
                let alias_ok = level >= 1 && occs.iter().any(|o| o.name == family);
                if !(alias_ok && !sh.occs.is_empty()) {
                    self.err(
                        "E009",
                        format!("WHERE operand `{r}` is not a class of the context"),
                        span,
                        owner,
                    );
                }
                None
            }
            _ => {
                self.err(
                    "E009",
                    format!("WHERE operand `{r}` matches several context classes; qualify it"),
                    span,
                    owner,
                );
                None
            }
        }
    }

    /// After checking a rule, back-fill the base classes of its target
    /// subdatabase's slots (E012 when union rules disagree on a base).
    fn fill_slot_bases(&mut self, pr: &ProgramRule, occs: &[OccInfo]) {
        let rule = &pr.rule;
        // Resolve each non-family target to its occurrence's base.
        let mut bases: Vec<Option<ClassId>> = Vec::new();
        for t in &rule.targets {
            if let TargetItem::Class { class, .. } = t {
                let base = occs
                    .iter()
                    .find(|o| {
                        o.name == class.name
                            && class.subdb.as_ref().is_none_or(|s| o.subdb.as_deref() == Some(s))
                    })
                    .and_then(|o| o.base);
                bases.push(base);
            }
        }
        let mut mismatch = None;
        if let Some(info) = self.subdbs.get_mut(&rule.target_subdb) {
            for (slot, base) in info.slots.iter_mut().zip(bases) {
                match (slot.base, base) {
                    (None, Some(b)) => slot.base = Some(b),
                    (Some(prev), Some(b)) if prev != b => {
                        mismatch = Some((slot.name.clone(), prev, b));
                    }
                    _ => {}
                }
            }
        }
        if let Some((slot, prev, b)) = mismatch {
            let (prev, b) =
                (self.schema.class(prev).name.clone(), self.schema.class(b).name.clone());
            self.err(
                "E012",
                format!(
                    "rule `{}` derives slot `{slot}` of `{}` from class `{b}`, but an \
                     earlier rule derives it from `{prev}`",
                    rule.name, rule.target_subdb
                ),
                pr.spans.target_subdb,
                &rule.name.clone(),
            );
        }
    }

    // ----------------------------------------------------------------
    // Program-level checks and lints
    // ----------------------------------------------------------------

    fn check_exports(&mut self) {
        let exports: Vec<(String, Span)> = self.prog.exports.clone();
        for (name, span) in exports {
            if !self.subdbs.contains_key(&name) && !self.external.contains(&name) {
                self.err(
                    "E002",
                    format!("exported subdatabase `{name}` is derived by no rule"),
                    span,
                    "export",
                );
            }
        }
    }

    /// W102: rules deriving subdatabases that no query, export, or live
    /// downstream rule ever reads. Only meaningful when the program states
    /// its outputs (has at least one query or export).
    fn lint_dead_rules(&mut self) {
        if self.prog.queries.is_empty() && self.prog.exports.is_empty() {
            return;
        }
        let mut live: FxHashSet<String> = FxHashSet::default();
        let mut frontier: Vec<String> = Vec::new();
        for (name, _) in &self.prog.exports {
            frontier.push(name.clone());
        }
        for q in &self.prog.queries {
            frontier.extend(referenced_subdbs(&q.query));
        }
        while let Some(name) = frontier.pop() {
            if !live.insert(name.clone()) {
                continue;
            }
            for dep in self.graph.deps_of(&name) {
                frontier.push(dep.clone());
            }
        }
        let mut dead = Vec::new();
        for pr in &self.prog.rules {
            if !live.contains(&pr.rule.target_subdb) {
                dead.push((
                    pr.rule.name.clone(),
                    pr.rule.target_subdb.clone(),
                    pr.header,
                ));
            }
        }
        for (rule, subdb, span) in dead {
            self.warn(
                "W102",
                format!(
                    "dead rule: `{subdb}` is never read by a query, an export, or a \
                     live downstream rule"
                ),
                span,
                &rule,
            );
        }
    }

    /// W103: two rules with identical bodies (same context, WHERE, target
    /// subdatabase, and targets).
    fn lint_duplicates(&mut self) {
        let rules = &self.prog.rules;
        let mut dups = Vec::new();
        for j in 1..rules.len() {
            for i in 0..j {
                let (a, b) = (&rules[i].rule, &rules[j].rule);
                if a.context == b.context
                    && a.where_ == b.where_
                    && a.target_subdb == b.target_subdb
                    && a.targets == b.targets
                {
                    dups.push((b.name.clone(), a.name.clone(), rules[j].header));
                    break;
                }
            }
        }
        for (dup, orig, span) in dups {
            self.warn(
                "W103",
                format!("rule `{dup}` duplicates the body of rule `{orig}`"),
                span,
                &dup,
            );
        }
    }
}

/// Subdatabases a rule reads exclusively through occurrences whose every
/// incident edge is `!` (non-association) — the negated reads that make a
/// dependency cycle a negation-through-derivation cycle (E015).
fn negated_reads(rule: &Rule) -> FxHashSet<String> {
    let sh = shape(&rule.context.seq);
    let n = sh.occs.len();
    let mut positive: FxHashSet<&str> = FxHashSet::default();
    let mut negative: FxHashSet<&str> = FxHashSet::default();
    for (i, (cref, _)) in sh.occs.iter().enumerate() {
        let Some(sd) = &cref.subdb else { continue };
        let mut any_pos = n == 1;
        if i > 0 && sh.ops[i - 1] == PatOp::Assoc {
            any_pos = true;
        }
        if i < sh.ops.len() && sh.ops[i] == PatOp::Assoc {
            any_pos = true;
        }
        if rule.context.closure.is_some() && (i == 0 || i == n - 1) {
            any_pos = true;
        }
        if any_pos {
            positive.insert(sd.as_str());
        } else {
            negative.insert(sd.as_str());
        }
    }
    negative
        .into_iter()
        .filter(|s| !positive.contains(s))
        .map(|s| s.to_string())
        .collect()
}

fn literal_dtype(l: &Literal) -> DType {
    match l {
        Literal::Int(_) => DType::Int,
        Literal::Real(_) => DType::Real,
        Literal::Str(_) => DType::Str,
    }
}

// ====================================================================
// Diagnostic code documentation
// ====================================================================

/// Documentation for one diagnostic code — the single source of truth
/// behind `doodlint --explain`, `doodlint --allow` validation, and the
/// README code table.
pub struct CodeDoc {
    /// The code, e.g. `"E004"`.
    pub code: &'static str,
    /// Its severity class.
    pub severity: diag::Severity,
    /// One-line summary (README table cell).
    pub summary: &'static str,
    /// A short paragraph for `--explain`: what triggers it and what to do.
    pub detail: &'static str,
}

/// Every diagnostic code the rule toolchain can emit, in code order.
pub fn codes() -> &'static [CodeDoc] {
    use diag::Severity::{Error, Warning};
    const CODES: &[CodeDoc] = &[
        CodeDoc {
            code: "E001",
            severity: Error,
            summary: "unknown class in a context expression",
            detail: "An unqualified occurrence names a class the schema does not \
                     declare (closure family aliases like `Part_2` resolve through \
                     their family class).",
        },
        CodeDoc {
            code: "E002",
            severity: Error,
            summary: "reference to an underivable subdatabase",
            detail: "A qualified occurrence (`Subdb:Class`) names a subdatabase that no \
                     rule in scope derives and that is not declared `extern`.",
        },
        CodeDoc {
            code: "E003",
            severity: Error,
            summary: "class not in the subdatabase's derived layout",
            detail: "A qualified occurrence names a class that the deriving rule's THEN \
                     clause does not place in the target subdatabase.",
        },
        CodeDoc {
            code: "E004",
            severity: Error,
            summary: "no association between a linked pair",
            detail: "Two occurrences joined by `*` or `!` have no association (or \
                     generalization path) connecting their classes in the schema.",
        },
        CodeDoc {
            code: "E005",
            severity: Error,
            summary: "ambiguous association between a linked pair",
            detail: "More than one schema association connects the pair, and the \
                     expression does not disambiguate which one is meant.",
        },
        CodeDoc {
            code: "E006",
            severity: Error,
            summary: "unknown attribute",
            detail: "A `[...]` condition or WHERE operand references an attribute the \
                     class (or its generalization ancestors) does not declare.",
        },
        CodeDoc {
            code: "E007",
            severity: Error,
            summary: "incomparable value types",
            detail: "A comparison mixes value types that have no common order (e.g. a \
                     string attribute against an integer literal); Int and Real \
                     inter-compare freely.",
        },
        CodeDoc {
            code: "E008",
            severity: Error,
            summary: "attribute projected away by the deriving rule",
            detail: "A qualified occurrence uses an attribute that the deriving rule's \
                     THEN clause explicitly projected out of the target subdatabase.",
        },
        CodeDoc {
            code: "E009",
            severity: Error,
            summary: "query operand does not match the context",
            detail: "A SELECT/display operand names a class (or attribute) that the \
                     query's context expression does not bind.",
        },
        CodeDoc {
            code: "E010",
            severity: Error,
            summary: "ill-typed aggregation",
            detail: "A WHERE aggregate is mis-applied: `sum`/`avg` over a non-numeric \
                     attribute, or a threshold of a type the aggregate cannot produce.",
        },
        CodeDoc {
            code: "E011",
            severity: Error,
            summary: "THEN target not bound by the IF clause",
            detail: "A THEN-clause class (or its attribute restriction) does not appear \
                     as a positive occurrence in the rule's context expression.",
        },
        CodeDoc {
            code: "E012",
            severity: Error,
            summary: "union rules disagree on the target layout",
            detail: "Two rules derive the same subdatabase with incompatible THEN \
                     layouts (different classes or attribute restrictions); union \
                     semantics require an agreed layout.",
        },
        CodeDoc {
            code: "E013",
            severity: Error,
            summary: "derived slot bound only by `!` edges",
            detail: "A THEN target's occurrence is constrained only by non-association \
                     (`!`) edges, so the derivation is not range-restricted; bind it \
                     with at least one positive `*` edge.",
        },
        CodeDoc {
            code: "E014",
            severity: Error,
            summary: "cyclic rule dependencies",
            detail: "Rule derivations form a dependency cycle (the full named path is \
                     reported); stratify the program to break it.",
        },
        CodeDoc {
            code: "E015",
            severity: Error,
            summary: "negation through a derivation cycle",
            detail: "A dependency cycle passes through a negated (`!`) read of a \
                     derived subdatabase — the classic unstratifiable-negation shape.",
        },
        CodeDoc {
            code: "E016",
            severity: Error,
            summary: "duplicate rule name",
            detail: "Two rules in the program share a name; rule names must be unique \
                     (subdatabase names may be shared — that is union semantics).",
        },
        CodeDoc {
            code: "E017",
            severity: Error,
            summary: "statically-unsatisfiable predicate",
            detail: "Abstract interpretation proved a `[...]` condition or WHERE \
                     comparison admits no value: contradictory bounds (`x > 3 and \
                     x < 4` over Int), an excluded point (`x = 5 and x != 5`), or a \
                     threshold outside an aggregate's domain (`count(...) < 0`). The \
                     rule can never produce a pattern.",
        },
        CodeDoc {
            code: "E018",
            severity: Error,
            summary: "statically-empty context",
            detail: "A rule or query reads a derived subdatabase that abstract \
                     interpretation proved empty (every deriving rule has an \
                     unsatisfiable predicate or an empty source of its own), so this \
                     context is provably empty too.",
        },
        CodeDoc {
            code: "P001",
            severity: Error,
            summary: "malformed program directive or section header",
            detail: "The program scanner could not parse a directive (`schema`, \
                     `export`, `extern`, `allow`, a rule or query header). The rest of \
                     the program is still scanned, but the offending line is skipped.",
        },
        CodeDoc {
            code: "W101",
            severity: Warning,
            summary: "occurrence bound only by `!` edges",
            detail: "A non-target occurrence is constrained only by non-association \
                     edges; it ranges over the whole extent minus linked pairs, which \
                     is rarely what was meant.",
        },
        CodeDoc {
            code: "W102",
            severity: Warning,
            summary: "dead rule",
            detail: "The rule's target subdatabase is never read by a query, an \
                     export, or a live downstream rule.",
        },
        CodeDoc {
            code: "W103",
            severity: Warning,
            summary: "duplicate rule bodies",
            detail: "Two rules have structurally identical IF/WHERE/THEN bodies; the \
                     second contributes nothing under union semantics.",
        },
        CodeDoc {
            code: "W104",
            severity: Warning,
            summary: "brace-retention Null reaches a comparison",
            detail: "A WHERE `=` comparison references a slot outside a `{...}` \
                     retention group; retained patterns carry Null there and are \
                     silently dropped by the comparison.",
        },
        CodeDoc {
            code: "W105",
            severity: Warning,
            summary: "forward rule reads a backward-derived source",
            detail: "Under rule-oriented control a forward-chaining rule reading a \
                     backward-derived subdatabase goes silently stale when the source \
                     is absent (the paper's §6 staleness hazard).",
        },
        CodeDoc {
            code: "W106",
            severity: Warning,
            summary: "`!` edge evaluates as a cross product",
            detail: "The best static plan for a non-association edge is still an \
                     unconstrained cross-product stage; add conditions to narrow one \
                     side.",
        },
        CodeDoc {
            code: "W107",
            severity: Warning,
            summary: "unbounded closure re-traverses an association",
            detail: "A `^*` closure's cycle-back edge re-traverses an association \
                     already on the chain, a shape that often loops over the same \
                     links; bound it with `^N` if unintended.",
        },
        CodeDoc {
            code: "W108",
            severity: Warning,
            summary: "predicate subsumed by earlier constraints",
            detail: "Abstract interpretation proved a WHERE condition is implied by \
                     the constraints already established on the same attribute (or is \
                     vacuous over an aggregate's domain): it can never drop a pattern.",
        },
        CodeDoc {
            code: "W109",
            severity: Warning,
            summary: "join blowup",
            detail: "A non-closure chain crosses two or more wide (Many-cardinality) \
                     association edges with no narrowing condition on any slot; the \
                     worst-case extent grows multiplicatively with every wide edge.",
        },
        CodeDoc {
            code: "W110",
            severity: Warning,
            summary: "closure bound provably exceeds schema reach",
            detail: "Every chain and cycle edge of the `^N` closure is a \
                     generalization identity, so the fixpoint terminates at level 1 \
                     and the declared levels beyond it are provably dead.",
        },
    ];
    CODES
}

/// Look up one code's documentation (`doodlint --explain`).
pub fn explain(code: &str) -> Option<&'static CodeDoc> {
    let up = code.to_ascii_uppercase();
    codes().iter().find(|c| c.code == up)
}
