//! # dood-store
//!
//! The extensional object store beneath **dood**: per-class extents of
//! OID-identified objects, descriptive attributes with optional ordered
//! indexes, bidirectional association indexes, instance-level perspective
//! (identity) links for generalization, constraint checking, transactions,
//! and the update-event log that drives forward chaining.

#![warn(missing_docs)]

pub mod assoc_index;
pub mod attr_index;
pub mod database;
pub mod dump;
pub mod events;
pub mod object;
pub mod txn;

pub use assoc_index::AssocIndex;
pub use attr_index::{AttrIndex, OrdValue};
pub use database::Database;
pub use dump::{dump, load, load_full, save_full, LoadError};
pub use events::{EventLog, SubscriberId, UpdateEvent};
pub use txn::Transaction;
