//! E17 soundness: compiled join pipelines (DESIGN.md §10) must produce
//! results byte-identical to the legacy AST-walking interpreter — on all
//! three paper schemas, under every planner mode, at every thread count,
//! and under arbitrary (even adversarial) planner statistics. Plans may
//! change; results may not. Plus golden EXPLAIN plan snapshots for the
//! E1/E6/E7 context shapes, pinning the planner's chosen join orders.
//!
//! Driven by the in-repo seeded harness (`dood::core::propcheck`); replay
//! a reported failure with `DOOD_PROP_SEED=<seed> cargo test <name>`.

use dood::core::obs::stats;
use dood::core::propcheck::check;
use dood::core::subdb::SubdbRegistry;
use dood::core::value::Value;
use dood::oql::parser::Parser;
use dood::oql::resolve::resolve_context;
use dood::oql::{Evaluator, ExecMode, PlannerMode};
use dood::rules::{EvalPolicy, RuleEngine};
use dood::store::Database;
use dood::workload::{cad, company, university};
use std::sync::Mutex;

const CASES: usize = 6;
const THREADS: &[&str] = &["1", "2", "4"];
const MODES: &[PlannerMode] =
    &[PlannerMode::CostBased, PlannerMode::MinExtent, PlannerMode::Leftmost];

/// The planner statistics registry is process-global; tests that write it
/// (every compiled execution feeds it) serialize on this lock so the
/// golden snapshots see exactly the stats they cleared.
static STATS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    STATS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Evaluate `query` compiled and interpreted under one planner mode;
/// assert byte-identical pattern sets.
fn assert_equiv(db: &Database, reg: &SubdbRegistry, query: &str, mode: PlannerMode) {
    let expr = Parser::parse_context_expr(query).unwrap();
    let resolved = resolve_context(&expr, db.schema(), reg).unwrap();
    let compiled = Evaluator::new(&resolved, db, reg)
        .unwrap()
        .with_planner(mode)
        .eval("x")
        .to_vec();
    let interp = Evaluator::new(&resolved, db, reg)
        .unwrap()
        .with_planner(mode)
        .with_exec(ExecMode::Interp)
        .eval("x")
        .to_vec();
    assert_eq!(compiled, interp, "compiled != interp for `{query}` under {mode:?}");
}

/// Context expressions per schema: association chains, braces, `!` edges,
/// and intra-class conditions — the operator mix the pipeline fuses.
const UNIVERSITY_QUERIES: &[&str] = &[
    "Teacher * Section * Course",
    "{Teacher * Section} * Course",
    "Department * Course * Section * Student",
    "Teacher ! Section",
    "Section * Course [c# >= 6000]",
    "Student * Section * Course * Department [name = 'CIS']",
];
const COMPANY_QUERIES: &[&str] = &[
    "Employee * Department",
    "Employee [salary >= 100000] * Project",
    "{Employee * Department} * Project",
    "Department ! Project",
];
const CAD_QUERIES: &[&str] = &["Supplier * Part", "Supplier ! Part [cost >= 50]"];

fn dbs(seed: u64) -> Vec<(Database, &'static [&'static str])> {
    vec![
        (university::populate(university::Size::small(), seed), UNIVERSITY_QUERIES),
        (company::populate(company::CompanySize::small(), seed).0, COMPANY_QUERIES),
        (cad::build_bom(cad::BomShape { depth: 3, fanout: 3, roots: 2, share_per_mille: 300 }, seed).0, CAD_QUERIES),
    ]
}

#[test]
fn compiled_equals_interp_across_schemas_and_threads() {
    let _g = lock();
    check("compiled_equals_interp_across_schemas_and_threads", CASES, |g| {
        let seed = g.range(0u64..100);
        for threads in THREADS {
            std::env::set_var("DOOD_THREADS", threads);
            for (db, queries) in dbs(seed) {
                let reg = SubdbRegistry::new();
                for q in queries {
                    for &mode in MODES {
                        assert_equiv(&db, &reg, q, mode);
                    }
                }
            }
            std::env::remove_var("DOOD_THREADS");
        }
    });
}

#[test]
fn random_stats_change_plans_not_results() {
    let _g = lock();
    check("random_stats_change_plans_not_results", CASES, |g| {
        let seed = g.range(0u64..100);
        for (db, queries) in dbs(seed) {
            let reg = SubdbRegistry::new();
            // Prime the registry: one compiled pass populates fan-out and
            // selectivity keys for every stage of every query.
            stats::clear();
            for q in queries {
                assert_equiv(&db, &reg, q, PlannerMode::CostBased);
            }
            // Adversarially scramble every observed statistic, plus a few
            // fan keys the pass may not have touched.
            for (key, _, _) in stats::snapshot() {
                stats::set(&key, g.range(0u64..10_000) as f64 / 10.0);
            }
            for a in 0..8u32 {
                for d in ["f", "r"] {
                    stats::set(&format!("oql.fan.a{a}.{d}"), g.range(0u64..500) as f64 / 10.0);
                }
            }
            // Misled plans must still agree with the interpreter.
            for q in queries {
                assert_equiv(&db, &reg, q, PlannerMode::CostBased);
            }
        }
        stats::clear();
    });
}

/// Incremental forward maintenance runs delta evaluations through the
/// cached compiled plan; a full run under `DOOD_EXEC=interp` must land on
/// the same materialized subdatabases.
#[test]
fn delta_maintenance_compiled_equals_interp() {
    let _g = lock();
    check("delta_maintenance_compiled_equals_interp", CASES, |g| {
        let seed = g.range(0u64..100);
        let ops = g.vec(2..8, |g| g.range(0usize..64));
        let run = |exec: &str| {
            std::env::set_var("DOOD_EXEC", exec);
            let (db, _) = company::populate(company::CompanySize::small(), seed);
            let mut e = RuleEngine::new(db);
            e.add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
                .unwrap();
            e.add_rule("Rb", "if context REa:Employee * Project then REb (Employee, Project)")
                .unwrap();
            let subdbs = ["REa", "REb"];
            for s in subdbs {
                e.set_policy(s, EvalPolicy::PreEvaluated);
            }
            e.set_incremental(true);
            for s in subdbs {
                e.subdb(s).unwrap();
            }
            for (i, &k) in ops.iter().enumerate() {
                let db = e.db_mut();
                let employee = db.schema().class_by_name("Employee").unwrap();
                let project = db.schema().class_by_name("Project").unwrap();
                let assigned = db.schema().own_link_by_name(employee, "AssignedTo").unwrap();
                let emp = db.extent(employee).nth(k % db.extent_size(employee)).unwrap();
                let p = db.new_object(project).unwrap();
                db.set_attr(p, "budget", Value::Int(i as i64)).unwrap();
                db.associate(assigned, emp, p).unwrap();
                e.propagate().unwrap();
            }
            let out: Vec<_> =
                subdbs.iter().map(|s| e.registry().subdb(s).unwrap().to_vec()).collect();
            std::env::remove_var("DOOD_EXEC");
            out
        };
        assert_eq!(run("compiled"), run("interp"), "delta maintenance diverged");
    });
}

/// Golden plans for the E1/E6/E7 context shapes over the university
/// schema, with the stats registry cleared (pure schema-derived
/// estimates). A planner change that re-orders these joins shows up here
/// as a readable diff, with `doodprof --plan` as the investigation tool.
#[test]
fn golden_plans_e1_e6_e7() {
    let _g = lock();
    stats::clear();
    let db = university::populate(university::Size::small(), 42);
    let reg = SubdbRegistry::new();
    let plan_of = |query: &str| {
        let expr = Parser::parse_context_expr(query).unwrap();
        let resolved = resolve_context(&expr, db.schema(), &reg).unwrap();
        Evaluator::new(&resolved, &db, &reg).unwrap().plan_handle().describe()
    };
    let e1 = plan_of("Teacher * Section * Course");
    let e6 = plan_of("{Teacher * Section} * Course");
    let e7 = plan_of("Department * Course * Section * Student");
    stats::clear();
    assert_eq!(
        e1,
        "plan mode=cost\n  span [0,3) anchor=Course cost=29 rows=12\n    scan Course est=8\n    step Course->Section est=9\n    step Section->Teacher est=12\n",
        "E1 golden plan drifted:\n{e1}"
    );
    // The brace group compiles a second, prefix-only span: the retention
    // pass evaluates `{Teacher * Section}` on its own to decide which
    // partial patterns survive subsumption.
    assert_eq!(
        e6,
        "plan mode=cost\n  span [0,3) anchor=Course cost=29 rows=12\n    scan Course est=8\n    step Course->Section est=9\n    step Section->Teacher est=12\n  span [0,2) anchor=Teacher cost=21 rows=12\n    scan Teacher est=9\n    step Teacher->Section est=12\n",
        "E6 golden plan drifted:\n{e6}"
    );
    assert_eq!(
        e7,
        "plan mode=cost\n  span [0,4) anchor=Department cost=70 rows=51\n    scan Department est=2\n    step Department->Course est=8\n    step Course->Section est=9\n    step Section->Student est=51\n",
        "E7 golden plan drifted:\n{e7}"
    );
}
