//! Datalog terms, atoms, rules and programs.
//!
//! The baseline deliberately mirrors the "PROLOG-based deductive relational"
//! line of work the paper positions itself against (§1): positive Datalog
//! over flat relations, evaluated bottom-up (naive or semi-naive).

use dood_core::fxhash::FxHashMap;
use std::fmt;

/// A predicate identifier (interned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub u32);

/// A variable identifier (scoped to one rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub u32);

/// A term: variable or constant (constants are `u64`, e.g. OIDs or interned
/// symbols).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// A rule-scoped variable.
    Var(Var),
    /// A constant.
    Const(u64),
}

/// An atom `p(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The predicate.
    pub pred: Pred,
    /// Arguments.
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(pred: Pred, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }
}

/// A Horn rule `head :- body1, …, bodyn` (positive bodies only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlRule {
    /// The derived atom.
    pub head: Atom,
    /// The body atoms (conjunctive).
    pub body: Vec<Atom>,
}

impl DlRule {
    /// Construct a rule. Panics (debug) if a head variable is unbound in
    /// the body (unsafe rule).
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        #[cfg(debug_assertions)]
        {
            let bound: Vec<Var> = body
                .iter()
                .flat_map(|a| a.args.iter())
                .filter_map(|t| match t {
                    Term::Var(v) => Some(*v),
                    Term::Const(_) => None,
                })
                .collect();
            for t in &head.args {
                if let Term::Var(v) = t {
                    debug_assert!(bound.contains(v), "unsafe rule: head var not in body");
                }
            }
        }
        DlRule { head, body }
    }
}

/// A predicate-name interner plus the rule list.
#[derive(Debug, Default, Clone)]
pub struct Program {
    /// The rules.
    pub rules: Vec<DlRule>,
    names: Vec<String>,
    by_name: FxHashMap<String, Pred>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a predicate name.
    pub fn pred(&mut self, name: &str) -> Pred {
        if let Some(&p) = self.by_name.get(name) {
            return p;
        }
        let p = Pred(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), p);
        p
    }

    /// Predicate name (for display).
    pub fn pred_name(&self, p: Pred) -> &str {
        &self.names[p.0 as usize]
    }

    /// Look up an interned predicate.
    pub fn try_pred(&self, name: &str) -> Option<Pred> {
        self.by_name.get(name).copied()
    }

    /// Number of interned predicates.
    pub fn pred_count(&self) -> usize {
        self.names.len()
    }

    /// Add a rule.
    pub fn rule(&mut self, head: Atom, body: Vec<Atom>) {
        self.rules.push(DlRule::new(head, body));
    }

    /// The predicates derived by rules (IDB).
    pub fn idb(&self) -> Vec<Pred> {
        let mut v: Vec<Pred> = self.rules.iter().map(|r| r.head.pred).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            let fmt_atom = |a: &Atom| {
                let args: Vec<String> = a
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => format!("X{}", v.0),
                        Term::Const(c) => c.to_string(),
                    })
                    .collect();
                format!("{}({})", self.pred_name(a.pred), args.join(", "))
            };
            let body: Vec<String> = r.body.iter().map(&fmt_atom).collect();
            writeln!(f, "{} :- {}.", fmt_atom(&r.head), body.join(", "))?;
        }
        Ok(())
    }
}

/// Convenience: variable term.
pub fn v(i: u32) -> Term {
    Term::Var(Var(i))
}

/// Convenience: constant term.
pub fn c(x: u64) -> Term {
    Term::Const(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut p = Program::new();
        let a = p.pred("edge");
        let b = p.pred("path");
        assert_eq!(p.pred("edge"), a);
        assert_ne!(a, b);
        assert_eq!(p.pred_name(b), "path");
        assert_eq!(p.try_pred("nope"), None);
        assert_eq!(p.pred_count(), 2);
    }

    #[test]
    fn idb_lists_rule_heads() {
        let mut p = Program::new();
        let edge = p.pred("edge");
        let path = p.pred("path");
        p.rule(Atom::new(path, vec![v(0), v(1)]), vec![Atom::new(edge, vec![v(0), v(1)])]);
        p.rule(
            Atom::new(path, vec![v(0), v(2)]),
            vec![Atom::new(edge, vec![v(0), v(1)]), Atom::new(path, vec![v(1), v(2)])],
        );
        assert_eq!(p.idb(), vec![path]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn unsafe_rule_panics() {
        let mut p = Program::new();
        let path = p.pred("path");
        let edge = p.pred("edge");
        // Head var X1 never bound in body.
        p.rule(Atom::new(path, vec![v(0), v(1)]), vec![Atom::new(edge, vec![v(0), v(0)])]);
    }

    #[test]
    fn display_renders_rules() {
        let mut p = Program::new();
        let edge = p.pred("edge");
        let path = p.pred("path");
        p.rule(Atom::new(path, vec![v(0), v(1)]), vec![Atom::new(edge, vec![v(0), v(1)])]);
        assert_eq!(p.to_string(), "path(X0, X1) :- edge(X0, X1).\n");
    }
}
