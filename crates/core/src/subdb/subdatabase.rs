//! Subdatabases: an intensional pattern plus a set of extensional patterns
//! (paper §3.1). This is the closed universe of the rule language: "the
//! world of subdatabases is closed under this rule-based language".

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::Oid;
use crate::subdb::index::SubdbIndex;
use crate::subdb::intension::Intension;
use crate::subdb::pattern::{ExtPattern, PatternType};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::OnceLock;

/// A subdatabase: "a portion of the original database … an intensional
/// association pattern and a set of extensional association patterns".
#[derive(Debug)]
pub struct Subdatabase {
    /// Unique name (the `subdatabase-id` of a rule's THEN clause).
    pub name: String,
    /// The intensional pattern.
    pub intension: Intension,
    /// The extensional patterns, deterministically ordered.
    patterns: BTreeSet<ExtPattern>,
    /// Lazily-built access index (see [`SubdbIndex`]). `insert`/`remove`
    /// keep it current once built; bulk mutators discard it; clones start
    /// without one and rebuild on demand.
    index: OnceLock<SubdbIndex>,
}

impl Clone for Subdatabase {
    fn clone(&self) -> Self {
        // The index is derived state and usually not wanted by the clone
        // (e.g. a snapshot taken before mutation); let it rebuild lazily.
        Subdatabase {
            name: self.name.clone(),
            intension: self.intension.clone(),
            patterns: self.patterns.clone(),
            index: OnceLock::new(),
        }
    }
}

impl Subdatabase {
    /// An empty subdatabase over the given intension.
    pub fn new(name: impl Into<String>, intension: Intension) -> Self {
        Subdatabase {
            name: name.into(),
            intension,
            patterns: BTreeSet::new(),
            index: OnceLock::new(),
        }
    }

    /// The extension's access index (counted slot extents and slot-pair
    /// adjacency), built on first use and kept current by `insert` and
    /// `remove`. Bulk mutators (`set_patterns`, `retain_maximal`,
    /// `union_from`) discard it, so a later call rebuilds from scratch.
    pub fn index(&self) -> &SubdbIndex {
        self.index
            .get_or_init(|| SubdbIndex::build(self.intension.width(), self.patterns.iter()))
    }

    /// Number of extensional patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the extension is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Insert a pattern (set semantics: duplicates collapse). Returns
    /// whether the pattern was new. Panics in debug builds on a width
    /// mismatch.
    pub fn insert(&mut self, p: ExtPattern) -> bool {
        debug_assert_eq!(p.width(), self.intension.width(), "pattern width mismatch");
        if let Some(ix) = self.index.get_mut() {
            if self.patterns.contains(&p) {
                return false;
            }
            ix.add(&p);
            return self.patterns.insert(p);
        }
        self.patterns.insert(p)
    }

    /// Iterate patterns in deterministic (lexicographic) order.
    pub fn patterns(&self) -> impl Iterator<Item = &ExtPattern> {
        self.patterns.iter()
    }

    /// Whether the extension contains this exact pattern.
    pub fn contains(&self, p: &ExtPattern) -> bool {
        self.patterns.contains(p)
    }

    /// Remove an exact pattern. Returns whether it was present.
    pub fn remove(&mut self, p: &ExtPattern) -> bool {
        let removed = self.patterns.remove(p);
        if removed {
            if let Some(ix) = self.index.get_mut() {
                ix.del(p);
            }
        }
        removed
    }

    /// The distinct oids appearing in patterns present in exactly one of
    /// the two extensions — the objects an incremental maintenance step
    /// must treat as changed downstream. Both pattern sets iterate in
    /// lexicographic order, so a single merge pass finds the symmetric
    /// difference.
    pub fn diff_components(&self, other: &Subdatabase) -> Vec<Oid> {
        let mut out = BTreeSet::new();
        let mut a = self.patterns.iter().peekable();
        let mut b = other.patterns.iter().peekable();
        let absorb = |p: &ExtPattern, out: &mut BTreeSet<Oid>| {
            out.extend(p.components().iter().flatten().copied());
        };
        loop {
            match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) => match x.cmp(y) {
                    std::cmp::Ordering::Less => {
                        absorb(x, &mut out);
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        absorb(y, &mut out);
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        a.next();
                        b.next();
                    }
                },
                (Some(&x), None) => {
                    absorb(x, &mut out);
                    a.next();
                }
                (None, Some(&y)) => {
                    absorb(y, &mut out);
                    b.next();
                }
                (None, None) => break,
            }
        }
        out.into_iter().collect()
    }

    /// Collect patterns into a vector.
    pub fn to_vec(&self) -> Vec<ExtPattern> {
        self.patterns.iter().cloned().collect()
    }

    /// Replace the full pattern set.
    pub fn set_patterns(&mut self, ps: impl IntoIterator<Item = ExtPattern>) {
        self.patterns = ps.into_iter().collect();
        self.index = OnceLock::new();
    }

    /// The distinct instances appearing in a slot — the extent of that
    /// target class ("the set of instances of a target class is a subset of
    /// the set of instances of the source class", paper §4).
    pub fn slot_extent(&self, slot: usize) -> BTreeSet<Oid> {
        self.patterns.iter().filter_map(|p| p.get(slot)).collect()
    }

    /// Extent of a slot by name.
    pub fn extent_of(&self, slot_name: &str) -> Option<BTreeSet<Oid>> {
        self.intension.slot_by_name(slot_name).map(|i| self.slot_extent(i))
    }

    /// The distinct pattern types present, with pattern counts — the paper
    /// enumerates "the five extensional pattern types present in the
    /// extensional diagram of Figure 3.1b".
    pub fn pattern_types(&self) -> BTreeMap<PatternType, usize> {
        let mut out = BTreeMap::new();
        for p in &self.patterns {
            *out.entry(p.pattern_type()).or_insert(0) += 1;
        }
        out
    }

    /// Drop every pattern that is a strict part of another retained pattern
    /// (paper §5.1 subsumption). Grouped by pattern type so the check is
    /// O(types² · patterns) rather than O(patterns²).
    pub fn retain_maximal(&mut self) {
        let by_type: FxHashMap<PatternType, Vec<&ExtPattern>> = {
            let mut m: FxHashMap<PatternType, Vec<&ExtPattern>> = FxHashMap::default();
            for p in &self.patterns {
                m.entry(p.pattern_type()).or_default().push(p);
            }
            m
        };
        let types: Vec<PatternType> = by_type.keys().copied().collect();
        let mut dead: FxHashSet<ExtPattern> = FxHashSet::default();
        for &small in &types {
            // Candidate supertypes.
            let supers: Vec<PatternType> = types
                .iter()
                .copied()
                .filter(|&big| small.is_strict_subtype_of(big))
                .collect();
            if supers.is_empty() {
                continue;
            }
            let small_slots: Vec<usize> = small.slots().collect();
            // Projections of every supertype pattern onto the small type's
            // slots.
            let mut proj: FxHashSet<Vec<Option<Oid>>> = FxHashSet::default();
            for &big in &supers {
                for p in &by_type[&big] {
                    proj.insert(small_slots.iter().map(|&i| p.get(i)).collect());
                }
            }
            for p in &by_type[&small] {
                let key: Vec<Option<Oid>> = small_slots.iter().map(|&i| p.get(i)).collect();
                if proj.contains(&key) {
                    dead.insert((*p).clone());
                }
            }
        }
        if !dead.is_empty() {
            self.patterns.retain(|p| !dead.contains(p));
            self.index = OnceLock::new();
        }
    }

    /// Union another subdatabase's patterns into this one. Both rules R4
    /// and R5 "derive extensional patterns into the same subdatabase
    /// May_teach … May_teach will contain the union of the two sets"
    /// (paper §4.2). The intensions must have identical slot names.
    pub fn union_from(&mut self, other: &Subdatabase) {
        debug_assert_eq!(
            self.intension.slots.iter().map(|s| &s.name).collect::<Vec<_>>(),
            other.intension.slots.iter().map(|s| &s.name).collect::<Vec<_>>(),
            "union requires identical slot layout"
        );
        for p in other.patterns() {
            self.patterns.insert(p.clone());
        }
        self.index = OnceLock::new();
    }

    /// Project onto the given slots, producing a new subdatabase with a
    /// narrower intension (used by rule THEN clauses). Duplicate projected
    /// patterns collapse.
    pub fn project(&self, name: impl Into<String>, slots: &[usize]) -> Subdatabase {
        let slot_defs = slots.iter().map(|&i| self.intension.slots[i].clone()).collect();
        let mut intension = Intension::new(slot_defs);
        // Preserve derived edges whose endpoints are both retained.
        for e in &self.intension.edges {
            if let (Some(a), Some(b)) = (
                slots.iter().position(|&s| s == e.a as usize),
                slots.iter().position(|&s| s == e.b as usize),
            ) {
                intension.add_edge(a, b);
            }
        }
        let mut out = Subdatabase::new(name, intension);
        for p in &self.patterns {
            out.insert(p.project(slots));
        }
        out
    }
}

impl fmt::Display for Subdatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "subdatabase {} {}", self.name, self.intension)?;
        for p in &self.patterns {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClassId;
    use crate::subdb::intension::SlotDef;

    fn subdb() -> Subdatabase {
        let mut i = Intension::new(vec![
            SlotDef::base("A", ClassId(0)),
            SlotDef::base("B", ClassId(1)),
            SlotDef::base("C", ClassId(2)),
        ]);
        i.add_edge(0, 1);
        i.add_edge(1, 2);
        Subdatabase::new("S", i)
    }

    fn p(v: &[Option<u64>]) -> ExtPattern {
        ExtPattern::new(v.iter().map(|o| o.map(Oid)).collect::<Vec<_>>())
    }

    #[test]
    fn insert_dedups() {
        let mut s = subdb();
        assert!(s.insert(p(&[Some(1), Some(2), None])));
        assert!(!s.insert(p(&[Some(1), Some(2), None])));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slot_extents() {
        let mut s = subdb();
        s.insert(p(&[Some(1), Some(2), Some(3)]));
        s.insert(p(&[Some(1), Some(4), None]));
        let a = s.extent_of("A").unwrap();
        assert_eq!(a.len(), 1);
        let b = s.extent_of("B").unwrap();
        assert_eq!(b.len(), 2);
        let c = s.extent_of("C").unwrap();
        assert_eq!(c.len(), 1);
        assert!(s.extent_of("Z").is_none());
    }

    #[test]
    fn pattern_type_census() {
        let mut s = subdb();
        s.insert(p(&[Some(1), Some(2), Some(3)]));
        s.insert(p(&[Some(9), Some(2), None]));
        s.insert(p(&[None, Some(5), Some(6)]));
        let census = s.pattern_types();
        assert_eq!(census.len(), 3);
        assert_eq!(census[&PatternType(0b111)], 1);
        assert_eq!(census[&PatternType(0b011)], 1);
        assert_eq!(census[&PatternType(0b110)], 1);
    }

    #[test]
    fn retain_maximal_drops_parts() {
        // Paper §5.1: (b5,c5) dropped because part of (a1,b5,c5,d5);
        // (b2,c2) retained.
        let i = Intension::new(vec![
            SlotDef::base("A", ClassId(0)),
            SlotDef::base("B", ClassId(1)),
            SlotDef::base("C", ClassId(2)),
            SlotDef::base("D", ClassId(3)),
        ]);
        let mut s = Subdatabase::new("X", i);
        s.insert(ExtPattern::new(vec![Some(Oid(1)), Some(Oid(5)), Some(Oid(6)), Some(Oid(7))]));
        s.insert(ExtPattern::new(vec![None, Some(Oid(5)), Some(Oid(6)), None]));
        s.insert(ExtPattern::new(vec![None, Some(Oid(2)), Some(Oid(3)), None]));
        s.retain_maximal();
        assert_eq!(s.len(), 2);
        assert!(s.patterns().all(|p| p.get(1) != Some(Oid(5)) || p.get(0).is_some()));
    }

    #[test]
    fn union_semantics() {
        let mut a = subdb();
        a.insert(p(&[Some(1), Some(2), Some(3)]));
        let mut b = subdb();
        b.insert(p(&[Some(1), Some(2), Some(3)]));
        b.insert(p(&[Some(4), Some(5), Some(6)]));
        a.union_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn project_keeps_edges_and_collapses() {
        let mut s = subdb();
        s.insert(p(&[Some(1), Some(2), Some(3)]));
        s.insert(p(&[Some(1), Some(9), Some(3)]));
        let t = s.project("T", &[0, 2]);
        assert_eq!(t.len(), 1); // both project to (1, 3)
        assert_eq!(t.intension.width(), 2);
        // No original edge between A and C, so no retained edges.
        assert!(t.intension.edges.is_empty());
        let u = s.project("U", &[0, 1]);
        assert!(u.intension.has_edge(0, 1));
    }

    #[test]
    fn diff_components_symmetric() {
        let mut a = subdb();
        a.insert(p(&[Some(1), Some(2), Some(3)]));
        a.insert(p(&[Some(4), Some(5), None]));
        let mut b = subdb();
        b.insert(p(&[Some(1), Some(2), Some(3)])); // shared — not a diff
        b.insert(p(&[Some(7), Some(8), Some(9)]));
        let d = a.diff_components(&b);
        assert_eq!(d, vec![Oid(4), Oid(5), Oid(7), Oid(8), Oid(9)]);
        assert_eq!(a.diff_components(&b), b.diff_components(&a));
        assert!(a.diff_components(&a).is_empty());
    }

    #[test]
    fn contains_exact_pattern() {
        let mut s = subdb();
        s.insert(p(&[Some(1), Some(2), None]));
        assert!(s.contains(&p(&[Some(1), Some(2), None])));
        assert!(!s.contains(&p(&[Some(1), None, None])));
    }

    #[test]
    fn index_survives_point_edits_and_bulk_invalidation() {
        let mut s = subdb();
        s.insert(p(&[Some(1), Some(2), Some(3)]));
        s.insert(p(&[Some(1), Some(4), None]));
        // Build, then point-edit: the maintained index must match a rebuild.
        assert_eq!(s.index().slot_len(1), 2);
        s.insert(p(&[Some(7), Some(2), Some(3)]));
        s.remove(&p(&[Some(1), Some(4), None]));
        assert_eq!(s.index().slot_len(0), 2);
        assert!(!s.index().slot_contains(1, Oid(4)));
        let (adj, flip) = s.index().pair_adj(1, 0).unwrap();
        assert!(flip);
        let mut back: Vec<Oid> = adj.neighbors(Oid(2), false).to_vec();
        back.sort_unstable();
        assert_eq!(back, vec![Oid(1), Oid(7)]);
        // Bulk mutation discards and a fresh call rebuilds.
        s.set_patterns([p(&[Some(9), Some(9), Some(9)])]);
        assert_eq!(s.index().slot_len(0), 1);
        assert!(s.index().slot_contains(2, Oid(9)));
        // Clones start without an index and rebuild on demand.
        let c = s.clone();
        assert!(c.index().slot_contains(0, Oid(9)));
    }

    #[test]
    fn display_lists_patterns() {
        let mut s = subdb();
        s.insert(p(&[Some(1), Some(2), None]));
        let text = s.to_string();
        assert!(text.contains("subdatabase S"));
        assert!(text.contains("(o1, o2, Null)"));
    }
}
