//! The hierarchical span tracer.
//!
//! A [`Span`] is an RAII guard: opening pushes its id onto the current
//! thread's span stack (so nested spans parent automatically), dropping
//! records a [`SpanRecord`] with monotonic start/duration timestamps.
//! Records go to an optional JSON-lines stream writer (env `DOOD_TRACE`)
//! and/or the in-memory sink drained by [`capture`].
//!
//! Cross-thread parentage: `ChunkPool` workers have empty span stacks, so
//! the pool opens worker spans with [`span_under`], passing the call-site
//! span id captured *before* spawning. While that worker span is open,
//! ordinary [`span`] calls inside the worker nest under it — the tree stays
//! connected across threads.
//!
//! When tracing is disabled every constructor returns an inert guard after
//! a single relaxed atomic load; no allocation, no clock read.

use super::{json_escape, now_ns, thread_ord, trace_gate_set};
use crate::fxhash::FxHashMap;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// One closed span, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (monotone, 1-based).
    pub id: u64,
    /// Parent span id, if any.
    pub parent: Option<u64>,
    /// Dense ordinal of the thread the span ran on ([`super::thread_ord`]).
    pub thread: u64,
    /// Site name (`layer.operation`, e.g. `oql.join`).
    pub name: String,
    /// Optional dynamic label (rule name, subdatabase name, …).
    pub label: Option<String>,
    /// Start, in monotonic ns since the process obs epoch.
    pub start_ns: u64,
    /// Wall-clock duration in ns.
    pub dur_ns: u64,
    /// Integer attributes (cardinalities, counts), in insertion order.
    pub attrs: Vec<(String, i64)>,
}

impl SpanRecord {
    /// End timestamp (`start_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// An attribute's value, by key.
    pub fn attr(&self, key: &str) -> Option<i64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"id\":");
        s.push_str(&self.id.to_string());
        s.push_str(",\"parent\":");
        match self.parent {
            Some(p) => s.push_str(&p.to_string()),
            None => s.push_str("null"),
        }
        s.push_str(",\"thread\":");
        s.push_str(&self.thread.to_string());
        s.push_str(",\"name\":\"");
        s.push_str(&json_escape(&self.name));
        s.push('"');
        if let Some(l) = &self.label {
            s.push_str(",\"label\":\"");
            s.push_str(&json_escape(l));
            s.push('"');
        }
        s.push_str(",\"start_ns\":");
        s.push_str(&self.start_ns.to_string());
        s.push_str(",\"dur_ns\":");
        s.push_str(&self.dur_ns.to_string());
        if !self.attrs.is_empty() {
            s.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('"');
                s.push_str(&json_escape(k));
                s.push_str("\":");
                s.push_str(&v.to_string());
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// Parse one JSON line produced by [`SpanRecord::to_json_line`]. The
    /// parser is deliberately minimal (this exact flat shape plus one
    /// nested integer map), so the trace validator needs no JSON
    /// dependency.
    pub fn from_json_line(line: &str) -> Result<SpanRecord, String> {
        let mut p = JsonParser::new(line);
        p.expect(b'{')?;
        let mut rec = SpanRecord {
            id: 0,
            parent: None,
            thread: 0,
            name: String::new(),
            label: None,
            start_ns: 0,
            dur_ns: 0,
            attrs: Vec::new(),
        };
        let mut saw_id = false;
        loop {
            p.ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.ws();
            p.expect(b':')?;
            p.ws();
            match key.as_str() {
                "id" => {
                    rec.id = p.integer()? as u64;
                    saw_id = true;
                }
                "parent" => {
                    if p.eat_word("null") {
                        rec.parent = None;
                    } else {
                        rec.parent = Some(p.integer()? as u64);
                    }
                }
                "thread" => rec.thread = p.integer()? as u64,
                "name" => rec.name = p.string()?,
                "label" => rec.label = Some(p.string()?),
                "start_ns" => rec.start_ns = p.integer()? as u64,
                "dur_ns" => rec.dur_ns = p.integer()? as u64,
                "attrs" => {
                    p.expect(b'{')?;
                    loop {
                        p.ws();
                        if p.eat(b'}') {
                            break;
                        }
                        let k = p.string()?;
                        p.ws();
                        p.expect(b':')?;
                        p.ws();
                        let v = p.integer()?;
                        rec.attrs.push((k, v));
                        p.ws();
                        if !p.eat(b',') {
                            p.ws();
                            p.expect(b'}')?;
                            break;
                        }
                    }
                }
                other => return Err(format!("unknown key `{other}`")),
            }
            p.ws();
            if !p.eat(b',') {
                p.ws();
                p.expect(b'}')?;
                break;
            }
        }
        if !saw_id || rec.name.is_empty() {
            return Err("span line missing `id` or `name`".into());
        }
        Ok(rec)
    }
}

/// A tiny cursor-based parser for the span-record JSON shape (shared with
/// the [`super::account`] report parser).
pub(super) struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    pub(super) fn new(line: &'a str) -> Self {
        JsonParser { b: line.as_bytes(), i: 0 }
    }

    pub(super) fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    pub(super) fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.b[self.i..].starts_with(w.as_bytes()) {
            self.i += w.len();
            true
        } else {
            false
        }
    }

    pub(super) fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    /// A JSON number as f64 (integer, fraction, exponent).
    pub(super) fn number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected number at byte {start}"));
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        s.parse().map_err(|e| format!("bad number `{s}`: {e}"))
    }

    pub(super) fn integer(&mut self) -> Result<i64, String> {
        let neg = self.eat(b'-');
        let start = self.i;
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected integer at byte {start}"));
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        let v: i64 = s.parse().map_err(|e| format!("bad integer `{s}`: {e}"))?;
        Ok(if neg { -v } else { v })
    }

    pub(super) fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let n = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Copy a full UTF-8 sequence starting at `c`.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let bytes =
                        self.b.get(self.i..self.i + len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(bytes).map_err(|_| "bad UTF-8")?);
                    self.i += len;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Span guards
// ---------------------------------------------------------------------

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static CAPTURE_DEPTH: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn sink() -> &'static Mutex<Vec<SpanRecord>> {
    static S: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(Vec::new()))
}

fn stream() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static S: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(None))
}

/// Mirrors `stream().is_some()` so the emit hot path (every closed span
/// when only the flight recorder is on) can skip the writer mutex.
static STREAM_ON: AtomicBool = AtomicBool::new(false);

/// First-read initializer for the trace gate: honours `DOOD_TRACE` /
/// `DOOD_TRACE_FILE`, installing a stream writer when requested, and folds
/// in the flight recorder (`DOOD_FLIGHT`) — recorded spans must be live.
pub(super) fn env_init() -> bool {
    if !super::env_flag("DOOD_TRACE") {
        return super::recorder::is_enabled();
    }
    let mut w = stream().lock().unwrap();
    if w.is_none() {
        *w = Some(match std::env::var("DOOD_TRACE_FILE") {
            Ok(path) => match std::fs::File::create(&path) {
                Ok(f) => Box::new(std::io::BufWriter::new(f)) as Box<dyn Write + Send>,
                Err(e) => {
                    eprintln!("obs: cannot open DOOD_TRACE_FILE `{path}`: {e}; using stderr");
                    Box::new(std::io::stderr())
                }
            },
            Err(_) => Box::new(std::io::stderr()),
        });
        STREAM_ON.store(true, Ordering::Relaxed);
    }
    true
}

/// Recompute the trace gate from its inputs (env stream, explicit stream,
/// active captures, the flight recorder).
pub(super) fn recompute_gate() {
    // Fold the environment in first so dropping the last capture cannot
    // mask a `DOOD_TRACE=1` stream that was never initialized.
    let env_on = super::trace_enabled();
    let on = env_on
        || CAPTURE_DEPTH.load(Ordering::SeqCst) > 0
        || stream().lock().unwrap().is_some()
        || super::recorder::is_enabled();
    trace_gate_set(on);
}

/// Install a JSON-lines stream writer: every closed span is written as one
/// line. Replaces any previous writer and enables tracing.
pub fn stream_to(w: Box<dyn Write + Send>) {
    let _ = super::trace_enabled(); // settle env state first
    *stream().lock().unwrap() = Some(w);
    STREAM_ON.store(true, Ordering::Relaxed);
    trace_gate_set(true);
}

/// Stream spans to a file at `path` (created/truncated, buffered).
pub fn stream_to_path(path: &str) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    stream_to(Box::new(std::io::BufWriter::new(f)));
    Ok(())
}

/// Flush and remove the stream writer, recomputing the gate.
pub fn stop_stream() {
    {
        let mut w = stream().lock().unwrap();
        if let Some(w) = w.as_mut() {
            let _ = w.flush();
        }
        *w = None;
        STREAM_ON.store(false, Ordering::Relaxed);
    }
    recompute_gate();
}

/// Flush the stream writer, if any (call before process exit — the writer
/// is buffered).
pub fn flush_stream() {
    if let Some(w) = stream().lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

/// The open state of an enabled span guard.
struct Active {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    label: Option<String>,
    start_ns: u64,
    attrs: Vec<(&'static str, i64)>,
}

/// An RAII span guard. Inert (all methods no-ops) when tracing was
/// disabled at open time.
pub struct Span {
    inner: Option<Box<Active>>,
}

/// Open a span named `name`, parented to the current thread's innermost
/// open span. Inert when tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !super::trace_enabled() {
        return Span { inner: None };
    }
    open(name, current_span_id())
}

/// Open a span with an explicit parent id (cross-thread parentage: pool
/// workers attach to the call-site span captured before spawning). The
/// span still pushes onto *this* thread's stack, so spans opened inside it
/// nest under it.
#[inline]
pub fn span_under(name: &'static str, parent: Option<u64>) -> Span {
    if !super::trace_enabled() {
        return Span { inner: None };
    }
    open(name, parent)
}

#[cold]
fn open(name: &'static str, parent: Option<u64>) -> Span {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push(id));
    Span {
        inner: Some(Box::new(Active {
            id,
            parent,
            name,
            label: None,
            start_ns: now_ns(),
            attrs: Vec::new(),
        })),
    }
}

/// The innermost open span id on this thread, if any.
pub fn current_span_id() -> Option<u64> {
    STACK.with(|s| s.borrow().last().copied())
}

impl Span {
    /// Whether this guard is live (tracing was enabled at open time).
    pub fn on(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id (None when inert).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.id)
    }

    /// Attach an integer attribute (cardinality, count). No-op when inert.
    pub fn attr(&mut self, key: &'static str, v: i64) {
        if let Some(a) = &mut self.inner {
            a.attrs.push((key, v));
        }
    }

    /// Attach a dynamic label, computed lazily so the disabled path never
    /// allocates. No-op when inert.
    pub fn label(&mut self, f: impl FnOnce() -> String) {
        if let Some(a) = &mut self.inner {
            a.label = Some(f());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.inner.take() else { return };
        let dur_ns = now_ns().saturating_sub(a.start_ns);
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            // Guards normally close LIFO; tolerate out-of-order drops.
            if let Some(pos) = st.iter().rposition(|&x| x == a.id) {
                st.remove(pos);
            }
        });
        let rec = SpanRecord {
            id: a.id,
            parent: a.parent,
            thread: thread_ord(),
            name: a.name.to_string(),
            label: a.label,
            start_ns: a.start_ns,
            dur_ns,
            attrs: a.attrs.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        };
        emit(rec);
    }
}

fn emit(rec: SpanRecord) {
    if STREAM_ON.load(Ordering::Relaxed) {
        let mut w = stream().lock().unwrap();
        if let Some(w) = w.as_mut() {
            let _ = writeln!(w, "{}", rec.to_json_line());
        }
    }
    let capturing = CAPTURE_DEPTH.load(Ordering::SeqCst) > 0;
    if super::recorder::is_enabled() {
        if capturing {
            super::recorder::record(&rec);
        } else {
            // The ring is the only consumer: move the record instead of
            // cloning its name/label/attr allocations.
            super::recorder::record_owned(rec);
            return;
        }
    }
    if capturing {
        sink().lock().unwrap().push(rec);
    }
}

/// Run `f` with tracing force-enabled and return its result together with
/// the spans closed *under* the capture (descendants of an internal root
/// span, which is itself excluded). Concurrent captures on other threads
/// are unaffected: each capture extracts only its own descendants from the
/// shared sink, so parallel tests never contaminate each other.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    let _ = super::trace_enabled(); // settle env state first
    CAPTURE_DEPTH.fetch_add(1, Ordering::SeqCst);
    trace_gate_set(true);
    let root = span("capture");
    let root_id = root.id().expect("capture forced the gate on");
    let result = f();
    drop(root);
    let mut kept = Vec::new();
    {
        let mut s = sink().lock().unwrap();
        let parent_of: FxHashMap<u64, Option<u64>> =
            s.iter().map(|r| (r.id, r.parent)).collect();
        let mut verdict: FxHashMap<u64, bool> = FxHashMap::default();
        // Is `id` the capture root or one of its descendants?
        fn descends(
            id: u64,
            root: u64,
            parent_of: &FxHashMap<u64, Option<u64>>,
            verdict: &mut FxHashMap<u64, bool>,
        ) -> bool {
            if id == root {
                return true;
            }
            if let Some(&v) = verdict.get(&id) {
                return v;
            }
            let v = match parent_of.get(&id) {
                Some(Some(p)) => descends(*p, root, parent_of, verdict),
                _ => false,
            };
            verdict.insert(id, v);
            v
        }
        let mut rest = Vec::with_capacity(s.len());
        for r in s.drain(..) {
            if r.id != root_id && descends(r.id, root_id, &parent_of, &mut verdict) {
                kept.push(r);
            } else if r.id != root_id {
                rest.push(r);
            }
        }
        *s = rest;
    }
    if CAPTURE_DEPTH.fetch_sub(1, Ordering::SeqCst) == 1 {
        recompute_gate();
    }
    kept.sort_by_key(|r| (r.start_ns, r.id));
    (result, kept)
}

// ---------------------------------------------------------------------
// Trace validation
// ---------------------------------------------------------------------

/// Summary statistics of a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of span records.
    pub spans: usize,
    /// Records with no in-trace parent (including severed links).
    pub roots: usize,
    /// Deepest parent chain within the trace.
    pub max_depth: usize,
    /// Parent links severed by [`ValidateMode::Flight`] (ordering or
    /// nesting violations tolerated as truncation artifacts; always 0 in
    /// strict mode).
    pub severed: usize,
}

/// How strictly [`validate_trace_with`] treats structural violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidateMode {
    /// A complete `DOOD_TRACE=1` export: ordering or nesting violations
    /// are errors.
    Strict,
    /// A flight-recorder ring dump: the window may begin mid-span and
    /// per-thread stripes may truncate independently, so a parent link
    /// that violates ordering or nesting is *severed* (the child becomes
    /// a root, counted in [`TraceStats::severed`]) instead of failing the
    /// whole trace. Parse errors and duplicate ids still fail — the ring
    /// only ever holds whole, unique records.
    Flight,
}

/// Validate a JSON-lines trace export (as produced under `DOOD_TRACE=1`):
/// every non-empty line parses, span ids are unique, every span closed
/// before its parent (children precede parents in the export), and child
/// intervals nest inside their parent's interval.
pub fn validate_trace(text: &str) -> Result<TraceStats, String> {
    validate_trace_with(text, ValidateMode::Strict)
}

/// [`validate_trace`] with an explicit tolerance mode (see
/// [`ValidateMode`]).
pub fn validate_trace_with(text: &str, mode: ValidateMode) -> Result<TraceStats, String> {
    let mut recs: Vec<SpanRecord> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let r = SpanRecord::from_json_line(line)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        recs.push(r);
    }
    let mut by_id: FxHashMap<u64, usize> = FxHashMap::default();
    for (i, r) in recs.iter().enumerate() {
        if by_id.insert(r.id, i).is_some() {
            return Err(format!("duplicate span id {}", r.id));
        }
    }
    let mut roots = 0usize;
    let mut severed = 0usize;
    // Resolved parent index per record; `None` for roots and severed links.
    let mut link: Vec<Option<usize>> = vec![None; recs.len()];
    for (i, r) in recs.iter().enumerate() {
        let Some(pid) = r.parent else {
            roots += 1;
            continue;
        };
        let Some(&pi) = by_id.get(&pid) else {
            // Parent still open when the stream was cut (e.g. a span
            // enclosing the whole program): counts as a root.
            roots += 1;
            continue;
        };
        let p = &recs[pi];
        if pi < i {
            match mode {
                ValidateMode::Strict => {
                    return Err(format!(
                        "span {} closed after its parent {} (child lines must precede parents)",
                        r.id, pid
                    ));
                }
                ValidateMode::Flight => {
                    severed += 1;
                    roots += 1;
                    continue;
                }
            }
        }
        if r.start_ns < p.start_ns || r.end_ns() > p.end_ns() {
            match mode {
                ValidateMode::Strict => {
                    return Err(format!(
                        "span {} [{}..{}] escapes parent {} [{}..{}]",
                        r.id,
                        r.start_ns,
                        r.end_ns(),
                        pid,
                        p.start_ns,
                        p.end_ns()
                    ));
                }
                ValidateMode::Flight => {
                    severed += 1;
                    roots += 1;
                    continue;
                }
            }
        }
        link[i] = Some(pi);
    }
    // Depth via the resolved links (acyclic — every surviving link points
    // to a later line — but hop-capped anyway).
    let mut max_depth = 0usize;
    for i in 0..recs.len() {
        let mut d = 1usize;
        let mut cur = link[i];
        while let Some(pi) = cur {
            d += 1;
            if d > recs.len() + 1 {
                return Err(format!("parent cycle through span {}", recs[i].id));
            }
            cur = link[pi];
        }
        max_depth = max_depth.max(d);
    }
    Ok(TraceStats { spans: recs.len(), roots, max_depth, severed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        // The default state in tests (no DOOD_TRACE, no capture).
        if super::super::trace_enabled() {
            return; // environment forced tracing on; nothing to assert
        }
        let mut sp = span("test.inert");
        assert!(!sp.on());
        assert!(sp.id().is_none());
        sp.attr("k", 1);
        sp.label(|| unreachable!("label closure must not run when inert"));
        assert!(current_span_id().is_none());
    }

    #[test]
    fn capture_collects_nested_spans() {
        let ((), spans) = capture(|| {
            let mut a = span("test.outer");
            a.attr("n", 7);
            a.label(|| "lbl".to_string());
            {
                let _b = span("test.inner");
            }
        });
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.attr("n"), Some(7));
        assert_eq!(outer.label.as_deref(), Some("lbl"));
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
    }

    #[test]
    fn capture_isolation_across_threads() {
        // Two concurrent captures must each see only their own spans.
        let t = std::thread::spawn(|| {
            capture(|| {
                for _ in 0..50 {
                    let _s = span("test.thread_b");
                }
            })
            .1
        });
        let (_, a) = capture(|| {
            for _ in 0..50 {
                let _s = span("test.thread_a");
            }
        });
        let b = t.join().unwrap();
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|s| s.name == "test.thread_a"));
        assert_eq!(b.len(), 50);
        assert!(b.iter().all(|s| s.name == "test.thread_b"));
    }

    #[test]
    fn explicit_parent_links_across_threads() {
        let ((), spans) = capture(|| {
            let sp = span("test.site");
            let pid = sp.id();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = span_under("test.worker", pid);
                    let _inner = span("test.worker_inner");
                });
            });
        });
        let site = spans.iter().find(|s| s.name == "test.site").unwrap();
        let worker = spans.iter().find(|s| s.name == "test.worker").unwrap();
        let inner = spans.iter().find(|s| s.name == "test.worker_inner").unwrap();
        assert_eq!(worker.parent, Some(site.id));
        assert_eq!(inner.parent, Some(worker.id));
        assert_ne!(worker.thread, site.thread);
    }

    #[test]
    fn json_round_trip() {
        let rec = SpanRecord {
            id: 42,
            parent: Some(7),
            thread: 3,
            name: "oql.join".into(),
            label: Some("Context \"x\"".into()),
            start_ns: 1000,
            dur_ns: 500,
            attrs: vec![("rows_in".into(), 40), ("rows_out".into(), -1)],
        };
        let line = rec.to_json_line();
        assert_eq!(SpanRecord::from_json_line(&line).unwrap(), rec);
        let no_parent = SpanRecord { parent: None, label: None, attrs: vec![], ..rec };
        let line = no_parent.to_json_line();
        assert_eq!(SpanRecord::from_json_line(&line).unwrap(), no_parent);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(SpanRecord::from_json_line("not json").is_err());
        assert!(SpanRecord::from_json_line("{\"id\":1}").is_err()); // no name
        assert!(SpanRecord::from_json_line("{\"name\":\"x\"}").is_err()); // no id
    }

    #[test]
    fn validate_accepts_own_export() {
        let ((), spans) = capture(|| {
            let _a = span("test.a");
            let _b = span("test.b");
        });
        let text: String =
            spans.iter().map(|s| s.to_json_line() + "\n").collect();
        // Export in close order (children before parents), as the stream
        // writer would.
        let mut by_close: Vec<&SpanRecord> = spans.iter().collect();
        // Ids increase with open order, so on an end-time tie the child
        // (higher id) still sorts before its parent.
        by_close.sort_by_key(|r| (r.end_ns(), std::cmp::Reverse(r.id)));
        let text_closed: String =
            by_close.iter().map(|s| s.to_json_line() + "\n").collect();
        let stats = validate_trace(&text_closed).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.roots, 1);
        assert_eq!(stats.max_depth, 2);
        // start-order export violates close-before-parent and is rejected
        // strictly — but flight mode severs the bad link instead.
        assert!(validate_trace(&text).is_err());
        let lenient = validate_trace_with(&text, ValidateMode::Flight).unwrap();
        assert_eq!(lenient.spans, 2);
        assert_eq!(lenient.severed, 1);
        assert_eq!(lenient.roots, 2);
    }

    #[test]
    fn flight_mode_tolerates_truncated_forests() {
        let ((), spans) = capture(|| {
            let _a = span("test.trunc.outer");
            let _b = span("test.trunc.mid");
            let _c = span("test.trunc.inner");
        });
        let mut by_close: Vec<&SpanRecord> = spans.iter().collect();
        by_close.sort_by_key(|r| (r.end_ns(), std::cmp::Reverse(r.id)));
        // A ring dump that lost the oldest record (the innermost span
        // closed first): the remaining spans still validate in both modes
        // (missing parents are roots), and dropping a *middle* record
        // leaves the inner span pointing at a gone parent — also fine.
        let tail: String =
            by_close[1..].iter().map(|s| s.to_json_line() + "\n").collect();
        let stats = validate_trace_with(&tail, ValidateMode::Flight).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.severed, 0);
        let gap: String = [by_close[0], by_close[2]]
            .iter()
            .map(|s| s.to_json_line() + "\n")
            .collect();
        let stats = validate_trace_with(&gap, ValidateMode::Flight).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.roots, 2, "orphaned child counts as a root");
        // An interval-escaping child is severed, not fatal.
        let parent = SpanRecord {
            id: 900_001,
            parent: None,
            thread: 0,
            name: "p".into(),
            label: None,
            start_ns: 100,
            dur_ns: 10,
            attrs: vec![],
        };
        let child = SpanRecord {
            id: 900_002,
            parent: Some(900_001),
            start_ns: 90,
            dur_ns: 5,
            name: "c".into(),
            ..parent.clone()
        };
        let text = format!("{}\n{}\n", child.to_json_line(), parent.to_json_line());
        assert!(validate_trace(&text).is_err());
        let stats = validate_trace_with(&text, ValidateMode::Flight).unwrap();
        assert_eq!(stats.severed, 1);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn validate_rejects_escaping_child() {
        let parent = SpanRecord {
            id: 1,
            parent: None,
            thread: 0,
            name: "p".into(),
            label: None,
            start_ns: 100,
            dur_ns: 10,
            attrs: vec![],
        };
        let child = SpanRecord {
            id: 2,
            parent: Some(1),
            name: "c".into(),
            start_ns: 90,
            dur_ns: 5,
            ..parent.clone()
        };
        let text = format!("{}\n{}\n", child.to_json_line(), parent.to_json_line());
        assert!(validate_trace(&text).unwrap_err().contains("escapes"));
    }
}
