//! A small, dependency-free implementation of the Fx hash algorithm used by
//! rustc (`rustc-hash`). OIDs and class/association identifiers are dense
//! integer newtypes, for which SipHash (the standard-library default) is
//! needlessly slow; Fx is the conventional choice for integer-keyed maps in
//! database engines. HashDoS resistance is irrelevant here: keys are
//! system-generated, never attacker-controlled.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state: a single 64-bit accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hash algorithm.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hash algorithm.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("teacher"), hash_one("teacher"));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        // Not a guarantee in general, but these must not trivially collide.
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one("a"), hash_one("b"));
        assert_ne!(hash_one(3u64), hash_one(4u64));
    }

    #[test]
    fn byte_stream_tail_handling() {
        // 9 bytes exercises the chunk + remainder path.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        h2.write(&[9]);
        // Not necessarily equal (chunk boundaries differ), but both defined.
        let _ = (h1.finish(), h2.finish());

        let mut h3 = FxHasher::default();
        h3.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h1.finish(), h3.finish());
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("x");
        assert!(s.contains("x"));
    }
}
