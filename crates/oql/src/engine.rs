//! The OQL query engine: parse → resolve → evaluate → filter → select →
//! operate.
//!
//! Operations are pluggable: `display` and `print` (tabular output, paper
//! §3.2) and `count` are built in; user-defined operations — the paper's
//! behavioural dimension ("a user-defined operation, e.g. Rotate,
//! Order_part or Hire_employee") — are registered as callbacks over the
//! result table.

use crate::ast::Query;
use crate::error::QueryError;
use crate::eval::Evaluator;
use crate::parser::Parser;
use crate::resolve::resolve_context;
use crate::table::{build_table, Table};
use crate::wherec::apply_where;
use dood_core::fxhash::FxHashMap;
use dood_core::obs;
use dood_core::obs::profile::Profile;
use dood_core::subdb::{Subdatabase, SubdbRegistry};
use dood_store::Database;

/// A user-definable operation over a query result table.
pub type OpFn = Box<dyn Fn(&Table) -> String + Send + Sync>;

/// The result of running a query.
#[derive(Debug)]
pub struct QueryOutput {
    /// The Context subdatabase after WHERE filtering.
    pub subdb: Subdatabase,
    /// The table produced by the SELECT subclause.
    pub table: Table,
    /// `(operation, output)` for each operation in the Operation clause.
    pub op_results: Vec<(String, String)>,
}

/// The OQL engine: an operation registry plus the query pipeline.
pub struct Oql {
    ops: FxHashMap<String, OpFn>,
}

impl Default for Oql {
    fn default() -> Self {
        Self::new()
    }
}

impl Oql {
    /// An engine with the built-in operations `display`, `print`, `count`.
    pub fn new() -> Self {
        let mut ops: FxHashMap<String, OpFn> = FxHashMap::default();
        ops.insert("display".into(), Box::new(|t: &Table| t.to_string()));
        ops.insert("print".into(), Box::new(|t: &Table| t.to_string()));
        ops.insert("count".into(), Box::new(|t: &Table| t.len().to_string()));
        Oql { ops }
    }

    /// Register a user-defined operation.
    pub fn register_op(&mut self, name: impl Into<String>, f: OpFn) {
        self.ops.insert(name.into(), f);
    }

    /// Parse and run a query block.
    pub fn query(
        &self,
        db: &Database,
        registry: &SubdbRegistry,
        src: &str,
    ) -> Result<QueryOutput, QueryError> {
        let q = Parser::parse_query(src)?;
        self.run(db, registry, &q)
    }

    /// Run a parsed query block.
    pub fn run(
        &self,
        db: &Database,
        registry: &SubdbRegistry,
        q: &Query,
    ) -> Result<QueryOutput, QueryError> {
        let mut sp = obs::trace::span("oql.query");
        let _acct = obs::account::begin("query", || context_label(&q.context));
        let subdb = eval_context(&q.context, &q.where_, db, registry, "Context")?;
        let table = build_table(&subdb, &q.select, db)?;
        let mut op_results = Vec::with_capacity(q.ops.len());
        for op in &q.ops {
            let f = self
                .ops
                .get(op.as_str())
                .ok_or_else(|| QueryError::UnknownOperation(op.clone()))?;
            op_results.push((op.clone(), f(&table)));
        }
        sp.attr("rows", table.len() as i64);
        Ok(QueryOutput { subdb, table, op_results })
    }

    /// Run a parsed query block under span capture, returning both the
    /// output and its EXPLAIN ANALYZE [`Profile`] tree.
    pub fn run_profiled(
        &self,
        db: &Database,
        registry: &SubdbRegistry,
        q: &Query,
    ) -> Result<(QueryOutput, Profile), QueryError> {
        let (res, spans) = obs::trace::capture(|| self.run(db, registry, q));
        Ok((res?, Profile::single(&spans)))
    }

    /// Parse and run a query block under span capture (see
    /// [`run_profiled`](Self::run_profiled)).
    pub fn query_profiled(
        &self,
        db: &Database,
        registry: &SubdbRegistry,
        src: &str,
    ) -> Result<(QueryOutput, Profile), QueryError> {
        let q = Parser::parse_query(src)?;
        self.run_profiled(db, registry, &q)
    }
}

/// Evaluate a context expression plus WHERE conditions into a named
/// subdatabase. This is the shared entry point for OQL queries and for the
/// IF clause of deductive rules.
pub fn eval_context(
    context: &crate::ast::ContextExpr,
    where_: &[crate::ast::WhereCond],
    db: &Database,
    registry: &SubdbRegistry,
    name: &str,
) -> Result<Subdatabase, QueryError> {
    let resolved = resolve_context(context, db.schema(), registry)?;
    let ev = Evaluator::new(&resolved, db, registry)?;
    if let Some(a) = obs::account::active() {
        a.set_plan(ev.plan_handle().describe());
    }
    let mut sd = ev.eval(name);
    apply_where(&mut sd, where_, db)?;
    Ok(sd)
}

/// A compact one-line label for a context expression, used as the
/// accounting label in query reports and the slow-query log.
pub fn context_label(context: &crate::ast::ContextExpr) -> String {
    use crate::ast::{Item, Seq};
    fn seq(s: &Seq, out: &mut String) {
        item(&s.first, out);
        for (op, it) in &s.rest {
            out.push(' ');
            out.push_str(&op.to_string());
            out.push(' ');
            item(it, out);
        }
    }
    fn item(i: &Item, out: &mut String) {
        match i {
            Item::Class { class, .. } => out.push_str(&class.to_string()),
            Item::Group(g) => {
                out.push('{');
                seq(g, out);
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    seq(&context.seq, &mut out);
    if let Some(c) = &context.closure {
        match c.iterations {
            Some(n) => out.push_str(&format!(" ^{n}")),
            None => out.push_str(" ^*"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::{DType, Value};

    fn setup() -> Database {
        let mut b = SchemaBuilder::new();
        b.e_class("Teacher");
        b.e_class("Section");
        b.d_class("name", DType::Str);
        b.d_class("section#", DType::Int);
        b.attr("Teacher", "name");
        b.attr_named("Section", "section#", "section#");
        b.aggregate_named("Teacher", "Section", "Teaches");
        let mut db = Database::new(b.build().unwrap());
        let teacher = db.schema().class_by_name("Teacher").unwrap();
        let section = db.schema().class_by_name("Section").unwrap();
        let teaches = db.schema().own_link_by_name(teacher, "Teaches").unwrap();
        for (tn, sn) in [("smith", 101), ("jones", 102)] {
            let t = db.new_object(teacher).unwrap();
            db.set_attr(t, "name", Value::str(tn)).unwrap();
            let s = db.new_object(section).unwrap();
            db.set_attr(s, "section#", Value::Int(sn)).unwrap();
            db.associate(teaches, t, s).unwrap();
        }
        // A teacher with no section: dropped by `*`.
        let t = db.new_object(teacher).unwrap();
        db.set_attr(t, "name", Value::str("idle")).unwrap();
        db
    }

    #[test]
    fn query_3_1_shape() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let out = Oql::new()
            .query(&db, &reg, "context Teacher * Section select name, section# display")
            .unwrap();
        assert_eq!(out.subdb.len(), 2);
        assert_eq!(out.table.len(), 2);
        assert_eq!(out.op_results.len(), 1);
        assert!(out.op_results[0].1.contains("smith"));
        assert!(!out.op_results[0].1.contains("idle"));
    }

    #[test]
    fn count_operation() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let out = Oql::new()
            .query(&db, &reg, "context Teacher * Section select name count")
            .unwrap();
        assert_eq!(out.op_results[0].1, "2");
    }

    #[test]
    fn user_defined_operation() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let mut oql = Oql::new();
        oql.register_op("shout", Box::new(|t: &Table| format!("ROWS={}", t.len())));
        let out = oql
            .query(&db, &reg, "context Teacher * Section select name shout")
            .unwrap();
        assert_eq!(out.op_results[0].1, "ROWS=2");
    }

    #[test]
    fn unknown_operation_rejected() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let r = Oql::new().query(&db, &reg, "context Teacher * Section select name rotate");
        assert!(matches!(r, Err(QueryError::UnknownOperation(_))));
    }

    #[test]
    fn where_filters_through_pipeline() {
        let db = setup();
        let reg = SubdbRegistry::new();
        let out = Oql::new()
            .query(
                &db,
                &reg,
                "context Teacher * Section where Section.section# > 101 select name display",
            )
            .unwrap();
        assert_eq!(out.table.len(), 1);
        assert_eq!(out.table.rows[0][0], Value::str("jones"));
    }
}
