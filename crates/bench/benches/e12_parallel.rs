//! E12 — parallel evaluation scaling: the E1 association workload at a
//! ~100k-object population and the E7 grouped-aggregation workload, each
//! at 1/2/4/8 threads (`DOOD_THREADS`).

use dood_bench::harness::Harness;
use dood_bench::{aggregate_query, assoc_query, parallel_fixture, with_threads};

fn main() {
    let mut h = Harness::new("e12_parallel");
    let (db, reg) = parallel_fixture();
    eprintln!(
        "e12 workload: {} objects, {} association patterns",
        db.object_count(),
        assoc_query(&db, &reg)
    );
    for threads in [1usize, 2, 4, 8] {
        with_threads(threads, || {
            h.bench(&format!("assoc/{threads}t"), || assoc_query(&db, &reg));
        });
    }
    for threads in [1usize, 2, 4, 8] {
        with_threads(threads, || {
            h.bench(&format!("aggregate/{threads}t"), || aggregate_query(&db, 10));
        });
    }
    h.finish();
}
