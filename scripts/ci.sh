#!/usr/bin/env bash
# The per-PR gate: tier-1 verify (ROADMAP.md), a warnings-as-errors build,
# doodlint over every built-in rule program (text and --json modes), a
# DOOD_TRACE=1 smoke run validated by `doodprof --validate`, the
# hermeticity check, and smoke runs of the parallel (e12) and
# observability (e15) benches so the chunked evaluation path and the
# instrumented paths are exercised on every PR even when the full bench
# suite isn't run.
#
# Usage: scripts/ci.sh
# Run from anywhere; operates on the workspace containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== ci: tier-1 verify (cargo build --release && cargo test -q) =="
cargo build --release
cargo test -q

echo "== ci: warnings-as-errors build =="
RUSTFLAGS="-D warnings" cargo build --workspace

echo "== ci: doodlint over the built-in rule programs =="
cargo run -q --release --bin doodlint -- --strict --builtin
if compgen -G "programs/*.dood" > /dev/null; then
    cargo run -q --release --bin doodlint -- --strict programs/*.dood
fi
# --json mode must emit nothing on stdout for clean programs (machine
# consumers parse every stdout line as a diagnostic object).
JSON_OUT="$(cargo run -q --release --bin doodlint -- --json --builtin 2>/dev/null)"
if [ -n "$JSON_OUT" ]; then
    echo "ci: doodlint --json emitted diagnostics for clean programs:" >&2
    echo "$JSON_OUT" >&2
    exit 1
fi

echo "== ci: diagnostic coverage (every emitted code has a golden) =="
# Every diagnostic code the analyzer or abstract interpreter can emit
# (and every code documented in the `rules::analyze` code table) must
# appear in the tests/analyzer.rs goldens — new codes land with tests.
MISSING=""
for code in $(grep -ohE '"[EWP][0-9]{3}"' crates/rules/src/analyze.rs crates/rules/src/absint.rs | tr -d '"' | sort -u); do
    grep -q "\"$code\"" tests/analyzer.rs || MISSING="$MISSING $code"
done
if [ -n "$MISSING" ]; then
    echo "ci: diagnostic codes without goldens in tests/analyzer.rs:$MISSING" >&2
    exit 1
fi
# The --explain/--allow surfaces stay wired to the code table.
cargo run -q --release --bin doodlint -- --explain E017 > /dev/null
cargo run -q --release --bin doodlint -- --strict --allow W108 --builtin > /dev/null

echo "== ci: trace smoke (DOOD_TRACE=1 -> validate -> doodprof) =="
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP" "${SMOKE_JSON:-}"' EXIT
DOOD_TRACE=1 DOOD_TRACE_FILE="$TRACE_TMP/trace.jsonl" \
    cargo run -q --release --bin doodprof -- --builtin university > "$TRACE_TMP/profile.txt"
grep -q "== export Teacher_course ==  rows=11" "$TRACE_TMP/profile.txt"
cargo run -q --release --bin doodprof -- --validate "$TRACE_TMP/trace.jsonl"
cargo run -q --release --bin doodprof -- --metrics programs/university.dood > /dev/null

echo "== ci: flight-recorder + slowlog smoke (doodprof --flight / --slowlog) =="
# The flight ring's merged dump must pass flight-tolerant validation (a
# bounded ring legally truncates forests), and a DOOD_SLOWLOG_US=0 run
# must produce a slow-query log that round-trips through the renderer.
cargo run -q --release --bin doodprof -- --builtin university --flight \
    > "$TRACE_TMP/flight.txt"
grep -q "flight: .* span(s) in ring" "$TRACE_TMP/flight.txt"
grep '^{' "$TRACE_TMP/flight.txt" > "$TRACE_TMP/flight.jsonl"
cargo run -q --release --bin doodprof -- --validate "$TRACE_TMP/flight.jsonl" --flight
DOOD_SLOWLOG_US=0 DOOD_SLOWLOG_FILE="$TRACE_TMP/slow.jsonl" \
    cargo run -q --release --bin doodprof -- --builtin university > /dev/null
test -s "$TRACE_TMP/slow.jsonl"
cargo run -q --release --bin doodprof -- --slowlog "$TRACE_TMP/slow.jsonl" \
    | grep -q "slow record(s)"

echo "== ci: hermeticity =="
scripts/check_hermetic.sh

echo "== ci: parallel-path smoke (bench e12_parallel, DOOD_THREADS=2) =="
SMOKE_JSON="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP" "$SMOKE_JSON"' EXIT
DOOD_THREADS=2 DOOD_BENCH_SMOKE=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
    cargo bench -p dood-bench --bench e12_parallel

echo "== ci: observability smoke (bench e15_obs) =="
DOOD_BENCH_SMOKE=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
    cargo bench -p dood-bench --bench e15_obs

echo "== ci: incremental-maintenance smoke (bench e16_incremental) =="
# Smoke mode exercises the delta path end to end (timings meaningless, so
# the ratio check self-skips). Set DOOD_E16_FULL=1 to also run the timed
# bench with the pre/post ratio gate enforced (DOOD_BENCH_STRICT=1).
DOOD_BENCH_SMOKE=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
    cargo bench -p dood-bench --bench e16_incremental
if [ "${DOOD_E16_FULL:-0}" = "1" ]; then
    echo "== ci: e16 maintenance-ratio gate (DOOD_BENCH_STRICT=1) =="
    DOOD_BENCH_STRICT=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
        cargo bench -p dood-bench --bench e16_incremental
fi

echo "== ci: closure-kernel smoke (bench e18_closure) =="
# Smoke mode exercises the compiled fixpoint kernel, the legacy closure
# interpreter, and the provenance-carrying delta maintenance path (timings
# meaningless, so both verdicts self-skip). Set DOOD_E18_FULL=1 to also run
# the timed bench with the closure-speedup and delta-ratio gates enforced
# (DOOD_BENCH_STRICT=1).
DOOD_BENCH_SMOKE=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
    cargo bench -p dood-bench --bench e18_closure
if [ "${DOOD_E18_FULL:-0}" = "1" ]; then
    echo "== ci: e18 closure-speedup + delta-ratio gates (DOOD_BENCH_STRICT=1) =="
    DOOD_BENCH_STRICT=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
        cargo bench -p dood-bench --bench e18_closure
fi

echo "== ci: compiled-pipeline smoke (bench e17_compile) =="
# Smoke mode exercises the compiled and interpreted paths plus all three
# planner modes (timings meaningless, so both verdicts self-skip). Set
# DOOD_E17_FULL=1 to also run the timed bench with the compile-speedup and
# plan-quality gates enforced (DOOD_BENCH_STRICT=1).
DOOD_BENCH_SMOKE=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
    cargo bench -p dood-bench --bench e17_compile
if [ "${DOOD_E17_FULL:-0}" = "1" ]; then
    echo "== ci: e17 compile-speedup + plan-quality gates (DOOD_BENCH_STRICT=1) =="
    DOOD_BENCH_STRICT=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
        cargo bench -p dood-bench --bench e17_compile
fi

echo "== ci: abstract-interpretation smoke (bench e19_absint) =="
# Smoke mode exercises `analyze_bounds` over the builtin corpus and the
# deterministic cold-start plan-quality experiment (static priors vs
# warmed stats; the throughput verdict self-skips). Set DOOD_E19_FULL=1
# to also run the timed bench with the per-rule throughput and
# plan-quality gates enforced (DOOD_BENCH_STRICT=1).
DOOD_BENCH_SMOKE=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
    cargo bench -p dood-bench --bench e19_absint
if [ "${DOOD_E19_FULL:-0}" = "1" ]; then
    echo "== ci: e19 absint throughput + cold-start plan gates (DOOD_BENCH_STRICT=1) =="
    DOOD_BENCH_STRICT=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
        cargo bench -p dood-bench --bench e19_absint
fi

echo "== ci: recorder-overhead smoke (bench e20_recorder) =="
# Smoke mode exercises the always-on flight-recorder path and the
# accounting fast path (timings meaningless, so the overhead verdict
# self-skips). Set DOOD_E20_FULL=1 to also run the timed bench with the
# <2% recorder-overhead gate enforced (DOOD_BENCH_STRICT=1).
DOOD_BENCH_SMOKE=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
    cargo bench -p dood-bench --bench e20_recorder
if [ "${DOOD_E20_FULL:-0}" = "1" ]; then
    echo "== ci: e20 recorder-overhead gate (DOOD_BENCH_STRICT=1) =="
    DOOD_BENCH_STRICT=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
        cargo bench -p dood-bench --bench e20_recorder
fi

echo "== ci: bench diff vs BENCH_SEED.json (advisory) =="
# Smoke timings are not meaningful, so this stage never fails the build:
# it keeps the diff plumbing exercised on every PR and prints real deltas
# when a timed bench run has populated the JSON directory.
scripts/bench_diff.sh BENCH_SEED.json "$SMOKE_JSON" || true

echo "ci: PASS"
