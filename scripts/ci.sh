#!/usr/bin/env bash
# The per-PR gate: tier-1 verify (ROADMAP.md), a warnings-as-errors build,
# doodlint over every built-in rule program, the hermeticity check, and a
# 2-thread smoke run of the parallel bench so the chunked evaluation path is
# exercised on every PR even when the full bench suite isn't run.
#
# Usage: scripts/ci.sh
# Run from anywhere; operates on the workspace containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== ci: tier-1 verify (cargo build --release && cargo test -q) =="
cargo build --release
cargo test -q

echo "== ci: warnings-as-errors build =="
RUSTFLAGS="-D warnings" cargo build --workspace

echo "== ci: doodlint over the built-in rule programs =="
cargo run -q --release --bin doodlint -- --strict --builtin
if compgen -G "programs/*.dood" > /dev/null; then
    cargo run -q --release --bin doodlint -- --strict programs/*.dood
fi

echo "== ci: hermeticity =="
scripts/check_hermetic.sh

echo "== ci: parallel-path smoke (bench e12_parallel, DOOD_THREADS=2) =="
SMOKE_JSON="$(mktemp -d)"
trap 'rm -rf "$SMOKE_JSON"' EXIT
DOOD_THREADS=2 DOOD_BENCH_SMOKE=1 DOOD_BENCH_JSON="$SMOKE_JSON" \
    cargo bench -p dood-bench --bench e12_parallel

echo "ci: PASS"
