//! The SELECT subclause and tabular output.
//!
//! "If the Display/Print operation is specified in the operation clause it
//! causes the values of the descriptive attributes identified by the Select
//! subclause to be displayed/printed in a tabular form" (paper §3.2). The
//! result of Query 3.1 is "a binary table in which each tuple contains a
//! name value and a section# value".

use crate::ast::{ClassRef, SelectItem};
use crate::error::QueryError;
use crate::wherec::{find_slot, slot_attr};
use dood_core::schema::ResolvedAttr;
use dood_core::subdb::Subdatabase;
use dood_core::value::Value;
use dood_store::{Database, OrdValue};
use std::fmt;

/// A rendered, deduplicated, deterministically ordered result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows, sorted and deduplicated.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Values of one column, by header name.
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| &r[idx]).collect())
    }

    fn normalize(&mut self) {
        self.rows
            .sort_by(|a, b| {
                a.iter()
                    .map(|v| OrdValue(v.clone()))
                    .cmp(b.iter().map(|v| OrdValue(v.clone())))
            });
        self.rows.dedup();
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {c:<w$} |", w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &rendered {
            line(f, row)?;
        }
        writeln!(f, "({} rows)", self.rows.len())
    }
}

/// A resolved output column.
enum Column {
    Attr { slot: usize, attr: ResolvedAttr, header: String },
    Class { slot: usize, header: String },
}

/// Build the output table for a subdatabase under a SELECT clause. An empty
/// clause selects every slot's accessible attributes (the paper's default:
/// "the descriptive attributes of a class that appears in a subdatabase
/// also appear with it by default").
pub fn build_table(
    sd: &Subdatabase,
    select: &[SelectItem],
    db: &Database,
) -> Result<Table, QueryError> {
    let schema = db.schema();
    let int = &sd.intension;
    let mut cols: Vec<Column> = Vec::new();
    if select.is_empty() {
        for (i, slot) in int.slots.iter().enumerate() {
            for r in schema.inherited_attrs(slot.base) {
                let name = &schema.assoc(r.attr).name;
                if !slot.attr_accessible(name) {
                    continue;
                }
                cols.push(Column::Attr {
                    slot: i,
                    attr: r.clone(),
                    header: format!("{}.{}", slot.name, name),
                });
            }
        }
    } else {
        for item in select {
            match item {
                SelectItem::ClassAttrs(cref, attrs) => {
                    let slot = find_slot(int, cref)?;
                    for a in attrs {
                        let resolved = slot_attr(int, slot, a, schema)?;
                        cols.push(Column::Attr {
                            slot,
                            attr: resolved,
                            header: format!("{}.{a}", int.slots[slot].name),
                        });
                    }
                }
                SelectItem::Class(cref) => {
                    let slot = find_slot(int, cref)?;
                    cols.push(Column::Class { slot, header: int.slots[slot].name.clone() });
                }
                SelectItem::Attr(name) => {
                    // A bare identifier: a slot name, or an attribute of a
                    // unique slot.
                    if let Ok(slot) = find_slot(int, &ClassRef::base(name.clone())) {
                        cols.push(Column::Class { slot, header: int.slots[slot].name.clone() });
                        continue;
                    }
                    let mut hits = Vec::new();
                    for (i, slot) in int.slots.iter().enumerate() {
                        if !slot.attr_accessible(name) {
                            continue;
                        }
                        if let Ok(r) = schema.resolve_attr(slot.base, name) {
                            hits.push((i, r));
                        }
                    }
                    match hits.len() {
                        1 => {
                            let (slot, attr) = hits.pop().expect("len checked");
                            cols.push(Column::Attr { slot, attr, header: name.clone() });
                        }
                        0 => {
                            return Err(QueryError::Resolve(
                                dood_core::error::ResolveError::UnknownAttribute {
                                    class: "<context>".into(),
                                    attr: name.clone(),
                                },
                            ))
                        }
                        _ => return Err(QueryError::AmbiguousAttribute(name.clone())),
                    }
                }
            }
        }
    }
    let columns: Vec<String> = cols
        .iter()
        .map(|c| match c {
            Column::Attr { header, .. } | Column::Class { header, .. } => header.clone(),
        })
        .collect();
    let mut rows = Vec::with_capacity(sd.len());
    for p in sd.patterns() {
        let row: Vec<Value> = cols
            .iter()
            .map(|c| match c {
                Column::Attr { slot, attr, .. } => match p.get(*slot) {
                    Some(oid) => db.attr_resolved(oid, attr),
                    None => Value::Null,
                },
                Column::Class { slot, .. } => match p.get(*slot) {
                    Some(oid) => Value::str(oid.to_string()),
                    None => Value::Null,
                },
            })
            .collect();
        rows.push(row);
    }
    let mut t = Table { columns, rows };
    t.normalize();
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dood_core::ids::Oid;
    use dood_core::schema::SchemaBuilder;
    use dood_core::subdb::{ExtPattern, Intension, SlotDef};
    use dood_core::value::DType;

    fn setup() -> (Database, Subdatabase) {
        let mut b = SchemaBuilder::new();
        b.e_class("Teacher");
        b.e_class("Section");
        b.d_class("name", DType::Str);
        b.d_class("section#", DType::Int);
        b.attr("Teacher", "name");
        b.attr_named("Section", "section#", "section#");
        b.aggregate_named("Teacher", "Section", "Teaches");
        let mut db = Database::new(b.build().unwrap());
        let teacher = db.schema().class_by_name("Teacher").unwrap();
        let section = db.schema().class_by_name("Section").unwrap();
        let t1 = db.new_object(teacher).unwrap();
        let t2 = db.new_object(teacher).unwrap();
        let s1 = db.new_object(section).unwrap();
        let s2 = db.new_object(section).unwrap();
        db.set_attr(t1, "name", Value::str("smith")).unwrap();
        db.set_attr(t2, "name", Value::str("jones")).unwrap();
        db.set_attr(s1, "section#", Value::Int(1)).unwrap();
        db.set_attr(s2, "section#", Value::Int(2)).unwrap();
        let mut int = Intension::new(vec![
            SlotDef::base("Teacher", teacher),
            SlotDef::base("Section", section),
        ]);
        int.add_edge(0, 1);
        let mut sd = Subdatabase::new("ctx", int);
        sd.insert(ExtPattern::new(vec![Some(t1), Some(s1)]));
        sd.insert(ExtPattern::new(vec![Some(t2), Some(s2)]));
        (db, sd)
    }

    #[test]
    fn bare_attrs_resolve_uniquely() {
        let (db, sd) = setup();
        let t = build_table(
            &sd,
            &[SelectItem::Attr("name".into()), SelectItem::Attr("section#".into())],
            &db,
        )
        .unwrap();
        assert_eq!(t.columns, vec!["name", "section#"]);
        assert_eq!(t.len(), 2);
        // Sorted by name: jones before smith.
        assert_eq!(t.rows[0][0], Value::str("jones"));
    }

    #[test]
    fn class_attrs_and_oid_columns() {
        let (db, sd) = setup();
        let t = build_table(
            &sd,
            &[
                SelectItem::ClassAttrs(ClassRef::base("Teacher"), vec!["name".into()]),
                SelectItem::Class(ClassRef::base("Section")),
            ],
            &db,
        )
        .unwrap();
        assert_eq!(t.columns, vec!["Teacher.name", "Section"]);
        assert!(matches!(t.rows[0][1], Value::Str(_)));
    }

    #[test]
    fn default_select_takes_all_attrs() {
        let (db, sd) = setup();
        let t = build_table(&sd, &[], &db).unwrap();
        assert_eq!(t.columns, vec!["Teacher.name", "Section.section#"]);
    }

    #[test]
    fn null_slots_render_null() {
        let (db, mut sd) = setup();
        sd.insert(ExtPattern::new(vec![Some(Oid(1)), None]));
        let t = build_table(&sd, &[SelectItem::Attr("section#".into())], &db).unwrap();
        assert!(t.rows.iter().any(|r| r[0] == Value::Null));
    }

    #[test]
    fn duplicate_rows_collapse() {
        let (db, sd) = setup();
        // Selecting a constant-ish column (both teachers' sections exist) —
        // select only teacher names, with two patterns per teacher.
        let mut sd2 = sd.clone();
        sd2.insert(ExtPattern::new(vec![sd.patterns().next().unwrap().get(0), None]));
        let t = build_table(&sd2, &[SelectItem::Attr("name".into())], &db).unwrap();
        assert_eq!(t.len(), 2); // deduplicated
    }

    #[test]
    fn render_contains_headers_and_counts() {
        let (db, sd) = setup();
        let t = build_table(&sd, &[SelectItem::Attr("name".into())], &db).unwrap();
        let s = t.to_string();
        assert!(s.contains("name"));
        assert!(s.contains("(2 rows)"));
        assert!(s.contains("smith"));
    }

    #[test]
    fn ambiguous_bare_attr_rejected() {
        let (db, sd) = setup();
        // Add a second Teacher slot: 'name' is now ambiguous.
        let mut int = sd.intension.clone();
        int.slots.push(SlotDef::base("Teacher_1", int.slots[0].base));
        let sd2 = Subdatabase::new("x", Intension::new(int.slots));
        let r = build_table(&sd2, &[SelectItem::Attr("name".into())], &db);
        assert!(matches!(r, Err(QueryError::AmbiguousAttribute(_))));
    }

    #[test]
    fn column_accessor() {
        let (db, sd) = setup();
        let t = build_table(&sd, &[SelectItem::Attr("name".into())], &db).unwrap();
        assert_eq!(t.column("name").unwrap().len(), 2);
        assert!(t.column("nope").is_none());
    }
}
