//! Rendering of Semantic Diagrams (S-diagrams).
//!
//! "Graphically, object classes are represented as nodes and associations
//! among object classes are represented as links. The resulting diagram is
//! called the Semantic Diagram or S-diagram" (paper §2). E-classes are
//! rectangular nodes, D-classes circular; we render a textual form and a
//! Graphviz DOT form.

use crate::schema::assoc::AssocKind;
use crate::schema::graph::Schema;
use std::fmt::Write as _;

impl Schema {
    /// A textual S-diagram: one block per class, listing its links grouped
    /// by association type letter, as in Fig. 2.1.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for c in self.classes() {
            let shape = if c.is_entity() { "[E]" } else { "(D)" };
            let _ = writeln!(out, "{shape} {}", c.name);
            // Group outgoing links by kind letter, preserving declaration
            // order within a group (the paper groups same-type links under
            // one letter label).
            for kind in [
                AssocKind::Aggregation,
                AssocKind::Generalization,
                AssocKind::Interaction,
                AssocKind::Composition,
                AssocKind::Crossproduct,
            ] {
                let links: Vec<String> = self
                    .outgoing(c.id)
                    .iter()
                    .map(|&a| self.assoc(a))
                    .filter(|d| d.kind == kind)
                    .map(|d| {
                        let target = &self.class(d.to).name;
                        if d.name == *target {
                            target.clone()
                        } else {
                            format!("{} -> {}", d.name, target)
                        }
                    })
                    .collect();
                if !links.is_empty() {
                    let _ = writeln!(out, "  {}: {}", kind.letter(), links.join(", "));
                }
            }
        }
        out
    }

    /// A Graphviz DOT rendering: E-classes as boxes, D-classes as circles,
    /// generalization links with empty-arrow heads.
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph schema {\n  rankdir=BT;\n");
        for c in self.classes() {
            let shape = if c.is_entity() { "box" } else { "ellipse" };
            let _ = writeln!(out, "  {:?} [shape={shape}];", c.name);
        }
        for a in self.assocs() {
            let style = match a.kind {
                AssocKind::Generalization => " [arrowhead=onormal, label=\"G\"]".to_string(),
                k => {
                    let mut label = String::new();
                    label.push(k.letter());
                    if a.name != self.class(a.to).name {
                        label = format!("{label}:{}", a.name);
                    }
                    format!(" [label={label:?}]")
                }
            };
            let _ = writeln!(
                out,
                "  {:?} -> {:?}{style};",
                self.class(a.from).name,
                self.class(a.to).name
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::schema::builder::SchemaBuilder;
    use crate::value::DType;

    #[test]
    fn text_rendering_groups_by_letter() {
        let mut b = SchemaBuilder::new();
        b.e_class("Person");
        b.e_class("Student");
        b.d_class("SS", DType::Str);
        b.attr("Person", "SS");
        b.generalize("Person", "Student");
        let s = b.build().unwrap();
        let text = s.render_text();
        assert!(text.contains("[E] Person"));
        assert!(text.contains("(D) SS"));
        assert!(text.contains("A: SS"));
        assert!(text.contains("G: G_Student -> Student"));
    }

    #[test]
    fn dot_rendering_well_formed() {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.aggregate("A", "B");
        let s = b.build().unwrap();
        let dot = s.render_dot();
        assert!(dot.starts_with("digraph schema {"));
        assert!(dot.contains("\"A\" -> \"B\""));
        assert!(dot.trim_end().ends_with('}'));
    }
}
