//! The OSAM* structural schema: classes, the five association types,
//! generalization hierarchies with inheritance, and S-diagram rendering.

pub mod assoc;
pub mod builder;
pub mod class;
pub mod graph;
pub mod inheritance;
pub mod sdiagram;
pub mod text;

pub use assoc::{AssocDef, AssocKind, Cardinality};
pub use builder::SchemaBuilder;
pub use class::{ClassDef, ClassKind};
pub use graph::Schema;
pub use inheritance::{InheritedAssoc, ResolvedAttr, ResolvedEdge};
pub use text::{parse_schema, print_schema, SchemaTextError};
