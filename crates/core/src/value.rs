//! Domain-class values.
//!
//! D-classes "form a domain of values of a simple data type (e.g. integers,
//! strings, …) from which descriptive attributes of objects draw their
//! values" (paper §2). `Value` is the runtime representation of one such
//! value; `DType` is the static type a D-class declares.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The simple data type of a D-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float ("real" in the paper).
    Real,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Int => "integer",
            DType::Real => "real",
            DType::Str => "string",
            DType::Bool => "boolean",
        };
        f.write_str(s)
    }
}

/// A descriptive-attribute value. `Null` models an unset attribute, which
/// the paper uses pervasively (Null pattern components, Null-terminated
/// closure iteration).
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent / unknown.
    Null,
    /// Integer value.
    Int(i64),
    /// Real (float) value.
    Real(f64),
    /// String value. `Arc` so that cloning pattern rows is cheap.
    Str(Arc<str>),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The dynamic type of this value, if non-null.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DType::Int),
            Value::Real(_) => Some(DType::Real),
            Value::Str(_) => Some(DType::Str),
            Value::Bool(_) => Some(DType::Bool),
        }
    }

    /// Whether this value is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value conforms to the declared type (`Null` conforms to
    /// every type, matching the paper's optional attributes).
    pub fn conforms_to(&self, ty: DType) -> bool {
        match self.dtype() {
            None => true,
            Some(t) => {
                t == ty || (t == DType::Int && ty == DType::Real) // widening
            }
        }
    }

    /// Numeric view for aggregation (ints widen to reals).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Three-valued comparison used by intra-class and inter-class
    /// predicates: `None` when either side is `Null` or the types are not
    /// comparable (the pattern is then dropped, never matched — SQL-style
    /// unknown).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Real(a), Value::Real(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Real(b)) => (*a as f64).partial_cmp(b),
            (Value::Real(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Whether two values are type-comparable (paper §3.2: inter-class
    /// comparisons require type-comparable attributes).
    pub fn type_comparable(&self, other: &Value) -> bool {
        match (self.dtype(), other.dtype()) {
            (None, _) | (_, None) => true,
            (Some(a), Some(b)) => {
                a == b
                    || matches!(
                        (a, b),
                        (DType::Int, DType::Real) | (DType::Real, DType::Int)
                    )
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Null != Null under predicate semantics, but structural equality
        // (used by tests / dedup) treats Null as equal to Null.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.compare(other) == Some(Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("Null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_across_numeric_types() {
        assert_eq!(Value::Int(3).compare(&Value::Real(3.0)), Some(Ordering::Equal));
        assert_eq!(Value::Real(2.5).compare(&Value::Int(3)), Some(Ordering::Less));
        assert_eq!(Value::Int(4).compare(&Value::Int(3)), Some(Ordering::Greater));
    }

    #[test]
    fn null_is_incomparable_in_predicates() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        // but structurally equal to itself
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn string_and_bool_comparisons() {
        assert_eq!(
            Value::str("abc").compare(&Value::str("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Bool(true).compare(&Value::Bool(false)),
            Some(Ordering::Greater)
        );
        // cross-type comparisons are undefined
        assert_eq!(Value::str("1").compare(&Value::Int(1)), None);
    }

    #[test]
    fn conformance_and_widening() {
        assert!(Value::Int(1).conforms_to(DType::Int));
        assert!(Value::Int(1).conforms_to(DType::Real));
        assert!(!Value::Real(1.0).conforms_to(DType::Int));
        assert!(Value::Null.conforms_to(DType::Str));
    }

    #[test]
    fn type_comparability() {
        assert!(Value::Int(1).type_comparable(&Value::Real(2.0)));
        assert!(!Value::str("x").type_comparable(&Value::Int(1)));
        assert!(Value::Null.type_comparable(&Value::Int(1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "Null");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(String::from("owned")), Value::str("owned"));
    }
}
