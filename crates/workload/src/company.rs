//! A company/org-chart domain used by the chaining and control-strategy
//! benchmarks (E3/E4): employees report to managers, belong to departments,
//! and work on projects — a schema whose updates arrive in bursts, which is
//! exactly the regime where pre- vs post-evaluation trade off.

use dood_core::ids::Oid;
use dood_core::schema::{Schema, SchemaBuilder};
use dood_core::value::{DType, Value};
use dood_store::Database;
use dood_core::rng::Rng;

/// Build the company schema.
pub fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.e_class("Employee");
    b.e_class("Manager");
    b.e_class("Department");
    b.e_class("Project");
    b.d_class("ename", DType::Str);
    b.d_class("salary", DType::Int);
    b.d_class("dname", DType::Str);
    b.d_class("budget", DType::Int);
    b.attr_named("Employee", "ename", "ename");
    b.attr("Employee", "salary");
    b.attr_named("Department", "dname", "dname");
    b.attr("Project", "budget");
    b.generalize("Employee", "Manager");
    b.aggregate_single_named("Employee", "Department", "WorksIn");
    b.aggregate_named("Employee", "Project", "AssignedTo");
    b.aggregate_named("Department", "Project", "Sponsors");
    b.aggregate_single_named("Employee", "Employee", "ReportsTo");
    b.build().expect("company schema valid")
}

/// Population parameters.
#[derive(Debug, Clone, Copy)]
pub struct CompanySize {
    /// Employee count.
    pub employees: usize,
    /// Departments.
    pub departments: usize,
    /// Projects.
    pub projects: usize,
    /// Fraction (per-mille) of employees who are managers.
    pub manager_per_mille: u32,
    /// Projects per employee.
    pub assignments_per_employee: usize,
}

impl CompanySize {
    /// Small, for tests.
    pub fn small() -> Self {
        CompanySize {
            employees: 30,
            departments: 3,
            projects: 6,
            manager_per_mille: 200,
            assignments_per_employee: 2,
        }
    }

    /// Scaled for benchmarks.
    pub fn scaled(employees: usize) -> Self {
        CompanySize {
            employees,
            departments: (employees / 20).max(1),
            projects: (employees / 5).max(1),
            manager_per_mille: 200,
            assignments_per_employee: 2,
        }
    }
}

/// Handles to the populated objects.
#[derive(Debug, Default)]
pub struct Company {
    /// Employee perspectives.
    pub employees: Vec<Oid>,
    /// Manager perspectives.
    pub managers: Vec<Oid>,
    /// Departments.
    pub departments: Vec<Oid>,
    /// Projects.
    pub projects: Vec<Oid>,
}

/// Populate a company database. Reporting lines form a forest (each
/// employee reports to an earlier-created employee), so org-chart closures
/// terminate. Deterministic in `seed`.
pub fn populate(size: CompanySize, seed: u64) -> (Database, Company) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new(schema());
    let employee = db.schema().class_by_name("Employee").unwrap();
    let manager = db.schema().class_by_name("Manager").unwrap();
    let department = db.schema().class_by_name("Department").unwrap();
    let project = db.schema().class_by_name("Project").unwrap();
    let works_in = db.schema().own_link_by_name(employee, "WorksIn").unwrap();
    let assigned = db.schema().own_link_by_name(employee, "AssignedTo").unwrap();
    let sponsors = db.schema().own_link_by_name(department, "Sponsors").unwrap();
    let reports = db.schema().own_link_by_name(employee, "ReportsTo").unwrap();

    let mut com = Company::default();
    for i in 0..size.departments {
        let d = db.new_object(department).unwrap();
        db.set_attr(d, "dname", Value::str(format!("dept-{i}"))).unwrap();
        com.departments.push(d);
    }
    for i in 0..size.projects {
        let p = db.new_object(project).unwrap();
        db.set_attr(p, "budget", Value::Int(rng.random_range(10i64..1000))).unwrap();
        if !com.departments.is_empty() {
            let d = com.departments[i % com.departments.len()];
            db.associate(sponsors, d, p).unwrap();
        }
        com.projects.push(p);
    }
    for i in 0..size.employees {
        let e = db.new_object(employee).unwrap();
        db.set_attr(e, "ename", Value::str(format!("emp-{i}"))).unwrap();
        db.set_attr(e, "salary", Value::Int(rng.random_range(30i64..200) * 1000)).unwrap();
        if !com.departments.is_empty() {
            let d = com.departments[rng.random_range(0..com.departments.len())];
            db.associate(works_in, e, d).unwrap();
        }
        for _ in 0..size.assignments_per_employee {
            if com.projects.is_empty() {
                break;
            }
            let p = com.projects[rng.random_range(0..com.projects.len())];
            db.associate(assigned, e, p).unwrap();
        }
        if !com.employees.is_empty() {
            let boss = com.employees[rng.random_range(0..com.employees.len())];
            db.associate(reports, e, boss).unwrap();
        }
        if rng.random_range(0u32..1000) < size.manager_per_mille {
            com.managers.push(db.specialize(e, manager).unwrap());
        }
        com.employees.push(e);
    }
    (db, com)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_small() {
        let (db, com) = populate(CompanySize::small(), 11);
        assert_eq!(com.employees.len(), 30);
        assert_eq!(com.departments.len(), 3);
        let employee = db.schema().class_by_name("Employee").unwrap();
        assert_eq!(db.extent_size(employee), 30);
        // Reporting lines are acyclic by construction: closure terminates.
        let reports = db.schema().own_link_by_name(employee, "ReportsTo").unwrap();
        assert!(db.link_count(reports) <= 29);
    }

    #[test]
    fn managers_are_perspectives() {
        let (db, com) = populate(CompanySize::small(), 11);
        let manager = db.schema().class_by_name("Manager").unwrap();
        for &m in &com.managers {
            assert_eq!(db.class_of(m).unwrap(), manager);
        }
    }
}
