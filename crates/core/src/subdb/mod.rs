//! Subdatabases: the closed world of the deductive rule language
//! (paper §3.1 and §4.1).

pub mod index;
pub mod intension;
pub mod pattern;
pub mod registry;
pub mod subdatabase;

pub use index::{SlotAdj, SubdbIndex};
pub use intension::{IntEdge, Intension, SlotDef, SlotSource};
pub use pattern::{ExtPattern, PatternType};
pub use registry::{RegistryEntry, SubdbRegistry};
pub use subdatabase::Subdatabase;
