//! The exact worked-example instances from the paper's figures.
//!
//! [`fig_3_1`] reproduces the extensional diagram of Fig. 3.1b over the
//! university schema: teachers t1–t4, sections s2–s5, courses c1–c4, with
//!
//! * t1 teaches s2; t2 teaches s3; t3 teaches s4; t4 teaches nothing;
//! * s2 is a section of c1; s3 of both c1 and c2 (the figure notes the
//!   usual single-course constraint is waived "in order to describe the
//!   most general case" — we build s3's second course through a second
//!   section-course link, so the schema here relaxes Section→Course to
//!   many-valued); s4 has no course; s5 is a section of c4;
//! * c3 has no sections.
//!
//! The five extensional pattern types of the figure are then
//! `(Teacher, Section, Course)`, `(Teacher, Section)`, `(Section, Course)`,
//! `(Teacher)` and `(Course)`.

use dood_core::fxhash::FxHashMap;
use dood_core::ids::Oid;
use dood_core::schema::{Schema, SchemaBuilder};
use dood_core::value::{DType, Value};
use dood_store::Database;

/// Build the reduced Teacher–Section–Course schema used by Fig. 3.1 (the
/// relevant corner of Fig. 2.1, with Section→Course many-valued per the
/// figure's footnote).
pub fn fig_3_1_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.e_class("Teacher");
    b.e_class("Section");
    b.e_class("Course");
    b.d_class("name", DType::Str);
    b.d_class("section#", DType::Int);
    b.d_class("c#", DType::Int);
    b.d_class("title", DType::Str);
    b.attr("Teacher", "name");
    b.attr_named("Section", "section#", "section#");
    b.attr_named("Course", "c#", "c#");
    b.attr("Course", "title");
    b.aggregate_named("Teacher", "Section", "Teaches");
    b.aggregate_single("Section", "Course"); // waived to many below
    b.build().expect("fig 3.1 schema valid")
}

/// The Fig. 3.1b instance. Returns the database and a name → OID map with
/// keys `t1..t4`, `s2..s5`, `c1..c4`.
pub fn fig_3_1() -> (Database, FxHashMap<String, Oid>) {
    // Section→Course must be many-valued for s3 (see module docs).
    let mut b = SchemaBuilder::new();
    b.e_class("Teacher");
    b.e_class("Section");
    b.e_class("Course");
    b.d_class("name", DType::Str);
    b.d_class("section#", DType::Int);
    b.d_class("c#", DType::Int);
    b.d_class("title", DType::Str);
    b.attr("Teacher", "name");
    b.attr_named("Section", "section#", "section#");
    b.attr_named("Course", "c#", "c#");
    b.attr("Course", "title");
    b.aggregate_named("Teacher", "Section", "Teaches");
    b.aggregate("Section", "Course");
    let mut db = Database::new(b.build().expect("valid"));

    let teacher = db.schema().class_by_name("Teacher").unwrap();
    let section = db.schema().class_by_name("Section").unwrap();
    let course = db.schema().class_by_name("Course").unwrap();
    let teaches = db.schema().own_link_by_name(teacher, "Teaches").unwrap();
    let of = db.schema().own_link_by_name(section, "Course").unwrap();

    let mut names: FxHashMap<String, Oid> = FxHashMap::default();
    for i in 1..=4 {
        let t = db.new_object(teacher).unwrap();
        db.set_attr(t, "name", Value::str(format!("t{i}"))).unwrap();
        names.insert(format!("t{i}"), t);
    }
    for i in 2..=5 {
        let s = db.new_object(section).unwrap();
        db.set_attr(s, "section#", Value::Int(i as i64)).unwrap();
        names.insert(format!("s{i}"), s);
    }
    for i in 1..=4 {
        let c = db.new_object(course).unwrap();
        db.set_attr(c, "c#", Value::Int(1000 * i as i64)).unwrap();
        db.set_attr(c, "title", Value::str(format!("c{i}"))).unwrap();
        names.insert(format!("c{i}"), c);
    }
    let o = |n: &str, names: &FxHashMap<String, Oid>| names[n];
    db.associate(teaches, o("t1", &names), o("s2", &names)).unwrap();
    db.associate(teaches, o("t2", &names), o("s3", &names)).unwrap();
    db.associate(teaches, o("t3", &names), o("s4", &names)).unwrap();
    db.associate(of, o("s2", &names), o("c1", &names)).unwrap();
    db.associate(of, o("s3", &names), o("c1", &names)).unwrap();
    db.associate(of, o("s3", &names), o("c2", &names)).unwrap();
    db.associate(of, o("s5", &names), o("c4", &names)).unwrap();
    (db, names)
}

/// The §5.1 brace-subsumption example: classes A, B, C, D in a chain, with
/// exactly the instance patterns (a1, b5, c5, d5) and (b2, c2). Returns the
/// database and the name → OID map (`a1, b5, c5, d5, b2, c2`).
pub fn fig_5_1() -> (Database, FxHashMap<String, Oid>) {
    let mut b = SchemaBuilder::new();
    for c in ["A", "B", "C", "D"] {
        b.e_class(c);
    }
    b.aggregate("A", "B");
    b.aggregate("B", "C");
    b.aggregate("C", "D");
    let mut db = Database::new(b.build().expect("valid"));
    let cls = |db: &Database, n: &str| db.schema().class_by_name(n).unwrap();
    let (a, bb, c, d) = (cls(&db, "A"), cls(&db, "B"), cls(&db, "C"), cls(&db, "D"));
    let ab = db.schema().own_link_by_name(a, "B").unwrap();
    let bc = db.schema().own_link_by_name(bb, "C").unwrap();
    let cd = db.schema().own_link_by_name(c, "D").unwrap();
    let mut names = FxHashMap::default();
    let a1 = db.new_object(a).unwrap();
    let b5 = db.new_object(bb).unwrap();
    let c5 = db.new_object(c).unwrap();
    let d5 = db.new_object(d).unwrap();
    let b2 = db.new_object(bb).unwrap();
    let c2 = db.new_object(c).unwrap();
    db.associate(ab, a1, b5).unwrap();
    db.associate(bc, b5, c5).unwrap();
    db.associate(cd, c5, d5).unwrap();
    db.associate(bc, b2, c2).unwrap();
    names.insert("a1".to_string(), a1);
    names.insert("b5".to_string(), b5);
    names.insert("c5".to_string(), c5);
    names.insert("d5".to_string(), d5);
    names.insert("b2".to_string(), b2);
    names.insert("c2".to_string(), c2);
    (db, names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_3_1_has_expected_shape() {
        let (db, names) = fig_3_1();
        let s = db.schema();
        let teacher = s.class_by_name("Teacher").unwrap();
        assert_eq!(db.extent_size(teacher), 4);
        let teaches = s.own_link_by_name(teacher, "Teaches").unwrap();
        assert_eq!(db.link_count(teaches), 3);
        // t4 teaches nothing.
        assert!(db.neighbors(teaches, names["t4"], true).is_empty());
        // s3 has two courses.
        let section = s.class_by_name("Section").unwrap();
        let of = s.own_link_by_name(section, "Course").unwrap();
        assert_eq!(db.neighbors(of, names["s3"], true).len(), 2);
    }

    #[test]
    fn fig_5_1_has_two_chains() {
        let (db, names) = fig_5_1();
        let s = db.schema();
        let a = s.class_by_name("A").unwrap();
        let ab = s.own_link_by_name(a, "B").unwrap();
        assert!(db.linked(ab, names["a1"], names["b5"]));
        assert_eq!(db.link_count(ab), 1);
    }
}
