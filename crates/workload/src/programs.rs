//! Built-in `.dood` rule programs over the workload schemas — the clean
//! corpus for the static analyzer (`dood-rules::analyze`) and the `doodlint`
//! CLI. Every program here must lint with **zero diagnostics**: they are the
//! paper's §4/§5 worked examples and the §6 chaining shapes, so a diagnostic
//! on any of them is an analyzer false positive (regression-tested in
//! `tests/analyzer.rs`).

use dood_core::schema::Schema;

/// The paper's university rule program: R1–R7 (§4 derivation rules, §5.2
/// closure rules) plus query 4.1 and the §5.1 brace-retention query.
pub const UNIVERSITY: &str = "\
-- Paper §4/§5 university program (Fig. 2.1 schema; rules R1-R7).
schema builtin university

rule R1:
  if context Teacher * Section * Course
  then Teacher_course (Teacher, Course)

rule R2:
  if context Department [name = 'CIS'] * Course * Section * Student
  where count(Student by Course) > 10
  then Suggest_offer (Course)

rule R3:
  if context Department * Suggest_offer:Course
  then Deps_need_res (Department)
  where count(Suggest_offer:Course by Department) > 2

rule R4:
  if context TA * Teacher * Section * Suggest_offer:Course
  then May_teach (TA, Course)

rule R5:
  if context TA * Grad * Transcript [grade <= 'B'] * Course [c# < 5000]
  then May_teach (TA, Course)

rule R6:
  if context Grad * TA * Teacher * Section * Student ^*
  then Grad_teaching_grad (Grad, Grad_*)

rule R7:
  if context Grad * TA * Teacher * Section * Student ^*
  then First_and_third (Grad, Grad_2)

query Q41:
  context Faculty * Advising * May_teach:TA [GPA < 3.5]
  select TA [name], Faculty [name]
  display

query Q51:
  context { Teacher * Section } * Course display

export Teacher_course Deps_need_res Grad_teaching_grad First_and_third
";

/// The §6 chaining-scenario shape over the company schema: a four-deep
/// derivation chain `REa → REb → REc → REd`.
pub const COMPANY: &str = "\
-- Company chaining program (the §6 Ra..Rd derivation chain).
schema builtin company

rule Ra:
  if context Employee * Department
  then REa (Employee, Department)

rule Rb:
  if context REa:Employee * Project
  then REb (Employee, Project)

rule Rc:
  if context REb:Employee * REb:Project
  where Employee.salary > 50
  then REc (Employee)

rule Rd:
  if context Manager * REc:Employee
  then REd (Manager)

query QC:
  context REa:Employee * REa:Department display

export REd
";

/// The CAD part-explosion program: the §5.2 transitive closure over the
/// `Component` self-association, with a family target.
pub const CAD: &str = "\
-- CAD bill-of-materials part explosion (paper §5.2 closure).
schema builtin cad

rule RX:
  if context Part ^*
  then Explosion (Part, Part_*)

query QX:
  context Supplier * Part display

export Explosion
";

/// The social follow-graph reachability program: the deep-closure scenario
/// of ROADMAP item 5, feeding the E18 closure-kernel benchmark.
pub const SOCIAL: &str = "\
-- Social follow-graph reachability (deep closure under heavy fan-out).
schema builtin social

rule RS:
  if context Person ^*
  then Reach (Person, Person_*)

query QS:
  context Person [score >= 50] display

export Reach
";

/// All built-in programs as `(name, text)` pairs.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![("university", UNIVERSITY), ("company", COMPANY), ("cad", CAD), ("social", SOCIAL)]
}

/// Resolve a `schema builtin <name>` reference to a workload schema.
pub fn builtin_schema(name: &str) -> Option<Schema> {
    match name {
        "university" => Some(crate::university::schema()),
        "company" => Some(crate::company::schema()),
        "cad" => Some(crate::cad::schema()),
        "social" => Some(crate::social::schema()),
        "fig31" => Some(crate::figures::fig_3_1_schema()),
        _ => None,
    }
}

/// A small seeded population of a builtin schema, for profiling a rule
/// program against real instances (`doodprof`). Sizes are the workloads'
/// `small()` presets; `fig31` is the paper's fixed Figure 3.1 extension
/// (its population ignores the seed).
pub fn builtin_database(name: &str, seed: u64) -> Option<dood_store::Database> {
    match name {
        "university" => Some(crate::university::populate(crate::university::Size::small(), seed)),
        "company" => Some(crate::company::populate(crate::company::CompanySize::small(), seed).0),
        "cad" => Some(crate::cad::build_bom(crate::cad::BomShape::small(), seed).0),
        "social" => Some(crate::social::build_graph(crate::social::SocialShape::small(), seed).0),
        "fig31" => Some(crate::figures::fig_3_1().0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_schemas_resolve() {
        for (name, _) in all() {
            assert!(builtin_schema(name).is_some(), "schema `{name}` missing");
        }
        assert!(builtin_schema("fig31").is_some());
        assert!(builtin_schema("nope").is_none());
    }

    #[test]
    fn builtin_databases_resolve() {
        for name in ["university", "company", "cad", "social", "fig31"] {
            let db = builtin_database(name, 42).unwrap_or_else(|| panic!("db `{name}`"));
            assert!(db.object_count() > 0, "population `{name}` is empty");
        }
        assert!(builtin_database("nope", 42).is_none());
    }
}
