//! Evaluation of resolved context expressions: association-pattern matching
//! (paper §3.2), brace retention with subsumption (§5.1), and cyclic
//! iteration / transitive closure (§5.2).
//!
//! The evaluator produces a [`Subdatabase`]: the Context subdatabase the
//! paper's queries and rules operate on.

use crate::ast::{CmpOp, Pred};
use crate::error::QueryError;
use crate::plan::{CompileParts, CompiledContext, EdgeInfo, PlanInputs, SpanPlan};
use crate::resolve::{REdgeKind, RSlot, ResolvedContext};
use dood_core::error::ResolveError;
use dood_core::fxhash::{FxHashMap, FxHashSet};
use dood_core::ids::Oid;
use dood_core::schema::{ResolvedAttr, ResolvedEdge};
use dood_core::obs::{self, stats};
use dood_core::subdb::{
    ExtPattern, Intension, SlotAdj, SlotDef, SlotSource, Subdatabase, SubdbIndex, SubdbRegistry,
};
use dood_core::value::Value;
use dood_core::pool::ChunkPool;
use dood_store::Database;
use std::collections::BTreeSet;
use std::sync::Arc;

pub use crate::plan::{ExecMode, PlannerMode};

/// A compiled intra-class predicate: attribute references are resolved.
#[derive(Debug, Clone)]
pub(crate) enum CPred {
    Cmp { attr: ResolvedAttr, op: CmpOp, value: Value },
    And(Box<CPred>, Box<CPred>),
    Or(Box<CPred>, Box<CPred>),
    Not(Box<CPred>),
}

impl CPred {
    fn eval(&self, db: &Database, oid: Oid) -> bool {
        match self {
            CPred::Cmp { attr, op, value } => {
                let v = db.attr_resolved(oid, attr);
                match v.compare(value) {
                    Some(ord) => op.test(ord),
                    None => false, // Null / incomparable: unknown ⇒ drop
                }
            }
            CPred::And(a, b) => a.eval(db, oid) && b.eval(db, oid),
            CPred::Or(a, b) => a.eval(db, oid) || b.eval(db, oid),
            CPred::Not(p) => !p.eval(db, oid),
        }
    }
}

/// Compile a predicate against a slot's base class, enforcing the slot's
/// attribute accessibility restriction (paper §4.2). Pure schema work — no
/// extensional data is touched, so static analysis can call it too.
fn compile_pred(
    pred: &Pred,
    slot: &RSlot,
    schema: &dood_core::schema::Schema,
) -> Result<CPred, QueryError> {
    match pred {
        Pred::Cmp { attr, op, value } => {
            if let Some(filter) = &slot.attr_filter {
                if !filter.iter().any(|a| a == attr) {
                    return Err(QueryError::Resolve(ResolveError::AttributeNotAccessible {
                        class: slot.name.clone(),
                        attr: attr.clone(),
                    }));
                }
            }
            let resolved = schema.resolve_attr(slot.base, attr)?;
            Ok(CPred::Cmp { attr: resolved, op: *op, value: value.to_value() })
        }
        Pred::And(a, b) => Ok(CPred::And(
            Box::new(compile_pred(a, slot, schema)?),
            Box::new(compile_pred(b, slot, schema)?),
        )),
        Pred::Or(a, b) => Ok(CPred::Or(
            Box::new(compile_pred(a, slot, schema)?),
            Box::new(compile_pred(b, slot, schema)?),
        )),
        Pred::Not(p) => Ok(CPred::Not(Box::new(compile_pred(p, slot, schema)?))),
    }
}

/// A slot's membership constraint.
///
/// Derived slots point straight into their source subdatabase's
/// [`SubdbIndex`], so constructing an evaluator never materializes an
/// extent — the index is built once per source content version and shared
/// by every evaluation against it (the incremental-maintenance hot path
/// constructs an evaluator per delta step).
enum Members<'a> {
    /// Base-class slot: no membership restriction beyond the class extent.
    Open,
    /// Derived slot: membership is the given slot of the source's index.
    Indexed(&'a SubdbIndex, usize),
    /// Explicitly restricted (delta evaluation / `restrict_slot`).
    Fixed(BTreeSet<Oid>),
}

/// The evaluator for one resolved context expression.
pub struct Evaluator<'a> {
    ctx: &'a ResolvedContext,
    db: &'a Database,
    planner: PlannerMode,
    /// Which executor runs span joins (compiled pipeline vs. legacy AST
    /// walk — the E17 ablation axis).
    exec: ExecMode,
    /// The compiled form: predicates, hints, owned edge info, and the
    /// cost-ordered span plans. Shared (via [`Evaluator::plan_handle`])
    /// with rule caches so delta steps skip recompilation.
    plan: Arc<CompiledContext>,
    /// Per slot: the membership constraint (see [`Members`]).
    memberships: Vec<Members<'a>>,
    /// Adjacency for derived edges, keyed by edge index (`usize::MAX` keys
    /// the closure cycle edge): a borrow of the source index's slot-pair
    /// adjacency plus whether the edge's left→right direction is flipped
    /// relative to the stored orientation.
    derived_adj: FxHashMap<usize, (&'a SlotAdj, bool)>,
    /// Per slot: working copy of the plan's index-backed candidate
    /// pre-filters (E10); restrictions clear entries without touching the
    /// shared plan.
    index_scan: Vec<Option<IndexScan>>,
    /// Thread pool for the partitioned span join (DESIGN.md §6).
    pool: ChunkPool,
}

/// A pre-resolved index range scan for a slot condition.
#[derive(Debug, Clone)]
pub(crate) struct IndexScan {
    class: dood_core::ids::ClassId,
    attr: dood_core::ids::AssocId,
    op: CmpOp,
    value: Value,
}

impl IndexScan {
    /// The slot's candidate OIDs, straight from the ordered index.
    fn scan(&self, db: &Database) -> Option<Vec<Oid>> {
        use std::ops::Bound::*;
        let ix = db.attr_index(self.class, self.attr)?;
        Some(match self.op {
            CmpOp::Eq => ix.eq_scan(&self.value),
            CmpOp::Lt => ix.range_scan(Unbounded, Excluded(&self.value)),
            CmpOp::Le => ix.range_scan(Unbounded, Included(&self.value)),
            CmpOp::Gt => ix.range_scan(Excluded(&self.value), Unbounded),
            CmpOp::Ge => ix.range_scan(Included(&self.value), Unbounded),
            // != rarely benefits from an index; fall back to scanning.
            CmpOp::Neq => return None,
        })
    }
}

/// Detect an index-backed pre-filter for a compiled condition: a single
/// comparison on an attribute declared directly on the slot's base class
/// (no perspective climbing), with an index present in the store.
fn index_hint(slot_base: dood_core::ids::ClassId, cond: &CPred, db: &Database) -> Option<IndexScan> {
    match cond {
        CPred::Cmp { attr, op, value } if attr.up_chain.is_empty() && attr.owner == slot_base => {
            db.attr_index(slot_base, attr.attr)?;
            Some(IndexScan { class: slot_base, attr: attr.attr, op: *op, value: value.clone() })
        }
        _ => None,
    }
}

/// Bind derived slots and edges to their source subdatabases' access
/// indexes ([`Subdatabase::index`]). Shared by [`Evaluator::new`] and
/// [`Evaluator::with_compiled`].
#[allow(clippy::type_complexity)]
fn bind_sources<'a>(
    ctx: &'a ResolvedContext,
    registry: &'a SubdbRegistry,
) -> Result<(Vec<Members<'a>>, FxHashMap<usize, (&'a SlotAdj, bool)>), QueryError> {
    let mut memberships = Vec::with_capacity(ctx.slots.len());
    for slot in &ctx.slots {
        match &slot.derived {
            Some((subdb, slot_name)) => {
                let entry = registry
                    .get(subdb)
                    .ok_or_else(|| QueryError::UnknownSubdb(subdb.clone()))?;
                let idx = entry.subdb.intension.slot_by_name(slot_name).ok_or_else(
                    || QueryError::UnknownSubdbClass {
                        subdb: subdb.clone(),
                        class: slot_name.clone(),
                    },
                )?;
                memberships.push(Members::Indexed(entry.subdb.index(), idx));
            }
            None => memberships.push(Members::Open),
        }
    }
    let mut derived_adj = FxHashMap::default();
    let edge_adj = |subdb: &String, a: usize, b: usize| -> Result<(&'a SlotAdj, bool), QueryError> {
        let entry = registry
            .get(subdb)
            .ok_or_else(|| QueryError::UnknownSubdb(subdb.clone()))?;
        Ok(entry
            .subdb
            .index()
            .pair_adj(a, b)
            .expect("resolved derived edge joins two distinct slots"))
    };
    for (i, e) in ctx.edges.iter().enumerate() {
        if let REdgeKind::Derived { subdb, a, b } = &e.kind {
            derived_adj.insert(i, edge_adj(subdb, *a, *b)?);
        }
    }
    if let Some((_, REdgeKind::Derived { subdb, a, b })) = &ctx.closure {
        derived_adj.insert(usize::MAX, edge_adj(subdb, *a, *b)?);
    }
    Ok((memberships, derived_adj))
}

/// The stats key for one predicate shape on one class (`oql.sel.*`): the
/// observed fraction of candidates a structurally-identical condition
/// keeps. Keyed by class + predicate fingerprint, not by query, so every
/// query with the same condition shares the estimate.
fn sel_key(class: dood_core::ids::ClassId, pred: &CPred) -> String {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{pred:?}").hash(&mut h);
    format!("oql.sel.c{}.{:016x}", class.index(), h.finish())
}

/// The stats key for one traversal direction of a base association
/// (`oql.fan.*`): `dir` is the association's own from→to orientation.
pub fn fan_key_assoc(assoc: dood_core::ids::AssocId, dir: bool) -> String {
    format!("oql.fan.a{}.{}", assoc.index(), if dir { "f" } else { "r" })
}

/// The `oql.sel.*` stats key an intra-class condition will plan under,
/// computed from the AST predicate alone (no extensional data). This is
/// how `rules::absint` addresses its selectivity priors at the same keys
/// [`build_plan`] reads: it compiles the predicate exactly as the
/// evaluator would and fingerprints the compiled form. `None` when the
/// predicate does not compile (the analyzer reports that separately).
pub fn static_sel_key(
    schema: &dood_core::schema::Schema,
    base: dood_core::ids::ClassId,
    attr_filter: Option<&[String]>,
    pred: &Pred,
) -> Option<String> {
    let slot = RSlot {
        name: schema.class(base).name.clone(),
        base,
        derived: None,
        attr_filter: attr_filter.map(|f| f.to_vec()),
        cond: None,
    };
    compile_pred(pred, &slot, schema).ok().map(|c| sel_key(base, &c))
}

/// Default condition selectivity when no observation exists: index-served
/// conditions are assumed highly selective, scanned ones moderately so.
const DEFAULT_SEL_HINTED: f64 = 0.05;
const DEFAULT_SEL_COND: f64 = 0.33;

/// Minimum sample size before a scan feeds the stats registry — tiny
/// candidate sets produce noisy ratios.
const STAT_MIN_SCAN: usize = 4;

/// Support thresholds for the plan-drift watchdog (DESIGN.md §13): an
/// observation must rest on at least this many input rows (fan-out) or
/// scanned candidates (selectivity) before a band breach counts as drift.
/// Higher than [`STAT_MIN_SCAN`] — a false stat nudges an average, a
/// false drift flag forces a re-plan.
const DRIFT_MIN_ROWS: f64 = 8.0;
const DRIFT_MIN_SCAN: u64 = 16;

/// Whether `observed` sits outside the drift band around `planned`
/// (ratio beyond `DOOD_DRIFT_BAND` in either direction; values are
/// floored at a small epsilon so zero-estimates don't divide away).
fn drift_exceeds(observed: f64, planned: f64) -> bool {
    const EPS: f64 = 1e-2;
    let band = crate::plan::drift_band();
    let ratio = observed.max(EPS) / planned.max(EPS);
    ratio > band || ratio < 1.0 / band
}

/// Lower a resolved context to its compiled form: gather cost-model
/// inputs (observed stats where present, schema-derived estimates
/// otherwise), pre-direct base edges, and order every retention span
/// under `mode`.
fn build_plan(
    ctx: &ResolvedContext,
    db: &Database,
    memberships: &[Members<'_>],
    derived_adj: &FxHashMap<usize, (&SlotAdj, bool)>,
    preds: Vec<Option<CPred>>,
    hints: Vec<Option<IndexScan>>,
    mode: PlannerMode,
) -> CompiledContext {
    let n = ctx.slots.len();
    let cards: Vec<f64> = (0..n)
        .map(|i| match &memberships[i] {
            Members::Open => db.extent_size(ctx.slots[i].base) as f64,
            Members::Indexed(ix, s) => ix.slot_len(*s) as f64,
            Members::Fixed(set) => set.len() as f64,
        })
        .collect();
    let sel_keys: Vec<Option<String>> = (0..n)
        .map(|i| preds[i].as_ref().map(|p| sel_key(ctx.slots[i].base, p)))
        .collect();
    let sels: Vec<f64> = (0..n)
        .map(|i| match &sel_keys[i] {
            Some(k) => stats::get_or_prior(k).unwrap_or(if hints[i].is_some() {
                DEFAULT_SEL_HINTED
            } else {
                DEFAULT_SEL_COND
            }),
            None => 1.0,
        })
        .collect();
    let constrained: Vec<bool> = (0..n)
        .map(|i| preds[i].is_some() || !matches!(memberships[i], Members::Open))
        .collect();
    let hinted: Vec<bool> = hints.iter().map(Option::is_some).collect();
    let mut edges = Vec::with_capacity(ctx.edges.len());
    let mut fan_keys = Vec::with_capacity(ctx.edges.len());
    let mut fwd_fan = Vec::with_capacity(ctx.edges.len());
    let mut rev_fan = Vec::with_capacity(ctx.edges.len());
    for (i, e) in ctx.edges.iter().enumerate() {
        let nonassoc = matches!(e.op, crate::ast::PatOp::NonAssoc);
        match &e.kind {
            REdgeKind::Base(edge) => {
                let flat = match edge {
                    ResolvedEdge::Assoc { up_x, assoc, forward, up_y }
                        if up_x.is_empty() && up_y.is_empty() =>
                    {
                        Some((*assoc, *forward))
                    }
                    _ => None,
                };
                edges.push(EdgeInfo {
                    nonassoc,
                    flat,
                    fwd: Some(edge.clone()),
                    rev: Some(reverse_edge(edge)),
                });
                match edge {
                    ResolvedEdge::Assoc { assoc, forward, .. } => {
                        let def = db.schema().assoc(*assoc);
                        let links = db.link_count(*assoc) as f64;
                        let (from_c, to_c) =
                            if *forward { (def.from, def.to) } else { (def.to, def.from) };
                        let kf = fan_key_assoc(*assoc, *forward);
                        let kr = fan_key_assoc(*assoc, !*forward);
                        fwd_fan.push(
                            stats::get_or_prior(&kf)
                                .unwrap_or(links / db.extent_size(from_c).max(1) as f64),
                        );
                        rev_fan.push(
                            stats::get_or_prior(&kr)
                                .unwrap_or(links / db.extent_size(to_c).max(1) as f64),
                        );
                        fan_keys.push(Some((kf, kr)));
                    }
                    ResolvedEdge::Identity { .. } => {
                        fwd_fan.push(1.0);
                        rev_fan.push(1.0);
                        fan_keys.push(None);
                    }
                }
            }
            REdgeKind::Derived { subdb, a, b } => {
                edges.push(EdgeInfo { nonassoc, flat: None, fwd: None, rev: None });
                let pairs = derived_adj
                    .get(&i)
                    .map_or(0.0, |&(adj, _)| adj.pair_count() as f64);
                let kf = format!("oql.fan.d.{subdb}.{a}.{b}");
                let kr = format!("oql.fan.d.{subdb}.{b}.{a}");
                fwd_fan.push(stats::get_or_prior(&kf).unwrap_or(pairs / cards[i].max(1.0)));
                rev_fan.push(stats::get_or_prior(&kr).unwrap_or(pairs / cards[i + 1].max(1.0)));
                fan_keys.push(Some((kf, kr)));
            }
        }
    }
    // Cyclic contexts get a fixpoint stage: the cycle edge's fan-out
    // estimate (observed stats when warm) drives the planner's view of
    // rounds and reachable-set size.
    let closure = ctx.closure.as_ref().map(|(spec, kind)| {
        let (fan_key, fallback) = match kind {
            REdgeKind::Base(ResolvedEdge::Assoc { assoc, forward, .. }) => {
                let def = db.schema().assoc(*assoc);
                let from_c = if *forward { def.from } else { def.to };
                let links = db.link_count(*assoc) as f64;
                (
                    Some(fan_key_assoc(*assoc, *forward)),
                    links / db.extent_size(from_c).max(1) as f64,
                )
            }
            REdgeKind::Base(ResolvedEdge::Identity { .. }) => (None, 1.0),
            REdgeKind::Derived { subdb, a, b } => {
                let pairs = derived_adj
                    .get(&usize::MAX)
                    .map_or(0.0, |&(adj, _)| adj.pair_count() as f64);
                (
                    Some(format!("oql.fan.d.{subdb}.{a}.{b}")),
                    pairs / cards[0].max(1.0),
                )
            }
        };
        let est_fan = fan_key.as_deref().and_then(stats::get_or_prior).unwrap_or(fallback);
        crate::plan::ClosureParts {
            fan_key,
            est_fan,
            max_levels: spec.iterations.map(|i| i as usize + 1),
        }
    });
    let parts = CompileParts {
        preds,
        hints,
        sel_keys,
        fan_keys,
        edges,
        slot_names: ctx.slots.iter().map(|s| s.name.clone()).collect(),
        span_bounds: ctx.spans.clone(),
        closure,
    };
    let inputs = PlanInputs { cards, sels, fwd_fan, rev_fan, constrained, hinted };
    crate::plan::compile(parts, inputs, mode)
}

impl<'a> Evaluator<'a> {
    /// Prepare an evaluator: compiles predicates into a cost-ordered
    /// [`CompiledContext`] (DESIGN.md §10) and binds derived slots and
    /// edges to their source subdatabases' access indexes
    /// ([`Subdatabase::index`]). Construction is O(1) in source size when
    /// the indexes already exist — the steady state for incremental rule
    /// maintenance, which constructs an evaluator per delta step against
    /// slowly-changing registered sources (and can skip even the
    /// compilation via [`Evaluator::with_compiled`]).
    pub fn new(
        ctx: &'a ResolvedContext,
        db: &'a Database,
        registry: &'a SubdbRegistry,
    ) -> Result<Self, QueryError> {
        let (memberships, derived_adj) = bind_sources(ctx, registry)?;
        let mut preds = Vec::with_capacity(ctx.slots.len());
        for slot in &ctx.slots {
            preds.push(match &slot.cond {
                Some(p) => Some(compile_pred(p, slot, db.schema())?),
                None => None,
            });
        }
        let hints: Vec<Option<IndexScan>> = ctx
            .slots
            .iter()
            .zip(&preds)
            .map(|(slot, cond)| {
                // Index filtering only applies to base-class slots (derived
                // membership already narrows candidates).
                if slot.derived.is_some() {
                    return None;
                }
                cond.as_ref().and_then(|c| index_hint(slot.base, c, db))
            })
            .collect();
        let planner = PlannerMode::from_env();
        let plan = Arc::new(build_plan(
            ctx,
            db,
            &memberships,
            &derived_adj,
            preds,
            hints,
            planner,
        ));
        let index_scan = plan.hints.clone();
        Ok(Evaluator {
            ctx,
            db,
            planner,
            exec: ExecMode::from_env(),
            plan,
            memberships,
            derived_adj,
            index_scan,
            pool: ChunkPool::from_env(),
        })
    }

    /// Prepare an evaluator around an already-compiled context (the rule
    /// cache hot path): binds sources but skips predicate compilation,
    /// hint detection, and plan ordering entirely. The plan must have been
    /// compiled for the same resolved context.
    pub fn with_compiled(
        ctx: &'a ResolvedContext,
        db: &'a Database,
        registry: &'a SubdbRegistry,
        plan: Arc<CompiledContext>,
    ) -> Result<Self, QueryError> {
        let (memberships, derived_adj) = bind_sources(ctx, registry)?;
        let index_scan = plan.hints.clone();
        Ok(Evaluator {
            ctx,
            db,
            planner: plan.mode,
            exec: ExecMode::from_env(),
            plan,
            memberships,
            derived_adj,
            index_scan,
            pool: ChunkPool::from_env(),
        })
    }

    /// The compiled form, shareable with rule caches (cheap `Arc` clone).
    pub fn plan_handle(&self) -> Arc<CompiledContext> {
        Arc::clone(&self.plan)
    }

    /// Select the span-join planner (DESIGN.md ablation E9); re-orders the
    /// compiled plan under the new mode.
    pub fn with_planner(mut self, planner: PlannerMode) -> Self {
        self.planner = planner;
        self.replan();
        self
    }

    /// Select the span-join executor (DESIGN.md ablation E17).
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Replace the span-join thread pool (benchmarks / ablations; the
    /// default is [`ChunkPool::from_env`]).
    pub fn with_pool(mut self, pool: ChunkPool) -> Self {
        self.pool = pool;
        self
    }

    /// Re-order the compiled plan's spans under the current planner mode
    /// and inputs (after a mode switch or slot restriction).
    fn replan(&mut self) {
        let mut p = (*self.plan).clone();
        p.reorder(self.planner);
        self.plan = Arc::new(p);
    }

    /// Whether `oid` is currently a live instance of `slot`'s base class.
    /// Dirty sets deliberately keep deleted oids (so cached patterns that
    /// reference them are invalidated); a deleted or differently-classed
    /// oid must never *bind* a slot, or a slot-restricted re-derivation
    /// could resurrect patterns through the other slots.
    fn live_in_slot(&self, slot: usize, oid: Oid) -> bool {
        self.db.class_of(oid).is_ok_and(|c| c == self.ctx.slots[slot].base)
    }

    /// Restrict a slot's instances to `oids` (intersected with any derived
    /// membership). Used by incremental rule maintenance to compute the
    /// delta patterns containing a dirty object in that slot. Oids that are
    /// not live instances of the slot's base class are dropped.
    pub fn restrict_slot(mut self, slot: usize, oids: BTreeSet<Oid>) -> Self {
        let live: BTreeSet<Oid> = oids
            .into_iter()
            .filter(|&o| self.live_in_slot(slot, o) && self.member_ok(slot, o))
            .collect();
        let restricted = live.len() as f64;
        self.memberships[slot] = Members::Fixed(live);
        // A restriction invalidates any index hint for the slot (the index
        // would widen the candidate set again), and re-orders the plan
        // around the now-tiny candidate set.
        self.index_scan[slot] = None;
        let mut p = (*self.plan).clone();
        p.inputs.cards[slot] = restricted;
        p.inputs.constrained[slot] = true;
        p.inputs.hinted[slot] = false;
        p.hints[slot] = None;
        p.reorder(self.planner);
        self.plan = Arc::new(p);
        self
    }

    /// Semi-naive delta evaluation for incremental forward maintenance: the
    /// union, over every retention span and every slot of that span, of the
    /// span join with the slot's candidates restricted to `dirty` — i.e.
    /// every currently-valid pattern with **at least one delta-bound slot**.
    ///
    /// Deleted (or re-classified) oids in `dirty` cannot bind a slot and are
    /// skipped; their stale patterns are dropped by the caller's clean-keep
    /// pass. Returns bare rows in deterministic (span, slot, join) order; a
    /// pattern with several dirty slots appears once per slot — callers
    /// merging into a pattern set absorb the duplicates. No subsumption
    /// filtering is applied here — the caller unions the delta with the
    /// retained clean patterns first and re-filters. Not defined for cyclic
    /// (closure) contexts.
    pub fn eval_delta(&mut self, name: &str, dirty: &BTreeSet<Oid>) -> Vec<ExtPattern> {
        debug_assert!(self.ctx.closure.is_none(), "closure contexts are re-derived in full");
        let width = self.ctx.slots.len();
        let mut sp = obs::trace::span("oql.delta");
        sp.label(|| name.to_string());
        sp.attr("dirty", dirty.len() as i64);
        let mut rows_out: Vec<ExtPattern> = Vec::new();
        // Binary single-span associative contexts — the paper's common
        // association-pair shape — emit their delta rows straight off the
        // edge: for each dirty oid qualifying for a slot, its accepted
        // partners across the (single) edge. This skips the generic join
        // planner's row buffers; the produced row set is identical.
        if width == 2
            && self.ctx.spans.as_slice() == [(0usize, 2usize)]
            && self.ctx.edges.len() == 1
            && matches!(self.ctx.edges[0].op, crate::ast::PatOp::Assoc)
        {
            // `self.ctx` is a shared `&'a` reference, so the edge borrow is
            // independent of the `&mut self` receiver.
            let edge = &self.ctx.edges[0].kind;
            for slot in 0..2usize {
                let other = 1 - slot;
                for &o in dirty {
                    if !self.live_in_slot(slot, o) || !self.accepts(slot, o) {
                        continue;
                    }
                    for n in self.step(0, edge, o, slot == 0) {
                        if self.accepts(other, n) {
                            rows_out.push(ExtPattern::new(if slot == 0 {
                                vec![Some(o), Some(n)]
                            } else {
                                vec![Some(n), Some(o)]
                            }));
                        }
                    }
                }
            }
            sp.attr("rows_out", rows_out.len() as i64);
            if obs::metrics_enabled() {
                obs::metrics::counter("oql.delta.evals").inc();
                obs::metrics::counter("oql.delta.rows_out").add(rows_out.len() as u64);
            }
            return rows_out;
        }
        let spans = self.ctx.spans.clone();
        for (lo, hi) in spans {
            for slot in lo..hi {
                let restricted: BTreeSet<Oid> = dirty
                    .iter()
                    .copied()
                    .filter(|&o| self.live_in_slot(slot, o) && self.member_ok(slot, o))
                    .collect();
                if restricted.is_empty() {
                    continue;
                }
                let restricted_len = restricted.len() as f64;
                let saved_m = std::mem::replace(
                    &mut self.memberships[slot],
                    Members::Fixed(restricted),
                );
                let saved_ix = self.index_scan[slot].take();
                // Compiled execution re-plans the span around the
                // restricted slot (the semi-naive delta anchor) instead of
                // reusing the full-evaluation order.
                let rows = match self.exec {
                    ExecMode::Interp => self.join_span(lo, hi),
                    ExecMode::Compiled => {
                        let dsp = self.plan.delta_span(lo, hi, slot, restricted_len);
                        self.exec_span(&dsp)
                    }
                };
                for row in rows {
                    let mut comps = vec![None; width];
                    for (i, oid) in row.into_iter().enumerate() {
                        comps[lo + i] = Some(oid);
                    }
                    rows_out.push(ExtPattern::new(comps));
                }
                self.memberships[slot] = saved_m;
                self.index_scan[slot] = saved_ix;
            }
        }
        sp.attr("rows_out", rows_out.len() as i64);
        if obs::metrics_enabled() {
            obs::metrics::counter("oql.delta.evals").inc();
            obs::metrics::counter("oql.delta.rows_out").add(rows_out.len() as u64);
        }
        rows_out
    }

    /// Whether `oid` satisfies `slot`'s membership constraint.
    fn member_ok(&self, slot: usize, oid: Oid) -> bool {
        match &self.memberships[slot] {
            Members::Open => true,
            Members::Indexed(ix, s) => ix.slot_contains(*s, oid),
            Members::Fixed(set) => set.contains(&oid),
        }
    }

    /// Whether `oid` qualifies for `slot` (derived membership + intra-class
    /// condition; class correctness is guaranteed by traversal).
    fn accepts(&self, slot: usize, oid: Oid) -> bool {
        self.member_ok(slot, oid)
            && match &self.plan.preds[slot] {
                Some(p) => p.eval(self.db, oid),
                None => true,
            }
    }

    /// All qualifying instances of a slot, ascending.
    fn candidates(&self, slot: usize) -> Vec<Oid> {
        // E10: serve selective single-comparison conditions from the
        // store's ordered attribute index when one exists.
        if let Some(scan) = &self.index_scan[slot] {
            if let Some(mut hits) = scan.scan(self.db) {
                hits.sort_unstable();
                if obs::metrics_enabled() {
                    obs::metrics::counter("oql.index_scan.served").inc();
                }
                let raw = self.db.extent_size(self.ctx.slots[slot].base);
                if raw >= STAT_MIN_SCAN {
                    if let Some(k) = &self.plan.sel_keys[slot] {
                        stats::observe(k, hits.len() as f64 / raw as f64);
                    }
                }
                return hits;
            }
        }
        let base: Vec<Oid> = match &self.memberships[slot] {
            Members::Open => self.db.extent(self.ctx.slots[slot].base).collect(),
            Members::Indexed(ix, s) => {
                let mut v: Vec<Oid> = ix.slot_oids(*s).collect();
                v.sort_unstable();
                v
            }
            Members::Fixed(set) => set.iter().copied().collect(),
        };
        match &self.plan.preds[slot] {
            Some(p) => {
                let scanned = base.len();
                let kept: Vec<Oid> =
                    base.into_iter().filter(|&o| p.eval(self.db, o)).collect();
                if obs::metrics_enabled() {
                    obs::metrics::counter("oql.pred.scanned").add(scanned as u64);
                    obs::metrics::counter("oql.pred.kept").add(kept.len() as u64);
                }
                // Feed the planner — but not from explicit restrictions
                // (delta sets), whose selectivity is not representative.
                if scanned >= STAT_MIN_SCAN
                    && !matches!(self.memberships[slot], Members::Fixed(_))
                {
                    if let Some(k) = &self.plan.sel_keys[slot] {
                        stats::observe(k, kept.len() as f64 / scanned as f64);
                    }
                }
                kept
            }
            None => base,
        }
    }

    fn candidate_count_estimate(&self, slot: usize) -> usize {
        match &self.memberships[slot] {
            Members::Open => self.db.extent_size(self.ctx.slots[slot].base),
            Members::Indexed(ix, s) => ix.slot_len(*s),
            Members::Fixed(set) => set.len(),
        }
    }

    /// Traverse edge `edge_idx` from `oid`; `forward` follows left→right.
    fn step(&self, edge_idx: usize, kind: &REdgeKind, oid: Oid, forward: bool) -> Vec<Oid> {
        match kind {
            REdgeKind::Base(edge) => {
                if forward {
                    self.db.traverse(oid, edge)
                } else {
                    self.db.traverse(oid, &reverse_edge(edge))
                }
            }
            REdgeKind::Derived { .. } => self
                .derived_adj
                .get(&edge_idx)
                .map(|&(adj, flip)| adj.neighbors(oid, forward ^ flip).to_vec())
                .unwrap_or_default(),
        }
    }

    fn links(&self, edge_idx: usize, kind: &REdgeKind, x: Oid, y: Oid) -> bool {
        match kind {
            REdgeKind::Base(edge) => self.db.edge_links(x, edge, y),
            REdgeKind::Derived { .. } => self
                .derived_adj
                .get(&edge_idx)
                .is_some_and(|&(adj, flip)| adj.neighbors(x, !flip).binary_search(&y).is_ok()),
        }
    }

    /// Extend rows across one edge. `row_pos` is the index within the rows
    /// of the slot we extend *from*; the new slot's values are pushed.
    fn extend(
        &self,
        rows: Vec<Vec<Oid>>,
        from_slot: usize,
        to_slot: usize,
        edge_idx: usize,
        row_pos: usize,
    ) -> Vec<Vec<Oid>> {
        let edge = &self.ctx.edges[edge_idx];
        let forward = to_slot > from_slot;
        let mut out = Vec::new();
        match edge.op {
            crate::ast::PatOp::Assoc => {
                for row in rows {
                    let from = row[row_pos];
                    for next in self.step(edge_idx, &edge.kind, from, forward) {
                        if self.accepts(to_slot, next) {
                            let mut r = row.clone();
                            r.push(next);
                            out.push(r);
                        }
                    }
                }
            }
            crate::ast::PatOp::NonAssoc => {
                // "A ! B": pairs whose instances are NOT associated.
                let cands = self.candidates(to_slot);
                for row in rows {
                    let from = row[row_pos];
                    for &next in &cands {
                        let linked = if forward {
                            self.links(edge_idx, &edge.kind, from, next)
                        } else {
                            self.links(edge_idx, &edge.kind, next, from)
                        };
                        if !linked {
                            let mut r = row.clone();
                            r.push(next);
                            out.push(r);
                        }
                    }
                }
            }
        }
        out
    }

    /// Full inner join over the chain `[lo, hi)`. Rows come back in slot
    /// order `lo..hi`. Dispatches on the executor mode: the compiled plan
    /// interpreter (default) or the legacy AST-walking join (the E17
    /// baseline).
    fn join_span(&self, lo: usize, hi: usize) -> Vec<Vec<Oid>> {
        debug_assert!(lo < hi);
        if self.exec == ExecMode::Compiled {
            if let Some(sp) = self.plan.span(lo, hi) {
                return self.exec_span(sp);
            }
        }
        self.join_span_interp(lo, hi)
    }

    /// Execute one compiled span plan: anchor scan, then the fused DFS
    /// pipeline. The anchor candidate set is partitioned into chunks
    /// evaluated by the pool; per-chunk row buffers are concatenated in
    /// chunk order, and the DFS visits candidates and neighbors in a fixed
    /// order, so output is identical at every thread count.
    ///
    /// Emits the `oql.join` span with per-stage `oql.plan.*` children
    /// carrying estimated vs. measured cardinalities (the EXPLAIN ANALYZE
    /// payload `doodprof --plan` renders), and feeds observed fan-out /
    /// acceptance ratios back into `obs::stats` for later plans.
    fn exec_span(&self, sp: &SpanPlan) -> Vec<Vec<Oid>> {
        let mut tsp = obs::trace::span("oql.join");
        tsp.attr("lo", sp.lo as i64);
        tsp.attr("hi", sp.hi as i64);
        tsp.attr("anchor", sp.anchor as i64);
        let cands = self.candidates(sp.anchor);
        tsp.attr("rows_in", cands.len() as i64);
        // `!` stages enumerate the target slot's candidates; hoist each
        // list once per span instead of once per row.
        let na: Vec<Option<Vec<Oid>>> = sp
            .steps
            .iter()
            .map(|st| if st.nonassoc { Some(self.candidates(st.to_slot)) } else { None })
            .collect();
        let (rows, scanned, kept) = if self.pool.is_sequential(cands.len()) {
            self.exec_span_rows(sp, &cands, &na)
        } else {
            let parts =
                self.pool.par_chunk_map(&cands, |chunk| self.exec_span_rows(sp, chunk, &na));
            let mut rows = Vec::new();
            let mut scanned = vec![0u64; sp.steps.len()];
            let mut kept = vec![0u64; sp.steps.len()];
            for (r, s, k) in parts {
                rows.extend(r);
                for i in 0..s.len() {
                    scanned[i] += s[i];
                    kept[i] += k[i];
                }
            }
            (rows, scanned, kept)
        };
        tsp.attr("rows_out", rows.len() as i64);
        // Feed the planner: per-stage fan-out (neighbors per input row)
        // and acceptance (survivors per neighbor) for association stages.
        // `!` stages get their target selectivity from the hoisted
        // candidate scan above. The same observations drive the plan-drift
        // watchdog: when they leave the band around the values the cost
        // model planned with, the plan is marked for re-planning.
        let acct = obs::account::active();
        let mut rows_in = cands.len() as f64;
        for (i, st) in sp.steps.iter().enumerate() {
            if !st.nonassoc {
                if rows_in >= 1.0 {
                    if let Some((kf, kr)) = &self.plan.fan_keys[st.edge] {
                        let key = if st.forward { kf } else { kr };
                        stats::observe(key, scanned[i] as f64 / rows_in);
                    }
                }
                if scanned[i] as usize >= STAT_MIN_SCAN {
                    if let Some(sk) = &self.plan.sel_keys[st.to_slot] {
                        stats::observe(sk, kept[i] as f64 / scanned[i] as f64);
                    }
                }
                if rows_in >= DRIFT_MIN_ROWS {
                    let observed = scanned[i] as f64 / rows_in;
                    let planned = if st.forward {
                        self.plan.inputs.fwd_fan[st.edge]
                    } else {
                        self.plan.inputs.rev_fan[st.edge]
                    };
                    if drift_exceeds(observed, planned) {
                        self.note_drift(st, "fan", observed, planned, &acct);
                    }
                }
                if scanned[i] >= DRIFT_MIN_SCAN {
                    let observed = kept[i] as f64 / scanned[i] as f64;
                    let planned = self.plan.inputs.sels[st.to_slot];
                    if drift_exceeds(observed, planned) {
                        self.note_drift(st, "sel", observed, planned, &acct);
                    }
                }
            }
            rows_in = kept[i] as f64;
        }
        if let Some(a) = &acct {
            a.add_rows_scanned(cands.len() as u64 + scanned.iter().sum::<u64>());
            a.add_stage(
                format!("scan {}", self.plan.slot_names[sp.anchor]),
                sp.est_anchor,
                cands.len() as u64,
                cands.len() as u64,
            );
            for (i, st) in sp.steps.iter().enumerate() {
                a.add_stage(
                    format!(
                        "step {}{}{}",
                        self.plan.slot_names[st.from_slot],
                        if st.nonassoc { "!" } else { "->" },
                        self.plan.slot_names[st.to_slot]
                    ),
                    st.est_rows,
                    scanned[i],
                    kept[i],
                );
            }
        }
        if tsp.on() {
            let mut c = obs::trace::span("oql.plan.scan");
            c.label(|| self.plan.slot_names[sp.anchor].clone());
            c.attr("slot", sp.anchor as i64);
            c.attr("est", sp.est_anchor.round() as i64);
            c.attr("rows", cands.len() as i64);
            drop(c);
            for (i, st) in sp.steps.iter().enumerate() {
                let mut c = obs::trace::span("oql.plan.step");
                c.label(|| {
                    format!(
                        "{}{}{}",
                        self.plan.slot_names[st.from_slot],
                        if st.nonassoc { "!" } else { "->" },
                        self.plan.slot_names[st.to_slot]
                    )
                });
                c.attr("slot", st.to_slot as i64);
                c.attr("est", st.est_rows.round() as i64);
                c.attr("scanned", scanned[i] as i64);
                c.attr("rows", kept[i] as i64);
                drop(c);
            }
        }
        if obs::metrics_enabled() {
            obs::metrics::counter("oql.join.evals").inc();
            obs::metrics::counter("oql.join.rows_out").add(rows.len() as u64);
        }
        rows
    }

    /// One drift-band breach: count the `oql.plan.drift` metric and the
    /// active account's drift events, mark the shared plan for
    /// re-planning, and print the runtime diagnostic once per plan.
    #[cold]
    fn note_drift(
        &self,
        st: &crate::plan::PlanStep,
        what: &str,
        observed: f64,
        planned: f64,
        acct: &Option<Arc<dood_core::obs::account::Account>>,
    ) {
        if obs::metrics_enabled() {
            obs::metrics::counter("oql.plan.drift").inc();
        }
        if let Some(a) = acct {
            a.add_drift_event();
        }
        self.plan.drift.record();
        if self.plan.drift.should_report() {
            eprintln!(
                "oql: plan drift on step {}->{}: observed {what}={observed:.3} vs \
                 planned {planned:.3} (band {:.1}); plan marked for re-planning",
                self.plan.slot_names[st.from_slot],
                self.plan.slot_names[st.to_slot],
                crate::plan::drift_band(),
            );
        }
    }

    /// The compiled span pipeline over a subset of the anchor's
    /// candidates. Returns the bound rows (slot order `lo..hi`) plus
    /// per-stage `(scanned, kept)` counters.
    fn exec_span_rows(
        &self,
        sp: &SpanPlan,
        cands: &[Oid],
        na: &[Option<Vec<Oid>>],
    ) -> (Vec<Vec<Oid>>, Vec<u64>, Vec<u64>) {
        let mut out = Vec::new();
        let mut scanned = vec![0u64; sp.steps.len()];
        let mut kept = vec![0u64; sp.steps.len()];
        let mut row = vec![Oid(0); sp.hi - sp.lo];
        for &o in cands {
            row[sp.anchor - sp.lo] = o;
            self.exec_steps(sp, na, &mut row, 0, &mut out, &mut scanned, &mut kept);
        }
        (out, scanned, kept)
    }

    /// One DFS level of the fused pipeline: traverse the stage's edge from
    /// the already-bound source slot, filter (membership + predicate),
    /// bind the target slot in the slot-indexed row buffer, and recurse.
    /// Rows are cloned out at the leaves only, already in slot order — no
    /// per-stage row materialization or reorder pass.
    #[allow(clippy::too_many_arguments)]
    fn exec_steps(
        &self,
        sp: &SpanPlan,
        na: &[Option<Vec<Oid>>],
        row: &mut Vec<Oid>,
        depth: usize,
        out: &mut Vec<Vec<Oid>>,
        scanned: &mut [u64],
        kept: &mut [u64],
    ) {
        if depth == sp.steps.len() {
            out.push(row.clone());
            return;
        }
        let st = &sp.steps[depth];
        let from = row[st.from_slot - sp.lo];
        if st.nonassoc {
            // "A ! B": pairs whose instances are NOT associated.
            let kind = &self.ctx.edges[st.edge].kind;
            for &next in na[depth].as_ref().expect("hoisted ! candidates") {
                scanned[depth] += 1;
                let linked = if st.forward {
                    self.links(st.edge, kind, from, next)
                } else {
                    self.links(st.edge, kind, next, from)
                };
                if !linked {
                    kept[depth] += 1;
                    row[st.to_slot - sp.lo] = next;
                    self.exec_steps(sp, na, row, depth + 1, out, scanned, kept);
                }
            }
            return;
        }
        let info = &self.plan.edges[st.edge];
        let owned: Vec<Oid>;
        let neighbors: &[Oid] = if let Some((assoc, f)) = info.flat {
            // Plain association: zero-alloc neighbor slice from the store.
            self.db.neighbors(assoc, from, if st.forward { f } else { !f })
        } else if let Some(fwd) = &info.fwd {
            // Chained base edge, pre-directed at compile time (no per-row
            // edge reversal).
            let e = if st.forward { fwd } else { info.rev.as_ref().expect("rev precomputed") };
            owned = self.db.traverse(from, e);
            &owned
        } else {
            self.derived_adj
                .get(&st.edge)
                .map(|&(adj, flip)| adj.neighbors(from, st.forward ^ flip))
                .unwrap_or(&[])
        };
        for &next in neighbors {
            scanned[depth] += 1;
            if self.accepts(st.to_slot, next) {
                kept[depth] += 1;
                row[st.to_slot - sp.lo] = next;
                self.exec_steps(sp, na, row, depth + 1, out, scanned, kept);
            }
        }
    }

    /// The legacy AST-walking span join, anchored by the planner heuristic
    /// (cost-based degrades to MinExtent here — the interpreter has no
    /// ordered pipeline to follow). Kept intact as the E17 baseline and
    /// the closure-context machinery.
    fn join_span_interp(&self, lo: usize, hi: usize) -> Vec<Vec<Oid>> {
        let anchor = match self.planner {
            PlannerMode::MinExtent | PlannerMode::CostBased => (lo..hi)
                .min_by_key(|&i| self.candidate_count_estimate(i))
                .unwrap(),
            PlannerMode::Leftmost => lo,
        };
        let mut sp = obs::trace::span("oql.join");
        sp.attr("lo", lo as i64);
        sp.attr("hi", hi as i64);
        sp.attr("anchor", anchor as i64);
        let cands = self.candidates(anchor);
        sp.attr("rows_in", cands.len() as i64);
        if let Some(a) = obs::account::active() {
            a.add_rows_scanned(cands.len() as u64);
        }
        let rows = if self.pool.is_sequential(cands.len()) {
            self.join_span_rows(&cands, lo, hi, anchor)
        } else {
            self.pool
                .par_chunk_map(&cands, |chunk| self.join_span_rows(chunk, lo, hi, anchor))
                .concat()
        };
        sp.attr("rows_out", rows.len() as i64);
        if obs::metrics_enabled() {
            obs::metrics::counter("oql.join.evals").inc();
            obs::metrics::counter("oql.join.rows_out").add(rows.len() as u64);
        }
        rows
    }

    /// The span join restricted to a subset of the anchor's candidates.
    fn join_span_rows(
        &self,
        cands: &[Oid],
        lo: usize,
        hi: usize,
        anchor: usize,
    ) -> Vec<Vec<Oid>> {
        // Rows are built as [anchor, anchor+1, …, hi-1, anchor-1, …, lo]
        // then reordered.
        let mut rows: Vec<Vec<Oid>> = cands.iter().map(|&o| vec![o]).collect();
        for to in anchor + 1..hi {
            let row_pos = to - anchor - 1; // previous slot's position
            rows = self.extend(rows, to - 1, to, to - 1, row_pos);
            if rows.is_empty() {
                return rows;
            }
        }
        let right_len = hi - anchor;
        for offset in 1..=anchor.saturating_sub(lo) {
            let to = anchor - offset;
            // We extend from slot `to + 1`, whose position depends on side:
            // position 0 holds `anchor`; leftward slots are appended after
            // the rightward ones.
            let row_pos = if offset == 1 { 0 } else { right_len + offset - 2 };
            rows = self.extend(rows, to + 1, to, to, row_pos);
            if rows.is_empty() {
                return rows;
            }
        }
        // Reorder each row into slot order lo..hi.
        rows.into_iter()
            .map(|row| {
                let mut ordered = vec![Oid(0); hi - lo];
                for (pos, &oid) in row.iter().enumerate() {
                    let slot = if pos < right_len {
                        anchor + pos
                    } else {
                        anchor - (pos - right_len + 1)
                    };
                    ordered[slot - lo] = oid;
                }
                ordered
            })
            .collect()
    }

    /// Evaluate a non-cyclic context: all retention spans joined, widened,
    /// unioned, and subsumption-filtered.
    fn eval_flat(&self, name: &str, sp: &mut obs::trace::Span) -> Subdatabase {
        let width = self.ctx.slots.len();
        let mut sd = Subdatabase::new(name, self.intension());
        // Collect every span's rows first and bulk-build the pattern set:
        // `set_patterns` collects through `BTreeSet::from_iter`, whose
        // sort-then-bulk-load path beats one-at-a-time tree inserts by a
        // wide margin on join-sized extensions.
        let mut all: Vec<ExtPattern> = Vec::new();
        for &(lo, hi) in &self.ctx.spans {
            for row in self.join_span(lo, hi) {
                let mut comps = vec![None; width];
                for (i, oid) in row.into_iter().enumerate() {
                    comps[lo + i] = Some(oid);
                }
                all.push(ExtPattern::new(comps));
            }
        }
        sd.set_patterns(all);
        let before = sd.len();
        sd.retain_maximal();
        let subsumed = before - sd.len();
        sp.attr("subsumed", subsumed as i64);
        if subsumed > 0 && obs::metrics_enabled() {
            obs::metrics::counter("oql.subsume.eliminated").add(subsumed as u64);
        }
        sd
    }

    /// The intensional pattern of the (non-cyclic) result.
    fn intension(&self) -> Intension {
        let mut int = Intension::new(
            self.ctx
                .slots
                .iter()
                .map(|s| SlotDef {
                    name: s.name.clone(),
                    base: s.base,
                    source: match &s.derived {
                        Some((subdb, slot)) => {
                            SlotSource::Derived { subdb: subdb.clone(), slot: slot.clone() }
                        }
                        None => SlotSource::Base,
                    },
                    attrs: s.attr_filter.clone(),
                })
                .collect(),
        );
        for i in 0..self.ctx.edges.len() {
            int.add_edge(i, i + 1);
        }
        int
    }

    /// Evaluate the context expression into a subdatabase named `name`.
    pub fn eval(&self, name: &str) -> Subdatabase {
        let mut sp = obs::trace::span("oql.context");
        sp.label(|| name.to_string());
        let sd = match &self.ctx.closure {
            None => self.eval_flat(name, &mut sp),
            Some((spec, cycle)) => match self.exec {
                ExecMode::Compiled if self.plan.closure.is_some() => {
                    self.eval_closure_kernel(name, &mut sp).0
                }
                _ => self.eval_closure(name, spec.iterations, cycle, &mut sp),
            },
        };
        sp.attr("rows_out", sd.len() as i64);
        if let Some(a) = obs::account::active() {
            a.add_patterns_built(sd.len() as u64);
        }
        sd
    }

    /// One closure step: from a root instance of slot 0, join the full
    /// chain and come back to slot 0 over the cycle edge, yielding the
    /// next-level instances.
    fn closure_step(&self, root: Oid) -> Vec<Oid> {
        let n = self.ctx.slots.len();
        let mut rows = vec![vec![root]];
        for to in 1..n {
            rows = self.extend(rows, to - 1, to, to - 1, to - 1);
            if rows.is_empty() {
                return Vec::new();
            }
        }
        let (_, cycle) = self.ctx.closure.as_ref().expect("closure_step needs a cycle");
        let mut out: Vec<Oid> = Vec::new();
        for row in rows {
            let last = *row.last().expect("non-empty row");
            for next in self.step(usize::MAX, cycle, last, true) {
                if self.accepts(0, next) {
                    out.push(next);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evaluate a cyclic expression: builds the instance hierarchies of
    /// §5.2. The runtime intension is `C, C_1, …, C_k` where `C` is the
    /// cycle class and `k` is data-dependent ("the intensional pattern of
    /// the derived subdatabase is determined at runtime") or capped by the
    /// `^N` iteration count. Patterns are the *maximal* root-to-leaf chains
    /// (shorter chains are parts of longer ones and are dropped, matching
    /// the paper's braced iteration semantics); cyclic data is cut rather
    /// than diverging (the paper assumes acyclic instance relationships).
    fn eval_closure(
        &self,
        name: &str,
        iterations: Option<u32>,
        _cycle: &REdgeKind,
        sp: &mut obs::trace::Span,
    ) -> Subdatabase {
        let max_levels = iterations.map(|n| n as usize + 1);
        let mut memo: FxHashMap<Oid, Vec<Oid>> = FxHashMap::default();
        let mut chains: Vec<Vec<Oid>> = Vec::new();
        let mut steps: u64 = 0;
        let roots = self.candidates(0);
        sp.attr("roots", roots.len() as i64);
        for root in roots {
            // DFS over the successor graph, emitting maximal chains.
            let mut stack: Vec<Vec<Oid>> = vec![vec![root]];
            while let Some(chain) = stack.pop() {
                let cur = *chain.last().expect("non-empty chain");
                let at_cap = max_levels.is_some_and(|m| chain.len() >= m);
                let nexts: Vec<Oid> = if at_cap {
                    Vec::new()
                } else {
                    memo.entry(cur)
                        .or_insert_with(|| {
                            steps += 1;
                            self.closure_step(cur)
                        })
                        .iter()
                        .copied()
                        .filter(|n| !chain.contains(n)) // cycle protection
                        .collect()
                };
                if nexts.is_empty() {
                    chains.push(chain);
                } else {
                    for n in nexts {
                        let mut c = chain.clone();
                        c.push(n);
                        stack.push(c);
                    }
                }
            }
        }
        let width = chains.iter().map(Vec::len).max().unwrap_or(1);
        sp.attr("steps", steps as i64);
        sp.attr("chains", chains.len() as i64);
        sp.attr("width", width as i64);
        if obs::metrics_enabled() {
            obs::metrics::counter("oql.closure.steps").add(steps);
        }
        let mut sd = Subdatabase::new(name, self.closure_intension(width));
        for chain in chains {
            let mut comps = vec![None; width];
            for (i, oid) in chain.into_iter().enumerate() {
                comps[i] = Some(oid);
            }
            sd.insert(ExtPattern::new(comps));
        }
        let before = sd.len();
        sd.retain_maximal();
        let subsumed = before - sd.len();
        sp.attr("subsumed", subsumed as i64);
        if subsumed > 0 && obs::metrics_enabled() {
            obs::metrics::counter("oql.subsume.eliminated").add(subsumed as u64);
        }
        sd
    }

    /// The runtime intension of a closure result at the given width:
    /// `C, C_1, …, C_{width-1}` over the cycle class (§5.2), consecutive
    /// slots linked.
    pub fn closure_intension(&self, width: usize) -> Intension {
        let cls = &self.ctx.slots[0];
        let slot_defs: Vec<SlotDef> = (0..width)
            .map(|lvl| SlotDef {
                name: if lvl == 0 { cls.name.clone() } else { format!("{}_{lvl}", cls.name) },
                base: cls.base,
                source: match &cls.derived {
                    Some((subdb, slot)) => {
                        SlotSource::Derived { subdb: subdb.clone(), slot: slot.clone() }
                    }
                    None => SlotSource::Base,
                },
                attrs: cls.attr_filter.clone(),
            })
            .collect();
        let mut int = Intension::new(slot_defs);
        for i in 0..width.saturating_sub(1) {
            int.add_edge(i, i + 1);
        }
        int
    }

    /// Hoisted `!`-stage candidate lists for the compiled chain span
    /// (computed once per fixpoint, not once per frontier chunk).
    fn closure_na(&self) -> Vec<Option<Vec<Oid>>> {
        let chain = &self.plan.closure.as_ref().expect("closure plan").chain;
        chain
            .steps
            .iter()
            .map(|st| if st.nonassoc { Some(self.candidates(st.to_slot)) } else { None })
            .collect()
    }

    /// Compute the successor lists for a batch of slot-0 nodes: run the
    /// fused chain join with the batch as (unchecked) anchor candidates,
    /// then the cycle step from each produced row's last slot, filtered by
    /// slot 0's acceptance — exactly [`closure_step`](Self::closure_step)
    /// per node, but one batched join instead of per-node re-joins.
    /// Returns one `(node, sorted deduped successors)` entry per input
    /// node, in input order.
    fn closure_expand(&self, nodes: &[Oid], na: &[Option<Vec<Oid>>]) -> Vec<(Oid, Vec<Oid>)> {
        let n = self.ctx.slots.len();
        let (_, cycle) = self.ctx.closure.as_ref().expect("closure context");
        let mut out: Vec<(Oid, Vec<Oid>)> =
            nodes.iter().map(|&o| (o, Vec::new())).collect();
        if n == 1 {
            // Single-slot chain: the cycle step is the whole join.
            for (o, succs) in out.iter_mut() {
                succs.extend(
                    self.step(usize::MAX, cycle, *o, true)
                        .into_iter()
                        .filter(|&s| self.accepts(0, s)),
                );
            }
        } else {
            let chain = &self.plan.closure.as_ref().expect("closure plan").chain;
            let pos: FxHashMap<Oid, usize> =
                nodes.iter().enumerate().map(|(i, &o)| (o, i)).collect();
            let (rows, _, _) = self.exec_span_rows(chain, nodes, na);
            for row in rows {
                let i = pos[&row[0]];
                let last = row[n - 1];
                for s in self.step(usize::MAX, cycle, last, true) {
                    if self.accepts(0, s) {
                        out[i].1.push(s);
                    }
                }
            }
        }
        for (_, succs) in out.iter_mut() {
            succs.sort_unstable();
            succs.dedup();
        }
        out
    }

    /// Batched successor computation with pool dispatch (chunk-order merge
    /// keeps output independent of thread count). Nodes must be live
    /// instances of the cycle class; exposed for incremental maintenance.
    pub fn closure_succ_batch(&self, nodes: &[Oid]) -> Vec<(Oid, Vec<Oid>)> {
        if nodes.is_empty() {
            return Vec::new();
        }
        let na = self.closure_na();
        if self.pool.is_sequential(nodes.len()) {
            self.closure_expand(nodes, &na)
        } else {
            self.pool.par_chunk_map(nodes, |c| self.closure_expand(c, &na)).concat()
        }
    }

    /// The frontier-parallel semi-naive fixpoint: starting from the slot-0
    /// candidate set, expand only the nodes discovered in the previous
    /// round (the delta frontier) until no new nodes appear — or until the
    /// `^N` round bound, past which no successor list can be consulted (a
    /// node at chain position `p` has fixpoint depth ≤ `p`, and the DFS
    /// only reads successors at positions ≤ `N - 1`).
    fn closure_fixpoint(&self, state: &mut ClosureState) {
        let plan = self.plan.closure.as_ref().expect("closure plan");
        let mut tsp = obs::trace::span("oql.closure");
        tsp.attr("est_rounds", plan.est_rounds.round() as i64);
        tsp.attr("est_reach", plan.est_reach.round() as i64);
        let na = self.closure_na();
        state.roots = self.candidates(0);
        tsp.attr("roots", state.roots.len() as i64);
        let mut frontier: Vec<Oid> = state.roots.clone();
        let mut visited: FxHashSet<Oid> = frontier.iter().copied().collect();
        let mut rounds: u64 = 0;
        let mut steps: u64 = 0;
        while !frontier.is_empty() {
            if plan.max_levels.is_some_and(|m| rounds >= m.saturating_sub(1) as u64) {
                break;
            }
            if obs::metrics_enabled() {
                obs::metrics::histogram("oql.closure.frontier").record(frontier.len() as u64);
            }
            let results = if self.pool.is_sequential(frontier.len()) {
                self.closure_expand(&frontier, &na)
            } else {
                self.pool
                    .par_chunk_map(&frontier, |c| self.closure_expand(c, &na))
                    .concat()
            };
            steps += frontier.len() as u64;
            let mut next: Vec<Oid> = Vec::new();
            for (node, succs) in results {
                for &s in &succs {
                    if visited.insert(s) {
                        next.push(s);
                    }
                }
                state.succ.insert(node, succs);
            }
            next.sort_unstable();
            if tsp.on() {
                let mut c = obs::trace::span("oql.closure.round");
                c.attr("round", rounds as i64);
                c.attr("frontier", frontier.len() as i64);
                c.attr("new", next.len() as i64);
            }
            frontier = next;
            rounds += 1;
        }
        tsp.attr("rounds", rounds as i64);
        tsp.attr("reach", visited.len() as i64);
        tsp.attr("steps", steps as i64);
        if obs::metrics_enabled() {
            obs::metrics::counter("oql.closure.steps").add(steps);
        }
        if let Some(a) = obs::account::active() {
            a.add_closure_rounds(rounds);
            a.add_rows_scanned(steps);
        }
    }

    /// DFS the successor relation from `roots`, emitting the maximal
    /// root-to-leaf chains (per-path cycle cut, `^N` length cap). Nodes
    /// missing from `succ` are computed on demand (and recorded) — the
    /// incremental path reuses this after pruning stale entries.
    pub fn closure_chains(
        &self,
        roots: &[Oid],
        succ: &mut FxHashMap<Oid, Vec<Oid>>,
    ) -> Vec<Vec<Oid>> {
        let max_levels = self
            .ctx
            .closure
            .as_ref()
            .and_then(|(spec, _)| spec.iterations.map(|i| i as usize + 1));
        let mut chains = Vec::new();
        let mut path: Vec<Oid> = Vec::new();
        for &root in roots {
            self.dfs_chains(root, &mut path, succ, max_levels, &mut chains);
            debug_assert!(path.is_empty());
        }
        chains
    }

    fn dfs_chains(
        &self,
        node: Oid,
        path: &mut Vec<Oid>,
        succ: &mut FxHashMap<Oid, Vec<Oid>>,
        max_levels: Option<usize>,
        out: &mut Vec<Vec<Oid>>,
    ) {
        path.push(node);
        let at_cap = max_levels.is_some_and(|m| path.len() >= m);
        let nexts: Vec<Oid> = if at_cap {
            Vec::new()
        } else {
            if !succ.contains_key(&node) {
                let s = self.closure_step(node);
                succ.insert(node, s);
            }
            succ[&node].iter().copied().filter(|n| !path.contains(n)).collect()
        };
        if nexts.is_empty() {
            out.push(path.clone());
        } else {
            for n in nexts {
                self.dfs_chains(n, path, succ, max_levels, out);
            }
        }
        path.pop();
    }

    /// Materialize closure chains into a subdatabase: bulk sorted pattern
    /// load, **no subsumption pass** — a chain is emitted only when its tip
    /// has no admissible successor, so no emitted chain is a positional
    /// prefix of another from the same root, and chains from different
    /// roots differ at slot 0. (The legacy path keeps `retain_maximal`; the
    /// equivalence tests pin identical output.)
    pub fn closure_subdb(&self, name: &str, chains: Vec<Vec<Oid>>) -> Subdatabase {
        let width = chains.iter().map(Vec::len).max().unwrap_or(1);
        let mut sd = Subdatabase::new(name, self.closure_intension(width));
        let pats: Vec<ExtPattern> = chains
            .into_iter()
            .map(|chain| {
                let mut comps = vec![None; width];
                for (i, oid) in chain.into_iter().enumerate() {
                    comps[i] = Some(oid);
                }
                ExtPattern::new(comps)
            })
            .collect();
        sd.set_patterns(pats);
        sd
    }

    /// The compiled closure kernel (DESIGN.md §11): frontier fixpoint over
    /// the successor relation, then one DFS emitting maximal chains.
    /// Returns the provenance state alongside the result so rule caches
    /// can maintain the fixpoint incrementally.
    fn eval_closure_kernel(
        &self,
        name: &str,
        sp: &mut obs::trace::Span,
    ) -> (Subdatabase, ClosureState) {
        let mut state = ClosureState::default();
        self.closure_fixpoint(&mut state);
        sp.attr("roots", state.roots.len() as i64);
        let roots = std::mem::take(&mut state.roots);
        let chains = self.closure_chains(&roots, &mut state.succ);
        state.roots = roots;
        state.width = chains.iter().map(Vec::len).max().unwrap_or(1);
        sp.attr("chains", chains.len() as i64);
        sp.attr("width", state.width as i64);
        let sd = self.closure_subdb(name, chains);
        (sd, state)
    }

    /// Evaluate a closure context through the compiled kernel, returning
    /// the result *and* the successor-relation provenance
    /// ([`ClosureState`]) that `rules::maintain` caches for incremental
    /// fixpoint maintenance. Always uses the compiled kernel (the
    /// `DOOD_EXEC` ablation only steers [`eval`](Self::eval)).
    pub fn eval_closure_state(&self, name: &str) -> (Subdatabase, ClosureState) {
        let mut sp = obs::trace::span("oql.context");
        sp.label(|| name.to_string());
        let (sd, state) = self.eval_closure_kernel(name, &mut sp);
        sp.attr("rows_out", sd.len() as i64);
        if let Some(a) = obs::account::active() {
            a.add_patterns_built(sd.len() as u64);
        }
        (sd, state)
    }

    /// Whether `oid` can currently seed a chain (live instance of the
    /// cycle class passing slot 0's membership + condition).
    pub fn closure_root_ok(&self, oid: Oid) -> bool {
        self.live_in_slot(0, oid) && self.accepts(0, oid)
    }

    /// The slot-0 nodes whose successor lists may differ from a cached
    /// fixpoint, given the dirty object set: for each chain position `k`,
    /// join the chain prefix `[0, k+1)` backward from the dirty objects
    /// that can bind position `k` (anchor unchecked — a flipped condition
    /// or dead membership must still tear down old derivations), plus, at
    /// the last position, the reverse-cycle predecessors of dirty slot-0
    /// objects (an acceptance flip on `s` changes every list that reaches
    /// `s` over the cycle edge). Completeness follows from the leftmost
    /// change position of any vanished or appearing derivation row: all
    /// positions strictly left of it are intact in current data, so the
    /// backward join from the dirty witness reaches the origin.
    pub fn closure_affected(&self, dirty: &BTreeSet<Oid>) -> Vec<Oid> {
        let n = self.ctx.slots.len();
        let (_, cycle) = self.ctx.closure.as_ref().expect("closure context");
        let mut out: Vec<Oid> = Vec::new();
        for k in 0..n {
            let mut anchor: Vec<Oid> =
                dirty.iter().copied().filter(|&o| self.live_in_slot(k, o)).collect();
            if k == n - 1 {
                let rev = dirty
                    .iter()
                    .copied()
                    .filter(|&o| self.live_in_slot(0, o))
                    .flat_map(|o| self.step(usize::MAX, cycle, o, false))
                    .filter(|&l| self.live_in_slot(n - 1, l));
                anchor.extend(rev);
                anchor.sort_unstable();
                anchor.dedup();
            }
            if anchor.is_empty() {
                continue;
            }
            if k == 0 {
                out.extend(anchor);
                continue;
            }
            let spp = crate::plan::plan_span_anchored(
                0,
                k + 1,
                k,
                &self.plan.inputs,
                &self.plan.edges,
            );
            let na: Vec<Option<Vec<Oid>>> = spp
                .steps
                .iter()
                .map(|st| if st.nonassoc { Some(self.candidates(st.to_slot)) } else { None })
                .collect();
            let (rows, _, _) = self.exec_span_rows(&spp, &anchor, &na);
            out.extend(rows.into_iter().map(|r| r[0]));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The successor relation a closure fixpoint computed, exposed as
/// provenance for incremental maintenance: `rules::maintain` caches it per
/// closure rule and extends/prunes it on deltas instead of recomputing the
/// fixpoint (DESIGN.md §11).
#[derive(Debug, Clone, Default)]
pub struct ClosureState {
    /// Per expanded node: its sorted, deduped successor list (the chain
    /// join from the node plus the cycle step, slot-0-filtered). Nodes
    /// with no successors carry an empty list.
    pub succ: FxHashMap<Oid, Vec<Oid>>,
    /// The root set the chains started from (sorted slot-0 candidates).
    pub roots: Vec<Oid>,
    /// The result's intension width (longest chain).
    pub width: usize,
}

/// Invert a resolved edge for right-to-left traversal.
fn reverse_edge(e: &dood_core::schema::ResolvedEdge) -> dood_core::schema::ResolvedEdge {
    use dood_core::schema::ResolvedEdge::*;
    match e {
        Assoc { up_x, assoc, forward, up_y } => Assoc {
            up_x: up_y.clone(),
            assoc: *assoc,
            forward: !forward,
            up_y: up_x.clone(),
        },
        Identity { up_x, down_y } => Identity {
            up_x: down_y.iter().rev().copied().collect(),
            down_y: up_x.iter().rev().copied().collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;
    use crate::resolve::resolve_context;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::DType;

    /// A miniature database: teachers teach sections of courses.
    fn setup() -> (Database, SubdbRegistry) {
        let mut b = SchemaBuilder::new();
        b.e_class("Teacher");
        b.e_class("Section");
        b.e_class("Course");
        b.d_class("c#", DType::Int);
        b.attr_named("Course", "c#", "c#");
        b.aggregate_named("Teacher", "Section", "Teaches");
        b.aggregate_single("Section", "Course");
        let mut db = Database::new(b.build().unwrap());
        let s = db.schema_arc();
        let teacher = s.class_by_name("Teacher").unwrap();
        let section = s.class_by_name("Section").unwrap();
        let course = s.class_by_name("Course").unwrap();
        let teaches = s.own_link_by_name(teacher, "Teaches").unwrap();
        let of_course = s.own_link_by_name(section, "Course").unwrap();
        // t1 -> s1 -> c1 ; t2 -> s2 -> c1 ; t3 -> s3 (no course) ; c2 alone.
        let t1 = db.new_object(teacher).unwrap();
        let t2 = db.new_object(teacher).unwrap();
        let t3 = db.new_object(teacher).unwrap();
        let s1 = db.new_object(section).unwrap();
        let s2 = db.new_object(section).unwrap();
        let s3 = db.new_object(section).unwrap();
        let c1 = db.new_object(course).unwrap();
        let c2 = db.new_object(course).unwrap();
        db.set_attr(c1, "c#", Value::Int(6100)).unwrap();
        db.set_attr(c2, "c#", Value::Int(5100)).unwrap();
        db.associate(teaches, t1, s1).unwrap();
        db.associate(teaches, t2, s2).unwrap();
        db.associate(teaches, t3, s3).unwrap();
        db.associate(of_course, s1, c1).unwrap();
        db.associate(of_course, s2, c1).unwrap();
        (db, SubdbRegistry::new())
    }

    fn eval(src: &str, db: &Database, reg: &SubdbRegistry) -> Subdatabase {
        let e = Parser::parse_context_expr(src).unwrap();
        let r = resolve_context(&e, db.schema(), reg).unwrap();
        Evaluator::new(&r, db, reg).unwrap().eval("test")
    }

    #[test]
    fn association_operator_inner_join() {
        let (db, reg) = setup();
        let sd = eval("Teacher * Section * Course", &db, &reg);
        // Only the two fully-connected chains survive (t3's section has no
        // course).
        assert_eq!(sd.len(), 2);
        assert!(sd.patterns().all(|p| p.pattern_type().arity() == 3));
    }

    #[test]
    fn intra_class_condition_filters() {
        let (db, reg) = setup();
        let sd = eval("Section * Course [c# >= 6000 and c# < 7000]", &db, &reg);
        assert_eq!(sd.len(), 2); // both sections of c1 (6100)
        let sd2 = eval("Section * Course [c# < 6000]", &db, &reg);
        assert_eq!(sd2.len(), 0); // c2 has no sections
    }

    #[test]
    fn braces_retain_partial_patterns() {
        let (db, reg) = setup();
        // {Teacher * Section} * Course: teacher-section pairs survive even
        // without a course, unless part of a full chain.
        let sd = eval("{Teacher * Section} * Course", &db, &reg);
        let types = sd.pattern_types();
        assert_eq!(sd.len(), 3);
        assert_eq!(types.len(), 2); // (T,S,C) ×2 and (T,S) ×1
    }

    #[test]
    fn non_association_operator() {
        let (db, reg) = setup();
        // Sections NOT of any course paired with every course? The paper's
        // `!` relates instance pairs that are not associated.
        let sd = eval("Section ! Course", &db, &reg);
        // s1: not linked to c2 → (s1,c2); s2: (s2,c2); s3: (s3,c1),(s3,c2).
        assert_eq!(sd.len(), 4);
    }

    #[test]
    fn closure_until_null() {
        // Prerequisite chain: c1 <- c2 <- c3 (c3's prereq is c2, …).
        let mut b = SchemaBuilder::new();
        b.e_class("Course");
        b.aggregate_named("Course", "Course", "Prereq");
        let mut db = Database::new(b.build().unwrap());
        let course = db.schema().class_by_name("Course").unwrap();
        let prereq = db.schema().assocs()[0].id;
        let c1 = db.new_object(course).unwrap();
        let c2 = db.new_object(course).unwrap();
        let c3 = db.new_object(course).unwrap();
        db.associate(prereq, c3, c2).unwrap();
        db.associate(prereq, c2, c1).unwrap();
        let reg = SubdbRegistry::new();
        let sd = eval("Course ^*", &db, &reg);
        // Maximal chains: (c3,c2,c1) plus roots c1 (no prereq) and c2?
        // c2's chain (c2,c1) is part of (c3,c2,c1)? No — "part of" compares
        // positionally: (c2,c1,Null) vs (c3,c2,c1) differ at slot 0, so both
        // remain. c1 alone: (c1,Null,Null).
        assert_eq!(sd.intension.width(), 3);
        assert_eq!(sd.len(), 3);
        let widths: Vec<u32> = sd.patterns().map(|p| p.pattern_type().arity()).collect();
        assert_eq!(widths.iter().sum::<u32>(), 6); // 3 + 2 + 1
    }

    #[test]
    fn closure_bounded_iterations() {
        let mut b = SchemaBuilder::new();
        b.e_class("Course");
        b.aggregate_named("Course", "Course", "Prereq");
        let mut db = Database::new(b.build().unwrap());
        let course = db.schema().class_by_name("Course").unwrap();
        let prereq = db.schema().assocs()[0].id;
        let cs: Vec<Oid> = (0..5).map(|_| db.new_object(course).unwrap()).collect();
        for w in cs.windows(2) {
            db.associate(prereq, w[0], w[1]).unwrap();
        }
        let reg = SubdbRegistry::new();
        let sd = eval("Course ^2", &db, &reg);
        // Max chain length = 3 slots (level 0 + 2 iterations).
        assert_eq!(sd.intension.width(), 3);
        assert!(sd.patterns().all(|p| p.pattern_type().arity() <= 3));
    }

    #[test]
    fn closure_cycle_protection() {
        // a -> b -> a: cyclic instance data must terminate.
        let mut b = SchemaBuilder::new();
        b.e_class("N");
        b.aggregate_named("N", "N", "next");
        let mut db = Database::new(b.build().unwrap());
        let n = db.schema().class_by_name("N").unwrap();
        let next = db.schema().assocs()[0].id;
        let x = db.new_object(n).unwrap();
        let y = db.new_object(n).unwrap();
        db.associate(next, x, y).unwrap();
        db.associate(next, y, x).unwrap();
        let reg = SubdbRegistry::new();
        let sd = eval("N ^*", &db, &reg);
        // Chains (x,y) and (y,x), cut at revisit.
        assert_eq!(sd.intension.width(), 2);
        assert_eq!(sd.len(), 2);
    }

    #[test]
    fn planner_anchor_choice_does_not_change_result() {
        let (db, reg) = setup();
        // Evaluate both orientations; counts must agree.
        let a = eval("Teacher * Section * Course", &db, &reg);
        let b = eval("Course * Section * Teacher", &db, &reg);
        assert_eq!(a.len(), b.len());
        // And both planner modes agree (E9 ablation correctness).
        let e = Parser::parse_context_expr("Teacher * Section * Course").unwrap();
        let r = resolve_context(&e, db.schema(), &reg).unwrap();
        let min = Evaluator::new(&r, &db, &reg).unwrap().eval("x");
        let left = Evaluator::new(&r, &db, &reg)
            .unwrap()
            .with_planner(PlannerMode::Leftmost)
            .eval("x");
        assert_eq!(min.to_vec(), left.to_vec());
    }

    #[test]
    fn index_backed_candidates_match_scan(){
        // E10 ablation correctness: with and without an ordered attribute
        // index, intra-class conditions return identical results.
        let (mut db, reg) = setup();
        let scanned = eval("Section * Course [c# >= 6000 and c# < 7000]", &db, &reg);
        let scanned_single = eval("Section * Course [c# >= 6000]", &db, &reg);
        let course = db.schema().class_by_name("Course").unwrap();
        db.create_attr_index(course, "c#").unwrap();
        // The compound predicate is not index-served (still correct)…
        let after = eval("Section * Course [c# >= 6000 and c# < 7000]", &db, &reg);
        assert_eq!(scanned.to_vec(), after.to_vec());
        // …the single comparison is.
        let e = Parser::parse_context_expr("Section * Course [c# >= 6000]").unwrap();
        let r = resolve_context(&e, db.schema(), &reg).unwrap();
        let ev = Evaluator::new(&r, &db, &reg).unwrap();
        assert!(ev.index_scan.iter().any(|h| h.is_some()), "index hint should fire");
        assert_eq!(ev.eval("x").to_vec(), scanned_single.to_vec());
    }

    #[test]
    fn restrict_slot_drops_dead_oids() {
        // A deleted oid must not bind a slot: a slot-restricted evaluation
        // with the deleted object in the restriction set returns nothing
        // (it cannot resurrect patterns through the other slots).
        let (mut db, reg) = setup();
        let teacher = db.schema().class_by_name("Teacher").unwrap();
        let t1 = db.extent(teacher).next().unwrap();
        db.delete_object(t1).unwrap();
        let e = Parser::parse_context_expr("Teacher * Section * Course").unwrap();
        let r = resolve_context(&e, db.schema(), &reg).unwrap();
        let sd = Evaluator::new(&r, &db, &reg)
            .unwrap()
            .restrict_slot(0, BTreeSet::from([t1]))
            .eval("x");
        assert_eq!(sd.len(), 0, "deleted oid bound a slot");
        // A live oid of the wrong class is dropped just the same.
        let course = db.schema().class_by_name("Course").unwrap();
        let c = db.extent(course).next().unwrap();
        let sd = Evaluator::new(&r, &db, &reg)
            .unwrap()
            .restrict_slot(0, BTreeSet::from([c]))
            .eval("x");
        assert_eq!(sd.len(), 0, "wrong-class oid bound a slot");
    }

    #[test]
    fn eval_delta_matches_restricted_full() {
        // eval_delta(dirty) must equal exactly the full-evaluation patterns
        // that contain at least one dirty component (before subsumption).
        let (db, reg) = setup();
        let teacher = db.schema().class_by_name("Teacher").unwrap();
        let t1 = db.extent(teacher).next().unwrap();
        for src in ["Teacher * Section * Course", "{Teacher * Section} * Course"] {
            let e = Parser::parse_context_expr(src).unwrap();
            let r = resolve_context(&e, db.schema(), &reg).unwrap();
            let full = Evaluator::new(&r, &db, &reg).unwrap().eval("x");
            let dirty = BTreeSet::from([t1]);
            let delta = Evaluator::new(&r, &db, &reg).unwrap().eval_delta("x", &dirty);
            let expect: BTreeSet<_> = full
                .patterns()
                .filter(|p| p.components().iter().flatten().any(|o| dirty.contains(o)))
                .cloned()
                .collect();
            let got: BTreeSet<_> = delta.iter().cloned().collect();
            // The delta may retain rows the full eval subsumed away; every
            // expected (maximal) row must be present.
            assert!(expect.is_subset(&got), "{src}: delta missed rows");
            // And every delta row touches the dirty set.
            assert!(got
                .iter()
                .all(|p| p.components().iter().flatten().any(|o| dirty.contains(o))));
        }
    }

    #[test]
    fn eval_delta_empty_dirty_is_empty() {
        let (db, reg) = setup();
        let e = Parser::parse_context_expr("Teacher * Section * Course").unwrap();
        let r = resolve_context(&e, db.schema(), &reg).unwrap();
        let delta =
            Evaluator::new(&r, &db, &reg).unwrap().eval_delta("x", &BTreeSet::new());
        assert!(delta.is_empty());
    }
}
