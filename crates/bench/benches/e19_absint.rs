//! E19 — abstract interpretation (DESIGN.md §12): analysis throughput of
//! `rules::absint` next to the E14 base-analyzer baseline, and the
//! cold-start plan-quality experiment — with the stats registry empty,
//! do static priors recover the warmed-stats join order?
//!
//! Plan quality is measured **deterministically** in the warmed cost
//! model, not in wall-clock: for each shape we warm the EWMA registry by
//! executing the context, freeze the warmed `CompiledContext` W, then
//! replan cold (schema fallbacks), cold+priors (`install_priors`), and
//! forced-leftmost, and recost each candidate's spans under W's inputs
//! (`CompiledContext::recost_span`). `ratio = cost(candidate) /
//! cost(warmed)`; the warmed plan is the optimum of its own model, so
//! every ratio is ≥ 1.
//!
//! Verdicts:
//!
//! * **absint throughput** — `analyze_bounds` on the 200-rule chain must
//!   stay within `NS_PER_RULE_BUDGET` per rule (the base analyzer runs
//!   at ~2 µs/rule, E14);
//! * **cold-start plan quality** — static-prior plans within 1.2× the
//!   warmed plan cost on the e1/e6/e7 shapes.
//!
//! Prints `PASS`/`WARN`; exits nonzero on a miss only under
//! `DOOD_BENCH_STRICT=1` (`scripts/ci.sh` runs the smoke always and the
//! strict full run under `DOOD_E19_FULL=1`).

use dood_bench::harness::{fmt_ns, Harness, Record};
use dood_core::fxhash::FxHashSet;
use dood_core::obs::stats;
use dood_core::subdb::SubdbRegistry;
use dood_oql::parser::Parser;
use dood_oql::plan::CompiledContext;
use dood_oql::resolve::resolve_context;
use dood_oql::{Evaluator, ExecMode, PlannerMode};
use dood_rules::absint::{analyze_bounds, CardEnv};
use dood_rules::install_priors;
use dood_rules::program::Program;
use dood_store::Database;
use dood_workload::{programs, university};
use std::path::PathBuf;

/// Per-rule analysis budget for `analyze_bounds` on the 200-rule chain.
/// The base analyzer (E14) runs at ~2 µs/rule; the abstract interpreter
/// re-walks every context with interval arithmetic on top, so it gets
/// twice that.
const NS_PER_RULE_BUDGET: f64 = 4_000.0;

/// Allowed static-prior overhead over the warmed-stats plan cost.
const PLAN_BUDGET: f64 = 1.2;

/// Population scale for the plan-quality experiment (large enough that
/// every scan clears the registry's minimum-sample threshold).
const FACTOR: usize = 4;

/// The plan-quality shapes: E17's e1/e6/e7 trio (gated), plus the E9
/// skewed chain and a social follow-hop (reported).
const SHAPES: &[(&str, &str, &str, bool)] = &[
    ("e1", "university", "Teacher * Section * Course", true),
    ("e6", "university", "{Teacher * Section} * Course", true),
    ("e7", "university", "Department * Course * Section * Student", true),
    ("skew", "university", "Student * Section * Course * Department [name = 'CIS']", false),
    ("social", "social", "Person * Person [score >= 50]", false),
];

/// A synthetic chain program (the E14 scale shape): `C0` reads base
/// classes, each `Ci` reads `Ci-1`.
fn chain_program(n: usize) -> Program {
    let mut src = String::new();
    src.push_str("rule C0:\n  if context Teacher * Section then S0 (Teacher, Section)\n");
    for i in 1..n {
        src.push_str(&format!(
            "rule C{i}:\n  if context S{}:Teacher * S{}:Section then S{i} (Teacher, Section)\n",
            i - 1,
            i - 1
        ));
    }
    src.push_str(&format!("export S{}\n", n - 1));
    let (prog, diags) = Program::parse(&src);
    assert!(diags.is_empty(), "{diags:?}");
    prog
}

/// One shape's cold-start result: cost ratios over the warmed optimum.
struct Quality {
    name: &'static str,
    gated: bool,
    prior: f64,
    bare: f64,
    leftmost: f64,
}

/// Replan `resolved` under the current stats-registry state and return
/// the compiled plan.
fn plan_under(
    db: &Database,
    resolved: &dood_oql::resolve::ResolvedContext,
    reg: &SubdbRegistry,
    mode: PlannerMode,
) -> std::sync::Arc<CompiledContext> {
    Evaluator::new(resolved, db, reg).unwrap().with_planner(mode).plan_handle()
}

/// Run the cold-start experiment for one shape.
fn quality_of(
    name: &'static str,
    gated: bool,
    db: &Database,
    query: &str,
    prior_program: &Program,
) -> Quality {
    let reg = SubdbRegistry::new();
    let expr = Parser::parse_context_expr(query).unwrap();
    let resolved = resolve_context(&expr, db.schema(), &reg).unwrap();

    // Warm the registry by executing the shape, then freeze the warmed
    // plan — the optimum of the warmed cost model.
    stats::clear();
    {
        let ev = Evaluator::new(&resolved, db, &reg)
            .unwrap()
            .with_planner(PlannerMode::CostBased)
            .with_exec(ExecMode::Compiled);
        for _ in 0..3 {
            ev.eval("x");
        }
    }
    let warm = plan_under(db, &resolved, &reg, PlannerMode::CostBased);
    let warm_cost: f64 = warm.spans.iter().map(|s| s.est_cost).sum();
    let recost = |p: &CompiledContext| p.spans.iter().map(|s| warm.recost_span(s)).sum::<f64>();

    // Cold, schema fallbacks only.
    stats::clear();
    let bare = plan_under(db, &resolved, &reg, PlannerMode::CostBased);
    let leftmost = plan_under(db, &resolved, &reg, PlannerMode::Leftmost);
    // Cold + static priors from the abstract interpreter.
    install_priors(prior_program, db.schema());
    let prior = plan_under(db, &resolved, &reg, PlannerMode::CostBased);
    stats::clear();

    Quality {
        name,
        gated,
        prior: recost(&prior) / warm_cost.max(1e-9),
        bare: recost(&bare) / warm_cost.max(1e-9),
        leftmost: recost(&leftmost) / warm_cost.max(1e-9),
    }
}

fn main() {
    let mut h = Harness::new("e19_absint");
    let none = FxHashSet::default();
    let env = CardEnv::unknown();

    // Analysis throughput: the builtin corpus and the E14 chain scale.
    for (name, text) in programs::all() {
        let schema = programs::builtin_schema(name).expect("builtin");
        let (prog, diags) = Program::parse(text);
        assert!(diags.is_empty());
        h.bench(&format!("analyze/{name}"), || {
            let a = analyze_bounds(&prog, &schema, &none, &env);
            assert!(a.diags.is_empty(), "{:?}", a.diags);
            a.rules.len()
        });
    }
    let schema = university::schema();
    for n in [10usize, 50, 200] {
        let prog = chain_program(n);
        h.bench(&format!("chain/{n}rules"), || {
            let a = analyze_bounds(&prog, &schema, &none, &env);
            assert!(a.diags.is_empty(), "{:?}", a.diags);
            a.rules.len()
        });
    }
    // Prior installation is on the register hot path; track it too.
    {
        let (prog, _) = Program::parse(programs::UNIVERSITY);
        h.bench("install_priors/university", || {
            install_priors(&prog, &schema);
            stats::clear();
        });
    }

    // Cold-start plan quality (deterministic: cost-model ratios).
    let uni = university::populate(university::Size::scaled(FACTOR), 42);
    let social = programs::builtin_database("social", 42).expect("social population");
    let mut quality = Vec::new();
    for &(name, which, query, gated) in SHAPES {
        let db = if which == "social" { &social } else { &uni };
        // The prior source: the shape as a one-rule program (targets are
        // irrelevant to `install_priors`; only occurrence predicates and
        // the schema's association cardinalities matter).
        let first = query.split(['*', '{', ' ']).find(|w| !w.is_empty()).unwrap();
        let text = format!("rule R:\n  if context {query}\n  then T ({first})\n");
        let (prog, diags) = Program::parse(&text);
        assert!(diags.is_empty(), "{name}: {diags:?}");
        quality.push(quality_of(name, gated, db, query, &prog));
    }

    h.finish();
    check_verdicts(&quality);
}

/// Print the throughput and plan-quality verdicts.
fn check_verdicts(quality: &[Quality]) {
    let mut strict_fail = false;

    // Plan quality is cost-model arithmetic — meaningful even in smoke.
    let mut gated_ok = 0usize;
    let mut gated_n = 0usize;
    for q in quality {
        println!(
            "# e19 {}: static-prior {:.2}x, bare-cold {:.2}x, leftmost {:.2}x of warmed plan cost",
            q.name, q.prior, q.bare, q.leftmost
        );
        if q.gated {
            gated_n += 1;
            if q.prior <= PLAN_BUDGET {
                gated_ok += 1;
            }
        }
    }
    let verdict = if gated_ok == gated_n { "PASS" } else { "WARN" };
    println!(
        "# e19 cold-start plan quality: {verdict} — {gated_ok}/{gated_n} gated shapes ≤ {PLAN_BUDGET:.1}x warmed"
    );
    strict_fail |= verdict == "WARN";

    if std::env::var("DOOD_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        println!("# e19 throughput verdict skipped (smoke mode: timings are not meaningful)");
    } else {
        let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_default();
        let own_path = match std::env::var_os("DOOD_BENCH_JSON") {
            Some(dir) => PathBuf::from(dir).join("BENCH_e19_absint.json"),
            None => workspace.join("target/bench-json/BENCH_e19_absint.json"),
        };
        match median_of(&own_path, "e19_absint", "chain/200rules") {
            Some(total) => {
                let per_rule = total / 200.0;
                let verdict = if per_rule <= NS_PER_RULE_BUDGET { "PASS" } else { "WARN" };
                println!(
                    "# e19 absint throughput: {verdict} — {} per rule on chain/200 (budget {})",
                    fmt_ns(per_rule),
                    fmt_ns(NS_PER_RULE_BUDGET)
                );
                strict_fail |= verdict == "WARN";
            }
            None => println!(
                "# e19 throughput check skipped (missing records in {})",
                own_path.display()
            ),
        }
    }

    if strict_fail && std::env::var("DOOD_BENCH_STRICT").is_ok_and(|v| v == "1") {
        eprintln!("# e19: verdict missed under DOOD_BENCH_STRICT=1");
        std::process::exit(1);
    }
}

/// The first `group`/`bench` record's median in a JSON-lines bench file.
fn median_of(path: &PathBuf, group: &str, bench: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .filter_map(Record::from_json_line)
        .find(|r| r.group == group && r.bench == bench)
        .map(|r| r.median_ns)
}
