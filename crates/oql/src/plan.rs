//! Compilation of resolved context expressions into fused join pipelines
//! with cost-based join ordering (DESIGN.md §10).
//!
//! [`crate::eval::Evaluator`] lowers each retention span of a
//! [`crate::resolve::ResolvedContext`] into a [`SpanPlan`]: an anchor scan
//! followed by a sequence of fused [`PlanStep`] stages, each collapsing
//! association traversal, membership check, and intra-class predicate into
//! one operator. The compiled form owns all its data (predicates are
//! compiled, base edges are pre-reversed for backward traversal), so a
//! [`CompiledContext`] is cached per rule inside `rules::maintain`'s
//! `RuleCache` and shared across delta steps behind an `Arc`.
//!
//! Join order is an *interval extension* problem: slots form a path graph
//! (edge `i` connects slots `i`, `i+1`), and any cross-product-free order
//! is an anchor plus a left/right interleaving — `n · 2^(n-1)` orders for
//! an `n`-slot span. [`PlannerMode::CostBased`] enumerates them
//! exhaustively for the spans the paper's queries produce (greedy frontier
//! extension beyond [`MAX_EXHAUSTIVE`] slots), costing each order from
//! observed `core::obs::stats` averages with schema-derived fallbacks.
//! The legacy `MinExtent`/`Leftmost` heuristics survive as forced orders
//! (`DOOD_PLANNER=minextent|leftmost`) — the E9 ablation baselines.
//!
//! Plans never change results, only effort: every order produces the same
//! pattern set (`tests/plan.rs` pins compiled ≡ interpreted equivalence).

use crate::eval::{CPred, IndexScan};
use dood_core::ids::AssocId;
use dood_core::schema::ResolvedEdge;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Spans no wider than this are planned by exhaustive enumeration
/// (`n · 2^(n-1)` orders ≤ 2304 cost evaluations); wider spans fall back
/// to greedy frontier extension.
pub const MAX_EXHAUSTIVE: usize = 9;

/// How the evaluator orders each span join (ablations E9/E17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// Cost-based: enumerate anchor + interleaving orders, cost them from
    /// observed stats (schema fallbacks when cold), pick the cheapest.
    #[default]
    CostBased,
    /// Forced order: anchor at the smallest candidate set, then extend all
    /// the way right, then left (the pre-compilation default).
    MinExtent,
    /// Forced order: anchor at the leftmost slot, extend right (naive
    /// left-to-right evaluation).
    Leftmost,
}

impl PlannerMode {
    /// Read the mode from `DOOD_PLANNER` (`cost` | `minextent` |
    /// `leftmost`; unset or unknown → cost-based).
    pub fn from_env() -> Self {
        match std::env::var("DOOD_PLANNER").as_deref() {
            Ok("minextent") => PlannerMode::MinExtent,
            Ok("leftmost") => PlannerMode::Leftmost,
            _ => PlannerMode::CostBased,
        }
    }
}

/// Which executor runs span joins (ablation E17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Fused plan interpreter over the compiled pipeline (default).
    #[default]
    Compiled,
    /// Legacy AST-walking evaluation (per-stage row materialization) — the
    /// E17 baseline. Cost-based ordering degrades to MinExtent here.
    Interp,
}

impl ExecMode {
    /// Read the mode from `DOOD_EXEC` (`interp` | `ast` → interpreted;
    /// unset or anything else → compiled).
    pub fn from_env() -> Self {
        match std::env::var("DOOD_EXEC").as_deref() {
            Ok("interp") | Ok("ast") => ExecMode::Interp,
            _ => ExecMode::Compiled,
        }
    }
}

/// Cost-model inputs for one context: per-slot cardinalities and
/// selectivities, per-edge fan-outs. Populated from observed
/// `core::obs::stats` averages where available, schema-derived estimates
/// otherwise. Purely advisory — inputs steer order choice, never results.
#[derive(Debug, Clone)]
pub struct PlanInputs {
    /// Per slot: candidate count before any condition (extent size,
    /// derived-slot index size, or restriction size).
    pub cards: Vec<f64>,
    /// Per slot: estimated fraction of candidates passing the slot's
    /// intra-class condition (1.0 when unconditioned).
    pub sels: Vec<f64>,
    /// Per edge: average fan-out traversing left→right.
    pub fwd_fan: Vec<f64>,
    /// Per edge: average fan-out traversing right→left.
    pub rev_fan: Vec<f64>,
    /// Per slot: whether anything constrains the slot's candidates below
    /// its full extent (condition, index hint, derived membership, or an
    /// explicit restriction). Drives the W106 cross-product lint.
    pub constrained: Vec<bool>,
    /// Per slot: whether an ordered-index pre-filter serves the condition
    /// (anchor scans then cost output-size instead of extent-size).
    pub hinted: Vec<bool>,
}

impl PlanInputs {
    /// Effective candidate estimate for a slot (cardinality × selectivity).
    fn eff(&self, slot: usize) -> f64 {
        self.cards[slot] * self.sels[slot]
    }
}

/// Owned traversal info for one edge, resolved at compile time so the
/// executor never re-derives (or re-reverses) edges per row.
#[derive(Debug, Clone)]
pub(crate) struct EdgeInfo {
    /// `!` edge (non-association).
    pub nonassoc: bool,
    /// Plain association with no generalization climbing: `(assoc,
    /// forward)` — served straight from the store's neighbor lists.
    pub flat: Option<(AssocId, bool)>,
    /// Base edge oriented left→right (`None` for derived edges).
    pub fwd: Option<ResolvedEdge>,
    /// The same edge pre-reversed for right→left traversal.
    pub rev: Option<ResolvedEdge>,
}

/// One fused pipeline stage: traverse an edge from a bound slot, filter by
/// membership + predicate, bind the target slot.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Slot already bound when this stage runs.
    pub from_slot: usize,
    /// Slot this stage binds.
    pub to_slot: usize,
    /// Index of the traversed edge (connects `min(from,to)`,
    /// `min(from,to)+1` in the path graph).
    pub edge: usize,
    /// Whether traversal runs left→right (`to_slot > from_slot`).
    pub forward: bool,
    /// `!` stage: enumerates the target's candidates and keeps unlinked
    /// pairs instead of traversing neighbors.
    pub nonassoc: bool,
    /// Estimated bindings surviving this stage.
    pub est_rows: f64,
    /// Unconstrained cross-product stage: a `!` traversal whose target
    /// candidates are a full unconditioned extent (W106).
    pub cross: bool,
}

/// The compiled fixpoint stage for a cyclic (`^*`) context: the full
/// chain span lowered once, anchored at slot 0 so frontier batches seed it
/// directly, plus the cost-model view of the fixpoint (cycle fan-out from
/// the EWMA stats, estimated rounds and reachable-set size). Executed by
/// the frontier-parallel semi-naive kernel in `eval` (DESIGN.md §11).
#[derive(Debug, Clone)]
pub struct ClosurePlan {
    /// The chain join `[0, n)` anchored at slot 0 — each fixpoint round
    /// runs it with the frontier as the (unchecked) anchor candidates.
    pub chain: SpanPlan,
    /// Estimated per-node fan-out of the cycle edge (observed stats when
    /// warm, link-count fallback otherwise).
    pub est_fan: f64,
    /// Estimated fixpoint rounds until the frontier drains.
    pub est_rounds: f64,
    /// Estimated reachable-set size (capped at slot 0's effective extent).
    pub est_reach: f64,
    /// Stats key feeding `est_fan` (`None` for identity cycle edges).
    pub fan_key: Option<String>,
    /// `^N` bound as a chain-length cap in slots (`N + 1`); `None` = until
    /// Null.
    pub max_levels: Option<usize>,
}

/// What the evaluator hands [`compile`] to build a [`ClosurePlan`].
pub(crate) struct ClosureParts {
    pub fan_key: Option<String>,
    pub est_fan: f64,
    pub max_levels: Option<usize>,
}

/// The compiled join pipeline for one retention span `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct SpanPlan {
    /// Span start (slot index, inclusive).
    pub lo: usize,
    /// Span end (exclusive).
    pub hi: usize,
    /// The anchor slot whose candidates seed the pipeline.
    pub anchor: usize,
    /// Estimated anchor candidates (after its condition).
    pub est_anchor: f64,
    /// Estimated total work for the whole span (scan + per-stage costs).
    pub est_cost: f64,
    /// The fused stages, in execution order (`hi - lo - 1` of them).
    pub steps: Vec<PlanStep>,
}

/// The plan-drift watchdog's per-plan state (DESIGN.md §13). Shared
/// through an `Arc` so clones of a [`CompiledContext`] observe the same
/// mark: the executor flags it when observed fan-outs/selectivities leave
/// the band around the values the cost model planned with, and
/// `rules::maintain` re-plans a flagged cache entry on its next
/// evaluation instead of reusing the stale order.
#[derive(Debug, Default)]
pub struct DriftMark {
    flagged: AtomicBool,
    reported: AtomicBool,
    events: AtomicU64,
}

/// The drift band: a plan is flagged when an observed fan-out or
/// selectivity differs from the planned value by more than this ratio in
/// either direction (`DOOD_DRIFT_BAND`, default 4.0, min 1.5).
pub fn drift_band() -> f64 {
    static BAND: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *BAND.get_or_init(|| {
        std::env::var("DOOD_DRIFT_BAND")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|b| b.is_finite())
            .map(|b| b.max(1.5))
            .unwrap_or(4.0)
    })
}

impl DriftMark {
    /// Record one band breach. Returns `true` the first time this plan is
    /// flagged (callers emit the `oql.plan.drift` metric per event and the
    /// runtime diagnostic once).
    pub fn record(&self) -> bool {
        self.events.fetch_add(1, Ordering::Relaxed);
        !self.flagged.swap(true, Ordering::Relaxed)
    }

    /// Whether the plan has drifted out of its band since it was chosen.
    pub fn flagged(&self) -> bool {
        self.flagged.load(Ordering::Relaxed)
    }

    /// Whether the runtime diagnostic for this plan is still unprinted
    /// (flips on first call).
    pub fn should_report(&self) -> bool {
        !self.reported.swap(true, Ordering::Relaxed)
    }

    /// Total band breaches recorded against this plan.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }
}

/// A fully compiled context: predicates, index hints, owned edge info, and
/// a cost-ordered [`SpanPlan`] per retention span. Owns everything, so it
/// is cached per rule (behind an `Arc`) and reused across delta steps.
#[derive(Debug, Clone)]
pub struct CompiledContext {
    pub(crate) preds: Vec<Option<CPred>>,
    pub(crate) hints: Vec<Option<IndexScan>>,
    pub(crate) sel_keys: Vec<Option<String>>,
    /// Per edge: stats keys for the two traversal directions.
    pub(crate) fan_keys: Vec<Option<(String, String)>>,
    pub(crate) edges: Vec<EdgeInfo>,
    pub(crate) slot_names: Vec<String>,
    /// The plan per retention span (same order as the resolved context's
    /// span list: full span first).
    pub spans: Vec<SpanPlan>,
    /// The fixpoint stage for cyclic (`^*`) contexts.
    pub closure: Option<ClosurePlan>,
    /// The cost-model inputs the spans were ordered with.
    pub inputs: PlanInputs,
    /// The planner mode the spans were ordered with.
    pub mode: PlannerMode,
    /// The drift watchdog's mark, shared across clones of this plan.
    pub drift: Arc<DriftMark>,
}

/// Everything the evaluator hands to [`compile`] besides the cost inputs.
pub(crate) struct CompileParts {
    pub preds: Vec<Option<CPred>>,
    pub hints: Vec<Option<IndexScan>>,
    pub sel_keys: Vec<Option<String>>,
    pub fan_keys: Vec<Option<(String, String)>>,
    pub edges: Vec<EdgeInfo>,
    pub slot_names: Vec<String>,
    pub span_bounds: Vec<(usize, usize)>,
    pub closure: Option<ClosureParts>,
}

/// Compile: order every retention span under `mode` with `inputs`.
pub(crate) fn compile(
    parts: CompileParts,
    inputs: PlanInputs,
    mode: PlannerMode,
) -> CompiledContext {
    let spans: Vec<SpanPlan> = parts
        .span_bounds
        .iter()
        .map(|&(lo, hi)| plan_span(lo, hi, &inputs, &parts.edges, mode))
        .collect();
    let closure = parts.closure.map(|c| {
        let n = parts.slot_names.len();
        plan_closure(c, n, &inputs, &parts.edges)
    });
    CompiledContext {
        preds: parts.preds,
        hints: parts.hints,
        sel_keys: parts.sel_keys,
        fan_keys: parts.fan_keys,
        edges: parts.edges,
        slot_names: parts.slot_names,
        spans,
        closure,
        inputs,
        mode,
        drift: Arc::new(DriftMark::default()),
    }
}

/// Build the fixpoint stage for a cyclic context: the chain span is
/// anchored at slot 0 (the frontier seeds it), rounds and reach are
/// estimated from the cycle fan-out. A fan ≤ 1 means chains, not trees —
/// rounds scale with the extent; a fan > 1 saturates logarithmically.
fn plan_closure(
    parts: ClosureParts,
    n: usize,
    inputs: &PlanInputs,
    edges: &[EdgeInfo],
) -> ClosurePlan {
    let chain = plan_span_anchored(0, n, 0, inputs, edges);
    let reach_cap = inputs.eff(0).max(1.0);
    let est_rounds = match parts.max_levels {
        Some(m) => (m.saturating_sub(1) as f64).max(1.0),
        None if parts.est_fan > 1.05 => {
            (reach_cap.ln() / parts.est_fan.ln()).ceil().max(1.0)
        }
        None => reach_cap,
    };
    ClosurePlan {
        chain,
        est_fan: parts.est_fan,
        est_rounds,
        est_reach: reach_cap,
        fan_key: parts.fan_key,
        max_levels: parts.max_levels,
    }
}

impl CompiledContext {
    /// The plan for span `[lo, hi)`, if it is one of the retention spans.
    pub fn span(&self, lo: usize, hi: usize) -> Option<&SpanPlan> {
        self.spans.iter().find(|s| s.lo == lo && s.hi == hi)
    }

    /// Re-order every span under `mode` with the stored inputs (used by
    /// `with_planner` and after slot restrictions).
    pub(crate) fn reorder(&mut self, mode: PlannerMode) {
        self.mode = mode;
        let bounds: Vec<(usize, usize)> = self.spans.iter().map(|s| (s.lo, s.hi)).collect();
        self.spans = bounds
            .into_iter()
            .map(|(lo, hi)| plan_span(lo, hi, &self.inputs, &self.edges, mode))
            .collect();
        // The closure chain's anchor is structural (the frontier binds
        // slot 0), so only its cost annotations refresh.
        let n = self.slot_names.len();
        if let Some(c) = &mut self.closure {
            c.chain = plan_span_anchored(0, n, 0, &self.inputs, &self.edges);
        }
    }

    /// An ad-hoc plan for a delta evaluation of span `[lo, hi)` with
    /// `slot`'s candidates restricted to `card` dirty objects: the anchor
    /// is forced to the restricted slot (semi-naive evaluation starts from
    /// the delta) and the remaining order is re-costed around it.
    pub(crate) fn delta_span(&self, lo: usize, hi: usize, slot: usize, card: f64) -> SpanPlan {
        let mut inputs = self.inputs.clone();
        inputs.cards[slot] = card;
        inputs.sels[slot] = 1.0; // the restriction set is pre-filtered
        inputs.constrained[slot] = true;
        inputs.hinted[slot] = false;
        plan_span_anchored(lo, hi, slot, &inputs, &self.edges)
    }

    /// Re-cost a span plan (possibly chosen under *different* inputs)
    /// under **this** context's cost-model inputs: the order is replayed —
    /// same anchor, same left/right interleaving — and its estimated total
    /// cost under `self.inputs` is returned. This is the deterministic
    /// plan-quality metric of E19: cost a cold-start (static-prior) order
    /// with warmed-stats inputs and compare against the warmed optimum.
    /// Both contexts must compile the same resolved context shape.
    pub fn recost_span(&self, span: &SpanPlan) -> f64 {
        let dirs: Vec<bool> = span.steps.iter().map(|s| s.forward).collect();
        steps_for(span.lo, span.hi, span.anchor, &dirs, &self.inputs, &self.edges).est_cost
    }

    /// Whether any span's chosen plan contains an unconstrained
    /// cross-product stage (the W106 condition).
    pub fn has_cross_stage(&self) -> bool {
        self.spans.iter().any(|s| s.steps.iter().any(|st| st.cross))
    }

    /// A deterministic plain-text rendering of the plan tree: one line per
    /// span and stage with estimated cardinalities. The golden EXPLAIN
    /// snapshot format (`tests/plan.rs`) and the static half of
    /// `doodprof --plan`.
    pub fn describe(&self) -> String {
        let mode = match self.mode {
            PlannerMode::CostBased => "cost",
            PlannerMode::MinExtent => "minextent",
            PlannerMode::Leftmost => "leftmost",
        };
        let mut out = format!("plan mode={mode}\n");
        for s in &self.spans {
            out.push_str(&format!(
                "  span [{},{}) anchor={} cost={:.0} rows={:.0}\n",
                s.lo, s.hi, self.slot_names[s.anchor], s.est_cost, s.est_rows()
            ));
            let anchor_marks = self.slot_marks(s.anchor);
            out.push_str(&format!(
                "    scan {}{} est={:.0}\n",
                self.slot_names[s.anchor], anchor_marks, s.est_anchor
            ));
            for st in &s.steps {
                let op = if st.nonassoc { "!" } else { "->" };
                out.push_str(&format!(
                    "    step {}{}{}{}{} est={:.0}\n",
                    self.slot_names[st.from_slot],
                    op,
                    self.slot_names[st.to_slot],
                    self.slot_marks(st.to_slot),
                    if st.cross { " (cross)" } else { "" },
                    st.est_rows
                ));
            }
        }
        if let Some(c) = &self.closure {
            out.push_str(&format!(
                "  closure ^{} cycle={} fan={:.2} est_rounds={:.0} est_reach={:.0}\n",
                match c.max_levels {
                    Some(m) => (m - 1).to_string(),
                    None => "*".to_string(),
                },
                self.slot_names[0],
                c.est_fan,
                c.est_rounds,
                c.est_reach
            ));
        }
        out
    }

    /// Condition / index-hint markers for a slot, as rendered in
    /// [`describe`](Self::describe).
    fn slot_marks(&self, slot: usize) -> &'static str {
        match (&self.hints[slot], &self.preds[slot]) {
            (Some(_), _) => "[ix]",
            (None, Some(_)) => "[cond]",
            (None, None) => "",
        }
    }
}

impl SpanPlan {
    /// Estimated output rows of the whole span (last stage's estimate, or
    /// the anchor's when the span has a single slot).
    pub fn est_rows(&self) -> f64 {
        self.steps.last().map_or(self.est_anchor, |s| s.est_rows)
    }
}

/// Cost one stage: extending `rows` bindings across `edge` in direction
/// `forward` into `to`. Returns `(stage cost, surviving rows)`.
fn step_cost(
    inputs: &PlanInputs,
    edges: &[EdgeInfo],
    edge: usize,
    to: usize,
    forward: bool,
    rows: f64,
) -> (f64, f64) {
    if edges[edge].nonassoc {
        // `!` enumerates the target's (filtered) candidates per row and
        // keeps unlinked pairs — nearly all of them, in practice.
        let per_row = inputs.eff(to).max(1.0);
        (rows * per_row, rows * inputs.eff(to))
    } else {
        let fan = if forward { inputs.fwd_fan[edge] } else { inputs.rev_fan[edge] };
        (rows * fan.max(1.0), rows * fan * inputs.sels[to])
    }
}

/// Materialize the order "`anchor`, then extend per `dirs`" into costed
/// steps. `dirs[i]` = extend the frontier right (`true`) or left.
fn steps_for(
    lo: usize,
    hi: usize,
    anchor: usize,
    dirs: &[bool],
    inputs: &PlanInputs,
    edges: &[EdgeInfo],
) -> SpanPlan {
    let est_anchor = inputs.eff(anchor);
    // The anchor scan costs a full extent filter unless index-served.
    let mut cost = if inputs.hinted[anchor] { est_anchor } else { inputs.cards[anchor] };
    let mut rows = est_anchor;
    let (mut l, mut r) = (anchor, anchor);
    let mut steps = Vec::with_capacity(dirs.len());
    for &right in dirs {
        let (from, to, edge, forward) =
            if right { (r, r + 1, r, true) } else { (l, l - 1, l - 1, false) };
        let (c, next) = step_cost(inputs, edges, edge, to, forward, rows);
        cost += c;
        steps.push(PlanStep {
            from_slot: from,
            to_slot: to,
            edge,
            forward,
            nonassoc: edges[edge].nonassoc,
            est_rows: next,
            cross: edges[edge].nonassoc && !inputs.constrained[to],
        });
        rows = next;
        if right {
            r += 1;
        } else {
            l -= 1;
        }
    }
    debug_assert!(l == lo && r == hi - 1 && steps.len() == hi - lo - 1);
    SpanPlan { lo, hi, anchor, est_anchor, est_cost: cost, steps }
}

/// Exhaustive search over interleavings for a fixed anchor, with
/// cost-bound pruning. Returns the best plan no costlier than `bound`.
fn search_dirs(
    lo: usize,
    hi: usize,
    anchor: usize,
    inputs: &PlanInputs,
    edges: &[EdgeInfo],
    bound: f64,
) -> Option<SpanPlan> {
    let n = hi - lo - 1;
    let mut best: Option<(f64, Vec<bool>)> = None;
    let mut dirs: Vec<bool> = Vec::with_capacity(n);
    // Iterative DFS over (frontier, rows, cost) states; `true` branches
    // (extend right) are explored first, and strict `<` comparison keeps
    // the first-found minimum — fully deterministic.
    fn rec(
        lo: usize,
        hi: usize,
        l: usize,
        r: usize,
        rows: f64,
        cost: f64,
        inputs: &PlanInputs,
        edges: &[EdgeInfo],
        dirs: &mut Vec<bool>,
        best: &mut Option<(f64, Vec<bool>)>,
        bound: f64,
    ) {
        let limit = best.as_ref().map_or(bound, |(c, _)| (*c).min(bound));
        if cost >= limit {
            return; // costs only grow
        }
        if l == lo && r == hi - 1 {
            *best = Some((cost, dirs.clone()));
            return;
        }
        if r + 1 < hi {
            let (c, next) = step_cost(inputs, edges, r, r + 1, true, rows);
            dirs.push(true);
            rec(lo, hi, l, r + 1, next, cost + c, inputs, edges, dirs, best, bound);
            dirs.pop();
        }
        if l > lo {
            let (c, next) = step_cost(inputs, edges, l - 1, l - 1, false, rows);
            dirs.push(false);
            rec(lo, hi, l - 1, r, next, cost + c, inputs, edges, dirs, best, bound);
            dirs.pop();
        }
    }
    let scan = if inputs.hinted[anchor] { inputs.eff(anchor) } else { inputs.cards[anchor] };
    rec(
        lo,
        hi,
        anchor,
        anchor,
        inputs.eff(anchor),
        scan,
        inputs,
        edges,
        &mut dirs,
        &mut best,
        bound,
    );
    best.map(|(_, dirs)| steps_for(lo, hi, anchor, &dirs, inputs, edges))
}

/// Greedy frontier extension from a fixed anchor (wide spans): at each
/// point take the cheaper of the two frontier extensions (ties extend
/// right).
fn greedy_dirs(
    lo: usize,
    hi: usize,
    anchor: usize,
    inputs: &PlanInputs,
    edges: &[EdgeInfo],
) -> SpanPlan {
    let mut dirs = Vec::with_capacity(hi - lo - 1);
    let (mut l, mut r) = (anchor, anchor);
    let mut rows = inputs.eff(anchor);
    while !(l == lo && r == hi - 1) {
        let right = if r + 1 >= hi {
            false
        } else if l == lo {
            true
        } else {
            let (cr, _) = step_cost(inputs, edges, r, r + 1, true, rows);
            let (cl, _) = step_cost(inputs, edges, l - 1, l - 1, false, rows);
            cr <= cl
        };
        let (_, next) = if right {
            step_cost(inputs, edges, r, r + 1, true, rows)
        } else {
            step_cost(inputs, edges, l - 1, l - 1, false, rows)
        };
        dirs.push(right);
        rows = next;
        if right {
            r += 1;
        } else {
            l -= 1;
        }
    }
    steps_for(lo, hi, anchor, &dirs, inputs, edges)
}

/// The forced "extend all right, then all left" interleaving used by the
/// legacy heuristics.
fn right_then_left(lo: usize, hi: usize, anchor: usize) -> Vec<bool> {
    let mut dirs = vec![true; hi - 1 - anchor];
    dirs.extend(std::iter::repeat(false).take(anchor - lo));
    dirs
}

/// Order one span under `mode`.
pub(crate) fn plan_span(
    lo: usize,
    hi: usize,
    inputs: &PlanInputs,
    edges: &[EdgeInfo],
    mode: PlannerMode,
) -> SpanPlan {
    debug_assert!(lo < hi);
    match mode {
        PlannerMode::Leftmost => {
            steps_for(lo, hi, lo, &right_then_left(lo, hi, lo), inputs, edges)
        }
        PlannerMode::MinExtent => {
            // Match the legacy heuristic exactly: raw candidate counts
            // (ignoring selectivity), first minimum wins.
            let anchor = (lo..hi)
                .min_by(|&a, &b| {
                    inputs.cards[a].partial_cmp(&inputs.cards[b]).expect("finite cards")
                })
                .expect("non-empty span");
            steps_for(lo, hi, anchor, &right_then_left(lo, hi, anchor), inputs, edges)
        }
        PlannerMode::CostBased => {
            if hi - lo > MAX_EXHAUSTIVE {
                let anchor = (lo..hi)
                    .min_by(|&a, &b| {
                        inputs.eff(a).partial_cmp(&inputs.eff(b)).expect("finite cards")
                    })
                    .expect("non-empty span");
                return greedy_dirs(lo, hi, anchor, inputs, edges);
            }
            let mut best: Option<SpanPlan> = None;
            for anchor in lo..hi {
                let bound = best.as_ref().map_or(f64::INFINITY, |b| b.est_cost);
                if let Some(p) = search_dirs(lo, hi, anchor, inputs, edges, bound) {
                    best = Some(p);
                }
            }
            best.expect("at least one order exists")
        }
    }
}

/// Order one span with the anchor fixed (delta evaluation restricted to a
/// slot): exhaustive over interleavings when narrow enough, greedy
/// otherwise.
pub(crate) fn plan_span_anchored(
    lo: usize,
    hi: usize,
    anchor: usize,
    inputs: &PlanInputs,
    edges: &[EdgeInfo],
) -> SpanPlan {
    debug_assert!(lo <= anchor && anchor < hi);
    if hi - lo > MAX_EXHAUSTIVE {
        return greedy_dirs(lo, hi, anchor, inputs, edges);
    }
    search_dirs(lo, hi, anchor, inputs, edges, f64::INFINITY)
        .expect("at least one order exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic path of `n` plain-assoc edges with the given inputs.
    fn chain(n: usize) -> Vec<EdgeInfo> {
        (0..n)
            .map(|_| EdgeInfo { nonassoc: false, flat: None, fwd: None, rev: None })
            .collect()
    }

    fn inputs(cards: &[f64], fan: f64) -> PlanInputs {
        let n = cards.len();
        PlanInputs {
            cards: cards.to_vec(),
            sels: vec![1.0; n],
            fwd_fan: vec![fan; n - 1],
            rev_fan: vec![fan; n - 1],
            constrained: vec![false; n],
            hinted: vec![false; n],
        }
    }

    #[test]
    fn cost_based_anchors_at_selective_slot() {
        // Slot 2 is tiny; the best order must seed there.
        let inp = inputs(&[1000.0, 1000.0, 3.0], 2.0);
        let p = plan_span(0, 3, &inp, &chain(2), PlannerMode::CostBased);
        assert_eq!(p.anchor, 2);
        assert_eq!(p.steps.len(), 2);
        // Extensions walk left from the anchor.
        assert_eq!((p.steps[0].from_slot, p.steps[0].to_slot), (2, 1));
        assert!(!p.steps[0].forward);
        assert!(p.est_cost < 100.0, "cheap plan expected, got {}", p.est_cost);
    }

    #[test]
    fn selectivity_moves_the_anchor() {
        // Raw cards equal, but slot 0's condition keeps 1% of candidates:
        // cost-based anchors there while MinExtent (raw cards, first
        // minimum) stays at slot 0 anyway — so distinguish via slot 1.
        let mut inp = inputs(&[100.0, 100.0, 100.0], 3.0);
        inp.sels[1] = 0.01;
        inp.constrained[1] = true;
        let cost = plan_span(0, 3, &inp, &chain(2), PlannerMode::CostBased);
        assert_eq!(cost.anchor, 1);
        let min = plan_span(0, 3, &inp, &chain(2), PlannerMode::MinExtent);
        assert_eq!(min.anchor, 0, "MinExtent ignores selectivity");
    }

    #[test]
    fn forced_modes_fix_the_order() {
        let inp = inputs(&[50.0, 5.0, 500.0], 2.0);
        let left = plan_span(0, 3, &inp, &chain(2), PlannerMode::Leftmost);
        assert_eq!(left.anchor, 0);
        assert!(left.steps.iter().all(|s| s.forward));
        let min = plan_span(0, 3, &inp, &chain(2), PlannerMode::MinExtent);
        assert_eq!(min.anchor, 1);
        // Right-then-left: step to slot 2 first, then back to slot 0.
        assert_eq!(min.steps[0].to_slot, 2);
        assert_eq!(min.steps[1].to_slot, 0);
    }

    #[test]
    fn anchored_plan_respects_the_anchor() {
        let inp = inputs(&[1000.0, 1000.0, 1.0], 2.0);
        let p = plan_span_anchored(0, 3, 0, &inp, &chain(2));
        assert_eq!(p.anchor, 0);
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn greedy_handles_wide_spans() {
        let n = MAX_EXHAUSTIVE + 3;
        let cards: Vec<f64> = (0..n).map(|i| 10.0 + i as f64).collect();
        let inp = inputs(&cards, 1.5);
        let p = plan_span(0, n, &inp, &chain(n - 1), PlannerMode::CostBased);
        assert_eq!(p.steps.len(), n - 1);
        // Every slot bound exactly once.
        let mut seen: Vec<usize> = p.steps.iter().map(|s| s.to_slot).collect();
        seen.push(p.anchor);
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn cross_product_stage_is_flagged() {
        let mut edges = chain(2);
        edges[1].nonassoc = true;
        let mut inp = inputs(&[10.0, 10.0, 10.0], 2.0);
        let p = plan_span(0, 3, &inp, &edges, PlannerMode::Leftmost);
        let na = p.steps.iter().find(|s| s.nonassoc).unwrap();
        assert!(na.cross, "unconstrained ! target must flag cross");
        // A constrained target is not a cross product.
        inp.constrained[2] = true;
        inp.sels[2] = 0.1;
        let p = plan_span(0, 3, &inp, &edges, PlannerMode::Leftmost);
        assert!(p.steps.iter().all(|s| !s.cross));
    }

    #[test]
    fn recost_replays_a_foreign_order() {
        // A plan chosen under misleading inputs, re-costed under the truth,
        // must cost at least the true optimum — and re-costing the true
        // optimum under its own inputs is the identity.
        let truth = inputs(&[1000.0, 1000.0, 3.0], 2.0);
        let edges = chain(2);
        let misled = inputs(&[3.0, 1000.0, 1000.0], 2.0);
        let cold = plan_span(0, 3, &misled, &edges, PlannerMode::CostBased);
        let warm = plan_span(0, 3, &truth, &edges, PlannerMode::CostBased);
        let ctx = compile(
            CompileParts {
                preds: vec![None; 3],
                hints: vec![None; 3],
                sel_keys: vec![None; 3],
                fan_keys: vec![None; 2],
                edges,
                slot_names: vec!["a".into(), "b".into(), "c".into()],
                span_bounds: vec![(0, 3)],
                closure: None,
            },
            truth,
            PlannerMode::CostBased,
        );
        let re_warm = ctx.recost_span(&warm);
        assert!((re_warm - warm.est_cost).abs() < 1e-9, "identity recost");
        assert!(ctx.recost_span(&cold) >= re_warm - 1e-9, "optimum is minimal");
    }

    #[test]
    fn exhaustive_beats_or_matches_forced_orders() {
        // The chosen plan's estimated cost is never above either heuristic.
        let inp = inputs(&[7.0, 300.0, 2.0, 40.0], 5.0);
        let edges = chain(3);
        let cost = plan_span(0, 4, &inp, &edges, PlannerMode::CostBased).est_cost;
        for m in [PlannerMode::MinExtent, PlannerMode::Leftmost] {
            let forced = plan_span(0, 4, &inp, &edges, m).est_cost;
            assert!(cost <= forced + 1e-9, "{m:?}: {cost} > {forced}");
        }
    }
}
