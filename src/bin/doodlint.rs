//! `doodlint` — the static analyzer CLI for `.dood` rule programs.
//!
//! ```text
//! doodlint [--strict] [--json] [--schema NAME] [--builtin] [FILE.dood ...]
//! ```
//!
//! Lints each program file (and, with `--builtin`, the built-in workload
//! programs) against its schema: `schema builtin <name>` headers resolve to
//! the workload schemas (`university`, `company`, `cad`, `fig31`),
//! `schema inline … end` blocks are parsed as schema DDL, and `--schema`
//! supplies a default for programs without a header. Exits nonzero when any
//! program has errors — or warnings, under `--strict`.
//!
//! With `--json`, each diagnostic is printed to stdout as one JSON object
//! per line ([`Diagnostic::to_json_line`]) and the summary moves to stderr;
//! exit codes are unchanged.

use dood_core::diag::{self, Diagnostic, Span};
use dood_core::schema::text::parse_schema;
use dood_core::schema::Schema;
use dood_rules::analyze::analyze;
use dood_rules::program::{Program, SchemaRef};
use dood_workload::programs;
use std::process::ExitCode;

const USAGE: &str = "usage: doodlint [--strict] [--json] [--schema NAME] [--builtin] [FILE.dood ...]
  --strict       treat warnings as fatal
  --json         print one JSON object per diagnostic on stdout
                 (summary goes to stderr; exit codes unchanged)
  --schema NAME  default schema for programs without a `schema` header
                 (university | company | cad | fig31)
  --builtin      also lint the built-in workload programs";

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut strict = false;
    let mut json = false;
    let mut default_schema: Option<String> = None;
    let mut builtin = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--json" => json = true,
            "--builtin" => builtin = true,
            "--schema" => match args.next() {
                Some(n) => default_schema = Some(n),
                None => {
                    eprintln!("doodlint: `--schema` needs a name\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("doodlint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() && !builtin {
        eprintln!("doodlint: no input\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut io_failed = false;
    let mut sources: Vec<(String, String)> = Vec::new();
    if builtin {
        for (name, text) in programs::all() {
            sources.push((format!("builtin:{name}"), text.to_string()));
        }
    }
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(text) => sources.push((f.clone(), text)),
            Err(e) => {
                eprintln!("doodlint: {f}: {e}");
                io_failed = true;
            }
        }
    }

    for (file, src) in &sources {
        let (e, w) = lint_one(file, src, default_schema.as_deref(), json);
        errors += e;
        warnings += w;
    }

    let checked = sources.len();
    let summary = format!(
        "doodlint: {checked} program(s) checked, {errors} error(s), {warnings} warning(s)"
    );
    if json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    if io_failed {
        ExitCode::from(2)
    } else if errors > 0 || (strict && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Lint one program source; prints its diagnostics (text blocks, or one
/// JSON object per line under `--json`), returns `(errors, warnings)`.
fn lint_one(file: &str, src: &str, default_schema: Option<&str>, json: bool) -> (usize, usize) {
    let (program, mut diags) = Program::parse(src);
    match resolve_schema(&program, src, default_schema) {
        Ok(schema) => {
            diags.extend(analyze(&program, &schema, &Default::default()));
        }
        Err(d) => diags.push(d),
    }
    diag::sort(&mut diags);
    if json {
        for d in &diags {
            println!("{}", d.to_json_line(file));
        }
    } else if diags.is_empty() {
        println!("{file}: OK");
    } else {
        println!("{}", diag::render_all(&diags, file, src));
    }
    diag::counts(&diags)
}

/// Resolve the program's schema reference (or the `--schema` default).
fn resolve_schema(
    program: &Program,
    src: &str,
    default_schema: Option<&str>,
) -> Result<Schema, Diagnostic> {
    match &program.schema {
        Some(SchemaRef::Builtin { name, span }) => programs::builtin_schema(name).ok_or_else(|| {
            Diagnostic::error("P001", format!("unknown builtin schema `{name}`"))
                .with_span(*span, src)
        }),
        Some(SchemaRef::Inline { text, offset }) => parse_schema(text).map_err(|e| {
            Diagnostic::error("P001", format!("inline schema: {e}"))
                .with_span(Span::point(*offset), src)
        }),
        None => match default_schema {
            Some(name) => programs::builtin_schema(name).ok_or_else(|| {
                Diagnostic::error("P001", format!("unknown `--schema` name `{name}`"))
            }),
            None => Err(Diagnostic::error(
                "P001",
                "program has no `schema` directive and no `--schema` default was given",
            )),
        },
    }
}
