//! `obs::account` — per-query resource accounting and the slow-query log
//! (DESIGN.md §13).
//!
//! A query or maintenance pass opens an accounting [`Scope`]; while it is
//! the innermost open scope, the engine's aggregate instrumentation sites
//! (span execution, closure fixpoints, delta application) add their
//! counters to it through [`active`]. Closing the scope produces a
//! [`QueryReport`] — rows scanned, patterns built, per-stage estimated vs.
//! actual cardinalities, closure rounds, delta edits, wall time — and, if
//! the run exceeded the `DOOD_SLOWLOG_US` threshold, appends the report as
//! one JSON line to the slow-query log (`DOOD_SLOWLOG_FILE`, default
//! stderr) together with the compiled plan snapshot, and asks the flight
//! recorder to dump its ring ([`super::recorder::dump_on_anomaly`]).
//!
//! Cost contract: accounting is armed only when something can consume the
//! reports — `DOOD_SLOWLOG_US` in the environment or [`set_enabled`] —
//! because a scope is not free (per-stage labels, a plan snapshot, the
//! report on close). When disarmed, [`begin`] returns an inert scope
//! without evaluating its label, [`active`] stays `None` everywhere, and
//! every instrumentation site costs one relaxed atomic load. When armed,
//! accounting happens per join *stage*, never per row.

use super::{json_escape, now_ns};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum per-stage detail rows kept in one [`Account`]; later stages are
/// dropped (aggregate counters still accumulate).
pub const MAX_STAGES: usize = 64;

/// One pipeline stage's estimated vs. actual cardinalities.
#[derive(Debug, Clone, PartialEq)]
pub struct StageObs {
    /// Stage label, e.g. `scan s0` or `step s0->s1`.
    pub stage: String,
    /// The cost model's estimated rows for this stage when the plan was
    /// chosen.
    pub est: f64,
    /// Candidate rows actually scanned.
    pub scanned: u64,
    /// Rows surviving the stage's predicate/membership filters.
    pub kept: u64,
}

/// Accumulating resource counters for one query or maintenance pass.
#[derive(Debug)]
pub struct Account {
    kind: &'static str,
    label: String,
    start_ns: u64,
    rows_scanned: AtomicU64,
    patterns_built: AtomicU64,
    closure_rounds: AtomicU64,
    delta_inserted: AtomicU64,
    delta_removed: AtomicU64,
    drift_events: AtomicU64,
    stages: Mutex<Vec<StageObs>>,
    plan: Mutex<Option<String>>,
}

impl Account {
    fn new(kind: &'static str, label: String) -> Self {
        Account {
            kind,
            label,
            start_ns: now_ns(),
            rows_scanned: AtomicU64::new(0),
            patterns_built: AtomicU64::new(0),
            closure_rounds: AtomicU64::new(0),
            delta_inserted: AtomicU64::new(0),
            delta_removed: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            stages: Mutex::new(Vec::new()),
            plan: Mutex::new(None),
        }
    }

    /// Count candidate rows scanned by a pipeline stage.
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Count extension patterns materialized into a result.
    pub fn add_patterns_built(&self, n: u64) {
        self.patterns_built.fetch_add(n, Ordering::Relaxed);
    }

    /// Count closure fixpoint rounds run.
    pub fn add_closure_rounds(&self, n: u64) {
        self.closure_rounds.fetch_add(n, Ordering::Relaxed);
    }

    /// Count delta-maintenance pattern insertions and removals.
    pub fn add_delta_edits(&self, inserted: u64, removed: u64) {
        self.delta_inserted.fetch_add(inserted, Ordering::Relaxed);
        self.delta_removed.fetch_add(removed, Ordering::Relaxed);
    }

    /// Count one plan-drift watchdog breach.
    pub fn add_drift_event(&self) {
        self.drift_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Append one stage's estimated-vs-actual cardinalities. Capped at
    /// [`MAX_STAGES`] entries per account so unbounded closures (one stage
    /// per frontier round) cannot grow a report without limit; the counter
    /// totals keep accumulating regardless.
    pub fn add_stage(&self, stage: String, est: f64, scanned: u64, kept: u64) {
        let mut stages = self.stages.lock().unwrap();
        if stages.len() < MAX_STAGES {
            stages.push(StageObs { stage, est, scanned, kept });
        }
    }

    /// Attach the compiled plan snapshot (`CompiledContext::describe()`).
    /// Last writer wins: a maintenance pass evaluating several rules keeps
    /// the most recent plan.
    pub fn set_plan(&self, describe: String) {
        *self.plan.lock().unwrap() = Some(describe);
    }

    fn report(&self) -> QueryReport {
        QueryReport {
            kind: self.kind.to_string(),
            label: self.label.clone(),
            wall_us: now_ns().saturating_sub(self.start_ns) / 1_000,
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            patterns_built: self.patterns_built.load(Ordering::Relaxed),
            closure_rounds: self.closure_rounds.load(Ordering::Relaxed),
            delta_inserted: self.delta_inserted.load(Ordering::Relaxed),
            delta_removed: self.delta_removed.load(Ordering::Relaxed),
            drift_events: self.drift_events.load(Ordering::Relaxed),
            stages: self.stages.lock().unwrap().clone(),
            plan: self.plan.lock().unwrap().clone(),
        }
    }
}

// ---------------------------------------------------------------------
// The scope stack
// ---------------------------------------------------------------------

/// Fast gate: true iff at least one scope is open anywhere.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Whether accounting scopes are live at all.
static ACCOUNT_GATE: super::Gate = super::Gate::new();

fn env_init() -> bool {
    std::env::var_os("DOOD_SLOWLOG_US").is_some()
}

/// Whether accounting is armed: `DOOD_SLOWLOG_US` present in the
/// environment (the slow-query log is the standing consumer) or
/// [`set_enabled`]. One relaxed atomic load after the first call.
#[inline]
pub fn is_enabled() -> bool {
    ACCOUNT_GATE.is_on(env_init)
}

/// Programmatically arm or disarm accounting (overrides the
/// `DOOD_SLOWLOG_US` environment default). Scopes already open stay live.
pub fn set_enabled(on: bool) {
    ACCOUNT_GATE.set(on);
}

fn stack() -> &'static Mutex<Vec<Arc<Account>>> {
    static S: OnceLock<Mutex<Vec<Arc<Account>>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(Vec::new()))
}

/// The innermost open account, if any. One relaxed atomic load when no
/// scope is open — the instrumentation sites' disabled-path cost.
#[inline]
pub fn active() -> Option<Arc<Account>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    stack().lock().unwrap().last().cloned()
}

/// RAII accounting scope: closing produces the [`QueryReport`] and feeds
/// the slow-query log.
pub struct Scope {
    acc: Option<Arc<Account>>,
}

/// Open an accounting scope for a query (`kind = "query"`) or maintenance
/// pass (`kind = "maintain"`). The label closure is only evaluated when
/// accounting is armed ([`is_enabled`]); otherwise the scope is inert and
/// this costs one relaxed atomic load.
pub fn begin(kind: &'static str, label: impl FnOnce() -> String) -> Scope {
    if !is_enabled() {
        return Scope { acc: None };
    }
    let acc = Arc::new(Account::new(kind, label()));
    let mut st = stack().lock().unwrap();
    st.push(acc.clone());
    ACTIVE.store(true, Ordering::Relaxed);
    drop(st);
    Scope { acc: Some(acc) }
}

impl Scope {
    /// The scope's account (to attach a plan snapshot from the outside);
    /// `None` when the scope is inert (accounting disarmed at open).
    pub fn account(&self) -> Option<&Arc<Account>> {
        self.acc.as_ref()
    }

    /// Close the scope and return the report without consulting the
    /// slow-query log (tests and explicit surfaces); `None` when inert.
    pub fn finish_report(mut self) -> Option<QueryReport> {
        let acc = self.acc.take()?;
        let rep = acc.report();
        unregister(&acc);
        Some(rep)
    }
}

fn unregister(acc: &Arc<Account>) {
    let mut st = stack().lock().unwrap();
    if let Some(pos) = st.iter().rposition(|a| Arc::ptr_eq(a, acc)) {
        st.remove(pos);
    }
    if st.is_empty() {
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some(acc) = self.acc.take() else { return };
        let rep = acc.report();
        unregister(&acc);
        maybe_log_slow(&rep);
    }
}

// ---------------------------------------------------------------------
// The slow-query log
// ---------------------------------------------------------------------

struct SlowCfg {
    /// Threshold in µs; `None` disables the log. `Some(0)` logs every run.
    thresh: Option<u64>,
    /// Override sink; `None` falls through to `DOOD_SLOWLOG_FILE` / stderr.
    sink: Option<Box<dyn Write + Send>>,
}

fn slowcfg() -> &'static Mutex<SlowCfg> {
    static S: OnceLock<Mutex<SlowCfg>> = OnceLock::new();
    S.get_or_init(|| {
        let thresh = std::env::var("DOOD_SLOWLOG_US")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        let sink: Option<Box<dyn Write + Send>> =
            match std::env::var("DOOD_SLOWLOG_FILE") {
                Ok(path) => match std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    Ok(f) => Some(Box::new(f)),
                    Err(e) => {
                        eprintln!(
                            "obs: cannot open DOOD_SLOWLOG_FILE `{path}`: {e}; using stderr"
                        );
                        None
                    }
                },
                Err(_) => None,
            };
        Mutex::new(SlowCfg { thresh, sink })
    })
}

/// Override the slow-query threshold (µs); `None` disables the log.
/// Overrides the `DOOD_SLOWLOG_US` environment default.
pub fn set_slowlog_threshold(us: Option<u64>) {
    slowcfg().lock().unwrap().thresh = us;
}

/// Append slow-query records to `path` instead of the environment default.
pub fn slowlog_to_path(path: &str) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    slowcfg().lock().unwrap().sink = Some(Box::new(f));
    Ok(())
}

fn maybe_log_slow(rep: &QueryReport) {
    let mut cfg = slowcfg().lock().unwrap();
    let Some(thresh) = cfg.thresh else { return };
    if rep.wall_us < thresh {
        return;
    }
    let line = rep.to_json_line();
    match cfg.sink.as_mut() {
        Some(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush(); // slow queries are rare; keep the log durable
        }
        None => eprintln!("{line}"),
    }
    drop(cfg);
    if super::metrics_enabled() {
        super::metrics::counter("obs.slowlog.records").inc();
    }
    super::recorder::dump_on_anomaly(&format!(
        "slow {} `{}`: {}us >= {}us",
        rep.kind, rep.label, rep.wall_us, thresh
    ));
}

// ---------------------------------------------------------------------
// QueryReport
// ---------------------------------------------------------------------

/// The closed-scope resource report — the slow-query log's record shape.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// `query` or `maintain`.
    pub kind: String,
    /// Query/context name, or the maintenance pass label.
    pub label: String,
    /// Wall time, µs.
    pub wall_us: u64,
    /// Candidate rows scanned across all pipeline stages.
    pub rows_scanned: u64,
    /// Extension patterns materialized.
    pub patterns_built: u64,
    /// Closure fixpoint rounds run.
    pub closure_rounds: u64,
    /// Delta-maintenance pattern insertions.
    pub delta_inserted: u64,
    /// Delta-maintenance pattern removals.
    pub delta_removed: u64,
    /// Plan-drift watchdog breaches observed during the run.
    pub drift_events: u64,
    /// Per-stage estimated vs. actual cardinalities, in execution order.
    pub stages: Vec<StageObs>,
    /// The compiled plan snapshot (`describe()`), when one was executed.
    pub plan: Option<String>,
}

impl QueryReport {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"kind\":\"{}\",\"label\":\"{}\",\"wall_us\":{},\
             \"rows_scanned\":{},\"patterns_built\":{},\"closure_rounds\":{},\
             \"delta_inserted\":{},\"delta_removed\":{},\"drift_events\":{}",
            json_escape(&self.kind),
            json_escape(&self.label),
            self.wall_us,
            self.rows_scanned,
            self.patterns_built,
            self.closure_rounds,
            self.delta_inserted,
            self.delta_removed,
            self.drift_events,
        ));
        s.push_str(",\"stages\":[");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"stage\":\"{}\",\"est\":{},\"scanned\":{},\"kept\":{}}}",
                json_escape(&st.stage),
                st.est,
                st.scanned,
                st.kept
            ));
        }
        s.push(']');
        if let Some(p) = &self.plan {
            s.push_str(&format!(",\"plan\":\"{}\"", json_escape(p)));
        }
        s.push('}');
        s
    }

    /// Parse one JSON line produced by [`QueryReport::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<QueryReport, String> {
        let mut p = super::trace::JsonParser::new(line);
        p.expect(b'{')?;
        let mut rep = QueryReport {
            kind: String::new(),
            label: String::new(),
            wall_us: 0,
            rows_scanned: 0,
            patterns_built: 0,
            closure_rounds: 0,
            delta_inserted: 0,
            delta_removed: 0,
            drift_events: 0,
            stages: Vec::new(),
            plan: None,
        };
        loop {
            p.ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.ws();
            p.expect(b':')?;
            p.ws();
            match key.as_str() {
                "kind" => rep.kind = p.string()?,
                "label" => rep.label = p.string()?,
                "wall_us" => rep.wall_us = p.integer()? as u64,
                "rows_scanned" => rep.rows_scanned = p.integer()? as u64,
                "patterns_built" => rep.patterns_built = p.integer()? as u64,
                "closure_rounds" => rep.closure_rounds = p.integer()? as u64,
                "delta_inserted" => rep.delta_inserted = p.integer()? as u64,
                "delta_removed" => rep.delta_removed = p.integer()? as u64,
                "drift_events" => rep.drift_events = p.integer()? as u64,
                "plan" => rep.plan = Some(p.string()?),
                "stages" => {
                    p.expect(b'[')?;
                    p.ws();
                    if !p.eat(b']') {
                        loop {
                            p.ws();
                            p.expect(b'{')?;
                            let mut st = StageObs {
                                stage: String::new(),
                                est: 0.0,
                                scanned: 0,
                                kept: 0,
                            };
                            loop {
                                p.ws();
                                if p.eat(b'}') {
                                    break;
                                }
                                let k = p.string()?;
                                p.ws();
                                p.expect(b':')?;
                                p.ws();
                                match k.as_str() {
                                    "stage" => st.stage = p.string()?,
                                    "est" => st.est = p.number()?,
                                    "scanned" => st.scanned = p.integer()? as u64,
                                    "kept" => st.kept = p.integer()? as u64,
                                    other => {
                                        return Err(format!("unknown stage key `{other}`"))
                                    }
                                }
                                p.ws();
                                if !p.eat(b',') {
                                    p.ws();
                                    p.expect(b'}')?;
                                    break;
                                }
                            }
                            rep.stages.push(st);
                            p.ws();
                            if !p.eat(b',') {
                                p.ws();
                                p.expect(b']')?;
                                break;
                            }
                        }
                    }
                }
                other => return Err(format!("unknown key `{other}`")),
            }
            p.ws();
            if !p.eat(b',') {
                p.ws();
                p.expect(b'}')?;
                break;
            }
        }
        if rep.kind.is_empty() {
            return Err("report line missing `kind`".into());
        }
        Ok(rep)
    }

    /// Human-readable rendering (the `doodprof --slowlog` surface).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "-- slow {} `{}`  wall={}us\n",
            self.kind, self.label, self.wall_us
        ));
        out.push_str(&format!(
            "   rows_scanned={} patterns_built={} closure_rounds={} \
             delta=+{}/-{} drift_events={}\n",
            self.rows_scanned,
            self.patterns_built,
            self.closure_rounds,
            self.delta_inserted,
            self.delta_removed,
            self.drift_events,
        ));
        for st in &self.stages {
            out.push_str(&format!(
                "   stage {}: est={:.1} scanned={} kept={}\n",
                st.stage, st.est, st.scanned, st.kept
            ));
        }
        if let Some(p) = &self.plan {
            out.push_str("   plan:\n");
            for line in p.lines() {
                out.push_str("     ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scope stack is process-global; serialize the tests that use it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_begin_is_inert() {
        let _g = lock();
        set_enabled(false);
        let scope = begin("query", || unreachable!("label must stay lazy"));
        assert!(active().is_none(), "inert scope must not register");
        assert!(scope.account().is_none());
        assert!(scope.finish_report().is_none());
    }

    #[test]
    fn scope_accumulates_and_reports() {
        let _g = lock();
        set_enabled(true);
        assert!(active().is_none(), "no scope open at test start");
        let scope = begin("query", || "t1".into());
        let acc = active().expect("scope open");
        acc.add_rows_scanned(10);
        acc.add_patterns_built(4);
        acc.add_closure_rounds(2);
        acc.add_delta_edits(3, 1);
        acc.add_drift_event();
        acc.add_stage("scan s0".into(), 12.5, 10, 8);
        acc.set_plan("span [0,2) anchor=s0".into());
        let rep = scope.finish_report().expect("armed scope reports");
        set_enabled(false);
        assert_eq!(rep.kind, "query");
        assert_eq!(rep.label, "t1");
        assert_eq!(rep.rows_scanned, 10);
        assert_eq!(rep.patterns_built, 4);
        assert_eq!(rep.closure_rounds, 2);
        assert_eq!((rep.delta_inserted, rep.delta_removed), (3, 1));
        assert_eq!(rep.drift_events, 1);
        assert_eq!(rep.stages.len(), 1);
        assert_eq!(rep.plan.as_deref(), Some("span [0,2) anchor=s0"));
    }

    #[test]
    fn nested_scopes_route_to_innermost() {
        let _g = lock();
        set_enabled(true);
        let outer = begin("maintain", || "outer".into());
        {
            let inner = begin("query", || "inner".into());
            active().unwrap().add_rows_scanned(5);
            let rep = inner.finish_report().expect("armed scope reports");
            assert_eq!(rep.rows_scanned, 5);
        }
        active().unwrap().add_rows_scanned(7);
        let rep = outer.finish_report().expect("armed scope reports");
        set_enabled(false);
        assert_eq!(rep.rows_scanned, 7, "inner counts stay with inner");
    }

    #[test]
    fn report_json_round_trips() {
        let rep = QueryReport {
            kind: "query".into(),
            label: "Context \"x\"".into(),
            wall_us: 1234,
            rows_scanned: 100,
            patterns_built: 40,
            closure_rounds: 3,
            delta_inserted: 5,
            delta_removed: 2,
            drift_events: 1,
            stages: vec![
                StageObs { stage: "scan s0".into(), est: 12.5, scanned: 10, kept: 8 },
                StageObs { stage: "step s0->s1".into(), est: 3.0, scanned: 24, kept: 20 },
            ],
            plan: Some("span [0,2) anchor=s0 cost=12.5\n  scan s0 est=12".into()),
        };
        let line = rep.to_json_line();
        assert_eq!(QueryReport::from_json_line(&line).unwrap(), rep);
        let no_plan = QueryReport { plan: None, stages: vec![], ..rep };
        let line = no_plan.to_json_line();
        assert_eq!(QueryReport::from_json_line(&line).unwrap(), no_plan);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(QueryReport::from_json_line("nope").is_err());
        assert!(QueryReport::from_json_line("{\"label\":\"x\"}").is_err()); // no kind
    }
}
