//! The `.dood` rule-program file format.
//!
//! A program bundles a schema reference, deductive rules, queries, and
//! export declarations into one analyzable unit:
//!
//! ```text
//! -- §4 example program
//! schema builtin university
//!
//! rule R1:
//!   if context Teacher * Section * Course
//!   then Teacher_course (Teacher, Course)
//!
//! query Q1:
//!   context Teacher_course:Teacher * Teacher_course:Course display
//!
//! export Teacher_course
//! ```
//!
//! Directives start a line (leading whitespace allowed): `schema builtin
//! <name>`, `schema inline … end` (a [`dood_core::schema::text`] block),
//! `extern <Subdb> …` (externally registered subdatabases), `rule <NAME>:`,
//! `query <NAME>:`, and `export <Subdb> …`. A rule or query body extends
//! from the `:` to the next directive. `--` comments and blank lines are
//! skipped. Parsing is error-tolerant: each malformed section becomes a
//! diagnostic and loading continues, so the analyzer can report every
//! problem in one run.

use crate::ast::Rule;
use crate::parser::{parse_rule_spanned, RuleSpans};
use dood_core::diag::{Diagnostic, Span};
use dood_oql::ast::Query;
use dood_oql::parser::Parser as OqlParser;

/// How a program names its schema.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaRef {
    /// `schema builtin <name>` — resolved by the embedder (e.g. `doodlint`
    /// maps `university`/`company`/`cad` to the workload schemas).
    Builtin {
        /// The builtin schema name.
        name: String,
        /// Span of the name in the program source.
        span: Span,
    },
    /// `schema inline … end` — a textual schema DDL block.
    Inline {
        /// The DDL text (between the `schema inline` and `end` lines).
        text: String,
        /// Byte offset of the DDL text in the program source.
        offset: usize,
    },
}

/// A rule with its source anchoring.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRule {
    /// The parsed rule.
    pub rule: Rule,
    /// Spans of the rule's parts, absolute in the program source.
    pub spans: RuleSpans,
    /// Span of the rule name in the `rule NAME:` header.
    pub header: Span,
}

/// A named query with its source anchoring.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramQuery {
    /// The query's name (from `query NAME:`).
    pub name: String,
    /// The parsed query.
    pub query: Query,
    /// Context occurrence spans, absolute, in flatten order.
    pub occurrences: Vec<Span>,
    /// WHERE condition spans, absolute, in textual order.
    pub wheres: Vec<Span>,
    /// Span of the query name in the header.
    pub header: Span,
}

/// A parsed `.dood` program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// The full program source (diagnostic rendering needs it).
    pub source: String,
    /// The schema reference, when declared.
    pub schema: Option<SchemaRef>,
    /// Externally-registered subdatabase names (`extern` directives).
    pub externs: Vec<String>,
    /// The rules, in declaration order.
    pub rules: Vec<ProgramRule>,
    /// The queries, in declaration order.
    pub queries: Vec<ProgramQuery>,
    /// Exported subdatabase names with their spans.
    pub exports: Vec<(String, Span)>,
    /// Warning codes suppressed by `allow` directives (uppercased).
    pub allows: Vec<String>,
}

/// One raw directive found by the line scanner.
enum Section {
    SchemaBuiltin { name: String, span: Span },
    SchemaInline { text: String, offset: usize },
    Extern { names: Vec<(String, Span)> },
    Export { names: Vec<(String, Span)> },
    Allow { codes: Vec<String> },
    Body { kind: BodyKind, name: String, header: Span, body_start: usize, body_end: usize },
}

#[derive(PartialEq)]
enum BodyKind {
    Rule,
    Query,
}

impl Program {
    /// Parse a program. Malformed sections are reported as diagnostics
    /// (code `P001`) and skipped; the rest of the program still loads.
    pub fn parse(source: &str) -> (Program, Vec<Diagnostic>) {
        let mut prog = Program { source: source.to_string(), ..Program::default() };
        let mut diags = Vec::new();
        let sections = scan(source, &mut diags);
        for s in sections {
            match s {
                Section::SchemaBuiltin { name, span } => {
                    if prog.schema.is_some() {
                        diags.push(
                            Diagnostic::error("P001", "duplicate `schema` directive")
                                .with_span(span, source),
                        );
                    } else {
                        prog.schema = Some(SchemaRef::Builtin { name, span });
                    }
                }
                Section::SchemaInline { text, offset } => {
                    if prog.schema.is_some() {
                        diags.push(
                            Diagnostic::error("P001", "duplicate `schema` directive")
                                .with_span(Span::point(offset), source),
                        );
                    } else {
                        prog.schema = Some(SchemaRef::Inline { text, offset });
                    }
                }
                Section::Extern { names } => {
                    prog.externs.extend(names.into_iter().map(|(n, _)| n));
                }
                Section::Export { names } => prog.exports.extend(names),
                Section::Allow { codes } => prog.allows.extend(codes),
                Section::Body { kind, name, header, body_start, body_end } => {
                    let body = &source[body_start..body_end];
                    match kind {
                        BodyKind::Rule => match parse_rule_spanned(&name, body) {
                            Ok((rule, spans)) => prog.rules.push(ProgramRule {
                                rule,
                                spans: spans.shifted(body_start),
                                header,
                            }),
                            Err(e) => diags.push(
                                Diagnostic::error("P001", e.msg.clone())
                                    .with_span(Span::point(e.at + body_start), source)
                                    .with_owner(&name),
                            ),
                        },
                        BodyKind::Query => match parse_query_spanned(body) {
                            Ok((query, occ, whs)) => prog.queries.push(ProgramQuery {
                                name,
                                query,
                                occurrences: occ.iter().map(|s| s.shifted(body_start)).collect(),
                                wheres: whs.iter().map(|s| s.shifted(body_start)).collect(),
                                header,
                            }),
                            Err(e) => diags.push(
                                Diagnostic::error("P001", e.msg.clone())
                                    .with_span(Span::point(e.at + body_start), source)
                                    .with_owner(&name),
                            ),
                        },
                    }
                }
            }
        }
        (prog, diags)
    }

    /// Build a program from `(name, rule-source)` pairs plus exports — a
    /// convenience for embedders that already hold rule texts (the engine
    /// tests, the propcheck generator). Equivalent to synthesizing the
    /// `.dood` text and parsing it, so all spans are real.
    pub fn from_rules(rules: &[(&str, &str)], exports: &[&str]) -> (Program, Vec<Diagnostic>) {
        let mut src = String::new();
        for (name, body) in rules {
            src.push_str(&format!("rule {name}:\n  {body}\n"));
        }
        for e in exports {
            src.push_str(&format!("export {e}\n"));
        }
        Program::parse(&src)
    }
}

/// Parse a query body, returning its occurrence and WHERE spans.
fn parse_query_spanned(
    src: &str,
) -> Result<(Query, Vec<Span>, Vec<Span>), dood_oql::error::ParseError> {
    let mut p = OqlParser::new(src)?;
    let q = p.query().map_err(|e| p.locate(e))?;
    if !p.at_eof() {
        return Err(p.locate(dood_oql::error::ParseError::new(
            p.at(),
            format!("unexpected `{}`", p.peek()),
        )));
    }
    Ok((q, p.occurrence_spans().to_vec(), p.where_spans().to_vec()))
}

/// Split the source into directive sections.
fn scan(source: &str, diags: &mut Vec<Diagnostic>) -> Vec<Section> {
    // Line starts, with each line's directive classification.
    let mut out = Vec::new();
    let lines: Vec<(usize, &str)> = line_offsets(source);
    let mut i = 0;
    while i < lines.len() {
        let (off, line) = lines[i];
        let trimmed = line.trim_start();
        let indent = off + (line.len() - trimmed.len());
        if trimmed.is_empty() || trimmed.starts_with("--") {
            i += 1;
            continue;
        }
        let lower = first_word(trimmed).to_ascii_lowercase();
        match lower.as_str() {
            "schema" => {
                let rest = trimmed["schema".len()..].trim();
                if let Some(name) = rest.strip_prefix("builtin") {
                    let name = name.trim();
                    if name.is_empty() {
                        diags.push(
                            Diagnostic::error("P001", "`schema builtin` needs a schema name")
                                .with_span(Span::point(indent), source),
                        );
                    } else {
                        let start = off + line.rfind(name).unwrap_or(0);
                        out.push(Section::SchemaBuiltin {
                            name: name.to_string(),
                            span: Span::new(start, start + name.len()),
                        });
                    }
                    i += 1;
                } else if rest == "inline" {
                    // Collect until a line that is exactly `end`.
                    let body_start = lines.get(i + 1).map_or(source.len(), |(o, _)| *o);
                    let mut j = i + 1;
                    while j < lines.len() && lines[j].1.trim() != "end" {
                        j += 1;
                    }
                    if j == lines.len() {
                        diags.push(
                            Diagnostic::error("P001", "`schema inline` block missing `end`")
                                .with_span(Span::point(indent), source),
                        );
                        i = j;
                    } else {
                        let body_end = lines[j].0;
                        out.push(Section::SchemaInline {
                            text: source[body_start..body_end].to_string(),
                            offset: body_start,
                        });
                        i = j + 1;
                    }
                } else {
                    diags.push(
                        Diagnostic::error(
                            "P001",
                            "expected `schema builtin <name>` or `schema inline`",
                        )
                        .with_span(Span::point(indent), source),
                    );
                    i += 1;
                }
            }
            "allow" => {
                let codes: Vec<String> = trimmed["allow".len()..]
                    .split_whitespace()
                    .take_while(|w| !w.starts_with("--"))
                    .map(|w| w.to_ascii_uppercase())
                    .collect();
                if codes.is_empty() {
                    diags.push(
                        Diagnostic::error("P001", "`allow` needs a diagnostic code")
                            .with_span(Span::point(indent), source),
                    );
                } else {
                    out.push(Section::Allow { codes });
                }
                i += 1;
            }
            "export" | "extern" => {
                let kw_len = lower.len();
                let mut names = Vec::new();
                let mut cursor = indent + kw_len;
                for word in trimmed[kw_len..].split_whitespace() {
                    if word.starts_with("--") {
                        break;
                    }
                    let start = off
                        + line[cursor - off..].find(word).map_or(0, |p| p + cursor - off);
                    names.push((word.to_string(), Span::new(start, start + word.len())));
                    cursor = start + word.len();
                }
                if names.is_empty() {
                    diags.push(
                        Diagnostic::error("P001", format!("`{lower}` needs a subdatabase name"))
                            .with_span(Span::point(indent), source),
                    );
                } else if lower == "export" {
                    out.push(Section::Export { names });
                } else {
                    out.push(Section::Extern { names });
                }
                i += 1;
            }
            "rule" | "query" => {
                let kind = if lower == "rule" { BodyKind::Rule } else { BodyKind::Query };
                let rest = trimmed[lower.len()..].trim_start();
                let Some(colon) = rest.find(':') else {
                    diags.push(
                        Diagnostic::error("P001", format!("`{lower}` header needs `NAME:`"))
                            .with_span(Span::point(indent), source),
                    );
                    i += 1;
                    continue;
                };
                let name = rest[..colon].trim().to_string();
                if name.is_empty() || name.contains(char::is_whitespace) {
                    diags.push(
                        Diagnostic::error("P001", format!("invalid {lower} name `{name}`"))
                            .with_span(Span::point(indent), source),
                    );
                    i += 1;
                    continue;
                }
                let name_start = indent + (trimmed.len() - rest.len());
                let header = Span::new(name_start, name_start + name.trim_end().len());
                // Body: remainder of this line after ':' plus following
                // lines up to the next directive.
                let body_start = name_start + colon + 1;
                let mut j = i + 1;
                while j < lines.len() && !is_directive(lines[j].1) {
                    j += 1;
                }
                let body_end = lines.get(j).map_or(source.len(), |(o, _)| *o);
                out.push(Section::Body { kind, name, header, body_start, body_end });
                i = j;
            }
            _ => {
                diags.push(
                    Diagnostic::error(
                        "P001",
                        format!("unknown directive `{}`", first_word(trimmed)),
                    )
                    .with_span(Span::point(indent), source),
                );
                i += 1;
            }
        }
    }
    out
}

fn line_offsets(source: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut off = 0;
    for line in source.split_inclusive('\n') {
        out.push((off, line.trim_end_matches(['\n', '\r'])));
        off += line.len();
    }
    out
}

fn first_word(s: &str) -> &str {
    s.split_whitespace().next().unwrap_or("")
}

fn is_directive(line: &str) -> bool {
    let t = line.trim_start();
    let w = first_word(t).to_ascii_lowercase();
    match w.as_str() {
        "schema" | "export" | "extern" | "allow" => true,
        "rule" | "query" => t[w.len()..].contains(':'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "\
-- demo program
schema builtin university

rule R1:
  if context Teacher * Section * Course
  then Teacher_course (Teacher, Course)

rule R2: if context Department * Course then Dc (Course)

query Q1:
  context Teacher_course:Teacher * Teacher_course:Course display

extern Ext_sd
export Teacher_course Dc
";

    #[test]
    fn parses_sections() {
        let (p, diags) = Program::parse(PROG);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(matches!(&p.schema, Some(SchemaRef::Builtin { name, .. }) if name == "university"));
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].rule.name, "R1");
        assert_eq!(p.rules[1].rule.target_subdb, "Dc");
        assert_eq!(p.queries.len(), 1);
        assert_eq!(p.queries[0].name, "Q1");
        assert_eq!(p.externs, vec!["Ext_sd".to_string()]);
        let exports: Vec<&str> = p.exports.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(exports, vec!["Teacher_course", "Dc"]);
    }

    #[test]
    fn spans_are_absolute() {
        let (p, diags) = Program::parse(PROG);
        assert!(diags.is_empty());
        // R1's first occurrence span points at "Teacher" inside the program.
        let s = p.rules[0].spans.occurrences[0];
        assert_eq!(&PROG[s.start..s.end], "Teacher");
        let t = p.rules[0].spans.target_subdb;
        assert_eq!(&PROG[t.start..t.end], "Teacher_course");
        // Header names.
        let h = p.rules[1].header;
        assert_eq!(&PROG[h.start..h.end], "R2");
        let q = p.queries[0].occurrences[0];
        assert_eq!(&PROG[q.start..q.end], "Teacher_course:Teacher");
    }

    #[test]
    fn bad_rule_reports_and_continues() {
        let src = "rule R1:\n  if context A * then T (A)\nrule R2: if context A * B then U (A)\n";
        let (p, diags) = Program::parse(src);
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].rule.name, "R2");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "P001");
        assert!(diags[0].line > 0);
    }

    #[test]
    fn unknown_directive_diagnosed() {
        let (_, diags) = Program::parse("frobnicate everything\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("frobnicate"));
    }

    #[test]
    fn inline_schema_block() {
        let src = "schema inline\neclass A\neclass B\nend\nrule R: if context A * B then T (A)\n";
        let (p, diags) = Program::parse(src);
        assert!(diags.is_empty(), "{diags:?}");
        match &p.schema {
            Some(SchemaRef::Inline { text, .. }) => {
                assert!(text.contains("eclass A"));
                assert!(!text.contains("end"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn from_rules_builds_program() {
        let (p, diags) =
            Program::from_rules(&[("R1", "if context A * B then T (A)")], &["T"]);
        assert!(diags.is_empty());
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.exports.len(), 1);
    }
}
