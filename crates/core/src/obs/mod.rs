//! `obs` — the hermetic observability layer (DESIGN.md §8).
//!
//! Three std-only pieces, shared by every crate in the workspace:
//!
//! * [`trace`] — a hierarchical span tracer with monotonic timestamps and
//!   thread-aware span stacks. Spans opened on [`crate::pool::ChunkPool`]
//!   workers attach to the pool call site through an explicit parent id, so
//!   one connected span tree spans all worker threads. Exported as JSON
//!   lines (streaming) or collected in memory by [`trace::capture`].
//! * [`metrics`] — a process-global registry of counters, gauges, and
//!   fixed-bucket (power-of-two) histograms, with pretty-text and
//!   JSON-lines exporters. Integer-only: no float formatting anywhere.
//! * [`profile`] — the EXPLAIN ANALYZE surface: a [`profile::Profile`]
//!   tree (plan node → cardinality attributes → wall time) built from a
//!   captured span set, rendered by the `doodprof` CLI.
//!
//! A fourth piece, [`stats`], is *always on*: a registry of observed
//! cardinality/selectivity averages that feeds the cost-based join
//! planner (DESIGN.md §10). It is an engine input, not an export surface,
//! so it is not gated.
//!
//! Two production-observability pieces ride on top (DESIGN.md §13):
//!
//! * [`recorder`] — a bounded in-memory flight recorder: per-thread ring
//!   stripes of the most recent closed spans, sequence-stamped for merged
//!   dumps, so the evidence for an anomaly already exists when the
//!   anomaly is noticed (`DOOD_FLIGHT=1`, capacity `DOOD_FLIGHT_CAP`,
//!   anomaly dump path `DOOD_FLIGHT_DUMP`).
//! * [`account`] — per-query/maintenance resource accounting
//!   ([`account::QueryReport`]) and the slow-query log: runs exceeding
//!   `DOOD_SLOWLOG_US` append a JSON-lines record (plan snapshot,
//!   per-stage estimated vs. actual cardinalities) to
//!   `DOOD_SLOWLOG_FILE` (default stderr).
//!
//! Everything is **off by default** and costs one relaxed atomic load per
//! instrumentation site when disabled (verified by benches E15 and E20).
//! Enabling:
//!
//! * `DOOD_TRACE=1` — stream span records as JSON lines to stderr, or to
//!   the file named by `DOOD_TRACE_FILE`;
//! * `DOOD_METRICS=1` — accumulate metrics (exported by the CLIs on exit);
//! * `DOOD_FLIGHT=1` — keep the flight-recorder ring populated;
//! * `DOOD_SLOWLOG_US=N` — log queries/maintenance passes slower than N µs;
//! * programmatically: [`trace::capture`], [`trace::stream_to`],
//!   [`set_metrics_enabled`], [`recorder::set_enabled`], and
//!   [`account::set_enabled`].

pub mod account;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod stats;
pub mod trace;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Gate states: unread env, explicitly off, explicitly on.
const GATE_UNINIT: u8 = 0;
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

/// A tri-state enable flag: the first read folds the environment in, every
/// later read is a single relaxed atomic load (the disabled-path cost
/// contract of DESIGN.md §8).
struct Gate {
    state: AtomicU8,
}

impl Gate {
    const fn new() -> Self {
        Gate { state: AtomicU8::new(GATE_UNINIT) }
    }

    #[inline]
    fn is_on(&self, init: fn() -> bool) -> bool {
        match self.state.load(Ordering::Relaxed) {
            GATE_ON => true,
            GATE_OFF => false,
            _ => self.init_slow(init),
        }
    }

    #[cold]
    fn init_slow(&self, init: fn() -> bool) -> bool {
        let on = init();
        // Keep a concurrent explicit `set` if one won the race.
        let _ = self.state.compare_exchange(
            GATE_UNINIT,
            if on { GATE_ON } else { GATE_OFF },
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.state.load(Ordering::Relaxed) == GATE_ON
    }

    fn set(&self, on: bool) {
        self.state.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
    }
}

static TRACE_GATE: Gate = Gate::new();
static METRICS_GATE: Gate = Gate::new();

/// Whether span tracing is enabled (env `DOOD_TRACE`, an installed stream
/// writer, or an active [`trace::capture`]). One relaxed atomic load after
/// the first call.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_GATE.is_on(trace::env_init)
}

/// Whether metric recording is enabled (env `DOOD_METRICS` or
/// [`set_metrics_enabled`]). One relaxed atomic load after the first call.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_GATE.is_on(|| env_flag("DOOD_METRICS"))
}

/// Programmatically enable or disable metric recording (overrides the
/// `DOOD_METRICS` environment default).
pub fn set_metrics_enabled(on: bool) {
    METRICS_GATE.set(on);
}

pub(crate) fn trace_gate_set(on: bool) {
    TRACE_GATE.set(on);
}

/// Whether an environment variable is set to a truthy value (`1`, `true`,
/// `yes`, `on`; case-insensitive).
pub(crate) fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on"),
        Err(_) => false,
    }
}

/// Monotonic nanoseconds since the process's first call into `obs`. All
/// span timestamps share this epoch, so intervals are directly comparable
/// across threads.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A small dense ordinal for the current thread (0 for the first thread
/// that asks, 1 for the second, …). Stable for the thread's lifetime;
/// recorded on every span so traces show which worker ran what.
pub fn thread_ord() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORD: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORD.with(|o| *o)
}

/// Escape a string for inclusion inside a JSON string literal (quotes,
/// backslashes, and control characters). Shared by the trace, metrics, and
/// diagnostic JSON exporters.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_flip_programmatically() {
        set_metrics_enabled(true);
        assert!(metrics_enabled());
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn thread_ordinals_are_stable_and_distinct() {
        let here = thread_ord();
        assert_eq!(here, thread_ord());
        let other = std::thread::spawn(thread_ord).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
