//! The object store: the extensional half of the "original database" the
//! paper's rules and queries operate over.
//!
//! Responsibilities:
//! * per-class extents of OID-identified objects;
//! * descriptive attribute storage with optional ordered indexes;
//! * association links in bidirectional indexes, with cardinality and
//!   endpoint checking;
//! * instance-level **perspective objects**: a generalization link is an
//!   identity link between two perspectives of one real-world object
//!   (paper §3.2), created via [`Database::specialize`];
//! * instance-level traversal of [`ResolvedEdge`]s — the extensional
//!   counterpart of schema-level edge resolution;
//! * the update-event log consumed by forward chaining (paper §6).

use crate::assoc_index::AssocIndex;
use crate::attr_index::AttrIndex;
use crate::events::{EventLog, UpdateEvent};
use crate::object::{AttrLayouts, ObjRecord};
use dood_core::error::StoreError;
use dood_core::fxhash::FxHashMap;
use dood_core::ids::{AssocId, ClassId, Oid, OidGen};
use dood_core::schema::{Cardinality, ResolvedAttr, ResolvedEdge, Schema};
use dood_core::value::Value;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The extensional database over a fixed schema.
#[derive(Debug)]
pub struct Database {
    schema: Arc<Schema>,
    layouts: AttrLayouts,
    oidgen: OidGen,
    objects: FxHashMap<Oid, ObjRecord>,
    extents: Vec<BTreeSet<Oid>>,
    assoc_ix: Vec<AssocIndex>,
    attr_ix: FxHashMap<(ClassId, AssocId), AttrIndex>,
    log: EventLog,
    /// Generalization association ids, precomputed from the (immutable)
    /// schema: the perspective-closure traversal walks exactly these.
    gen_assocs: Vec<AssocId>,
}

impl Database {
    /// A new, empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self::with_arc(Arc::new(schema))
    }

    /// A new, empty database over a shared schema.
    pub fn with_arc(schema: Arc<Schema>) -> Self {
        let layouts = AttrLayouts::new(&schema);
        let extents = vec![BTreeSet::new(); schema.class_count()];
        let assoc_ix = vec![AssocIndex::new(); schema.assoc_count()];
        let gen_assocs = schema
            .assocs()
            .iter()
            .filter(|a| a.is_generalization())
            .map(|a| a.id)
            .collect();
        Database {
            schema,
            layouts,
            oidgen: OidGen::new(),
            objects: FxHashMap::default(),
            extents,
            assoc_ix,
            attr_ix: FxHashMap::default(),
            log: EventLog::new(),
            gen_assocs,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared schema handle.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The update-event log.
    pub fn events(&self) -> &EventLog {
        &self.log
    }

    /// Mutable access to the update-event log, for consumer registration
    /// ([`EventLog::subscribe`]), acknowledgement, and compaction.
    pub fn events_mut(&mut self) -> &mut EventLog {
        &mut self.log
    }

    /// Current update watermark (paper §6: used to decide staleness of
    /// derived subdatabases).
    pub fn seq(&self) -> u64 {
        self.log.seq()
    }

    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Create an object in an E-class.
    pub fn new_object(&mut self, class: ClassId) -> Result<Oid, StoreError> {
        if !self.schema.class(class).is_entity() {
            return Err(StoreError::WrongClass {
                oid: Oid(0),
                expected: class,
                actual: class,
            });
        }
        let oid = self.oidgen.next();
        self.objects.insert(
            oid,
            ObjRecord { class, attrs: self.layouts.empty_record(class) },
        );
        self.extents[class.index()].insert(oid);
        self.log.push(UpdateEvent::ObjectCreated { class, oid });
        Ok(oid)
    }

    /// The class of a live object.
    pub fn class_of(&self, oid: Oid) -> Result<ClassId, StoreError> {
        self.objects
            .get(&oid)
            .map(|r| r.class)
            .ok_or(StoreError::NoSuchObject(oid))
    }

    /// Whether the OID denotes a live object.
    pub fn is_live(&self, oid: Oid) -> bool {
        self.objects.contains_key(&oid)
    }

    /// The extent of a class (its direct instances), in OID order.
    pub fn extent(&self, class: ClassId) -> impl Iterator<Item = Oid> + '_ {
        self.extents[class.index()].iter().copied()
    }

    /// Extent size.
    pub fn extent_size(&self, class: ClassId) -> usize {
        self.extents[class.index()].len()
    }

    /// Total number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Delete an object: detaches all its links, cascades to its subclass
    /// perspective objects (a TA perspective cannot outlive its Grad
    /// perspective), and removes it from extent and indexes.
    pub fn delete_object(&mut self, oid: Oid) -> Result<(), StoreError> {
        let class = self.class_of(oid)?;
        // Cascade to subclass perspectives first.
        for sub in self.schema.direct_subs(class).to_vec() {
            if let Some(g) = self.schema.g_link(class, sub) {
                let children: Vec<Oid> = self.assoc_ix[g.index()].targets(oid).to_vec();
                for child in children {
                    self.delete_object(child)?;
                }
            }
        }
        // Detach remaining links (emitting dissociation events).
        for a in 0..self.assoc_ix.len() {
            let removed = self.assoc_ix[a].detach(oid);
            for (from, to) in removed {
                self.log.push(UpdateEvent::Dissociated {
                    assoc: AssocId(a as u32),
                    from,
                    to,
                });
            }
        }
        // Drop attribute index entries.
        let rec = self.objects.remove(&oid).expect("checked live");
        for (slot, &attr) in self.layouts.attrs_of(class).iter().enumerate() {
            if let Some(ix) = self.attr_ix.get_mut(&(class, attr)) {
                ix.remove(&rec.attrs[slot], oid);
            }
        }
        self.extents[class.index()].remove(&oid);
        self.log.push(UpdateEvent::ObjectDeleted { class, oid });
        Ok(())
    }

    /// Restore an object under a specific OID (dump loading). No event is
    /// logged: a freshly loaded database starts with an empty update log.
    pub(crate) fn restore_object(&mut self, oid: Oid, class: ClassId) -> Result<(), StoreError> {
        if !self.schema.class(class).is_entity() {
            return Err(StoreError::WrongClass { oid, expected: class, actual: class });
        }
        if self.objects.contains_key(&oid) {
            return Err(StoreError::DuplicateSpecialization { oid, subclass: class });
        }
        self.objects
            .insert(oid, ObjRecord { class, attrs: self.layouts.empty_record(class) });
        self.extents[class.index()].insert(oid);
        Ok(())
    }

    /// Resume OID generation after `watermark` (dump loading).
    pub(crate) fn resume_oids_after(&mut self, watermark: Oid) {
        self.oidgen = OidGen::starting_after(watermark);
    }

    /// Restore a link without event logging or cardinality re-checks beyond
    /// endpoint classes (dump loading; the dump came from a valid store).
    pub(crate) fn restore_link(&mut self, assoc: AssocId, from: Oid, to: Oid)
        -> Result<(), StoreError>
    {
        if assoc.index() >= self.assoc_ix.len() {
            return Err(StoreError::NoSuchAssoc(assoc));
        }
        let d = self.schema.assoc(assoc).clone();
        self.check_endpoint(from, d.from, assoc, to)?;
        self.check_endpoint(to, d.to, assoc, from)?;
        self.assoc_ix[assoc.index()].insert(from, to);
        Ok(())
    }

    /// Restore an attribute value without event logging (dump loading).
    pub(crate) fn restore_attr(&mut self, oid: Oid, attr: AssocId, value: Value)
        -> Result<(), StoreError>
    {
        let class = self.class_of(oid)?;
        let slot = self.layouts.slot(class, attr).ok_or_else(|| StoreError::NoSuchAttribute {
            class,
            attr: self.schema.assoc(attr).name.clone(),
        })?;
        let dtype = self.schema.attr_dtype(attr).ok_or(StoreError::TypeMismatch { class, attr })?;
        if !value.conforms_to(dtype) {
            return Err(StoreError::TypeMismatch { class, attr });
        }
        self.objects.get_mut(&oid).expect("checked live").attrs[slot] = value;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Attributes
    // ------------------------------------------------------------------

    /// Set a descriptive attribute by name. The attribute may be inherited:
    /// the write then lands on the owning superclass perspective object,
    /// which must exist.
    pub fn set_attr(&mut self, oid: Oid, name: &str, value: Value) -> Result<(), StoreError> {
        let class = self.class_of(oid)?;
        let resolved = self.schema.resolve_attr(class, name).map_err(|_| {
            StoreError::NoSuchAttribute { class, attr: name.to_string() }
        })?;
        let target = self.climb(oid, &resolved.up_chain).ok_or(StoreError::NoSuchObject(oid))?;
        self.set_attr_direct(target, resolved.attr, value)
    }

    /// Set a directly-declared attribute of `oid`'s own class.
    pub fn set_attr_direct(
        &mut self,
        oid: Oid,
        attr: AssocId,
        value: Value,
    ) -> Result<(), StoreError> {
        let class = self.class_of(oid)?;
        let slot = self
            .layouts
            .slot(class, attr)
            .ok_or_else(|| StoreError::NoSuchAttribute {
                class,
                attr: self.schema.assoc(attr).name.clone(),
            })?;
        let dtype = self
            .schema
            .attr_dtype(attr)
            .ok_or(StoreError::TypeMismatch { class, attr })?;
        if !value.conforms_to(dtype) {
            return Err(StoreError::TypeMismatch { class, attr });
        }
        let rec = self.objects.get_mut(&oid).expect("checked live");
        let old = std::mem::replace(&mut rec.attrs[slot], value.clone());
        if let Some(ix) = self.attr_ix.get_mut(&(class, attr)) {
            ix.remove(&old, oid);
            ix.insert(value.clone(), oid);
        }
        self.log.push(UpdateEvent::AttrSet { class, oid, attr, old, new: value });
        Ok(())
    }

    /// Read an attribute by name, resolving inheritance by climbing
    /// perspective links. Returns `Value::Null` when the owning perspective
    /// object is missing.
    pub fn attr(&self, oid: Oid, name: &str) -> Result<Value, StoreError> {
        let class = self.class_of(oid)?;
        let resolved = self.schema.resolve_attr(class, name).map_err(|_| {
            StoreError::NoSuchAttribute { class, attr: name.to_string() }
        })?;
        Ok(self.attr_resolved(oid, &resolved))
    }

    /// Read via a pre-resolved attribute (hot path for query evaluation).
    pub fn attr_resolved(&self, oid: Oid, resolved: &ResolvedAttr) -> Value {
        match self.climb(oid, &resolved.up_chain) {
            Some(target) => self.attr_direct(target, resolved.attr),
            None => Value::Null,
        }
    }

    /// Read a directly-declared attribute; `Value::Null` if unset or if the
    /// object/attribute do not match.
    pub fn attr_direct(&self, oid: Oid, attr: AssocId) -> Value {
        let Some(rec) = self.objects.get(&oid) else { return Value::Null };
        match self.layouts.slot(rec.class, attr) {
            Some(slot) => rec.attrs[slot].clone(),
            None => Value::Null,
        }
    }

    // ------------------------------------------------------------------
    // Associations
    // ------------------------------------------------------------------

    fn check_endpoint(&self, oid: Oid, class: ClassId, assoc: AssocId, other: Oid)
        -> Result<(), StoreError>
    {
        let actual = self.class_of(oid)?;
        if actual != class {
            return Err(StoreError::AssocEndpointMismatch { assoc, from: oid, to: other });
        }
        Ok(())
    }

    /// Associate two objects under an ordinary association. Endpoint classes
    /// must match the association exactly (inherited associations connect
    /// the superclass *perspective* objects).
    pub fn associate(&mut self, assoc: AssocId, from: Oid, to: Oid) -> Result<(), StoreError> {
        if assoc.index() >= self.assoc_ix.len() {
            return Err(StoreError::NoSuchAssoc(assoc));
        }
        let d = self.schema.assoc(assoc).clone();
        self.check_endpoint(from, d.from, assoc, to)?;
        self.check_endpoint(to, d.to, assoc, from)?;
        if d.cardinality == Cardinality::Single
            && self.assoc_ix[assoc.index()].out_degree(from) > 0
            && !self.assoc_ix[assoc.index()].contains(from, to)
        {
            return Err(StoreError::CardinalityViolation { assoc, from });
        }
        if self.assoc_ix[assoc.index()].insert(from, to) {
            self.log.push(UpdateEvent::Associated { assoc, from, to });
        }
        Ok(())
    }

    /// Remove a link. No-op (Ok) if absent.
    pub fn dissociate(&mut self, assoc: AssocId, from: Oid, to: Oid) -> Result<(), StoreError> {
        if assoc.index() >= self.assoc_ix.len() {
            return Err(StoreError::NoSuchAssoc(assoc));
        }
        if self.assoc_ix[assoc.index()].remove(from, to) {
            self.log.push(UpdateEvent::Dissociated { assoc, from, to });
        }
        Ok(())
    }

    /// Neighbours of `oid` under `assoc` in the given direction, sorted.
    pub fn neighbors(&self, assoc: AssocId, oid: Oid, forward: bool) -> &[Oid] {
        self.assoc_ix[assoc.index()].neighbors(oid, forward)
    }

    /// Whether the link exists.
    pub fn linked(&self, assoc: AssocId, from: Oid, to: Oid) -> bool {
        self.assoc_ix[assoc.index()].contains(from, to)
    }

    /// Number of links under an association (planner statistics).
    pub fn link_count(&self, assoc: AssocId) -> usize {
        self.assoc_ix[assoc.index()].len()
    }

    /// All links of an association, deterministically ordered.
    pub fn links(&self, assoc: AssocId) -> Vec<(Oid, Oid)> {
        self.assoc_ix[assoc.index()].iter().collect()
    }

    // ------------------------------------------------------------------
    // Perspectives (instance-level generalization)
    // ------------------------------------------------------------------

    /// Create the `subclass` perspective of the real-world object whose
    /// `parent`-class perspective is `parent`. `subclass` must be a direct
    /// subclass of `parent`'s class, and the perspective must not already
    /// exist. Returns the new perspective object's OID.
    pub fn specialize(&mut self, parent: Oid, subclass: ClassId) -> Result<Oid, StoreError> {
        let pclass = self.class_of(parent)?;
        let g = self
            .schema
            .g_link(pclass, subclass)
            .ok_or(StoreError::AssocEndpointMismatch { assoc: AssocId(0), from: parent, to: parent })?;
        if !self.assoc_ix[g.index()].targets(parent).is_empty() {
            return Err(StoreError::DuplicateSpecialization { oid: parent, subclass });
        }
        let child = self.new_object(subclass)?;
        self.assoc_ix[g.index()].insert(parent, child);
        self.log.push(UpdateEvent::Associated { assoc: g, from: parent, to: child });
        Ok(child)
    }

    /// Add a second (or further) identity link for multiple inheritance:
    /// `parent`'s class must be a direct superclass of `child`'s class.
    /// Used for diamonds — e.g. a TA perspective is linked from both its
    /// Grad and its Teacher perspectives.
    pub fn add_perspective(&mut self, parent: Oid, child: Oid) -> Result<(), StoreError> {
        let pclass = self.class_of(parent)?;
        let cclass = self.class_of(child)?;
        let g = self
            .schema
            .g_link(pclass, cclass)
            .ok_or(StoreError::AssocEndpointMismatch { assoc: AssocId(0), from: parent, to: child })?;
        if !self.assoc_ix[g.index()].targets(parent).is_empty()
            && !self.assoc_ix[g.index()].contains(parent, child)
        {
            return Err(StoreError::DuplicateSpecialization { oid: parent, subclass: cclass });
        }
        if self.assoc_ix[g.index()].insert(parent, child) {
            self.log.push(UpdateEvent::Associated { assoc: g, from: parent, to: child });
        }
        Ok(())
    }

    /// Climb a bottom-up chain of G links from a subclass perspective to the
    /// corresponding superclass perspective. `None` if a perspective is
    /// missing along the way.
    pub fn climb(&self, oid: Oid, chain: &[AssocId]) -> Option<Oid> {
        let mut cur = oid;
        for &g in chain {
            // The instance is the G link's `to` end; the parent is a source.
            cur = *self.assoc_ix[g.index()].sources(cur).first()?;
        }
        Some(cur)
    }

    /// Descend a top-down chain of G links from a superclass perspective to
    /// the subclass perspective (if the object has one).
    pub fn descend(&self, oid: Oid, chain: &[AssocId]) -> Option<Oid> {
        let mut cur = oid;
        for &g in chain {
            cur = *self.assoc_ix[g.index()].targets(cur).first()?;
        }
        Some(cur)
    }

    /// All perspective objects of the same real-world object as `oid`:
    /// the connected component of `oid` under the instance-level identity
    /// (generalization) links, including `oid` itself. Used by incremental
    /// rule maintenance: an update to any perspective may affect patterns
    /// observed through another.
    pub fn perspective_closure(&self, oid: Oid) -> Vec<Oid> {
        let mut seen = vec![oid];
        let mut frontier = vec![oid];
        while let Some(cur) = frontier.pop() {
            for &g in &self.gen_assocs {
                for &n in self.assoc_ix[g.index()]
                    .targets(cur)
                    .iter()
                    .chain(self.assoc_ix[g.index()].sources(cur).iter())
                {
                    if !seen.contains(&n) {
                        seen.push(n);
                        frontier.push(n);
                    }
                }
            }
        }
        seen
    }

    /// The perspective closure of a whole seed set in one breadth-first
    /// pass — one traversal and one result set for the batch, where
    /// per-seed [`perspective_closure`](Self::perspective_closure) calls
    /// would re-visit shared ancestors and re-allocate per seed. Deleted
    /// seeds have no closure but stay in the result.
    pub fn perspective_closure_set(
        &self,
        seeds: impl IntoIterator<Item = Oid>,
    ) -> BTreeSet<Oid> {
        let mut out = BTreeSet::new();
        let mut frontier: Vec<Oid> = Vec::new();
        for o in seeds {
            if out.insert(o) {
                frontier.push(o);
            }
        }
        while let Some(cur) = frontier.pop() {
            for &g in &self.gen_assocs {
                for &n in self.assoc_ix[g.index()]
                    .targets(cur)
                    .iter()
                    .chain(self.assoc_ix[g.index()].sources(cur).iter())
                {
                    if out.insert(n) {
                        frontier.push(n);
                    }
                }
            }
        }
        out
    }

    /// Instance-level traversal of a resolved edge: all Y-instances reached
    /// from X-instance `oid` (paper §3.2 association-operator semantics,
    /// including inheritance and identity links).
    pub fn traverse(&self, oid: Oid, edge: &ResolvedEdge) -> Vec<Oid> {
        match edge {
            ResolvedEdge::Assoc { up_x, assoc, forward, up_y } => {
                let Some(xp) = self.climb(oid, up_x) else { return Vec::new() };
                let mids = self.assoc_ix[assoc.index()].neighbors(xp, *forward);
                if up_y.is_empty() {
                    return mids.to_vec();
                }
                // Descend the Y-side chain (reverse of its bottom-up form).
                let down: Vec<AssocId> = up_y.iter().rev().copied().collect();
                mids.iter()
                    .filter_map(|&m| self.descend(m, &down))
                    .collect()
            }
            ResolvedEdge::Identity { up_x, down_y } => {
                match self.climb(oid, up_x).and_then(|apex| self.descend(apex, down_y)) {
                    Some(y) => vec![y],
                    None => Vec::new(),
                }
            }
        }
    }

    /// Whether `x` reaches `y` over the resolved edge (used by the
    /// non-association operator `!`).
    pub fn edge_links(&self, x: Oid, edge: &ResolvedEdge, y: Oid) -> bool {
        // Fast path for plain associations.
        if let ResolvedEdge::Assoc { up_x, assoc, forward, up_y } = edge {
            if up_x.is_empty() && up_y.is_empty() {
                return if *forward {
                    self.linked(*assoc, x, y)
                } else {
                    self.linked(*assoc, y, x)
                };
            }
        }
        self.traverse(x, edge).contains(&y)
    }

    // ------------------------------------------------------------------
    // Attribute indexes
    // ------------------------------------------------------------------

    /// Build (or rebuild) an ordered index over a directly-declared
    /// attribute of `class`.
    pub fn create_attr_index(&mut self, class: ClassId, attr_name: &str) -> Result<(), StoreError> {
        let attr = self
            .schema
            .own_attr_by_name(class, attr_name)
            .ok_or_else(|| StoreError::NoSuchAttribute { class, attr: attr_name.to_string() })?;
        let mut ix = AttrIndex::new();
        let slot = self.layouts.slot(class, attr).expect("own attr has slot");
        for &oid in &self.extents[class.index()] {
            let v = self.objects[&oid].attrs[slot].clone();
            ix.insert(v, oid);
        }
        self.attr_ix.insert((class, attr), ix);
        Ok(())
    }

    /// The index over `(class, attr)`, if one was created.
    pub fn attr_index(&self, class: ClassId, attr: AssocId) -> Option<&AttrIndex> {
        let hit = self.attr_ix.get(&(class, attr));
        if dood_core::obs::metrics_enabled() {
            dood_core::obs::metrics::counter("store.index.probes").inc();
            if hit.is_some() {
                dood_core::obs::metrics::counter("store.index.hits").inc();
            }
        }
        hit
    }

    // ------------------------------------------------------------------
    // Constraints
    // ------------------------------------------------------------------

    /// Check all `required` (non-null) association constraints, returning a
    /// human-readable description per violation.
    pub fn check_constraints(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in self.schema.assocs() {
            if !a.required {
                continue;
            }
            for &oid in &self.extents[a.from.index()] {
                if self.assoc_ix[a.id.index()].out_degree(oid) == 0 {
                    out.push(format!(
                        "object {oid} of class {} violates non-null association `{}`",
                        self.schema.class(a.from).name,
                        a.name
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::DType;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.e_class("Person");
        b.e_class("Student");
        b.e_class("Teacher");
        b.e_class("Section");
        b.d_class("Name", DType::Str);
        b.d_class("GPA", DType::Real);
        b.attr("Person", "Name");
        b.attr("Student", "GPA");
        b.generalize("Person", "Student");
        b.generalize("Person", "Teacher");
        b.aggregate_named("Teacher", "Section", "Teaches");
        b.aggregate_named("Student", "Section", "Enrolls");
        b.build().unwrap()
    }

    fn cid(db: &Database, n: &str) -> ClassId {
        db.schema().class_by_name(n).unwrap()
    }

    #[test]
    fn object_lifecycle() {
        let mut db = Database::new(schema());
        let person = cid(&db, "Person");
        let p = db.new_object(person).unwrap();
        assert!(db.is_live(p));
        assert_eq!(db.class_of(p).unwrap(), person);
        assert_eq!(db.extent_size(person), 1);
        db.delete_object(p).unwrap();
        assert!(!db.is_live(p));
        assert_eq!(db.extent_size(person), 0);
    }

    #[test]
    fn cannot_instantiate_d_class() {
        let mut db = Database::new(schema());
        let name = db.schema().class_by_name("Name").unwrap();
        assert!(db.new_object(name).is_err());
    }

    #[test]
    fn attrs_direct_and_inherited() {
        let mut db = Database::new(schema());
        let p = db.new_object(cid(&db, "Person")).unwrap();
        db.set_attr(p, "Name", Value::str("smith")).unwrap();
        assert_eq!(db.attr(p, "Name").unwrap(), Value::str("smith"));

        let s = db.specialize(p, cid(&db, "Student")).unwrap();
        // Inherited read climbs to the Person perspective.
        assert_eq!(db.attr(s, "Name").unwrap(), Value::str("smith"));
        // Inherited write also climbs.
        db.set_attr(s, "Name", Value::str("jones")).unwrap();
        assert_eq!(db.attr(p, "Name").unwrap(), Value::str("jones"));
        // Own attribute of the subclass perspective.
        db.set_attr(s, "GPA", Value::Real(3.7)).unwrap();
        assert_eq!(db.attr(s, "GPA").unwrap(), Value::Real(3.7));
        // The superclass does not see subclass attributes.
        assert!(db.attr(p, "GPA").is_err());
    }

    #[test]
    fn attr_type_checked() {
        let mut db = Database::new(schema());
        let p = db.new_object(cid(&db, "Person")).unwrap();
        assert!(db.set_attr(p, "Name", Value::Int(5)).is_err());
        assert!(db.set_attr(p, "Nope", Value::Int(5)).is_err());
    }

    #[test]
    fn associate_checks_endpoints_and_cardinality() {
        let mut db = Database::new(schema());
        let teacher = cid(&db, "Teacher");
        let section = cid(&db, "Section");
        let p = db.new_object(cid(&db, "Person")).unwrap();
        let t = db.specialize(p, teacher).unwrap();
        let s1 = db.new_object(section).unwrap();
        let teaches = db.schema().own_link_by_name(teacher, "Teaches").unwrap();
        db.associate(teaches, t, s1).unwrap();
        assert!(db.linked(teaches, t, s1));
        // Wrong endpoint class.
        assert!(db.associate(teaches, p, s1).is_err());
        // Idempotent re-associate.
        db.associate(teaches, t, s1).unwrap();
        assert_eq!(db.link_count(teaches), 1);
        db.dissociate(teaches, t, s1).unwrap();
        assert!(!db.linked(teaches, t, s1));
    }

    #[test]
    fn single_cardinality_enforced() {
        let mut b = SchemaBuilder::new();
        b.e_class("Section");
        b.e_class("Course");
        b.aggregate_single("Section", "Course");
        let mut db = Database::new(b.build().unwrap());
        let section = db.schema().class_by_name("Section").unwrap();
        let course = db.schema().class_by_name("Course").unwrap();
        let a = db.schema().assocs()[0].id;
        let s = db.new_object(section).unwrap();
        let c1 = db.new_object(course).unwrap();
        let c2 = db.new_object(course).unwrap();
        db.associate(a, s, c1).unwrap();
        assert!(matches!(
            db.associate(a, s, c2),
            Err(StoreError::CardinalityViolation { .. })
        ));
    }

    #[test]
    fn specialize_creates_identity_chain() {
        let mut db = Database::new(schema());
        let p = db.new_object(cid(&db, "Person")).unwrap();
        let s = db.specialize(p, cid(&db, "Student")).unwrap();
        // Climb back up.
        let g = db.schema().g_link(cid(&db, "Person"), cid(&db, "Student")).unwrap();
        assert_eq!(db.climb(s, &[g]), Some(p));
        assert_eq!(db.descend(p, &[g]), Some(s));
        // No duplicate perspective.
        assert!(db.specialize(p, cid(&db, "Student")).is_err());
    }

    #[test]
    fn traverse_inherited_edge() {
        let mut db = Database::new(schema());
        let schema_ = db.schema_arc();
        let p = db.new_object(cid(&db, "Person")).unwrap();
        let s = db.specialize(p, cid(&db, "Student")).unwrap();
        let sec = db.new_object(cid(&db, "Section")).unwrap();
        let enrolls = schema_
            .own_link_by_name(cid(&db, "Student"), "Enrolls")
            .unwrap();
        db.associate(enrolls, s, sec).unwrap();
        // Person * Section resolves via Student's Enrolls? No: Person is the
        // superclass; Section relates to Student/Teacher. Resolve from the
        // Student side instead: Student * Section is direct.
        let edge = schema_.resolve_edge(cid(&db, "Student"), cid(&db, "Section")).unwrap();
        assert_eq!(db.traverse(s, &edge), vec![sec]);
        // Reverse edge: Section * Student.
        let back = schema_.resolve_edge(cid(&db, "Section"), cid(&db, "Student")).unwrap();
        assert_eq!(db.traverse(sec, &back), vec![s]);
        assert!(db.edge_links(s, &edge, sec));
    }

    #[test]
    fn traverse_identity_edge() {
        let mut db = Database::new(schema());
        let schema_ = db.schema_arc();
        let p = db.new_object(cid(&db, "Person")).unwrap();
        let s = db.specialize(p, cid(&db, "Student")).unwrap();
        let t = db.specialize(p, cid(&db, "Teacher")).unwrap();
        // Student * Teacher: identity through Person.
        let edge = schema_.resolve_edge(cid(&db, "Student"), cid(&db, "Teacher")).unwrap();
        assert_eq!(db.traverse(s, &edge), vec![t]);
        // A student whose person has no teacher perspective reaches nothing.
        let p2 = db.new_object(cid(&db, "Person")).unwrap();
        let s2 = db.specialize(p2, cid(&db, "Student")).unwrap();
        assert!(db.traverse(s2, &edge).is_empty());
    }

    #[test]
    fn delete_cascades_to_perspectives_and_links() {
        let mut db = Database::new(schema());
        let p = db.new_object(cid(&db, "Person")).unwrap();
        let s = db.specialize(p, cid(&db, "Student")).unwrap();
        let sec = db.new_object(cid(&db, "Section")).unwrap();
        let enrolls = db
            .schema()
            .own_link_by_name(cid(&db, "Student"), "Enrolls")
            .unwrap();
        db.associate(enrolls, s, sec).unwrap();
        db.delete_object(p).unwrap();
        assert!(!db.is_live(p));
        assert!(!db.is_live(s));
        assert!(db.is_live(sec));
        assert_eq!(db.link_count(enrolls), 0);
    }

    #[test]
    fn attr_index_maintained() {
        let mut db = Database::new(schema());
        let person = cid(&db, "Person");
        let p1 = db.new_object(person).unwrap();
        db.set_attr(p1, "Name", Value::str("a")).unwrap();
        db.create_attr_index(person, "Name").unwrap();
        let name_attr = db.schema().own_attr_by_name(person, "Name").unwrap();
        assert_eq!(db.attr_index(person, name_attr).unwrap().eq_scan(&Value::str("a")), vec![p1]);
        // Updates and inserts maintain the index.
        db.set_attr(p1, "Name", Value::str("b")).unwrap();
        let p2 = db.new_object(person).unwrap();
        db.set_attr(p2, "Name", Value::str("a")).unwrap();
        let ix = db.attr_index(person, name_attr).unwrap();
        assert_eq!(ix.eq_scan(&Value::str("a")), vec![p2]);
        assert_eq!(ix.eq_scan(&Value::str("b")), vec![p1]);
    }

    #[test]
    fn constraint_checking() {
        let mut b = SchemaBuilder::new();
        b.e_class("Course");
        b.e_class("Section");
        b.aggregate_single("Section", "Course");
        b.required();
        let mut db = Database::new(b.build().unwrap());
        let section = db.schema().class_by_name("Section").unwrap();
        let course = db.schema().class_by_name("Course").unwrap();
        let s = db.new_object(section).unwrap();
        assert_eq!(db.check_constraints().len(), 1);
        let c = db.new_object(course).unwrap();
        let a = db.schema().assocs()[0].id;
        db.associate(a, s, c).unwrap();
        assert!(db.check_constraints().is_empty());
    }

    #[test]
    fn event_log_records_mutations() {
        let mut db = Database::new(schema());
        let before = db.seq();
        let p = db.new_object(cid(&db, "Person")).unwrap();
        db.set_attr(p, "Name", Value::str("x")).unwrap();
        assert_eq!(db.events().since(before).len(), 2);
        assert!(matches!(
            db.events().since(before)[0],
            UpdateEvent::ObjectCreated { .. }
        ));
    }
}
