//! `rules::absint` — a multi-pass abstract interpreter over analyzed rule
//! programs (DESIGN.md §12).
//!
//! Everything here is decidable (or soundly boundable) from the **schema
//! and program text alone** — no extensional data is touched unless the
//! caller supplies a [`CardEnv`] snapshot:
//!
//! 1. **Predicate lattice** — every intra-class condition and WHERE
//!    comparison is abstracted into a per-attribute interval with excluded
//!    points ([`Ival`]): constant comparisons fold, comparison chains
//!    narrow (Int-aware: `x > 3 and x < 4` is empty over integers), and
//!    `and`/`or`/`not` trees go through NNF→DNF with a disjunct cap, so
//!    satisfiability of attribute-vs-literal predicates is decided
//!    *exactly* within the atom domain. Contradictions are `E017`; a later
//!    condition implied by the constraints already accumulated is `W108`.
//! 2. **Abstract cardinalities** — schema-derived per-slot candidate
//!    bounds and per-edge fan-out bounds (`Single` cardinality → 1,
//!    generalization identity → 1, `Many` → link count or ∞) are
//!    propagated through each context's join chain: any contiguous slot
//!    range gets a worst-case row bound (minimum over anchor choices of
//!    the directed fan product). Rule extents are bounded by the sum over
//!    retention spans; derived-subdatabase bounds flow topologically into
//!    downstream rules. Reading a provably-empty derived source is
//!    `E018`; an unconstrained chain crossing several wide (Many)
//!    association edges is the `W109` join-blowup warning.
//! 3. **Null-flow** — brace retention (`{...}`) leaves slots outside the
//!    retained span Null, and a WHERE comparison referencing such a slot
//!    drops every retained pattern, so those spans contribute **zero** to
//!    the extent bound (the quantitative side of the `W104` lint).
//! 4. **Closure reach/depth** — a `^*`/`^N` context's family reach is
//!    bounded by the seed class's extent, and a closure whose chain *and*
//!    cycle-back edges are all generalization identities reaches fixpoint
//!    at level 1 — so `^N` with `N >= 2` is a provably dead tail (`W110`).
//!
//! The same analysis feeds the planner: [`install_priors`] converts
//! predicate intervals into selectivity priors and `Single` cardinalities
//! into fan-out priors, registered in `core::obs::stats` under exactly the
//! keys `oql::plan`'s cost model reads — consulted only until real
//! observations arrive, so a warmed registry is never perturbed.
//! Soundness is machine-checked: `tests/absint.rs` asserts observed
//! runtime cardinalities never exceed the static bounds across all builtin
//! schemas and populations.

use crate::analyze::{shape, Shape};
use crate::ast::{Rule, TargetItem};
use crate::depgraph::DepGraph;
use crate::program::{Program, ProgramRule};
use dood_core::diag::{Diagnostic, Span};
use dood_core::fxhash::{FxHashMap, FxHashSet};
use dood_core::ids::{AssocId, ClassId};
use dood_core::obs::stats;
use dood_core::schema::{Cardinality, ResolvedEdge, Schema};
use dood_core::value::{DType, Value};
use dood_oql::ast::{AggFunc, ClassRef, CmpOp, CmpRhs, Literal, PatOp, Pred, Seq, WhereCond};
use dood_store::Database;

/// Cap on DNF disjuncts; predicates exceeding it are conservatively
/// assumed satisfiable (no diagnostic, no narrowing).
const MAX_DNF: usize = 64;

/// Cap on the excluded-point scan deciding finite-integer emptiness.
const MAX_NE_SCAN: i64 = 64;

/// Wide-edge threshold for the W109 join-blowup lint: a non-closure
/// context whose chain crosses at least this many Many-cardinality
/// association edges with **no** constrained slot has a worst-case extent
/// that grows multiplicatively with every wide edge.
const W109_WIDE_EDGES: usize = 2;

// ====================================================================
// Interval lattice over attribute values
// ====================================================================

/// An abstract attribute value: an interval with excluded points, over one
/// attribute's declared value type. `None` endpoints are unbounded.
#[derive(Debug, Clone, PartialEq)]
pub struct Ival {
    lo: Option<(Value, bool)>,
    hi: Option<(Value, bool)>,
    ne: Vec<Value>,
    dtype: Option<DType>,
}

impl Ival {
    /// The unconstrained interval.
    pub fn top(dtype: Option<DType>) -> Self {
        Ival { lo: None, hi: None, ne: Vec::new(), dtype }
    }

    /// The interval one comparison atom admits.
    pub fn from_cmp(op: CmpOp, value: &Value, dtype: Option<DType>) -> Self {
        let mut iv = Ival::top(dtype);
        match op {
            CmpOp::Eq => {
                iv.lo = Some((value.clone(), true));
                iv.hi = Some((value.clone(), true));
            }
            CmpOp::Neq => iv.ne.push(value.clone()),
            CmpOp::Lt => iv.hi = Some((value.clone(), false)),
            CmpOp::Le => iv.hi = Some((value.clone(), true)),
            CmpOp::Gt => iv.lo = Some((value.clone(), false)),
            CmpOp::Ge => iv.lo = Some((value.clone(), true)),
        }
        iv.normalize();
        iv
    }

    /// Integer narrowing: over an `Int` attribute, numeric bounds tighten
    /// to the nearest admissible integer (`> 3` ⇒ `>= 4`, `< 4.5` ⇒
    /// `<= 4`), making `x > 3 and x < 4` decidably empty.
    fn normalize(&mut self) {
        if self.dtype != Some(DType::Int) {
            return;
        }
        if let Some((v, incl)) = &self.lo {
            if let Some(x) = v.as_f64() {
                let n = if *incl { x.ceil() } else { x.floor() + 1.0 };
                self.lo = Some((Value::Int(n as i64), true));
            }
        }
        if let Some((v, incl)) = &self.hi {
            if let Some(x) = v.as_f64() {
                let n = if *incl { x.floor() } else { x.ceil() - 1.0 };
                self.hi = Some((Value::Int(n as i64), true));
            }
        }
    }

    /// Greatest lower bound: the conjunction of two constraints.
    pub fn intersect(&self, other: &Ival) -> Ival {
        let lo = tighter(&self.lo, &other.lo, true);
        let hi = tighter(&self.hi, &other.hi, false);
        let mut ne = self.ne.clone();
        for v in &other.ne {
            if !ne.iter().any(|w| w.compare(v) == Some(std::cmp::Ordering::Equal)) {
                ne.push(v.clone());
            }
        }
        let mut iv = Ival { lo, hi, ne, dtype: self.dtype.or(other.dtype) };
        iv.normalize();
        iv
    }

    /// Whether no value satisfies the constraint: inverted bounds, a point
    /// that is excluded, incomparable (mixed-type) bounds, or a finite
    /// integer range fully covered by excluded points.
    pub fn is_empty(&self) -> bool {
        use std::cmp::Ordering::*;
        if let (Some((l, li)), Some((h, hi_i))) = (&self.lo, &self.hi) {
            match l.compare(h) {
                Some(Greater) | None => return true,
                Some(Equal) => {
                    if !(*li && *hi_i) || self.excludes(l) {
                        return true;
                    }
                }
                Some(Less) => {}
            }
            if self.dtype == Some(DType::Int) {
                if let (Value::Int(a), Value::Int(b)) = (l, h) {
                    if b - a < MAX_NE_SCAN && (*a..=*b).all(|i| self.excludes(&Value::Int(i))) {
                        return true;
                    }
                }
            }
        }
        false
    }

    fn excludes(&self, v: &Value) -> bool {
        self.ne.iter().any(|w| w.compare(v) == Some(std::cmp::Ordering::Equal))
    }

    fn admits(&self, v: &Value) -> bool {
        use std::cmp::Ordering::*;
        if let Some((l, incl)) = &self.lo {
            match v.compare(l) {
                Some(Less) | None => return false,
                Some(Equal) if !incl => return false,
                _ => {}
            }
        }
        if let Some((h, incl)) = &self.hi {
            match v.compare(h) {
                Some(Greater) | None => return false,
                Some(Equal) if !incl => return false,
                _ => {}
            }
        }
        !self.excludes(v)
    }

    /// Whether every value admitted by `env` is admitted by `self` — i.e.
    /// the constraint `self` adds no information on top of `env` (the
    /// `W108` subsumption test). Conservative: `false` when unsure.
    pub fn subsumes(&self, env: &Ival) -> bool {
        if !bound_covers(&self.lo, &env.lo, true) || !bound_covers(&self.hi, &env.hi, false) {
            return false;
        }
        self.ne.iter().all(|v| !env.admits(v))
    }

    /// Whether the interval carries any constraint at all.
    fn constrained(&self) -> bool {
        self.lo.is_some() || self.hi.is_some() || !self.ne.is_empty()
    }

    /// `(is_point, is_two_sided)` — the interval-shape features the prior
    /// estimator maps to selectivities.
    fn span_shape(&self) -> (bool, bool) {
        let point = matches!(
            (&self.lo, &self.hi),
            (Some((a, true)), Some((b, true)))
                if a.compare(b) == Some(std::cmp::Ordering::Equal)
        );
        (point, self.lo.is_some() && self.hi.is_some())
    }
}

/// Pick the tighter of two optional bounds (`is_lo`: larger lower bounds
/// are tighter; smaller upper bounds are tighter).
fn tighter(
    a: &Option<(Value, bool)>,
    b: &Option<(Value, bool)>,
    is_lo: bool,
) -> Option<(Value, bool)> {
    use std::cmp::Ordering::*;
    match (a, b) {
        (None, x) => x.clone(),
        (x, None) => x.clone(),
        (Some((va, ia)), Some((vb, ib))) => match va.compare(vb) {
            Some(Equal) => Some((va.clone(), *ia && *ib)),
            Some(Less) => Some(if is_lo { (vb.clone(), *ib) } else { (va.clone(), *ia) }),
            Some(Greater) => Some(if is_lo { (va.clone(), *ia) } else { (vb.clone(), *ib) }),
            // Incomparable (mixed types): keep `a`; `is_empty` catches the
            // contradiction via the lo/hi comparison.
            None => Some((va.clone(), *ia)),
        },
    }
}

/// Whether bound `outer` is at least as permissive as bound `inner`.
fn bound_covers(
    outer: &Option<(Value, bool)>,
    inner: &Option<(Value, bool)>,
    is_lo: bool,
) -> bool {
    use std::cmp::Ordering::*;
    match (outer, inner) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some((vo, io)), Some((vi, ii))) => match vo.compare(vi) {
            Some(Equal) => *io || !*ii,
            Some(Less) => is_lo,
            Some(Greater) => !is_lo,
            None => false,
        },
    }
}

/// Least upper bound of two intervals (union hull; exclusions only survive
/// when shared).
fn hull2(a: &Ival, b: &Ival) -> Ival {
    let lo = looser(&a.lo, &b.lo, true);
    let hi = looser(&a.hi, &b.hi, false);
    let ne: Vec<Value> = a.ne.iter().filter(|v| b.excludes(v)).cloned().collect();
    Ival { lo, hi, ne, dtype: a.dtype.or(b.dtype) }
}

fn looser(
    a: &Option<(Value, bool)>,
    b: &Option<(Value, bool)>,
    is_lo: bool,
) -> Option<(Value, bool)> {
    use std::cmp::Ordering::*;
    match (a, b) {
        (None, _) | (_, None) => None,
        (Some((va, ia)), Some((vb, ib))) => match va.compare(vb) {
            Some(Equal) => Some((va.clone(), *ia || *ib)),
            Some(Less) => Some(if is_lo { (va.clone(), *ia) } else { (vb.clone(), *ib) }),
            Some(Greater) => Some(if is_lo { (vb.clone(), *ib) } else { (va.clone(), *ia) }),
            None => None,
        },
    }
}

// ====================================================================
// Predicate trees: NNF → DNF over comparison atoms
// ====================================================================

/// One comparison atom of a normalized predicate.
#[derive(Clone)]
struct Atom {
    attr: String,
    op: CmpOp,
    value: Value,
}

fn negate_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Neq,
        CmpOp::Neq => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// Expand a predicate into DNF (disjuncts of atom conjunctions), pushing
/// negation to the leaves. Returns `None` when the expansion exceeds
/// [`MAX_DNF`] — the caller must then assume satisfiability.
fn dnf(pred: &Pred, neg: bool) -> Option<Vec<Vec<Atom>>> {
    match (pred, neg) {
        (Pred::Cmp { attr, op, value }, n) => {
            let op = if n { negate_op(*op) } else { *op };
            Some(vec![vec![Atom { attr: attr.clone(), op, value: value.to_value() }]])
        }
        (Pred::Not(p), n) => dnf(p, !n),
        // De Morgan: not(a and b) = not a or not b.
        (Pred::And(a, b), false) | (Pred::Or(a, b), true) => {
            let (da, db) = (dnf(a, neg)?, dnf(b, neg)?);
            if da.len().saturating_mul(db.len()) > MAX_DNF {
                return None;
            }
            let mut out = Vec::with_capacity(da.len() * db.len());
            for x in &da {
                for y in &db {
                    let mut c = x.clone();
                    c.extend(y.iter().cloned());
                    out.push(c);
                }
            }
            Some(out)
        }
        (Pred::Or(a, b), false) | (Pred::And(a, b), true) => {
            let mut out = dnf(a, neg)?;
            out.extend(dnf(b, neg)?);
            if out.len() > MAX_DNF {
                return None;
            }
            Some(out)
        }
    }
}

/// The per-attribute abstraction of one predicate: overall satisfiability
/// (exact up to the DNF cap) plus, for each attribute constrained by
/// *every* satisfiable disjunct, the hull of its intervals (sound for
/// narrowing).
struct PredAbs {
    sat: bool,
    hull: FxHashMap<String, Ival>,
}

/// Abstract a predicate tree; `dtype_of` resolves each attribute's
/// declared value type (`None` leaves the atom type-unconstrained rather
/// than guessing).
fn abstract_pred(pred: &Pred, dtype_of: &dyn Fn(&str) -> Option<DType>) -> PredAbs {
    let Some(disjuncts) = dnf(pred, false) else {
        return PredAbs { sat: true, hull: FxHashMap::default() };
    };
    let mut sat_envs: Vec<FxHashMap<String, Ival>> = Vec::new();
    for conj in &disjuncts {
        let mut env: FxHashMap<String, Ival> = FxHashMap::default();
        let mut ok = true;
        for a in conj {
            let dt = dtype_of(&a.attr);
            let iv = Ival::from_cmp(a.op, &a.value, dt);
            let cur = env.entry(a.attr.clone()).or_insert_with(|| Ival::top(dt));
            *cur = cur.intersect(&iv);
            if cur.is_empty() {
                ok = false;
                break;
            }
        }
        if ok {
            sat_envs.push(env);
        }
    }
    if sat_envs.is_empty() {
        return PredAbs { sat: false, hull: FxHashMap::default() };
    }
    let mut hull: FxHashMap<String, Ival> = FxHashMap::default();
    if let Some(first) = sat_envs.first() {
        'attrs: for (attr, iv0) in first {
            let mut acc = iv0.clone();
            for env in &sat_envs[1..] {
                let Some(iv) = env.get(attr) else { continue 'attrs };
                acc = hull2(&acc, iv);
            }
            hull.insert(attr.clone(), acc);
        }
    }
    PredAbs { sat: true, hull }
}

// ====================================================================
// Cardinality environment
// ====================================================================

/// The extensional snapshot bounds are computed against:
/// [`CardEnv::unknown`] (pure schema reasoning — extents and link counts
/// are ∞) or a live [`Database`] snapshot (bounds become finite and
/// `doodprof --plan` can compare them to measured rows).
pub struct CardEnv {
    extents: Option<FxHashMap<ClassId, f64>>,
    links: Option<FxHashMap<AssocId, f64>>,
}

impl CardEnv {
    /// Pure schema reasoning: every extent and link count is unbounded.
    pub fn unknown() -> Self {
        CardEnv { extents: None, links: None }
    }

    /// Snapshot a database's extent and link-count sizes.
    pub fn from_db(db: &Database) -> Self {
        let schema = db.schema();
        let extents = (0..schema.class_count())
            .map(|i| {
                let id = ClassId(i as u32);
                (id, db.extent_size(id) as f64)
            })
            .collect();
        let links =
            schema.assocs().iter().map(|a| (a.id, db.link_count(a.id) as f64)).collect();
        CardEnv { extents: Some(extents), links: Some(links) }
    }

    fn extent_hi(&self, class: Option<ClassId>) -> f64 {
        match (&self.extents, class) {
            (Some(m), Some(c)) => m.get(&c).copied().unwrap_or(f64::INFINITY),
            _ => f64::INFINITY,
        }
    }

    fn links_hi(&self, assoc: AssocId) -> f64 {
        match &self.links {
            Some(m) => m.get(&assoc).copied().unwrap_or(f64::INFINITY),
            None => f64::INFINITY,
        }
    }
}

/// `0 × ∞ = 0` multiplication (an empty slot annihilates any fan-out).
fn mul_b(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

/// Render a bound with `*` for ∞ (the `doodlint --absint` table format).
pub fn show_bound(v: f64) -> String {
    if v.is_infinite() {
        "*".to_string()
    } else {
        format!("{v:.0}")
    }
}

// ====================================================================
// Per-rule bounds
// ====================================================================

/// Closure reach/depth bounds for a cyclic context.
#[derive(Debug, Clone)]
pub struct ClosureBounds {
    /// Bound on distinct objects across all closure levels of the family
    /// (the seed class's extent bound).
    pub reach_hi: f64,
    /// Bound on the deepest level the fixpoint can populate; `1.0` when
    /// every chain and cycle edge is a generalization identity.
    pub depth_hi: f64,
    /// The declared `^N` level bound, when one was written.
    pub levels: Option<u32>,
}

/// The abstract-interpretation result for one rule or query context.
#[derive(Debug, Clone)]
pub struct RuleBounds {
    /// Rule or query name.
    pub owner: String,
    /// Slot display names, in context order.
    pub slot_names: Vec<String>,
    /// Per slot: worst-case candidate count (0 when the slot's predicate
    /// is unsatisfiable or its source subdatabase is provably empty).
    pub slot_hi: Vec<f64>,
    /// Per edge: fan-out bound traversing left→right.
    pub fan_fwd: Vec<f64>,
    /// Per edge: fan-out bound traversing right→left.
    pub fan_rev: Vec<f64>,
    /// Worst-case extent bound (sum over retention spans, null-flow-aware).
    pub rows_hi: f64,
    /// Closure bounds, for cyclic contexts.
    pub closure: Option<ClosureBounds>,
    /// Whether the context is provably empty.
    pub empty: bool,
    /// Whether this entry is a query (no target subdatabase).
    pub is_query: bool,
}

impl RuleBounds {
    /// Worst-case rows after binding the contiguous slot range `[lo, hi)`:
    /// the minimum over anchor choices of the directed fan product. The
    /// per-step static column of `doodprof --plan` reads this (a compiled
    /// plan's bound set is always a contiguous range — join orders are
    /// interval extensions).
    pub fn range_hi(&self, lo: usize, hi: usize) -> f64 {
        assert!(lo < hi && hi <= self.slot_hi.len());
        range_hi_of(&self.slot_hi, &self.fan_fwd, &self.fan_rev, lo, hi)
    }

    /// One table row per slot/edge: the `doodlint --absint` rendering.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "{} {}: rows<={}{}\n",
            if self.is_query { "query" } else { "rule" },
            self.owner,
            show_bound(self.rows_hi),
            if self.empty { " (EMPTY)" } else { "" },
        );
        for (i, name) in self.slot_names.iter().enumerate() {
            out.push_str(&format!("  slot {name}: card<={}\n", show_bound(self.slot_hi[i])));
            if i + 1 < self.slot_names.len() {
                out.push_str(&format!(
                    "  edge {}-{}: fan<={}/{}\n",
                    name,
                    self.slot_names[i + 1],
                    show_bound(self.fan_fwd[i]),
                    show_bound(self.fan_rev[i]),
                ));
            }
        }
        if let Some(c) = &self.closure {
            out.push_str(&format!(
                "  closure: reach<={} depth<={}{}\n",
                show_bound(c.reach_hi),
                show_bound(c.depth_hi),
                match c.levels {
                    Some(n) => format!(" (declared ^{n})"),
                    None => String::new(),
                },
            ));
        }
        out
    }
}

/// Worst-case rows for a contiguous slot range.
fn range_hi_of(slot_hi: &[f64], fan_fwd: &[f64], fan_rev: &[f64], lo: usize, hi: usize) -> f64 {
    let mut best = f64::INFINITY;
    for anchor in lo..hi {
        let mut rows = slot_hi[anchor];
        // Extend right then left; the bound product is order-independent.
        for j in anchor..hi - 1 {
            rows = mul_b(rows, fan_fwd[j].min(slot_hi[j + 1]));
        }
        for j in (lo..anchor).rev() {
            rows = mul_b(rows, fan_rev[j].min(slot_hi[j]));
        }
        best = best.min(rows);
    }
    best
}

/// The whole program's abstract interpretation: per-context bounds plus
/// the diagnostics the pass derives from them.
pub struct Analysis {
    /// Bounds per rule (declaration order) then query (declaration order).
    pub rules: Vec<RuleBounds>,
    /// E017/E018/W108/W109/W110 diagnostics, unsorted.
    pub diags: Vec<Diagnostic>,
    /// Derived-subdatabase extent bounds (sums over deriving rules).
    pub subdb_hi: FxHashMap<String, f64>,
}

impl Analysis {
    /// The bounds entry for a rule or query name.
    pub fn bounds_for(&self, owner: &str) -> Option<&RuleBounds> {
        self.rules.iter().find(|r| r.owner == owner)
    }
}

// ====================================================================
// The interpreter
// ====================================================================

/// Run the abstract interpreter over a program.
pub fn analyze_bounds(
    program: &Program,
    schema: &Schema,
    external: &FxHashSet<String>,
    env: &CardEnv,
) -> Analysis {
    let mut it = Interp {
        prog: program,
        schema,
        external,
        layouts: FxHashMap::default(),
        subdb_hi: FxHashMap::default(),
        out: Vec::new(),
        diags: Vec::new(),
    };
    it.run(env);
    Analysis { rules: it.out, diags: it.diags, subdb_hi: it.subdb_hi }
}

/// The diagnostics-only entry point `rules::analyze` folds in: pure
/// schema reasoning (no extensional data). The program's own `extern`
/// directives are honored in addition to `external`.
pub fn diagnostics(
    program: &Program,
    schema: &Schema,
    external: &FxHashSet<String>,
) -> Vec<Diagnostic> {
    let mut ext = external.clone();
    ext.extend(program.externs.iter().cloned());
    analyze_bounds(program, schema, &ext, &CardEnv::unknown()).diags
}

/// A derived subdatabase's statically-known slot layout.
struct Layout {
    slot_names: Vec<String>,
    bases: Vec<Option<ClassId>>,
    attrs: Vec<Option<Vec<String>>>,
}

/// A resolved context occurrence.
struct Occ<'a> {
    name: String,
    subdb: Option<String>,
    base: Option<ClassId>,
    attr_filter: Option<Vec<String>>,
    pred: Option<&'a Pred>,
    span: Span,
}

struct Interp<'a> {
    prog: &'a Program,
    schema: &'a Schema,
    external: &'a FxHashSet<String>,
    layouts: FxHashMap<String, Layout>,
    subdb_hi: FxHashMap<String, f64>,
    out: Vec<RuleBounds>,
    diags: Vec<Diagnostic>,
}

impl<'a> Interp<'a> {
    fn err(&mut self, code: &'static str, msg: String, span: Span, owner: &str) {
        let d = Diagnostic::error(code, msg).with_span(span, &self.prog.source).with_owner(owner);
        self.diags.push(d);
    }

    fn warn(&mut self, code: &'static str, msg: String, span: Span, owner: &str, note: &str) {
        let d = Diagnostic::warning(code, msg)
            .with_span(span, &self.prog.source)
            .with_owner(owner)
            .with_note(note);
        self.diags.push(d);
    }

    fn run(&mut self, env: &CardEnv) {
        // Rule processing order: topological when stratified (so source
        // subdatabase bounds exist before readers); declaration order on a
        // cycle (the analyzer reports the cycle separately).
        let rules: Vec<Rule> = self.prog.rules.iter().map(|r| r.rule.clone()).collect();
        let graph = DepGraph::build(&rules);
        let order: Vec<usize> = match graph.topo_order() {
            Ok(names) => {
                let mut out = Vec::new();
                for n in &names {
                    out.extend(graph.rules_for(n).iter().copied());
                }
                out
            }
            Err(_) => (0..self.prog.rules.len()).collect(),
        };
        let mut computed: Vec<(usize, RuleBounds)> = Vec::new();
        for ri in order {
            let pr = &self.prog.rules[ri];
            let b = self.interp_rule(pr, env);
            *self.subdb_hi.entry(pr.rule.target_subdb.clone()).or_insert(0.0) += b.rows_hi;
            self.record_layout(pr);
            computed.push((ri, b));
        }
        computed.sort_by_key(|(ri, _)| *ri);
        self.out.extend(computed.into_iter().map(|(_, b)| b));
        let queries = self.prog.queries.iter();
        for q in queries {
            let sh = shape(&q.query.context.seq);
            let occs = self.resolve_occs(&sh, &q.occurrences);
            let b = self.interp_context(
                &q.name,
                &sh,
                &occs,
                q.query.context.closure.as_ref().map(|c| c.iterations),
                &q.query.where_,
                &q.wheres,
                env,
                true,
            );
            self.out.push(b);
        }
    }

    fn interp_rule(&mut self, pr: &'a ProgramRule, env: &CardEnv) -> RuleBounds {
        let rule = &pr.rule;
        let sh = shape(&rule.context.seq);
        let occs = self.resolve_occs(&sh, &pr.spans.occurrences);
        self.interp_context(
            &rule.name,
            &sh,
            &occs,
            rule.context.closure.as_ref().map(|c| c.iterations),
            &rule.where_,
            &pr.spans.wheres,
            env,
            false,
        )
    }

    /// Record the target subdatabase's slot layout (first deriving rule
    /// wins, matching the analyzer's layout convention).
    fn record_layout(&mut self, pr: &'a ProgramRule) {
        let rule = &pr.rule;
        if self.layouts.contains_key(&rule.target_subdb) {
            return;
        }
        let sh = shape(&rule.context.seq);
        let mut slot_names = Vec::new();
        let mut bases = Vec::new();
        let mut attrs = Vec::new();
        for t in &rule.targets {
            if let TargetItem::Class { class, attrs: a } = t {
                let base = sh
                    .occs
                    .iter()
                    .find(|(c, _)| c.name == class.name)
                    .and_then(|(c, _)| self.base_of(c));
                bases.push(base);
                slot_names.push(class.name.clone());
                attrs.push(a.clone());
            }
        }
        self.layouts.insert(rule.target_subdb.clone(), Layout { slot_names, bases, attrs });
    }

    /// The base class a name denotes: the class itself, or (for a closure
    /// alias like `Part_1`) its family class.
    fn class_of(&self, name: &str) -> Option<ClassId> {
        self.schema.try_class_by_name(name).or_else(|| {
            let (family, level) = ClassRef::split_alias(name);
            if level > 0 {
                self.schema.try_class_by_name(family)
            } else {
                None
            }
        })
    }

    fn base_of(&self, cref: &ClassRef) -> Option<ClassId> {
        match &cref.subdb {
            Some(sd) => match self.layouts.get(sd.as_str()) {
                Some(l) => l
                    .slot_names
                    .iter()
                    .position(|n| *n == cref.name)
                    .and_then(|i| l.bases[i])
                    .or_else(|| self.class_of(&cref.name)),
                None => self.class_of(&cref.name),
            },
            None => self.class_of(&cref.name),
        }
    }

    fn resolve_occs(&self, sh: &Shape<'a>, spans: &[Span]) -> Vec<Occ<'a>> {
        sh.occs
            .iter()
            .enumerate()
            .map(|(i, (cref, pred))| {
                let attr_filter = cref.subdb.as_ref().and_then(|sd| {
                    let l = self.layouts.get(sd.as_str())?;
                    let idx = l.slot_names.iter().position(|n| *n == cref.name)?;
                    l.attrs[idx].clone()
                });
                Occ {
                    name: cref.name.clone(),
                    subdb: cref.subdb.clone(),
                    base: self.base_of(cref),
                    attr_filter,
                    pred: *pred,
                    span: spans.get(i).copied().unwrap_or_default(),
                }
            })
            .collect()
    }

    /// Resolve an attribute's declared type on an occurrence, respecting
    /// the attribute filter a deriving rule's THEN clause imposed.
    fn dtype_on(&self, occ: &Occ<'_>, attr: &str) -> Option<DType> {
        if let Some(f) = &occ.attr_filter {
            if !f.iter().any(|a| a == attr) {
                return None;
            }
        }
        let base = occ.base?;
        self.schema.resolve_attr(base, attr).ok().and_then(|ra| self.schema.attr_dtype(ra.attr))
    }

    #[allow(clippy::too_many_arguments)]
    fn interp_context(
        &mut self,
        owner: &str,
        sh: &Shape<'_>,
        occs: &[Occ<'_>],
        closure: Option<Option<u32>>,
        wheres: &[WhereCond],
        where_spans: &[Span],
        env: &CardEnv,
        is_query: bool,
    ) -> RuleBounds {
        let n = occs.len();
        // ---- Pass 1: predicate lattice per slot -----------------------
        let mut slot_env: Vec<FxHashMap<String, Ival>> = Vec::with_capacity(n);
        let mut slot_unsat = vec![false; n];
        for (i, occ) in occs.iter().enumerate() {
            let mut envmap = FxHashMap::default();
            if let Some(p) = occ.pred {
                let abs = abstract_pred(p, &|attr| self.dtype_on(occ, attr));
                if !abs.sat {
                    slot_unsat[i] = true;
                    self.err(
                        "E017",
                        format!(
                            "condition on `{}` is statically unsatisfiable: no value of \
                             the constrained attributes can satisfy it",
                            occ.name
                        ),
                        occ.span,
                        owner,
                    );
                } else {
                    envmap = abs.hull;
                }
            }
            slot_env.push(envmap);
        }
        // ---- Pass 2: WHERE narrowing (E017 / W108) --------------------
        let mut where_unsat = false;
        for (wi, cond) in wheres.iter().enumerate() {
            let span = where_spans.get(wi).copied().unwrap_or_default();
            where_unsat |=
                self.interp_where(owner, cond, span, occs, &mut slot_env, &mut slot_unsat);
        }
        // ---- Pass 3: abstract cardinalities ---------------------------
        let mut slot_hi = Vec::with_capacity(n);
        for (i, occ) in occs.iter().enumerate() {
            let raw = match &occ.subdb {
                Some(sd) if self.external.contains(sd.as_str()) => f64::INFINITY,
                Some(sd) => match self.subdb_hi.get(sd.as_str()).copied() {
                    Some(v) => {
                        if v == 0.0 {
                            self.err(
                                "E018",
                                format!(
                                    "statically-empty context: subdatabase `{sd}` is \
                                     provably empty (no deriving rule can produce a \
                                     pattern)"
                                ),
                                occ.span,
                                owner,
                            );
                        }
                        v
                    }
                    None => f64::INFINITY,
                },
                None => env.extent_hi(occ.base),
            };
            slot_hi.push(if slot_unsat[i] { 0.0 } else { raw });
        }
        // ---- Edge fan-out bounds + wide-edge count --------------------
        let mut fan_fwd = Vec::new();
        let mut fan_rev = Vec::new();
        let mut wide_edges = 0usize;
        for i in 0..n.saturating_sub(1) {
            let (f, r, wide) = self.edge_fans(&occs[i], &occs[i + 1], sh.ops[i], &slot_hi, i, env);
            if wide {
                wide_edges += 1;
            }
            fan_fwd.push(f);
            fan_rev.push(r);
        }
        // ---- W109: join blowup ---------------------------------------
        let constrained = (0..n).any(|i| occs[i].pred.is_some() || occs[i].subdb.is_some());
        if closure.is_none() && !constrained && wide_edges >= W109_WIDE_EDGES && n >= 3 {
            self.warn(
                "W109",
                format!(
                    "join blowup: the chain crosses {wide_edges} wide (Many-cardinality) \
                     association edges with no narrowing condition on any slot; the \
                     worst-case extent grows multiplicatively"
                ),
                occs[0].span,
                owner,
                "add a `[...]` condition or read from a restricted subdatabase",
            );
        }
        // ---- Retention spans + null-flow ------------------------------
        let mut spans: Vec<(usize, usize)> = vec![(0, n)];
        for &(lo, hi) in &sh.groups {
            if !(lo == 0 && hi + 1 == n) {
                spans.push((lo, hi + 1));
            }
        }
        let where_slots = where_cmp_slots(wheres, occs);
        let mut rows_hi = 0.0f64;
        for &(lo, hi) in &spans {
            // Null-flow: a WHERE comparison referencing a slot outside this
            // retained span sees Null there and drops every retained
            // pattern — the span contributes nothing.
            if where_slots.iter().any(|&s| s < lo || s >= hi) {
                continue;
            }
            if lo < hi {
                rows_hi += range_hi_of(&slot_hi, &fan_fwd, &fan_rev, lo, hi);
            }
        }
        if where_unsat {
            rows_hi = 0.0;
        }
        // ---- Closure bounds (reach / depth, W110) ---------------------
        let closure_bounds = if let Some(levels) = closure {
            let all_identity = n > 0 && self.closure_all_identity(occs);
            let depth_hi =
                if all_identity { 1.0 } else { levels.map_or(f64::INFINITY, |l| l as f64) };
            if all_identity {
                if let Some(l) = levels {
                    if l >= 2 {
                        self.warn(
                            "W110",
                            format!(
                                "closure bound `^{l}` provably exceeds the schema reach: \
                                 every chain and cycle edge is a generalization \
                                 identity, so the fixpoint terminates at level 1 and \
                                 levels 2..{l} are dead"
                            ),
                            occs[0].span,
                            owner,
                            "`^1` (or no bound at all) derives the same result",
                        );
                    }
                }
            }
            // Chain counts are not usefully boundable for closures, but
            // emptiness still propagates: an empty chain slot (or an
            // unsatisfiable WHERE) kills every chain at every level.
            let chain_empty = slot_hi.iter().any(|&h| h == 0.0) || where_unsat;
            rows_hi = if chain_empty { 0.0 } else { f64::INFINITY };
            Some(ClosureBounds {
                reach_hi: env.extent_hi(occs.first().and_then(|o| o.base)),
                depth_hi,
                levels,
            })
        } else {
            None
        };
        RuleBounds {
            owner: owner.to_string(),
            slot_names: occs.iter().map(|o| o.name.clone()).collect(),
            slot_hi,
            fan_fwd,
            fan_rev,
            rows_hi,
            closure: closure_bounds,
            empty: rows_hi == 0.0,
            is_query,
        }
    }

    /// Narrow slot environments through one WHERE condition, reporting
    /// E017 (contradiction) and W108 (subsumption). Returns whether the
    /// condition is unsatisfiable — it then empties the whole context
    /// (`apply_where` drops even retained patterns).
    fn interp_where(
        &mut self,
        owner: &str,
        cond: &WhereCond,
        span: Span,
        occs: &[Occ<'_>],
        slot_env: &mut [FxHashMap<String, Ival>],
        slot_unsat: &mut [bool],
    ) -> bool {
        match cond {
            WhereCond::Cmp { left: (cref, attr), op, right: CmpRhs::Lit(lit) } => {
                let Some(si) = find_occ(occs, cref) else { return false };
                let Some(dt) = self.dtype_on(&occs[si], attr) else {
                    return false; // unresolvable: the analyzer reports it
                };
                let iv = Ival::from_cmp(*op, &lit.to_value(), Some(dt));
                if iv.is_empty() {
                    slot_unsat[si] = true;
                    self.err(
                        "E017",
                        format!(
                            "WHERE condition on `{cref}.{attr}` is statically \
                             unsatisfiable on its own"
                        ),
                        span,
                        owner,
                    );
                    return true;
                }
                let cur =
                    slot_env[si].entry(attr.clone()).or_insert_with(|| Ival::top(Some(dt)));
                let subsumed = iv.subsumes(cur) && cur.constrained();
                let narrowed = cur.intersect(&iv);
                let contradiction = narrowed.is_empty();
                *cur = narrowed;
                if subsumed {
                    self.warn(
                        "W108",
                        format!(
                            "WHERE condition on `{cref}.{attr}` is subsumed by the \
                             constraints already established on that attribute: it can \
                             never drop a pattern"
                        ),
                        span,
                        owner,
                        "remove it, or tighten the earlier condition",
                    );
                }
                if contradiction {
                    slot_unsat[si] = true;
                    self.err(
                        "E017",
                        format!(
                            "WHERE condition on `{cref}.{attr}` contradicts the \
                             constraints already established for `{}`",
                            occs[si].name
                        ),
                        span,
                        owner,
                    );
                    return true;
                }
                false
            }
            WhereCond::Cmp { .. } => false, // attr-vs-attr: no static verdict
            WhereCond::Agg { func: AggFunc::Count, op, value, .. } => {
                // A COUNT is a non-negative integer: a threshold excluding
                // all of [0, ∞) is impossible; one admitting all of it is
                // vacuous.
                let iv = Ival::from_cmp(*op, &value.to_value(), Some(DType::Int));
                let nonneg = Ival::from_cmp(CmpOp::Ge, &Value::Int(0), Some(DType::Int));
                if iv.intersect(&nonneg).is_empty() {
                    self.err(
                        "E017",
                        "WHERE count(...) threshold is statically unsatisfiable: a \
                         count is never negative"
                            .to_string(),
                        span,
                        owner,
                    );
                    true
                } else {
                    if iv.subsumes(&nonneg) {
                        self.warn(
                            "W108",
                            "WHERE count(...) threshold is vacuous: every count \
                             satisfies it"
                                .to_string(),
                            span,
                            owner,
                            "every group passes this threshold",
                        );
                    }
                    false
                }
            }
            WhereCond::Agg { .. } => false, // sum/avg/min/max: no static bounds
        }
    }

    /// Fan-out bounds for one edge in both directions, plus whether the
    /// edge is wide (a Many-cardinality association — both traversal
    /// directions can exceed 1 in the worst case).
    fn edge_fans(
        &self,
        a: &Occ<'_>,
        b: &Occ<'_>,
        op: PatOp,
        slot_hi: &[f64],
        edge: usize,
        env: &CardEnv,
    ) -> (f64, f64, bool) {
        if matches!(op, PatOp::NonAssoc) {
            // `!` keeps unlinked pairs: per row, up to the whole opposite
            // candidate set. (W106 owns the lint for this shape.)
            return (slot_hi[edge + 1], slot_hi[edge], false);
        }
        // Two slots of the same derived subdatabase: adjacency through the
        // source's patterns, bounded by its pattern count.
        if a.subdb.is_some() && a.subdb == b.subdb {
            let hi = a
                .subdb
                .as_deref()
                .and_then(|sd| self.subdb_hi.get(sd).copied())
                .unwrap_or(f64::INFINITY);
            return (hi, hi, false);
        }
        let (Some(ca), Some(cb)) = (a.base, b.base) else {
            return (f64::INFINITY, f64::INFINITY, false);
        };
        match self.schema.resolve_edge(ca, cb) {
            Ok(ResolvedEdge::Identity { .. }) => (1.0, 1.0, false),
            Ok(ResolvedEdge::Assoc { assoc, forward, .. }) => {
                let def = self.schema.assoc(assoc);
                // A direct generalization link is identity-valued: the
                // subclass object *is* the superclass object, so the fan
                // is 1 both ways regardless of declared cardinality.
                if def.is_generalization() {
                    return (1.0, 1.0, false);
                }
                let links = env.links_hi(assoc);
                // `forward` = this edge's left→right traversal follows the
                // association's own from→to orientation; `Single` bounds
                // exactly that direction. Generalization climbing on
                // either side is identity-valued (fan × 1).
                let narrow = def.cardinality == Cardinality::Single;
                let (f, r) = if forward {
                    (if narrow { 1.0 } else { links }, links)
                } else {
                    (links, if narrow { 1.0 } else { links })
                };
                (f, r, !narrow)
            }
            Err(_) => (f64::INFINITY, f64::INFINITY, false),
        }
    }

    /// Whether every chain edge *and* the cycle-back edge of a closure
    /// resolve to generalization identities (the sound W110 case: the
    /// fixpoint reaches every member at level 1).
    fn closure_all_identity(&self, occs: &[Occ<'_>]) -> bool {
        let n = occs.len();
        let ident = |x: &Occ<'_>, y: &Occ<'_>| -> bool {
            match (x.base, y.base) {
                (Some(a), Some(b)) => match self.schema.resolve_edge(a, b) {
                    Ok(ResolvedEdge::Identity { .. }) => true,
                    Ok(ResolvedEdge::Assoc { assoc, .. }) => {
                        self.schema.assoc(assoc).is_generalization()
                    }
                    Err(_) => false,
                },
                _ => false,
            }
        };
        (0..n - 1).all(|i| ident(&occs[i], &occs[i + 1])) && ident(&occs[n - 1], &occs[0])
    }
}

/// The unique occurrence a WHERE operand names, when unambiguous.
fn find_occ(occs: &[Occ<'_>], cref: &ClassRef) -> Option<usize> {
    let hits: Vec<usize> = occs
        .iter()
        .enumerate()
        .filter(|(_, o)| {
            o.name == cref.name
                && cref.subdb.as_ref().is_none_or(|s| o.subdb.as_deref() == Some(s))
        })
        .map(|(i, _)| i)
        .collect();
    if hits.len() == 1 {
        Some(hits[0])
    } else {
        None
    }
}

/// Slot indices referenced by WHERE comparisons (null-flow tracking).
fn where_cmp_slots(wheres: &[WhereCond], occs: &[Occ<'_>]) -> Vec<usize> {
    let mut out = Vec::new();
    for c in wheres {
        if let WhereCond::Cmp { left: (cref, _), right, .. } = c {
            out.extend(find_occ(occs, cref));
            if let CmpRhs::Attr(rc, _) = right {
                out.extend(find_occ(occs, rc));
            }
        }
    }
    out
}

// ====================================================================
// Planner priors
// ====================================================================

/// A coarse selectivity estimate for a predicate tree, from its interval
/// shape: equality points are rare, two-sided ranges rarer than one-sided
/// cuts, exclusions keep almost everything.
fn sel_estimate(pred: &Pred) -> f64 {
    match pred {
        Pred::Cmp { op, .. } => match op {
            CmpOp::Eq => 0.05,
            CmpOp::Neq => 0.9,
            _ => 0.33,
        },
        Pred::And(a, b) => (sel_estimate(a) * sel_estimate(b)).max(0.01),
        Pred::Or(a, b) => (sel_estimate(a) + sel_estimate(b)).min(1.0),
        Pred::Not(p) => (1.0 - sel_estimate(p)).clamp(0.01, 1.0),
    }
}

/// The selectivity estimate for one WHERE comparison's interval shape.
fn where_sel_estimate(op: CmpOp, lit: &Literal, dtype: Option<DType>) -> f64 {
    let iv = Ival::from_cmp(op, &lit.to_value(), dtype);
    if iv.is_empty() {
        return 0.0;
    }
    let (point, two_sided) = iv.span_shape();
    if point {
        0.05
    } else if two_sided {
        0.15
    } else if matches!(op, CmpOp::Neq) {
        0.9
    } else {
        0.33
    }
}

/// Install static planner priors for a program's predicates and the
/// schema's cardinality constraints, under the exact `core::obs::stats`
/// keys `oql::plan`'s cost model reads:
///
/// * every intra-class condition gets a selectivity prior at its
///   [`dood_oql::static_sel_key`] (`0.0` when statically unsatisfiable);
/// * every literal WHERE comparison gets one at its
///   [`dood_oql::wherec::where_sel_key`];
/// * every `Single`-cardinality non-attribute association gets a from→to
///   fan-out prior of `1.0` at its [`dood_oql::fan_key_assoc`].
///
/// Priors are consulted only while a key has no observations
/// (`stats::get_or_prior`), so a warmed registry is never perturbed.
/// [`crate::engine::RuleEngine::register`] calls this after a program
/// passes analysis.
pub fn install_priors(program: &Program, schema: &Schema) {
    let install_ctx = |seq: &Seq| {
        let sh = shape(seq);
        for (cref, pred) in &sh.occs {
            let Some(p) = pred else { continue };
            // Best-effort direct resolution (closure family aliases
            // included); occurrences whose name does not resolve to a
            // schema class simply get no prior.
            let base = schema.try_class_by_name(&cref.name).or_else(|| {
                let (family, level) = ClassRef::split_alias(&cref.name);
                if level > 0 {
                    schema.try_class_by_name(family)
                } else {
                    None
                }
            });
            let Some(base) = base else { continue };
            let Some(key) = dood_oql::static_sel_key(schema, base, None, p) else { continue };
            let sat = abstract_pred(p, &|attr| {
                schema.resolve_attr(base, attr).ok().and_then(|ra| schema.attr_dtype(ra.attr))
            })
            .sat;
            stats::set_prior(&key, if sat { sel_estimate(p) } else { 0.0 });
        }
    };
    let install_wheres = |conds: &[WhereCond]| {
        for cond in conds {
            if let WhereCond::Cmp { left: (cref, attr), op, right: CmpRhs::Lit(lit) } = cond {
                let dt = schema
                    .try_class_by_name(&cref.name)
                    .and_then(|c| schema.resolve_attr(c, attr).ok())
                    .and_then(|ra| schema.attr_dtype(ra.attr));
                let est = where_sel_estimate(*op, lit, dt);
                stats::set_prior(&dood_oql::wherec::where_sel_key(cond), est);
            }
        }
    };
    for pr in &program.rules {
        install_ctx(&pr.rule.context.seq);
        install_wheres(&pr.rule.where_);
    }
    for q in &program.queries {
        install_ctx(&q.query.context.seq);
        install_wheres(&q.query.where_);
    }
    for a in schema.assocs() {
        if a.cardinality == Cardinality::Single && !schema.is_attribute(a.id) {
            stats::set_prior(&dood_oql::fan_key_assoc(a.id, true), 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(op: CmpOp, v: i64) -> Ival {
        Ival::from_cmp(op, &Value::Int(v), Some(DType::Int))
    }

    fn cmp(attr: &str, op: CmpOp, v: i64) -> Pred {
        Pred::Cmp { attr: attr.into(), op, value: Literal::Int(v) }
    }

    #[test]
    fn integer_narrowing_detects_gap_contradictions() {
        // x > 3 and x < 4 over Int is empty; over Real it is not.
        let a = iv(CmpOp::Gt, 3).intersect(&iv(CmpOp::Lt, 4));
        assert!(a.is_empty());
        let ar = Ival::from_cmp(CmpOp::Gt, &Value::Real(3.0), Some(DType::Real))
            .intersect(&Ival::from_cmp(CmpOp::Lt, &Value::Real(4.0), Some(DType::Real)));
        assert!(!ar.is_empty());
    }

    #[test]
    fn point_exclusion_empties_singletons() {
        assert!(iv(CmpOp::Eq, 5).intersect(&iv(CmpOp::Neq, 5)).is_empty());
        assert!(!iv(CmpOp::Eq, 5).intersect(&iv(CmpOp::Neq, 6)).is_empty());
    }

    #[test]
    fn finite_int_range_covered_by_exclusions() {
        let a = iv(CmpOp::Ge, 1)
            .intersect(&iv(CmpOp::Le, 2))
            .intersect(&iv(CmpOp::Neq, 1))
            .intersect(&iv(CmpOp::Neq, 2));
        assert!(a.is_empty());
    }

    #[test]
    fn subsumption_is_directional() {
        let env = iv(CmpOp::Gt, 10); // normalized to x >= 11
        assert!(iv(CmpOp::Gt, 5).subsumes(&env), "x > 5 adds nothing to x >= 11");
        assert!(!iv(CmpOp::Gt, 20).subsumes(&env), "x > 20 narrows x >= 11");
        assert!(iv(CmpOp::Neq, 3).subsumes(&env), "x != 3 adds nothing to x >= 11");
        assert!(!iv(CmpOp::Neq, 12).subsumes(&env), "x != 12 cuts into x >= 11");
    }

    #[test]
    fn string_intervals_order() {
        let le_b = Ival::from_cmp(CmpOp::Le, &Value::str("B"), Some(DType::Str));
        let ge_c = Ival::from_cmp(CmpOp::Ge, &Value::str("C"), Some(DType::Str));
        assert!(le_b.intersect(&ge_c).is_empty());
        let ge_a = Ival::from_cmp(CmpOp::Ge, &Value::str("A"), Some(DType::Str));
        assert!(!le_b.intersect(&ge_a).is_empty());
    }

    #[test]
    fn dnf_handles_or_and_not() {
        // (x < 2 or x > 8) and x = 5 is unsatisfiable.
        let p = Pred::And(
            Box::new(Pred::Or(
                Box::new(cmp("x", CmpOp::Lt, 2)),
                Box::new(cmp("x", CmpOp::Gt, 8)),
            )),
            Box::new(cmp("x", CmpOp::Eq, 5)),
        );
        assert!(!abstract_pred(&p, &|_| Some(DType::Int)).sat);
        // not(x >= 0 and x <= 10) and x = 5 is also unsatisfiable.
        let q = Pred::And(
            Box::new(Pred::Not(Box::new(Pred::And(
                Box::new(cmp("x", CmpOp::Ge, 0)),
                Box::new(cmp("x", CmpOp::Le, 10)),
            )))),
            Box::new(cmp("x", CmpOp::Eq, 5)),
        );
        assert!(!abstract_pred(&q, &|_| Some(DType::Int)).sat);
        // The satisfiable variant stays satisfiable.
        let r = Pred::And(
            Box::new(Pred::Or(
                Box::new(cmp("x", CmpOp::Lt, 2)),
                Box::new(cmp("x", CmpOp::Gt, 8)),
            )),
            Box::new(cmp("x", CmpOp::Eq, 9)),
        );
        assert!(abstract_pred(&r, &|_| Some(DType::Int)).sat);
    }

    #[test]
    fn hull_of_disjunction_is_loose() {
        // x = 1 or x = 9: the hull is [1, 9]; satisfiable.
        let p = Pred::Or(Box::new(cmp("x", CmpOp::Eq, 1)), Box::new(cmp("x", CmpOp::Eq, 9)));
        let abs = abstract_pred(&p, &|_| Some(DType::Int));
        assert!(abs.sat);
        let h = &abs.hull["x"];
        assert!(h.admits(&Value::Int(5)), "hull is the loose union");
        assert!(!h.admits(&Value::Int(0)));
        assert!(!h.admits(&Value::Int(10)));
    }

    #[test]
    fn range_bound_anchors_and_annihilates() {
        // [1000, 10, 1000] with a Single left edge and a capped-wide right
        // edge: the bound is finite; any zero slot annihilates it.
        let slot_hi = [1000.0, 10.0, 1000.0];
        let fan_fwd = [1.0, f64::INFINITY];
        let fan_rev = [f64::INFINITY, 1.0];
        let b = range_hi_of(&slot_hi, &fan_fwd, &fan_rev, 0, 3);
        assert!(b.is_finite());
        assert_eq!(range_hi_of(&[0.0, 10.0, 1000.0], &fan_fwd, &fan_rev, 0, 3), 0.0);
        // A sub-range ignores slots outside it.
        assert_eq!(range_hi_of(&slot_hi, &fan_fwd, &fan_rev, 1, 2), 10.0);
    }

    #[test]
    fn mul_b_guards_zero_times_infinity() {
        assert_eq!(mul_b(0.0, f64::INFINITY), 0.0);
        assert_eq!(mul_b(f64::INFINITY, 0.0), 0.0);
        assert_eq!(mul_b(2.0, 3.0), 6.0);
    }

    #[test]
    fn sel_estimates_are_probability_shaped() {
        let eq = cmp("x", CmpOp::Eq, 1);
        let ne = cmp("x", CmpOp::Neq, 1);
        assert!(sel_estimate(&eq) < sel_estimate(&ne));
        let both = Pred::And(Box::new(eq.clone()), Box::new(eq.clone()));
        assert!(sel_estimate(&both) <= sel_estimate(&eq));
        let either = Pred::Or(Box::new(eq), Box::new(ne));
        assert!(sel_estimate(&either) <= 1.0);
        assert_eq!(
            where_sel_estimate(CmpOp::Lt, &Literal::Int(7), Some(DType::Int)),
            0.33,
            "a one-sided cut is never empty on its own"
        );
    }

    #[test]
    fn show_bound_renders_infinity_as_star() {
        assert_eq!(show_bound(f64::INFINITY), "*");
        assert_eq!(show_bound(42.0), "42");
    }
}
