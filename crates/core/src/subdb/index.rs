//! Incrementally-maintained access structures over a subdatabase's
//! extension: per-slot counted extents and per-slot-pair counted
//! adjacency.
//!
//! Pattern matching against a *derived* subdatabase needs two things per
//! evaluation: the membership extent of each slot ("which oids appear
//! here") and the adjacency between slot pairs ("which co-bindings exist").
//! Re-materializing those is O(patterns) per evaluation — ruinous for
//! incremental forward maintenance, which evaluates a small delta against
//! large, slowly-changing sources on every update batch. The index is
//! instead built once per content version ([`Subdatabase::index`]) and
//! kept current by `insert`/`remove` point updates, so steady-state
//! evaluations pay O(1) to access it.
//!
//! Everything is *counted*: several patterns can bind the same oid in a
//! slot (or repeat a pair co-binding) while differing elsewhere, so a
//! single pattern removal must not erase an extent or adjacency entry
//! that other patterns still justify.
//!
//! [`Subdatabase::index`]: crate::subdb::Subdatabase::index

use crate::fxhash::FxHashMap;
use crate::ids::Oid;
use crate::subdb::pattern::ExtPattern;

/// Counted directional adjacency between two slots `a < b`: the distinct
/// `(x, y)` co-bindings with their multiplicities, plus ascending neighbor
/// lists both ways for O(1) traversal.
#[derive(Debug, Clone, Default)]
pub struct SlotAdj {
    counts: FxHashMap<(Oid, Oid), u32>,
    fwd: FxHashMap<Oid, Vec<Oid>>,
    rev: FxHashMap<Oid, Vec<Oid>>,
}

impl SlotAdj {
    /// Neighbors of `oid`, ascending: slot-`b` partners when `forward`,
    /// slot-`a` partners otherwise.
    pub fn neighbors(&self, oid: Oid, forward: bool) -> &[Oid] {
        let m = if forward { &self.fwd } else { &self.rev };
        m.get(&oid).map_or(&[], |v| v.as_slice())
    }

    /// Number of distinct `(x, y)` co-bindings — the derived edge's "link
    /// count", used by the cost-based planner's fan-out fallback.
    pub fn pair_count(&self) -> usize {
        self.counts.len()
    }

    fn add(&mut self, x: Oid, y: Oid) {
        let c = self.counts.entry((x, y)).or_insert(0);
        *c += 1;
        if *c == 1 {
            let v = self.fwd.entry(x).or_default();
            if let Err(i) = v.binary_search(&y) {
                v.insert(i, y);
            }
            let v = self.rev.entry(y).or_default();
            if let Err(i) = v.binary_search(&x) {
                v.insert(i, x);
            }
        }
    }

    fn del(&mut self, x: Oid, y: Oid) {
        let Some(c) = self.counts.get_mut(&(x, y)) else { return };
        *c -= 1;
        if *c > 0 {
            return;
        }
        self.counts.remove(&(x, y));
        if let Some(v) = self.fwd.get_mut(&x) {
            if let Ok(i) = v.binary_search(&y) {
                v.remove(i);
            }
            if v.is_empty() {
                self.fwd.remove(&x);
            }
        }
        if let Some(v) = self.rev.get_mut(&y) {
            if let Ok(i) = v.binary_search(&x) {
                v.remove(i);
            }
            if v.is_empty() {
                self.rev.remove(&y);
            }
        }
    }
}

/// The index over a subdatabase's extension: counted slot extents and
/// counted adjacency for every ordered slot pair `a < b`.
#[derive(Debug, Clone)]
pub struct SubdbIndex {
    slots: Vec<FxHashMap<Oid, u32>>,
    adj: FxHashMap<(usize, usize), SlotAdj>,
}

impl SubdbIndex {
    /// Build from scratch over an extension (one pass).
    pub(crate) fn build<'a>(
        width: usize,
        patterns: impl Iterator<Item = &'a ExtPattern>,
    ) -> Self {
        let mut adj = FxHashMap::default();
        for a in 0..width {
            for b in a + 1..width {
                adj.insert((a, b), SlotAdj::default());
            }
        }
        let mut ix = SubdbIndex { slots: vec![FxHashMap::default(); width], adj };
        for p in patterns {
            ix.add(p);
        }
        ix
    }

    /// Fold one inserted pattern in.
    pub(crate) fn add(&mut self, p: &ExtPattern) {
        let comps = p.components();
        for (i, c) in comps.iter().enumerate() {
            if let Some(o) = c {
                *self.slots[i].entry(*o).or_insert(0) += 1;
            }
        }
        for (&(a, b), adj) in self.adj.iter_mut() {
            if let (Some(x), Some(y)) = (comps[a], comps[b]) {
                adj.add(x, y);
            }
        }
    }

    /// Fold one removed pattern out.
    pub(crate) fn del(&mut self, p: &ExtPattern) {
        let comps = p.components();
        for (i, c) in comps.iter().enumerate() {
            if let Some(o) = c {
                if let Some(n) = self.slots[i].get_mut(o) {
                    *n -= 1;
                    if *n == 0 {
                        self.slots[i].remove(o);
                    }
                }
            }
        }
        for (&(a, b), adj) in self.adj.iter_mut() {
            if let (Some(x), Some(y)) = (comps[a], comps[b]) {
                adj.del(x, y);
            }
        }
    }

    /// Whether any pattern binds `oid` in `slot`.
    pub fn slot_contains(&self, slot: usize, oid: Oid) -> bool {
        self.slots[slot].contains_key(&oid)
    }

    /// The distinct oids bound in `slot` (unordered).
    pub fn slot_oids(&self, slot: usize) -> impl Iterator<Item = Oid> + '_ {
        self.slots[slot].keys().copied()
    }

    /// Number of distinct oids bound in `slot`.
    pub fn slot_len(&self, slot: usize) -> usize {
        self.slots[slot].len()
    }

    /// The adjacency between slots `a` and `b` (any order), with a flag
    /// telling the caller whether its notion of "forward" (`a` → `b`)
    /// is flipped relative to the stored `min < max` orientation.
    pub fn pair_adj(&self, a: usize, b: usize) -> Option<(&SlotAdj, bool)> {
        let key = (a.min(b), a.max(b));
        self.adj.get(&key).map(|adj| (adj, a > b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[Option<u64>]) -> ExtPattern {
        ExtPattern::new(v.iter().map(|o| o.map(Oid)).collect::<Vec<_>>())
    }

    #[test]
    fn counted_extents_and_adjacency() {
        let pats = [
            p(&[Some(1), Some(2), Some(3)]),
            p(&[Some(1), Some(2), Some(4)]), // repeats (1,2) in slots 0,1
            p(&[None, Some(5), Some(3)]),
        ];
        let mut ix = SubdbIndex::build(3, pats.iter());
        assert!(ix.slot_contains(0, Oid(1)));
        assert!(!ix.slot_contains(0, Oid(5)));
        assert_eq!(ix.slot_len(1), 2);
        let (adj, flip) = ix.pair_adj(0, 1).unwrap();
        assert!(!flip);
        assert_eq!(adj.neighbors(Oid(1), true), &[Oid(2)]);
        let (adj, flip) = ix.pair_adj(1, 0).unwrap();
        assert!(flip);
        assert_eq!(adj.neighbors(Oid(2), false), &[Oid(1)]);

        // Removing one of the two (1,2) co-binders keeps the edge…
        ix.del(&pats[0]);
        let (adj, _) = ix.pair_adj(0, 1).unwrap();
        assert_eq!(adj.neighbors(Oid(1), true), &[Oid(2)]);
        assert!(ix.slot_contains(2, Oid(3))); // still bound by pats[2]
        // …and removing the second erases it.
        ix.del(&pats[1]);
        let (adj, _) = ix.pair_adj(0, 1).unwrap();
        assert!(adj.neighbors(Oid(1), true).is_empty());
        assert!(!ix.slot_contains(0, Oid(1)));
        assert!(ix.slot_contains(1, Oid(5)));
    }

    #[test]
    fn incremental_matches_rebuild() {
        let pats = [
            p(&[Some(1), Some(2), None]),
            p(&[Some(1), Some(3), Some(9)]),
            p(&[Some(4), Some(2), Some(9)]),
        ];
        let mut ix = SubdbIndex::build(3, pats.iter());
        ix.del(&pats[1]);
        ix.add(&p(&[Some(7), Some(2), Some(8)]));
        let fresh = SubdbIndex::build(
            3,
            [pats[0].clone(), pats[2].clone(), p(&[Some(7), Some(2), Some(8)])].iter(),
        );
        for s in 0..3 {
            let mut a: Vec<Oid> = ix.slot_oids(s).collect();
            let mut b: Vec<Oid> = fresh.slot_oids(s).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "slot {s}");
        }
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            let (ia, _) = ix.pair_adj(a, b).unwrap();
            let (fa, _) = fresh.pair_adj(a, b).unwrap();
            for o in ix.slot_oids(a) {
                assert_eq!(ia.neighbors(o, true), fa.neighbors(o, true));
            }
        }
    }
}
