//! Name and edge resolution: from the parsed AST to a [`ResolvedContext`]
//! ready for evaluation.
//!
//! Resolution handles:
//! * base classes, auto-aliases (`Course_1` → base `Course`, paper §5.2),
//!   and subdatabase-qualified classes (`Suggest_offer:Course`, §4.1);
//! * adjacency edges, preferring a **derived direct association** when both
//!   operands descend (through chains of induced generalizations) from
//!   slots of one common subdatabase whose intension connects them — this
//!   is how `SD1:A * SD2:C` works in Fig. 4.2 — and falling back to
//!   base-schema resolution (inheritance rules of §3.2) otherwise;
//! * brace structure → *retention spans* (paper §5.1): the full expression
//!   plus, recursively, each braced subexpression;
//! * the closure marker `^*`/`^N` (paper §5.2), whose cycle edge connects
//!   the last class occurrence back to the first.

use crate::ast::{ClassRef, ClosureSpec, ContextExpr, Item, PatOp, Pred, Seq};
use crate::error::QueryError;
use dood_core::ids::ClassId;
use dood_core::schema::{ResolvedEdge, Schema};
use dood_core::subdb::{SlotSource, SubdbRegistry};

/// A resolved class occurrence.
#[derive(Debug, Clone)]
pub struct RSlot {
    /// Display name (possibly alias-suffixed).
    pub name: String,
    /// Base class of the occurrence.
    pub base: ClassId,
    /// `Some((subdb, slot_name))` when the occurrence ranges over a derived
    /// subdatabase's class rather than the base extent.
    pub derived: Option<(String, String)>,
    /// Attribute accessibility restriction inherited from the derived
    /// slot's THEN clause, if any (`None` = all attributes).
    pub attr_filter: Option<Vec<String>>,
    /// Intra-class condition (uncompiled; attribute resolution happens at
    /// evaluation against the base class).
    pub cond: Option<Pred>,
}

/// How an adjacency edge is traversed.
#[derive(Debug, Clone)]
pub enum REdgeKind {
    /// Resolved against the base schema (paper §3.2 semantics).
    Base(ResolvedEdge),
    /// Traversed through the extensional patterns of a derived subdatabase
    /// whose intension directly associates the two (ancestor) slots.
    Derived {
        /// The common ancestor subdatabase.
        subdb: String,
        /// Slot index of the left operand's ancestor in that subdatabase.
        a: usize,
        /// Slot index of the right operand's ancestor.
        b: usize,
    },
}

/// A resolved adjacency edge.
#[derive(Debug, Clone)]
pub struct REdge {
    /// `*` or `!`.
    pub op: PatOp,
    /// Traversal strategy.
    pub kind: REdgeKind,
}

/// The fully resolved context expression.
#[derive(Debug, Clone)]
pub struct ResolvedContext {
    /// Class occurrences in order.
    pub slots: Vec<RSlot>,
    /// `slots.len() - 1` adjacency edges.
    pub edges: Vec<REdge>,
    /// Retention spans `[lo, hi)`, full span first.
    pub spans: Vec<(usize, usize)>,
    /// Closure: `(spec, cycle edge from last slot back to slot 0)`.
    pub closure: Option<(ClosureSpec, REdgeKind)>,
}

/// The ancestry chain of a class occurrence through induced generalizations:
/// `[(subdb, slot_name), …]` outermost first, ending at the base class.
fn source_chain(
    registry: &SubdbRegistry,
    subdb: &str,
    slot_name: &str,
) -> Result<Vec<(String, String)>, QueryError> {
    let mut out = Vec::new();
    let mut cur = (subdb.to_string(), slot_name.to_string());
    loop {
        let (s, slot_idx) = registry
            .resolve_qualified(&cur.0, &cur.1)
            .ok_or_else(|| match registry.subdb(&cur.0) {
                None => QueryError::UnknownSubdb(cur.0.clone()),
                Some(_) => QueryError::UnknownSubdbClass { subdb: cur.0.clone(), class: cur.1.clone() },
            })?;
        out.push(cur.clone());
        match &s.intension.slots[slot_idx].source {
            SlotSource::Base => break,
            SlotSource::Derived { subdb, slot } => {
                cur = (subdb.clone(), slot.clone());
            }
        }
    }
    Ok(out)
}

/// Resolve a class reference to a slot.
fn resolve_classref(
    class: &ClassRef,
    cond: Option<Pred>,
    schema: &Schema,
    registry: &SubdbRegistry,
) -> Result<RSlot, QueryError> {
    match &class.subdb {
        Some(subdb) => {
            let (s, idx) = registry.resolve_qualified(subdb, &class.name).ok_or_else(|| {
                match registry.subdb(subdb) {
                    None => QueryError::UnknownSubdb(subdb.clone()),
                    Some(_) => QueryError::UnknownSubdbClass {
                        subdb: subdb.clone(),
                        class: class.name.clone(),
                    },
                }
            })?;
            let def = &s.intension.slots[idx];
            Ok(RSlot {
                name: class.name.clone(),
                base: def.base,
                derived: Some((subdb.clone(), class.name.clone())),
                attr_filter: def.attrs.clone(),
                cond,
            })
        }
        None => {
            // Base class, possibly alias-suffixed.
            if let Some(id) = schema.try_class_by_name(&class.name) {
                return Ok(RSlot {
                    name: class.name.clone(),
                    base: id,
                    derived: None,
                    attr_filter: None,
                    cond,
                });
            }
            let (family, level) = ClassRef::split_alias(&class.name);
            if level > 0 {
                if let Some(id) = schema.try_class_by_name(family) {
                    return Ok(RSlot {
                        name: class.name.clone(),
                        base: id,
                        derived: None,
                        attr_filter: None,
                        cond,
                    });
                }
            }
            Err(QueryError::Resolve(dood_core::error::ResolveError::UnknownClass(
                class.name.clone(),
            )))
        }
    }
}

/// Resolve the edge between two adjacent slots.
pub fn resolve_adjacency(
    a: &RSlot,
    b: &RSlot,
    schema: &Schema,
    registry: &SubdbRegistry,
) -> Result<REdgeKind, QueryError> {
    // Derived direct association through a common ancestor subdatabase
    // (inner-most common ancestor wins; paper Fig. 4.2).
    if let (Some((sa, na)), Some((sb, nb))) = (&a.derived, &b.derived) {
        let chain_a = source_chain(registry, sa, na)?;
        let chain_b = source_chain(registry, sb, nb)?;
        for (s_a, n_a) in &chain_a {
            for (s_b, n_b) in &chain_b {
                if s_a == s_b {
                    let sd = registry.subdb(s_a).expect("chain entries are registered");
                    let (Some(ia), Some(ib)) = (
                        sd.intension.slot_by_name(n_a),
                        sd.intension.slot_by_name(n_b),
                    ) else {
                        continue;
                    };
                    if sd.intension.has_edge(ia, ib) {
                        return Ok(REdgeKind::Derived { subdb: s_a.clone(), a: ia, b: ib });
                    }
                }
            }
        }
    }
    // Half-derived case: one side derived, check whether its ancestor
    // subdatabase connects a slot of the same name as the base side … not
    // applicable: base classes live in the original database. Fall through.
    let edge = schema.resolve_edge(a.base, b.base)?;
    Ok(REdgeKind::Base(edge))
}

/// Flatten a [`Seq`] (recursively) into slots, edges and retention spans.
fn flatten(
    seq: &Seq,
    schema: &Schema,
    registry: &SubdbRegistry,
    slots: &mut Vec<RSlot>,
    edges: &mut Vec<(PatOp, usize)>, // (op, left slot index); edge i connects i, i+1
    spans: &mut Vec<(usize, usize)>,
) -> Result<(), QueryError> {
    let handle_item = |item: &Item,
                           slots: &mut Vec<RSlot>,
                           edges: &mut Vec<(PatOp, usize)>,
                           spans: &mut Vec<(usize, usize)>|
     -> Result<(), QueryError> {
        match item {
            Item::Class { class, cond } => {
                slots.push(resolve_classref(class, cond.clone(), schema, registry)?);
                Ok(())
            }
            Item::Group(inner) => {
                let lo = slots.len();
                flatten(inner, schema, registry, slots, edges, spans)?;
                let hi = slots.len();
                spans.push((lo, hi));
                Ok(())
            }
        }
    };
    handle_item(&seq.first, slots, edges, spans)?;
    for (op, item) in &seq.rest {
        let left = slots.len() - 1;
        handle_item(item, slots, edges, spans)?;
        edges.push((*op, left));
    }
    Ok(())
}

/// Resolve a context expression.
pub fn resolve_context(
    expr: &ContextExpr,
    schema: &Schema,
    registry: &SubdbRegistry,
) -> Result<ResolvedContext, QueryError> {
    let mut slots = Vec::new();
    let mut raw_edges = Vec::new();
    let mut spans = Vec::new();
    flatten(&expr.seq, schema, registry, &mut slots, &mut raw_edges, &mut spans)?;
    if slots.is_empty() {
        return Err(QueryError::Semantic("empty context expression".into()));
    }
    // Flattened edges connect consecutive slots: the paper's linear pattern
    // expressions associate the last class of one element with the first of
    // the next; after flattening, that is always (i, i+1). Nested groups
    // push their inner edges before the enclosing edge, so order by the
    // left slot.
    raw_edges.sort_by_key(|(_, l)| *l);
    debug_assert!(raw_edges.iter().enumerate().all(|(i, (_, l))| *l == i));
    let mut edges = Vec::with_capacity(raw_edges.len());
    for (i, (op, _)) in raw_edges.iter().enumerate() {
        let kind = resolve_adjacency(&slots[i], &slots[i + 1], schema, registry)?;
        edges.push(REdge { op: *op, kind });
    }
    // Retention spans: full expression first, then brace spans
    // innermost-last (flatten pushes inner before outer; ordering does not
    // matter for evaluation, only membership).
    let mut all_spans = vec![(0usize, slots.len())];
    all_spans.extend(spans.into_iter().filter(|&(lo, hi)| !(lo == 0 && hi == slots.len())));

    let closure = match expr.closure {
        None => None,
        Some(spec) => {
            // The cycle edge connects the last class occurrence back to the
            // first. A single-occurrence expression (`Course ^*`) cycles
            // over a self-loop association (Prereq-style closures).
            let last = slots.len() - 1;
            let kind = resolve_adjacency(&slots[last], &slots[0], schema, registry)?;
            Some((spec, kind))
        }
    };
    Ok(ResolvedContext { slots, edges, spans: all_spans, closure })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;
    use dood_core::schema::SchemaBuilder;
    use dood_core::subdb::{Intension, SlotDef, Subdatabase};
    use dood_core::value::DType;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        for c in ["Department", "Course", "Section", "Teacher", "Student"] {
            b.e_class(c);
        }
        b.d_class("name", DType::Str);
        b.d_class("c#", DType::Int);
        b.attr("Department", "name");
        b.attr_named("Course", "c#", "c#");
        b.aggregate("Department", "Course");
        b.aggregate_single("Section", "Course");
        b.aggregate_named("Teacher", "Section", "Teaches");
        b.aggregate_named("Student", "Section", "Enrolls");
        b.aggregate_named("Course", "Course", "Prereq");
        b.build().unwrap()
    }

    fn ctx(src: &str, schema: &Schema, reg: &SubdbRegistry) -> ResolvedContext {
        let e = Parser::parse_context_expr(src).unwrap();
        resolve_context(&e, schema, reg).unwrap()
    }

    #[test]
    fn base_chain_resolution() {
        let s = schema();
        let reg = SubdbRegistry::new();
        let r = ctx("Teacher * Section * Course", &s, &reg);
        assert_eq!(r.slots.len(), 3);
        assert_eq!(r.edges.len(), 2);
        assert_eq!(r.spans, vec![(0, 3)]);
        assert!(r.closure.is_none());
        assert!(matches!(r.edges[0].kind, REdgeKind::Base(_)));
    }

    #[test]
    fn alias_resolution() {
        let s = schema();
        let reg = SubdbRegistry::new();
        let r = ctx("Course * Course_1", &s, &reg);
        assert_eq!(r.slots[1].name, "Course_1");
        assert_eq!(r.slots[1].base, r.slots[0].base);
    }

    #[test]
    fn brace_spans() {
        let s = schema();
        let reg = SubdbRegistry::new();
        let r = ctx("Department * {Course * Section} * Teacher", &s, &reg);
        assert_eq!(r.spans, vec![(0, 4), (1, 3)]);
        let r2 = ctx("{{Department} * Course} * Section", &s, &reg);
        assert_eq!(r2.spans, vec![(0, 3), (0, 1), (0, 2)]);
    }

    #[test]
    fn qualified_slot_and_derived_membership() {
        let s = schema();
        let mut reg = SubdbRegistry::new();
        let course = s.class_by_name("Course").unwrap();
        let sd = Subdatabase::new(
            "Suggest_offer",
            Intension::new(vec![SlotDef::base("Course", course)]),
        );
        reg.put(sd, 0);
        let r = ctx("Department * Suggest_offer:Course", &s, &reg);
        assert_eq!(r.slots[1].derived.as_ref().unwrap().0, "Suggest_offer");
        // The edge falls back to the base Department—Course association.
        assert!(matches!(r.edges[0].kind, REdgeKind::Base(_)));
    }

    #[test]
    fn derived_edge_through_common_ancestor() {
        // Fig. 4.2: SD derives a direct Teacher—Course edge; SD1:Teacher and
        // SD2:Course (derived from SD) join through SD's patterns.
        let s = schema();
        let teacher = s.class_by_name("Teacher").unwrap();
        let course = s.class_by_name("Course").unwrap();
        let mut reg = SubdbRegistry::new();
        let mut int_sd = Intension::new(vec![
            SlotDef::base("Teacher", teacher),
            SlotDef::base("Course", course),
        ]);
        int_sd.add_edge(0, 1);
        reg.put(Subdatabase::new("SD", int_sd), 0);
        let mk_child = |name: &str, slot: &str, base| {
            let def = SlotDef {
                name: slot.to_string(),
                base,
                source: SlotSource::Derived { subdb: "SD".into(), slot: slot.to_string() },
                attrs: None,
            };
            Subdatabase::new(name, Intension::new(vec![def]))
        };
        reg.put(mk_child("SD1", "Teacher", teacher), 0);
        reg.put(mk_child("SD2", "Course", course), 0);
        let r = ctx("SD1:Teacher * SD2:Course", &s, &reg);
        match &r.edges[0].kind {
            REdgeKind::Derived { subdb, a, b } => {
                assert_eq!(subdb, "SD");
                assert_eq!((*a, *b), (0, 1));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn closure_cycle_edge() {
        let s = schema();
        let reg = SubdbRegistry::new();
        let r = ctx("Course ^*", &s, &reg);
        let (spec, kind) = r.closure.as_ref().unwrap();
        assert_eq!(spec.iterations, None);
        assert!(matches!(kind, REdgeKind::Base(_)));
    }

    #[test]
    fn unknown_names_error() {
        let s = schema();
        let reg = SubdbRegistry::new();
        let e = Parser::parse_context_expr("Nope * Course").unwrap();
        assert!(matches!(
            resolve_context(&e, &s, &reg),
            Err(QueryError::Resolve(_))
        ));
        let e2 = Parser::parse_context_expr("Nope:Course * Department").unwrap();
        assert!(matches!(
            resolve_context(&e2, &s, &reg),
            Err(QueryError::UnknownSubdb(_))
        ));
    }
}
