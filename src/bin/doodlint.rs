//! `doodlint` — the static analyzer CLI for `.dood` rule programs.
//!
//! ```text
//! doodlint [--strict] [--json] [--schema NAME] [--builtin] [--absint]
//!          [--allow CODE]... [FILE.dood ...]
//! doodlint --explain CODE
//! ```
//!
//! Lints each program file (and, with `--builtin`, the built-in workload
//! programs) against its schema: `schema builtin <name>` headers resolve to
//! the workload schemas (`university`, `company`, `cad`, `fig31`),
//! `schema inline … end` blocks are parsed as schema DDL, and `--schema`
//! supplies a default for programs without a header. Exits nonzero when any
//! program has errors — or warnings, under `--strict`.
//!
//! With `--json`, each diagnostic is printed to stdout as one JSON object
//! per line ([`Diagnostic::to_json_line`]) and the summary moves to stderr;
//! exit codes are unchanged.
//!
//! `--explain CODE` prints the documentation for one diagnostic code and
//! exits. `--allow CODE` (repeatable) suppresses a warning code — it does
//! not count toward `--strict` and equals an in-program `allow CODE`
//! directive. `--absint` prints the abstract interpreter's per-rule bound
//! table (slot cardinality, edge fan-out, extent and closure bounds) after
//! each program's diagnostics.

use dood_core::diag::{self, Diagnostic, Span};
use dood_core::schema::text::parse_schema;
use dood_core::schema::Schema;
use dood_rules::absint;
use dood_rules::analyze::{analyze, codes, explain};
use dood_rules::program::{Program, SchemaRef};
use dood_workload::programs;
use std::process::ExitCode;

const USAGE: &str = "usage: doodlint [--strict] [--json] [--schema NAME] [--builtin]
                [--absint] [--allow CODE]... [FILE.dood ...]
       doodlint --explain CODE
  --strict       treat warnings as fatal
  --json         print one JSON object per diagnostic on stdout
                 (summary goes to stderr; exit codes unchanged)
  --schema NAME  default schema for programs without a `schema` header
                 (university | company | cad | fig31)
  --builtin      also lint the built-in workload programs
  --absint       print the static bound table per rule/query
  --allow CODE   suppress a warning code (repeatable; ignored by --strict)
  --explain CODE print the documentation for one diagnostic code";

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut strict = false;
    let mut json = false;
    let mut default_schema: Option<String> = None;
    let mut builtin = false;
    let mut absint_table = false;
    let mut allows: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--json" => json = true,
            "--builtin" => builtin = true,
            "--absint" => absint_table = true,
            "--schema" => match args.next() {
                Some(n) => default_schema = Some(n),
                None => {
                    eprintln!("doodlint: `--schema` needs a name\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--allow" => match args.next() {
                Some(c) => {
                    let up = c.to_ascii_uppercase();
                    if explain(&up).is_none() {
                        eprintln!("doodlint: `--allow {c}`: unknown diagnostic code");
                        return ExitCode::from(2);
                    }
                    allows.push(up);
                }
                None => {
                    eprintln!("doodlint: `--allow` needs a code\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next() {
                Some(c) => {
                    return match explain(&c) {
                        Some(doc) => {
                            let sev = match doc.severity {
                                diag::Severity::Error => "error",
                                diag::Severity::Warning => "warning",
                                diag::Severity::Note => "note",
                            };
                            println!("{} ({sev}): {}\n\n{}", doc.code, doc.summary, doc.detail);
                            ExitCode::SUCCESS
                        }
                        None => {
                            eprintln!("doodlint: unknown diagnostic code `{c}`; known codes:");
                            for d in codes() {
                                eprintln!("  {}  {}", d.code, d.summary);
                            }
                            ExitCode::from(2)
                        }
                    };
                }
                None => {
                    eprintln!("doodlint: `--explain` needs a code\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("doodlint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() && !builtin {
        eprintln!("doodlint: no input\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut io_failed = false;
    let mut sources: Vec<(String, String)> = Vec::new();
    if builtin {
        for (name, text) in programs::all() {
            sources.push((format!("builtin:{name}"), text.to_string()));
        }
    }
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(text) => sources.push((f.clone(), text)),
            Err(e) => {
                eprintln!("doodlint: {f}: {e}");
                io_failed = true;
            }
        }
    }

    let opts = LintOpts {
        default_schema: default_schema.as_deref(),
        json,
        absint_table,
        allows: &allows,
    };
    for (file, src) in &sources {
        let (e, w) = lint_one(file, src, &opts);
        errors += e;
        warnings += w;
    }

    let checked = sources.len();
    let summary = format!(
        "doodlint: {checked} program(s) checked, {errors} error(s), {warnings} warning(s)"
    );
    if json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    if io_failed {
        ExitCode::from(2)
    } else if errors > 0 || (strict && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

struct LintOpts<'a> {
    default_schema: Option<&'a str>,
    json: bool,
    absint_table: bool,
    allows: &'a [String],
}

/// Lint one program source; prints its diagnostics (text blocks, or one
/// JSON object per line under `--json`), returns `(errors, warnings)`.
fn lint_one(file: &str, src: &str, opts: &LintOpts<'_>) -> (usize, usize) {
    let (program, mut diags) = Program::parse(src);
    let schema = match resolve_schema(&program, src, opts.default_schema) {
        Ok(schema) => {
            diags.extend(analyze(&program, &schema, &Default::default()));
            Some(schema)
        }
        Err(d) => {
            diags.push(d);
            None
        }
    };
    // `--allow` composes with the program's own `allow` directives (the
    // latter were already applied inside `analyze`).
    if !opts.allows.is_empty() {
        diags.retain(|d| {
            d.severity != diag::Severity::Warning || !opts.allows.iter().any(|c| c == d.code)
        });
    }
    diag::sort(&mut diags);
    if opts.json {
        for d in &diags {
            println!("{}", d.to_json_line(file));
        }
    } else if diags.is_empty() {
        println!("{file}: OK");
    } else {
        println!("{}", diag::render_all(&diags, file, src));
    }
    if opts.absint_table && !opts.json {
        if let Some(schema) = &schema {
            if !diag::has_errors(&diags) {
                let mut ext: dood_core::fxhash::FxHashSet<String> = Default::default();
                ext.extend(program.externs.iter().cloned());
                let analysis =
                    absint::analyze_bounds(&program, schema, &ext, &absint::CardEnv::unknown());
                for b in &analysis.rules {
                    print!("{}", b.describe());
                }
            }
        }
    }
    diag::counts(&diags)
}

/// Resolve the program's schema reference (or the `--schema` default).
fn resolve_schema(
    program: &Program,
    src: &str,
    default_schema: Option<&str>,
) -> Result<Schema, Diagnostic> {
    match &program.schema {
        Some(SchemaRef::Builtin { name, span }) => programs::builtin_schema(name).ok_or_else(|| {
            Diagnostic::error("P001", format!("unknown builtin schema `{name}`"))
                .with_span(*span, src)
        }),
        Some(SchemaRef::Inline { text, offset }) => parse_schema(text).map_err(|e| {
            Diagnostic::error("P001", format!("inline schema: {e}"))
                .with_span(Span::point(*offset), src)
        }),
        None => match default_schema {
            Some(name) => programs::builtin_schema(name).ok_or_else(|| {
                Diagnostic::error("P001", format!("unknown `--schema` name `{name}`"))
            }),
            None => Err(Diagnostic::error(
                "P001",
                "program has no `schema` directive and no `--schema` default was given",
            )),
        },
    }
}
