//! E8 — baseline sanity: naive vs semi-naive fixpoint evaluation.

use dood_bench::harness::Harness;
use dood_bench::tc_program_and_edb;
use dood_datalog::{naive, seminaive};

fn main() {
    let mut h = Harness::new("e8_datalog");
    for n in [16u64, 32, 64] {
        let (p, edb) = tc_program_and_edb(n);
        h.bench(&format!("naive/{n}"), || naive(&p, &edb).0.total());
        h.bench(&format!("seminaive/{n}"), || seminaive(&p, &edb).0.total());
    }
    h.finish();
}
