//! # dood-datalog
//!
//! A from-scratch semi-naive Datalog engine: the relational-deductive
//! baseline the paper positions its OO rule language against (§1).
//! Includes naive and semi-naive bottom-up evaluation and a translator
//! from `dood` object databases to flat relations, so the benchmark suite
//! can compare the two approaches on identical data.

#![warn(missing_docs)]

pub mod db;
pub mod eval;
pub mod program;
pub mod translate;

pub use db::{FactDb, Relation};
pub use eval::{naive, seminaive, EvalStats};
pub use program::{c, v, Atom, DlRule, Pred, Program, Term, Var};
pub use translate::{translate, Translated};
