//! E1 — association-operator pattern matching vs the Datalog baseline join
//! (`Teacher * Section * Course`) across population scales.

use dood_bench::harness::Harness;
use dood_bench::{assoc_datalog, assoc_dood, assoc_fixture};

fn main() {
    let mut h = Harness::new("e1_assoc_op");
    for factor in [1usize, 2, 4] {
        let f = assoc_fixture(factor);
        h.bench(&format!("dood/{factor}"), || assoc_dood(&f));
        h.bench(&format!("datalog/{factor}"), || assoc_datalog(&f));
    }
    h.finish();
}
