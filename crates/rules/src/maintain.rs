//! Semi-naive incremental forward maintenance (DESIGN.md §9).
//!
//! The paper's forward chaining "runs the relevant deductive rules to
//! maintain the consistency between the derived subdatabase and the
//! original database" but does not prescribe *how*. This module implements
//! event-log-driven delta maintenance: given the set of *dirty* objects
//! touched by an update batch (closed over perspective/identity links),
//! every cached context pattern either
//!
//! 1. contains no dirty object — it cannot have changed and is kept; or
//! 2. contains a dirty object — it is dropped, and every pattern with at
//!    least one delta-bound slot is re-derived by the semi-naive restricted
//!    join [`Evaluator::eval_delta`].
//!
//! Deletion is handled by *derivation counts*: the target is the projection
//! of the post-WHERE context, so each target pattern carries the number of
//! context patterns deriving it; a target pattern dies exactly when its
//! count reaches zero. Aggregate WHERE conditions are not per-pattern-local
//! (one pattern joining a group can flip the verdict of every other member)
//! so the WHERE clause is split at the first aggregate: the *prefix* of
//! plain comparisons has cacheable per-pattern verdicts, the *suffix* is
//! re-applied to the whole refreshed set on every delta. Only cyclic
//! (closure) contexts and closure-family targets fall back to full
//! re-derivation — the chain being rebuilt is not a local function of the
//! dirty objects.

use crate::ast::{Rule, TargetItem};
use crate::derive::{project_targets, target_slots};
use crate::error::RuleError;
use dood_core::fxhash::{FxHashMap, FxHashSet};
use dood_core::ids::Oid;
use dood_core::obs;
use dood_core::subdb::{ExtPattern, Subdatabase, SubdbRegistry};
use dood_oql::ast::WhereCond;
use dood_oql::eval::Evaluator;
use dood_oql::plan::CompiledContext;
use dood_oql::resolve::{resolve_context, ResolvedContext};
use dood_oql::wherec::apply_where;
use dood_store::Database;
use std::collections::BTreeSet;
use std::sync::Arc;

/// How a rule can be maintained under updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainPlan {
    /// No aggregates, no closure: clean patterns keep their cached WHERE
    /// verdicts and the target is rebuilt from derivation counts.
    DeltaLocal,
    /// Aggregate WHERE conditions present: the context delta is still
    /// semi-naive, but the aggregate suffix re-applies to the whole
    /// refreshed set (group membership is not pattern-local).
    DeltaReWhere,
    /// Cyclic (closure) context or closure-family target: re-derive in
    /// full.
    Recompute,
}

/// Classify a rule for incremental maintenance.
pub fn plan_for(rule: &Rule) -> MaintainPlan {
    let family = rule.targets.iter().any(|t| matches!(t, TargetItem::Family { .. }));
    if rule.context.closure.is_some() || family {
        return MaintainPlan::Recompute;
    }
    if rule.where_.iter().any(|w| matches!(w, WhereCond::Agg { .. })) {
        MaintainPlan::DeltaReWhere
    } else {
        MaintainPlan::DeltaLocal
    }
}

/// Whether delta maintenance is sound for this rule (anything but a full
/// recompute).
pub fn supports_incremental(rule: &Rule) -> bool {
    plan_for(rule) != MaintainPlan::Recompute
}

/// Expand an update batch's touched objects over the identity links: a
/// pattern slot may hold a different perspective of the touched object.
/// Deleted oids are *kept* — they invalidate cached patterns referencing
/// them — but can never re-bind a slot ([`Evaluator::restrict_slot`] and
/// [`Evaluator::eval_delta`] drop non-live oids).
pub fn dirty_closure(db: &Database, touched: impl IntoIterator<Item = Oid>) -> BTreeSet<Oid> {
    // Deleted objects have no closure but stay dirty (they seed the set).
    db.perspective_closure_set(touched)
}

/// Split a WHERE clause at the first aggregate condition. `apply_where`
/// applies conditions in written order and aggregates group over the
/// currently-filtered set, so the prefix/suffix application order is
/// exactly the original order.
fn split_where(conds: &[WhereCond]) -> (&[WhereCond], &[WhereCond]) {
    let cut = conds
        .iter()
        .position(|w| matches!(w, WhereCond::Agg { .. }))
        .unwrap_or(conds.len());
    conds.split_at(cut)
}

/// The per-rule state carried between maintenance steps.
#[derive(Debug, Clone)]
pub struct RuleCache {
    /// The IF-context before any WHERE condition (post-subsumption).
    pub ctx_pre: Subdatabase,
    /// The context after the WHERE *prefix* (plain comparisons before the
    /// first aggregate). Per-pattern verdicts here are stable for clean
    /// patterns.
    post: Subdatabase,
    /// Derivation counts: target projection → number of post-context
    /// patterns deriving it ([`MaintainPlan::DeltaLocal`] only).
    counts: FxHashMap<ExtPattern, u32>,
    /// The projected target as of `at_seq`.
    pub target: Subdatabase,
    /// Event-log sequence number the cache reflects. A delta application
    /// is sound iff every event after `at_seq` is covered by the dirty set.
    pub at_seq: u64,
    /// The rule's resolved context, computed once at seeding. Resolution
    /// depends on the schema and the sources' *intensions* only — both
    /// fixed for the lifetime of a rule program — so delta steps reuse it.
    resolved: ResolvedContext,
    /// The compiled join pipeline (DESIGN.md §10), captured at seeding:
    /// delta steps skip predicate compilation and plan ordering and only
    /// re-anchor per restricted slot.
    plan: Arc<CompiledContext>,
}

/// Tally derivation counts: how many post-context patterns project onto
/// each (non-empty) target pattern.
fn tally(post: &Subdatabase, slots: &[usize]) -> FxHashMap<ExtPattern, u32> {
    let mut counts: FxHashMap<ExtPattern, u32> = FxHashMap::default();
    for p in post.patterns() {
        let key = p.project(slots);
        if key.pattern_type().arity() == 0 {
            continue;
        }
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

/// Derive a rule from scratch and build its maintenance cache. Span and
/// metric output matches [`crate::derive::apply_rule`] (one `rules.rule`
/// span with `ctx_rows`/`target_rows`).
pub fn seed_cache(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
) -> Result<RuleCache, RuleError> {
    let mut sp = obs::trace::span("rules.rule");
    sp.label(|| rule.name.clone());
    if obs::metrics_enabled() {
        obs::metrics::counter("rules.rule.applications").inc();
    }
    let resolved =
        resolve_context(&rule.context, db.schema(), registry).map_err(RuleError::Query)?;
    let ev = Evaluator::new(&resolved, db, registry).map_err(RuleError::Query)?;
    let plan = ev.plan_handle();
    let ctx_pre = ev.eval("if-context");
    let (prefix, suffix) = split_where(&rule.where_);
    let mut post = ctx_pre.clone();
    apply_where(&mut post, prefix, db).map_err(RuleError::Query)?;
    let mut full = post.clone();
    apply_where(&mut full, suffix, db).map_err(RuleError::Query)?;
    sp.attr("ctx_rows", full.len() as i64);
    let target = project_targets(rule, &full, db)?;
    sp.attr("target_rows", target.len() as i64);
    let counts = if plan_for(rule) == MaintainPlan::DeltaLocal {
        tally(&post, &target_slots(rule, &post.intension)?)
    } else {
        FxHashMap::default()
    };
    Ok(RuleCache { ctx_pre, post, counts, target, at_seq: db.seq(), resolved, plan })
}

/// The exact target-pattern edits one delta step performed. The engine
/// replays them onto the registered copy of the target subdatabase in
/// O(|edits|) instead of cloning the whole cached target, and their
/// components are the content delta fed to downstream rules' dirty sets.
#[derive(Debug, Default)]
pub struct DeltaOutcome {
    /// Target patterns added by this step.
    pub inserted: Vec<ExtPattern>,
    /// Target patterns removed by this step.
    pub removed: Vec<ExtPattern>,
}

impl DeltaOutcome {
    /// Whether the target changed at all.
    pub fn changed(&self) -> bool {
        !self.inserted.is_empty() || !self.removed.is_empty()
    }

    /// The distinct oids appearing in the edits — the downstream dirty
    /// contribution of this step.
    pub fn components(&self) -> BTreeSet<Oid> {
        let mut out = BTreeSet::new();
        for p in self.inserted.iter().chain(&self.removed) {
            out.extend(p.components().iter().flatten().copied());
        }
        out
    }
}

/// Whether a pattern has any unbound slot. Only partial patterns can take
/// part in strict subsumption (`is_part_of` requires a strict pattern-type
/// subtype, so two fully-bound patterns relate only by equality); scans
/// that look for subsumers or subsumees stay proportional to the
/// usually-empty partial subset.
fn is_partial(p: &ExtPattern) -> bool {
    p.components().iter().any(|c| c.is_none())
}

/// Symmetric difference of two pattern sets as (in `next` only, in `prev`
/// only) — one merge pass over the lexicographic iterators.
fn sym_diff(prev: &Subdatabase, next: &Subdatabase) -> (Vec<ExtPattern>, Vec<ExtPattern>) {
    let mut inserted = Vec::new();
    let mut removed = Vec::new();
    let mut a = prev.patterns().peekable();
    let mut b = next.patterns().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => match x.cmp(y) {
                std::cmp::Ordering::Less => {
                    removed.push(x.clone());
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    inserted.push(y.clone());
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    a.next();
                    b.next();
                }
            },
            (Some(&x), None) => {
                removed.push(x.clone());
                a.next();
            }
            (None, Some(&y)) => {
                inserted.push(y.clone());
                b.next();
            }
            (None, None) => break,
        }
    }
    (inserted, removed)
}

/// Apply one delta step **in place**: refresh the cache (context, WHERE
/// verdicts, derivation counts, and target) given the perspective-closed
/// dirty set covering every event since `cache.at_seq`, and return the
/// exact target edits. The whole step is O(dirty-touched patterns), not
/// O(context): clean patterns are never copied, re-checked, or re-counted.
/// The caller must ensure `plan_for(rule) != Recompute` and that every
/// change to the rule's derived sources since `at_seq` is reflected in
/// `dirty`.
pub fn delta_apply(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
    cache: &mut RuleCache,
    dirty: &BTreeSet<Oid>,
) -> Result<DeltaOutcome, RuleError> {
    let plan = plan_for(rule);
    debug_assert!(plan != MaintainPlan::Recompute, "caller must gate on supports_incremental");
    let mut sp = obs::trace::span("rules.rule");
    sp.label(|| rule.name.clone());
    sp.attr("delta", 1);
    if obs::metrics_enabled() {
        obs::metrics::counter("rules.rule.delta_applications").inc();
    }
    // 1. Drop dirty-bound cached patterns; expand the re-binding set with
    //    every component of a dropped pattern. A shorter pattern
    //    resurfacing because its subsumer died has all its components
    //    inside that subsumer, so the expansion guarantees it is
    //    re-derived. The same pass collects the retained *partial*
    //    patterns: only those can take part in strict subsumption (two
    //    fully-bound patterns of one intension relate only by equality),
    //    so the merge below scans this usually-empty list instead of the
    //    whole context.
    let mut rebind: BTreeSet<Oid> = dirty.clone();
    let mut dropped: Vec<ExtPattern> = Vec::new();
    let mut partials: Vec<ExtPattern> = Vec::new();
    if cache.ctx_pre.intension.width() == 2
        && cache.resolved.spans.as_slice() == [(0usize, 2usize)]
    {
        // Binary single-span contexts (the paper's common association-pair
        // shape) hold only fully-bound rows, so the access index's counted
        // (0,1) adjacency *is* the pattern set: walk the dirty oids'
        // neighbor lists — O(|dirty| + |dropped|) — instead of scanning
        // the whole context. Partial rows cannot exist here, so `partials`
        // stays empty.
        if let Some((adj, _)) = cache.ctx_pre.index().pair_adj(0, 1) {
            for &o in dirty {
                for &n in adj.neighbors(o, true) {
                    dropped.push(ExtPattern::new(vec![Some(o), Some(n)]));
                }
                for &n in adj.neighbors(o, false) {
                    // A pattern with both ends dirty was already collected
                    // from the dirty slot-0 end above.
                    if !dirty.contains(&n) {
                        dropped.push(ExtPattern::new(vec![Some(n), Some(o)]));
                    }
                }
            }
        }
        for p in &dropped {
            rebind.extend(p.components().iter().flatten().copied());
        }
    } else {
        let dirty_hash: FxHashSet<Oid> = dirty.iter().copied().collect();
        let is_dirty =
            |p: &ExtPattern| p.components().iter().flatten().any(|o| dirty_hash.contains(o));
        for p in cache.ctx_pre.patterns() {
            if is_dirty(p) {
                rebind.extend(p.components().iter().flatten().copied());
                dropped.push(p.clone());
            } else if is_partial(p) {
                partials.push(p.clone());
            }
        }
    }
    for p in &dropped {
        cache.ctx_pre.remove(p);
    }

    // 2. Semi-naive delta: every valid pattern with a delta-bound slot,
    //    merged into the retained context under subsumption. A delta row
    //    equal to (or part of) a retained clean pattern is redundant; a
    //    retained pattern that a delta row strictly covers is dropped.
    let mut ev = Evaluator::with_compiled(&cache.resolved, db, registry, Arc::clone(&cache.plan))
        .map_err(RuleError::Query)?;
    let delta = ev.eval_delta(&cache.ctx_pre.name, &rebind);
    let mut added: Vec<ExtPattern> = Vec::new();
    for r in &delta {
        if cache.ctx_pre.contains(r) {
            continue;
        }
        let r_partial = is_partial(r);
        // A partial row may hide under *any* retained pattern (full scan;
        // only brace contexts produce partial rows). A full row cannot be
        // a strict part of anything.
        if r_partial && cache.ctx_pre.patterns().any(|q| r.is_part_of(q)) {
            continue;
        }
        // Retained patterns strictly covered by `r` are necessarily
        // partial, so only the partial list is scanned.
        let shadowed: Vec<ExtPattern> =
            partials.iter().filter(|q| q.is_part_of(r)).cloned().collect();
        for q in shadowed {
            cache.ctx_pre.remove(&q);
            if let Some(i) = partials.iter().position(|a| *a == q) {
                partials.swap_remove(i);
            }
            if let Some(i) = added.iter().position(|a| *a == q) {
                added.swap_remove(i);
            } else {
                dropped.push(q);
            }
        }
        cache.ctx_pre.insert(r.clone());
        if r_partial {
            partials.push(r.clone());
        }
        added.push(r.clone());
    }

    // 3. WHERE prefix: clean patterns keep their cached verdict (their
    //    attributes are untouched); only the added rows are checked.
    let (prefix, suffix) = split_where(&rule.where_);
    let mut removed_post: Vec<ExtPattern> = Vec::new();
    for p in &dropped {
        if cache.post.remove(p) {
            removed_post.push(p.clone());
        }
    }
    let mut added_post: Vec<ExtPattern> = Vec::new();
    if !added.is_empty() {
        if prefix.is_empty() {
            // No prefix conditions: every added row passes.
            for p in &added {
                cache.post.insert(p.clone());
                added_post.push(p.clone());
            }
        } else {
            let mut check =
                Subdatabase::new(cache.post.name.clone(), cache.post.intension.clone());
            for p in &added {
                check.insert(p.clone());
            }
            apply_where(&mut check, prefix, db).map_err(RuleError::Query)?;
            for p in check.patterns() {
                cache.post.insert(p.clone());
                added_post.push(p.clone());
            }
        }
    }

    // 4. Target.
    let out = match plan {
        MaintainPlan::DeltaLocal => {
            delta_local_target(rule, cache, &removed_post, &added_post)?
        }
        MaintainPlan::DeltaReWhere => {
            // Aggregate verdicts can flip without any post-set change (an
            // attribute update inside a group), so the suffix and the
            // projection always re-run over the refreshed set.
            let mut full = cache.post.clone();
            apply_where(&mut full, suffix, db).map_err(RuleError::Query)?;
            let next = project_targets(rule, &full, db)?;
            let (inserted, removed) = sym_diff(&cache.target, &next);
            cache.target = next;
            DeltaOutcome { inserted, removed }
        }
        MaintainPlan::Recompute => unreachable!("gated above"),
    };
    cache.at_seq = db.seq();
    sp.attr("ctx_rows", cache.post.len() as i64);
    sp.attr("target_rows", cache.target.len() as i64);
    Ok(out)
}

/// Count-maintained target update for [`MaintainPlan::DeltaLocal`]: adjust
/// derivation counts by the post-set edits, then patch the target — which
/// always holds exactly the maximal elements of the live count keys — by
/// the keys whose count crossed zero. Births run before deaths so a
/// death's resurrection scan sees the final cover.
fn delta_local_target(
    rule: &Rule,
    cache: &mut RuleCache,
    removed_post: &[ExtPattern],
    added_post: &[ExtPattern],
) -> Result<DeltaOutcome, RuleError> {
    let slots = target_slots(rule, &cache.post.intension)?;
    let mut dead: Vec<ExtPattern> = Vec::new();
    let mut born: Vec<ExtPattern> = Vec::new();
    for p in removed_post {
        let key = p.project(&slots);
        if key.pattern_type().arity() == 0 {
            continue;
        }
        if let Some(c) = cache.counts.get_mut(&key) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                cache.counts.remove(&key);
                dead.push(key);
            }
        }
    }
    for p in added_post {
        let key = p.project(&slots);
        if key.pattern_type().arity() == 0 {
            continue;
        }
        let c = cache.counts.entry(key.clone()).or_insert(0);
        *c += 1;
        if *c == 1 {
            // A key that died and was re-born in the same step nets out.
            if let Some(i) = dead.iter().position(|d| *d == key) {
                dead.swap_remove(i);
            } else {
                born.push(key);
            }
        }
    }
    let mut out = DeltaOutcome::default();
    if born.is_empty() && dead.is_empty() {
        return Ok(out);
    }
    // Subsumption involves partial patterns only, so the eviction and
    // resurrection scans walk these (usually empty) lists, not the whole
    // target or count table.
    let mut target_partials: Vec<ExtPattern> =
        cache.target.patterns().filter(|p| is_partial(p)).cloned().collect();
    for key in born {
        // Covered (or already present) keys stay implicit; an uncovered
        // key evicts the target members it strictly covers.
        if cache.target.contains(&key) {
            continue;
        }
        let key_partial = is_partial(&key);
        if key_partial && cache.target.patterns().any(|q| key.is_part_of(q)) {
            continue;
        }
        let shadowed: Vec<ExtPattern> =
            target_partials.iter().filter(|q| q.is_part_of(&key)).cloned().collect();
        for q in shadowed {
            cache.target.remove(&q);
            if let Some(i) = target_partials.iter().position(|a| *a == q) {
                target_partials.swap_remove(i);
            }
            out.removed.push(q);
        }
        cache.target.insert(key.clone());
        if key_partial {
            target_partials.push(key.clone());
        }
        out.inserted.push(key);
    }
    if dead.is_empty() {
        return Ok(out);
    }
    // Resurrection candidates are strictly part of a dead key, hence
    // partial.
    let count_partials: Vec<ExtPattern> =
        cache.counts.keys().filter(|k| is_partial(k)).cloned().collect();
    for key in dead {
        if !cache.target.remove(&key) {
            continue; // was covered by a live key: nothing visible changed
        }
        if let Some(i) = target_partials.iter().position(|a| *a == key) {
            target_partials.swap_remove(i);
        }
        out.removed.push(key.clone());
        // Resurrect the maximal live keys the dead pattern was covering.
        let cands: Vec<&ExtPattern> = count_partials
            .iter()
            .filter(|k| {
                k.is_part_of(&key)
                    && cache.counts.contains_key(*k)
                    && !cache.target.contains(k)
                    && !cache.target.patterns().any(|q| k.is_part_of(q))
            })
            .collect();
        for k in &cands {
            if cands.iter().any(|d| k.is_part_of(d)) {
                continue;
            }
            cache.target.insert((*k).clone());
            if is_partial(k) {
                target_partials.push((*k).clone());
            }
            out.inserted.push((*k).clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::apply_rule;
    use crate::parser::parse_rule;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::{DType, Value};

    fn setup() -> (Database, Vec<Oid>, Vec<Oid>) {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.d_class("v", DType::Int);
        b.attr("A", "v");
        b.aggregate("A", "B");
        let mut db = Database::new(b.build().unwrap());
        let a_cls = db.schema().class_by_name("A").unwrap();
        let b_cls = db.schema().class_by_name("B").unwrap();
        let link = db.schema().own_link_by_name(a_cls, "B").unwrap();
        let avec: Vec<Oid> = (0..5).map(|_| db.new_object(a_cls).unwrap()).collect();
        let bvec: Vec<Oid> = (0..5).map(|_| db.new_object(b_cls).unwrap()).collect();
        for i in 0..5 {
            db.set_attr(avec[i], "v", Value::Int(i as i64)).unwrap();
            db.associate(link, avec[i], bvec[i]).unwrap();
        }
        (db, avec, bvec)
    }

    fn dirty_since(db: &Database, mark: u64) -> BTreeSet<Oid> {
        dirty_closure(db, db.events().since(mark).iter().flat_map(|e| e.touched_oids()))
    }

    #[test]
    fn plans_cover_the_rule_space() {
        let plan = |src: &str| plan_for(&parse_rule("r", src).unwrap());
        assert_eq!(plan("if context A * B then T (A, B)"), MaintainPlan::DeltaLocal);
        assert_eq!(
            plan("if context A * B where A.v > 1 then T (A)"),
            MaintainPlan::DeltaLocal
        );
        // Braces are delta-maintainable now (eval_delta spans every span).
        assert_eq!(plan("if context {A} * B then T (A)"), MaintainPlan::DeltaLocal);
        assert_eq!(
            plan("if context A * B where count(B by A) > 1 then T (A)"),
            MaintainPlan::DeltaReWhere
        );
        // Only closure contexts (and families) recompute.
        assert_eq!(plan("if context A ^* then T (A, A_*)"), MaintainPlan::Recompute);
        assert!(!supports_incremental(&parse_rule("r", "if context A ^* then T (A, A_*)").unwrap()));
        assert!(supports_incremental(&parse_rule("r", "if context {A} * B then T (A)").unwrap()));
    }

    /// delta_apply after a mixed batch (associate, dissociate, create,
    /// attribute flip) reproduces the from-scratch derivation exactly —
    /// for plain, braced, filtered, and aggregate rules.
    #[test]
    fn delta_matches_full_after_updates() {
        for src in [
            "if context A * B then T (A, B)",
            "if context {A} * B then T (A, B)",
            "if context A [v >= 2] * B then T (A)",
            "if context A * B where A.v >= 1 then T (A, B)",
            "if context A * B where count(B by A) > 1 then T (A)",
        ] {
            let (mut db, avec, bvec) = setup();
            let rule = parse_rule("r", src).unwrap();
            let reg = SubdbRegistry::new();
            let mut cache = seed_cache(&rule, &db, &reg).unwrap();
            let mut mirror = cache.target.clone();

            let a_cls = db.schema().class_by_name("A").unwrap();
            let b_cls = db.schema().class_by_name("B").unwrap();
            let link = db.schema().own_link_by_name(a_cls, "B").unwrap();
            let mark = db.seq();
            db.associate(link, avec[0], bvec[1]).unwrap();
            db.dissociate(link, avec[2], bvec[2]).unwrap();
            db.set_attr(avec[3], "v", Value::Int(99)).unwrap();
            let na = db.new_object(a_cls).unwrap();
            let nb = db.new_object(b_cls).unwrap();
            db.associate(link, na, nb).unwrap();

            let out = delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
            let full = apply_rule(&rule, &db, &reg).unwrap();
            assert_eq!(cache.target.to_vec(), full.to_vec(), "target diverged for `{src}`");
            // Replaying the reported edits reproduces the new target.
            for p in &out.removed {
                assert!(mirror.remove(p), "removed edit not present for `{src}`");
            }
            for p in &out.inserted {
                mirror.insert(p.clone());
            }
            assert_eq!(mirror.to_vec(), full.to_vec(), "edits diverged for `{src}`");
            // The refreshed cache is itself a valid base for another step.
            let mark = db.seq();
            db.dissociate(link, avec[0], bvec[0]).unwrap();
            delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
            let full2 = apply_rule(&rule, &db, &reg).unwrap();
            assert_eq!(cache.target.to_vec(), full2.to_vec(), "second step diverged for `{src}`");
        }
    }

    /// Deleting an object must remove every pattern referencing it and must
    /// not resurrect patterns through the deleted object's former
    /// neighbours (the `dirty_closure`-keeps-deleted-oids regression).
    #[test]
    fn delete_then_delta_does_not_resurrect() {
        let (mut db, avec, _bvec) = setup();
        let rule = parse_rule("r", "if context {A} * B then T (A, B)").unwrap();
        let reg = SubdbRegistry::new();
        let mut cache = seed_cache(&rule, &db, &reg).unwrap();
        let mark = db.seq();
        db.delete_object(avec[1]).unwrap();
        delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
        let full = apply_rule(&rule, &db, &reg).unwrap();
        assert_eq!(cache.target.to_vec(), full.to_vec());
        assert!(cache
            .target
            .patterns()
            .all(|p| p.components().iter().flatten().all(|&o| o != avec[1])));
    }

    /// Counting deletion: two context patterns projecting onto the same
    /// target pattern — removing one keeps the target alive, removing both
    /// kills it.
    #[test]
    fn counting_keeps_multiply_derived_targets() {
        let (mut db, avec, bvec) = setup();
        let a_cls = db.schema().class_by_name("A").unwrap();
        let link = db.schema().own_link_by_name(a_cls, "B").unwrap();
        // a0 now derives through b0 and b1.
        db.associate(link, avec[0], bvec[1]).unwrap();
        let rule = parse_rule("r", "if context A * B then T (A)").unwrap();
        let reg = SubdbRegistry::new();
        let mut cache = seed_cache(&rule, &db, &reg).unwrap();
        assert!(cache.target.patterns().any(|p| p.get(0) == Some(avec[0])));

        let mark = db.seq();
        db.dissociate(link, avec[0], bvec[0]).unwrap();
        let one = delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
        assert!(cache.target.patterns().any(|p| p.get(0) == Some(avec[0])), "count 2→1 kept");
        assert!(!one.changed(), "count 2→1 is invisible in the target");

        let mark = db.seq();
        db.dissociate(link, avec[0], bvec[1]).unwrap();
        let zero = delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
        assert!(cache.target.patterns().all(|p| p.get(0) != Some(avec[0])), "count 1→0 dies");
        assert!(zero.removed.iter().any(|p| p.get(0) == Some(avec[0])));
        assert_eq!(cache.target.to_vec(), apply_rule(&rule, &db, &reg).unwrap().to_vec());
    }

    #[test]
    fn dirty_closure_includes_perspectives() {
        let mut b = SchemaBuilder::new();
        b.e_class("Person");
        b.e_class("Student");
        b.generalize("Person", "Student");
        let mut db = Database::new(b.build().unwrap());
        let person = db.schema().class_by_name("Person").unwrap();
        let student = db.schema().class_by_name("Student").unwrap();
        let p = db.new_object(person).unwrap();
        let st = db.specialize(p, student).unwrap();
        let d = dirty_closure(&db, [p]);
        assert!(d.contains(&p) && d.contains(&st));
    }
}
